"""Unit tests for the command-line interface."""

import pytest

import repro.bench.reporting as reporting
from repro.bench.sweep import SMOKE_ALGORITHMS
from repro.cli import FIGURES, build_parser, main


@pytest.fixture(autouse=True)
def isolated_results(tmp_path, monkeypatch):
    monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
    # Keep the default-on CLI cache inside the test sandbox.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield tmp_path


SMALL = ["--nodes", "2", "--ranks-per-socket", "2"]

# Smoke-sweep grid size: every bench-enrolled algorithm x 2 densities x
# 2 sizes (see repro.bench.sweep.smoke_sweep).
SMOKE_SPECS = len(SMOKE_ALGORITHMS) * 2 * 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])

    def test_all_figures_resolvable(self):
        import repro.bench.figures as figures

        for attr in FIGURES.values():
            assert hasattr(figures, attr)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "allgather algorithms" in out
        assert "distance_halving" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "Hockney fit" in out and "alpha" in out

    def test_compare_random(self, capsys):
        assert main(["compare", *SMALL, "--density", "0.5", "--msg", "256"]) == 0
        out = capsys.readouterr().out
        assert "distance_halving" in out and "verified" in out

    def test_compare_moore(self, capsys):
        assert main(["compare", *SMALL, "--topology", "moore", "--radius", "1"]) == 0
        assert "naive" in capsys.readouterr().out

    def test_compare_cartesian(self, capsys):
        assert main(["compare", *SMALL, "--topology", "cartesian"]) == 0
        assert "naive" in capsys.readouterr().out

    def test_compare_alltoall(self, capsys):
        assert main(["compare", *SMALL, "--collective", "alltoall", "--msg", "64"]) == 0
        assert "naive_alltoall" in capsys.readouterr().out

    def test_model(self, capsys):
        assert main(["model", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "model-predicted DH speedup" in out and "shades:" in out

    def test_analyze(self, capsys):
        assert main(["analyze", *SMALL, "--density", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "edge locality" in out and "Distance Halving preview" in out

    def test_spmm_single_matrix(self, capsys):
        assert main(["spmm", *SMALL, "dwt_193"]) == 0
        out = capsys.readouterr().out
        assert "dwt_193" in out and "DH speedup" in out

    def test_bench_single_figure(self, isolated_results, capsys):
        # fig2 is the cheapest driver (closed-form model).
        assert main(["bench", "fig2", "--scale", "small"]) == 0
        assert "Fig. 2" in capsys.readouterr().out
        assert (isolated_results / "fig2_model.json").exists()


class TestFaults:
    def test_compare_with_lossy_profile(self, capsys):
        assert main(["compare", *SMALL, "--msg", "256", "--faults", "lossy"]) == 0
        out = capsys.readouterr().out
        assert "faults  : lossy" in out
        assert "verified" in out

    def test_compare_setup_loss_labels_fallback(self, capsys):
        assert main(["compare", *SMALL, "--msg", "256", "--faults", "setup_loss"]) == 0
        out = capsys.readouterr().out
        assert "distance_halving (->naive)" in out

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--faults", "nope"])

    def test_watchdog_exceeded_exits_one_without_traceback(self, capsys):
        assert main(["compare", *SMALL, "--msg", "256", "--max-events", "10"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: SimTimeoutError:")
        assert "Traceback" not in err

    def test_generous_watchdog_budget_is_harmless(self, capsys):
        assert main(["compare", *SMALL, "--msg", "256",
                     "--max-sim-time", "10.0", "--max-events", "1000000"]) == 0
        assert "verified" in capsys.readouterr().out


class TestExecFlags:
    def test_sweep_smoke_cold_run_reports_stats(self, tmp_path, capsys):
        cache = tmp_path / "c1"
        assert main(["bench", "--sweep-smoke", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert f"{SMOKE_SPECS} computed" in out and "hit_rate=0.00" in out

    def test_sweep_smoke_warm_run_passes_hit_rate_gate(self, tmp_path, capsys):
        cache = tmp_path / "c2"
        assert main(["bench", "--sweep-smoke", "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert main(["bench", "--sweep-smoke", "--cache-dir", str(cache),
                     "--workers", "2", "--min-cache-hit-rate", "0.9"]) == 0
        out = capsys.readouterr().out
        assert f"{SMOKE_SPECS} from cache" in out and "hit_rate=1.00" in out

    def test_sweep_smoke_cold_run_fails_hit_rate_gate(self, tmp_path, capsys):
        cache = tmp_path / "c3"
        assert main(["bench", "--sweep-smoke", "--cache-dir", str(cache),
                     "--min-cache-hit-rate", "0.9"]) == 1
        assert "below the required" in capsys.readouterr().err

    def test_sweep_smoke_no_cache(self, capsys):
        assert main(["bench", "--sweep-smoke", "--no-cache"]) == 0
        assert "cache: disabled" in capsys.readouterr().out

    def test_bench_modes_mutually_exclusive(self, capsys):
        assert main(["bench", "--wallclock", "--sweep-smoke"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_paper_smoke_mutually_exclusive(self, capsys):
        assert main(["bench", "--paper-smoke", "--sweep-smoke"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_wall_budget_gate_fails_at_zero(self, capsys):
        assert main(["bench", "--sweep-smoke", "--no-cache",
                     "--max-wall-seconds", "0"]) == 1
        assert "exceeded" in capsys.readouterr().err

    def test_wall_budget_gate_passes_when_generous(self, capsys):
        assert main(["bench", "--sweep-smoke", "--no-cache",
                     "--max-wall-seconds", "600"]) == 0
        assert "wall=" in capsys.readouterr().out

    def test_figure_with_workers_and_cache_matches_serial(
        self, isolated_results, tmp_path, capsys, monkeypatch
    ):
        import json

        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        cache = tmp_path / "figcache"
        assert main(["bench", "fig2", "--cache-dir", str(cache),
                     "--workers", "2"]) == 0
        first = json.loads((isolated_results / "fig2_model.json").read_text())
        assert main(["bench", "fig2", "--cache-dir", str(cache),
                     "--workers", "2"]) == 0
        second = json.loads((isolated_results / "fig2_model.json").read_text())
        assert first == second


class TestAdvise:
    def test_requires_a_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise"])

    def test_modes_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise", "--algorithm", "--regret"])

    def test_algorithm_explains_the_pick(self, capsys):
        assert main(["advise", "--algorithm", *SMALL, "--density", "0.3",
                     "--msg", "4KB", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "ranking  :" in out
        assert "advice   :" in out
        assert "key      :" in out
        assert "DH beats naive" in out

    def test_algorithm_under_risky_faults_advises_setup_free(self, capsys):
        assert main(["advise", "--algorithm", *SMALL, "--msg", "256",
                     "--faults", "setup_loss"]) == 0
        out = capsys.readouterr().out
        assert "fault=risky" in out
        assert "advice   : naive" in out

    def test_distill_writes_a_loadable_table(self, tmp_path, capsys):
        from repro.select import DecisionTable, default_table

        out_path = tmp_path / "table.json"
        assert main(["advise", "--distill", "--workers", "2", "--cache-dir",
                     str(tmp_path / "cache"), "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "distilled table" in out
        table = DecisionTable.load(out_path)
        assert table.is_complete()
        # Distillation is deterministic: a fresh run over the same grid
        # reproduces the shipped artifact, version and all.
        assert table.version == default_table().version

    def test_regret_passes_gates_and_writes_report(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "regret.json"
        assert main(["advise", "--regret", "--scenarios", "20", "--seed",
                     "7", "--out", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "geomean=" in out
        report = json.loads(report_path.read_text())
        assert report["experiment"] == "selection_regret"
        assert report["scenarios"] == 20
        assert report["non_survivable_picks"] == 0

    def test_regret_gate_failure_exits_one(self, capsys):
        # An impossible gate: geomean is always >= 1.0.
        assert main(["advise", "--regret", "--scenarios", "5", "--seed",
                     "7", "--max-regret", "0.5"]) == 1
        assert "exceeds" in capsys.readouterr().err

    def test_regret_inf_gate_checks_survivability_only(self, capsys):
        assert main(["advise", "--regret", "--scenarios", "5", "--seed",
                     "7", "--profile", "crash", "--max-regret", "inf"]) == 0
        assert "non_survivable_picks=0" in capsys.readouterr().out

    def test_regret_against_an_explicit_table(self, tmp_path, capsys):
        from repro.select import default_table

        path = default_table().save(tmp_path / "t.json")
        # Tiny draw: gate on survivability only (the geomean gate needs
        # the >= 100-scenario campaigns to be meaningful).
        assert main(["advise", "--regret", "--scenarios", "5", "--seed",
                     "7", "--table", str(path), "--max-regret", "inf"]) == 0
        assert default_table().version in capsys.readouterr().out


class TestFuzz:
    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        assert main(["fuzz", "--seed", "0", "--iterations", "15",
                     "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "15 iteration(s) clean" in out
        assert not list(tmp_path.iterdir())

    def test_injected_bug_exits_one_with_repro(self, tmp_path, capsys):
        assert main(["fuzz", "--iterations", "10",
                     "--inject-bug", "payload-corruption",
                     "--out-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FAILURE" in out and "shrunk to" in out
        repros = list(tmp_path.glob("repro_*.json"))
        assert len(repros) == 1
        # ... and --replay on the written file still reproduces.
        assert main(["fuzz", "--replay", str(repros[0])]) == 1
        assert "violation(s)" in capsys.readouterr().out

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--profile", "chaotic"])


class TestFuzzReplayErrors:
    """--replay on missing/corrupt repro files: one line on stderr, exit 1,
    never a traceback."""

    def test_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["fuzz", "--replay", str(missing)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot replay")
        assert err.count("\n") == 1

    def test_corrupt_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["fuzz", "--replay", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot replay")
        assert err.count("\n") == 1

    def test_missing_scenario_key(self, tmp_path, capsys):
        import json

        stub = tmp_path / "stub.json"
        stub.write_text(json.dumps({"violations": []}))
        assert main(["fuzz", "--replay", str(stub)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot replay")
        assert "scenario" in err
        assert err.count("\n") == 1


class TestBenchReferenceErrors:
    """Corrupt golden/baseline reference files: one line on stderr, exit 1."""

    def test_corrupt_baseline(self, tmp_path, capsys, monkeypatch):
        import repro.bench.wallclock as wallclock

        bad = tmp_path / "baseline.json"
        bad.write_text("{truncated")
        monkeypatch.setattr(wallclock, "DEFAULT_BASELINE", bad)
        assert main(["bench", "--wallclock", "--smoke", "--scale", "small",
                     "--out", str(tmp_path / "out.json")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: corrupt or unreadable baseline")
        assert err.count("\n") == 1

    def test_corrupt_golden(self, tmp_path, capsys, monkeypatch):
        import repro.bench.wallclock as wallclock

        bad = tmp_path / "golden.json"
        bad.write_text("[1, 2,")
        monkeypatch.setattr(wallclock, "DEFAULT_GOLDEN", bad)
        monkeypatch.setattr(wallclock, "DEFAULT_BASELINE",
                            tmp_path / "missing.json")
        # The golden check only runs on non-smoke grids; a non-dict payload
        # must also be rejected, so cover that shape too.
        bad.write_text("[]")
        monkeypatch.setattr(wallclock, "FULL_DENSITIES", (0.3,))
        monkeypatch.setattr(wallclock, "FULL_SIZES", ("1KB",))
        from repro.bench.config import BenchScale

        tiny = BenchScale(name="small", ranks=8, ranks_per_socket=2,
                          densities=(0.3,), sizes=("1KB",), moore_ranks=8)
        monkeypatch.setattr("repro.bench.config._SCALES",
                            {"small": tiny}, raising=True)
        assert main(["bench", "--wallclock", "--scale", "small",
                     "--repeats", "1",
                     "--out", str(tmp_path / "out.json")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: corrupt")
        assert "golden" in err
