"""Trace conservation laws on the golden grid, across execution modes.

Two claims, both resting on ``AllgatherRun.trace_summary`` (the per-class
aggregates that survive :meth:`AllgatherRun.slim`):

1. On every golden-grid scenario (the machines x algorithms grid pinned by
   ``test_golden_times``) the aggregates obey the conservation laws: trace
   totals equal the engine counters, bytes delivered equal bytes sent per
   class (no faults), and every message takes exactly one attempt.
2. The aggregates are *identical* — not merely law-abiding — whether a
   spec executes serially in-process, through a process pool, or is
   answered from the content-addressed result cache.
"""

import math

import pytest

from repro.collectives.runner import RunOptions
from repro.exec import ResultCache, RunSpec, execute
from repro.exec.spec import MachineSpec, TopologySpec

#: Mirrors the golden-grid machines (tests/sim/test_golden_times.py) as
#: specs: (name, machine spec, topology spec).  single_switch_8 is absent
#: because RunSpec only describes niagara_like machines.
GRID = [
    (
        "niagara_32",
        MachineSpec(nodes=4, sockets_per_node=2, ranks_per_socket=4),
        TopologySpec("random", 32, density=0.3, seed=1234),
    ),
    (
        "niagara_16",
        MachineSpec(nodes=2, sockets_per_node=2, ranks_per_socket=4),
        TopologySpec("random", 16, density=0.4, seed=7),
    ),
]

ALGORITHMS = ("naive", "common_neighbor", "distance_halving", "bruck")


def grid_specs() -> list[RunSpec]:
    return [
        RunSpec(
            algorithm=algorithm,
            topology=topology,
            machine=machine,
            msg_size=2048,
            options=RunOptions(trace=True),
        )
        for _, machine, topology in GRID
        for algorithm in ALGORITHMS
    ]


def _check_laws(run) -> None:
    summary = run.trace_summary
    assert summary is not None
    messages = sum(c["messages"] for c in summary.values())
    nbytes = sum(c["bytes"] for c in summary.values())
    assert messages == run.messages_sent
    assert nbytes == run.bytes_sent
    for counters in summary.values():
        # No fault plan: everything sent is delivered, on the first attempt.
        assert counters["delivered_messages"] == counters["messages"]
        assert counters["delivered_bytes"] == counters["bytes"]
        assert counters["lost_messages"] == 0
        assert counters["attempts"] == counters["messages"]


class TestConservationLaws:
    @pytest.mark.parametrize(
        "spec", grid_specs(),
        ids=lambda s: f"{s.topology.n}-{s.algorithm}",
    )
    def test_golden_grid_obeys_conservation(self, spec):
        run = spec.run()
        _check_laws(run)
        assert math.isfinite(run.simulated_time)

    def test_live_trace_matches_summary(self):
        # The JSON aggregates must agree with the live TraceCollector they
        # were snapshotted from.
        run = grid_specs()[0].run()
        assert run.trace is not None
        assert run.trace.summary() == run.trace_summary


class TestExecutionModeEquivalence:
    """serial == parallel == cached, per link class, message and byte."""

    def test_summaries_identical_across_modes(self, tmp_path):
        specs = grid_specs()
        serial = execute(specs, workers=1).raise_errors()
        parallel = execute(specs, workers=2).raise_errors()
        cache = ResultCache(cache_dir=tmp_path)
        cold = execute(specs, cache=cache).raise_errors()
        warm = execute(specs, cache=cache).raise_errors()
        assert warm.stats["from_cache"] == len(specs)

        for spec, a, b, c, d in zip(
            specs, serial.runs, parallel.runs, cold.runs, warm.runs
        ):
            assert a.trace_summary is not None, spec.label()
            assert a.trace_summary == b.trace_summary, spec.label()
            assert a.trace_summary == c.trace_summary, spec.label()
            assert a.trace_summary == d.trace_summary, spec.label()
            _check_laws(a)

    def test_cached_summary_supports_conservation_checks(self, tmp_path):
        # End to end through repro.verify: the conservation checker accepts
        # a cache-restored (slim, trace-free) run.
        from repro.verify import Scenario
        from repro.verify.invariants import check_trace_conservation

        spec = grid_specs()[0]
        cache = ResultCache(cache_dir=tmp_path)
        execute([spec], cache=cache).raise_errors()
        restored = execute([spec], cache=cache).raise_errors().runs[0]
        assert restored.trace is None  # cache stores slim runs only
        scenario = Scenario(
            topology=spec.topology,
            machine=spec.machine,
            msg_size=spec.msg_size,
            options=spec.options,
        )
        assert check_trace_conservation(scenario, {spec.algorithm: restored}) == []
