"""Unit tests for the discrete-event engine: matching, waits, barriers,
determinism, deadlock detection."""

import pytest

from repro.cluster import Machine
from repro.sim.communicator import ANY_SOURCE
from repro.sim.engine import DeadlockError, Engine


@pytest.fixture
def machine():
    return Machine.single_switch(nodes=2, sockets_per_node=2, ranks_per_socket=2)


def make_engine(machine, n=None):
    return Engine(n_ranks=n or machine.spec.n_ranks, machine=machine)


class TestBasicExchange:
    def test_send_recv_delivers_payload(self, machine):
        engine = make_engine(machine)

        def sender(comm):
            yield comm.wait(comm.isend(1, 100, tag=7, payload={"k": 3}))

        def receiver(comm):
            req = comm.irecv(0, tag=7)
            yield comm.wait(req)
            assert req.payload == {"k": 3}
            assert req.source == 0
            assert req.nbytes == 100

        engine.spawn(0, sender)
        engine.spawn(1, receiver)
        for r in range(2, engine.n_ranks):
            engine.spawn(r, lambda comm: None)
        makespan = engine.run()
        assert makespan > 0

    def test_recv_posted_before_send(self, machine):
        engine = make_engine(machine)
        seen = []

        def receiver(comm):
            req = comm.irecv(1, tag=0)
            yield comm.wait(req)
            seen.append(req.payload)

        def sender(comm):
            yield comm.compute(1e-3)  # send long after the recv is posted
            yield comm.wait(comm.isend(0, 8, tag=0, payload="late"))

        engine.spawn(0, receiver)
        engine.spawn(1, sender)
        for r in range(2, engine.n_ranks):
            engine.spawn(r, lambda comm: None)
        engine.run()
        assert seen == ["late"]
        # Receiver cannot finish before the sender's compute delay.
        assert engine.finish_time(0) >= 1e-3

    def test_unexpected_message_buffered(self, machine):
        engine = make_engine(machine)
        got = []

        def sender(comm):
            yield comm.wait(comm.isend(1, 8, tag=3, payload="eager"))

        def receiver(comm):
            yield comm.compute(1e-3)  # recv posted long after arrival
            req = comm.irecv(0, tag=3)
            yield comm.wait(req)
            got.append((req.payload, comm.now))

        engine.spawn(0, sender)
        engine.spawn(1, receiver)
        for r in range(2, engine.n_ranks):
            engine.spawn(r, lambda comm: None)
        engine.run()
        payload, when = got[0]
        assert payload == "eager"
        assert when >= 1e-3  # completion at post time, not arrival time

    def test_self_send(self, machine):
        engine = make_engine(machine)
        got = []

        def prog(comm):
            sreq = comm.isend(0, 64, tag=1, payload="me")
            rreq = comm.irecv(0, tag=1)
            yield comm.waitall([sreq, rreq])
            got.append(rreq.payload)

        engine.spawn(0, prog)
        for r in range(1, engine.n_ranks):
            engine.spawn(r, lambda comm: None)
        engine.run()
        assert got == ["me"]


class TestMatchingSemantics:
    def test_fifo_per_src_tag(self, machine):
        engine = make_engine(machine)
        order = []

        def sender(comm):
            reqs = [comm.isend(1, 8, tag=0, payload=i) for i in range(5)]
            yield comm.waitall(reqs)

        def receiver(comm):
            for _ in range(5):
                req = comm.irecv(0, tag=0)
                yield comm.wait(req)
                order.append(req.payload)

        engine.spawn(0, sender)
        engine.spawn(1, receiver)
        for r in range(2, engine.n_ranks):
            engine.spawn(r, lambda comm: None)
        engine.run()
        assert order == [0, 1, 2, 3, 4]  # MPI non-overtaking

    def test_tags_do_not_cross_match(self, machine):
        engine = make_engine(machine)
        got = {}

        def sender(comm):
            yield comm.waitall(
                [
                    comm.isend(1, 8, tag=10, payload="ten"),
                    comm.isend(1, 8, tag=20, payload="twenty"),
                ]
            )

        def receiver(comm):
            r20 = comm.irecv(0, tag=20)
            r10 = comm.irecv(0, tag=10)
            yield comm.waitall([r10, r20])
            got["t10"], got["t20"] = r10.payload, r20.payload

        engine.spawn(0, sender)
        engine.spawn(1, receiver)
        for r in range(2, engine.n_ranks):
            engine.spawn(r, lambda comm: None)
        engine.run()
        assert got == {"t10": "ten", "t20": "twenty"}

    def test_any_source(self, machine):
        engine = make_engine(machine)
        sources = []

        def make_sender(dst):
            def sender(comm):
                yield comm.wait(comm.isend(dst, 8, tag=0, payload=comm.rank))

            return sender

        def receiver(comm):
            for _ in range(3):
                req = comm.irecv(ANY_SOURCE, tag=0)
                yield comm.wait(req)
                sources.append(req.source)

        engine.spawn(0, receiver)
        for r in (1, 2, 3):
            engine.spawn(r, make_sender(0))
        for r in range(4, engine.n_ranks):
            engine.spawn(r, lambda comm: None)
        engine.run()
        assert sorted(sources) == [1, 2, 3]


class TestBarrier:
    def test_barrier_synchronizes(self, machine):
        engine = make_engine(machine)
        after = {}

        def prog(comm):
            yield comm.compute(comm.rank * 1e-4)  # staggered arrivals
            yield comm.barrier()
            after[comm.rank] = comm.now

        for r in range(engine.n_ranks):
            engine.spawn(r, prog)
        engine.run()
        slowest_arrival = (engine.n_ranks - 1) * 1e-4
        assert all(t >= slowest_arrival for t in after.values())
        assert len(set(round(t, 12) for t in after.values())) == 1


class TestErrorsAndEdges:
    def test_deadlock_detected(self, machine):
        engine = make_engine(machine)

        def waiter(comm):
            yield comm.wait(comm.irecv(1, tag=0))  # nobody ever sends

        engine.spawn(0, waiter)
        for r in range(1, engine.n_ranks):
            engine.spawn(r, lambda comm: None)
        with pytest.raises(DeadlockError, match="rank 0"):
            engine.run()

    def test_invalid_yield_rejected(self, machine):
        engine = make_engine(machine)

        def bad(comm):
            yield "not a condition"

        engine.spawn(0, bad)
        with pytest.raises(TypeError, match="must yield wait conditions"):
            engine.run()

    def test_double_spawn_rejected(self, machine):
        engine = make_engine(machine)
        engine.spawn(0, lambda comm: None)
        with pytest.raises(ValueError, match="already has a program"):
            engine.spawn(0, lambda comm: None)

    def test_out_of_range_destination(self, machine):
        engine = make_engine(machine, n=2)

        def bad(comm):
            yield comm.wait(comm.isend(5, 8))

        engine.spawn(0, bad)
        engine.spawn(1, lambda comm: None)
        with pytest.raises(ValueError, match="destination rank"):
            engine.run()

    def test_too_many_ranks_rejected(self, machine):
        with pytest.raises(ValueError, match="exceeds machine capacity"):
            Engine(n_ranks=machine.spec.n_ranks + 1, machine=machine)

    def test_cross_rank_wait_rejected(self, machine):
        engine = make_engine(machine)
        stash = {}

        def a(comm):
            stash["req"] = comm.irecv(1, tag=0)
            yield comm.compute(1.0)

        def b(comm):
            yield comm.wait(stash["req"])  # waiting on rank 0's request

        engine.spawn(0, a)
        engine.spawn(1, b)
        with pytest.raises(ValueError, match="owned by rank"):
            engine.run()


class TestDeterminism:
    def test_identical_runs(self, machine):
        def build_and_run():
            engine = make_engine(machine)

            def prog(comm):
                reqs = []
                for dst in range(engine.n_ranks):
                    if dst != comm.rank:
                        reqs.append(comm.isend(dst, 256, tag=0, payload=comm.rank))
                        reqs.append(comm.irecv(dst, tag=0))
                yield comm.waitall(reqs)

            for r in range(engine.n_ranks):
                engine.spawn(r, prog)
            engine.run()
            return engine.finish_times()

        assert build_and_run() == build_and_run()
