"""Unit tests for the SimCommunicator API surface."""

import pytest

from repro.cluster import Machine
from repro.sim.engine import Engine


@pytest.fixture
def machine():
    return Machine.single_switch(nodes=1, sockets_per_node=1, ranks_per_socket=4)


class TestIntrospection:
    def test_size_and_rank(self, machine):
        engine = Engine(n_ranks=4, machine=machine)
        assert engine.comms[2].rank == 2
        assert engine.comms[2].size == 4

    def test_now_tracks_local_clock(self, machine):
        engine = Engine(n_ranks=4, machine=machine)
        times = []

        def prog(comm):
            times.append(comm.now)
            yield comm.compute(0.5)
            times.append(comm.now)

        engine.spawn(0, prog)
        for r in range(1, 4):
            engine.spawn(r, lambda comm: None)
        engine.run()
        assert times[0] == 0.0
        assert times[1] == pytest.approx(0.5)


class TestCallCosts:
    def test_posting_charges_overhead(self, machine):
        engine = Engine(n_ranks=4, machine=machine)
        overhead = machine.params.call_overhead

        def prog(comm):
            for _ in range(10):
                comm.irecv(1, tag=99)  # never completed; just posting cost
            assert comm.now == pytest.approx(10 * overhead)
            if False:
                yield  # pragma: no cover

        engine.spawn(0, prog)
        for r in range(1, 4):
            engine.spawn(r, lambda comm: None)
        engine.run()

    def test_charge_memcpy_advances_clock(self, machine):
        engine = Engine(n_ranks=4, machine=machine)

        def prog(comm):
            comm.charge_memcpy(machine.params.memcpy_beta)  # exactly 1 second
            assert comm.now == pytest.approx(1.0)
            if False:
                yield  # pragma: no cover

        engine.spawn(0, prog)
        for r in range(1, 4):
            engine.spawn(r, lambda comm: None)
        engine.run()

    def test_memcpy_condition(self, machine):
        engine = Engine(n_ranks=4, machine=machine)

        def prog(comm):
            yield comm.memcpy(machine.params.memcpy_beta // 2)
            assert comm.now == pytest.approx(0.5)

        engine.spawn(0, prog)
        for r in range(1, 4):
            engine.spawn(r, lambda comm: None)
        engine.run()


class TestValidation:
    def test_negative_send_rejected(self, machine):
        engine = Engine(n_ranks=4, machine=machine)

        def prog(comm):
            comm.isend(1, -5)
            if False:
                yield  # pragma: no cover

        engine.spawn(0, prog)
        with pytest.raises(ValueError, match="nbytes"):
            engine.run()

    def test_bad_source_rejected(self, machine):
        engine = Engine(n_ranks=4, machine=machine)

        def prog(comm):
            comm.irecv(17)
            if False:
                yield  # pragma: no cover

        engine.spawn(0, prog)
        with pytest.raises(ValueError, match="source rank"):
            engine.run()

    def test_negative_memcpy_rejected(self, machine):
        engine = Engine(n_ranks=4, machine=machine)
        comm = engine.comms[0]
        with pytest.raises(ValueError):
            comm.memcpy(-1)
        with pytest.raises(ValueError):
            comm.charge_memcpy(-1)
