"""Unit tests for timeline analysis and Chrome-trace export."""

import json

import pytest

from repro.collectives import RunOptions, run_allgather
from repro.sim.timeline import (
    chrome_trace,
    phase_breakdown,
    phase_name,
    save_chrome_trace,
)


@pytest.fixture
def dh_run(small_machine, small_topology):
    return run_allgather("distance_halving", small_topology, small_machine, 512, options=RunOptions(trace=True))


class TestPhaseName:
    def test_buckets(self):
        assert phase_name(0) == "step 0"
        assert phase_name(3) == "step 3"
        assert phase_name(1 << 20) == "final"
        assert phase_name(500) == "tag 500"


class TestPhaseBreakdown:
    def test_dh_phases_present(self, dh_run):
        breakdown = phase_breakdown(dh_run.trace.records)
        assert "final" in breakdown
        assert "step 0" in breakdown
        # 32 ranks / L=4 => 3 halving levels.
        assert {"step 0", "step 1", "step 2"} <= set(breakdown)

    def test_totals_match_trace(self, dh_run):
        breakdown = phase_breakdown(dh_run.trace.records)
        assert sum(b["messages"] for b in breakdown.values()) == len(dh_run.trace.records)
        assert sum(b["bytes"] for b in breakdown.values()) == dh_run.bytes_sent

    def test_spans_ordered_and_bounded(self, dh_run):
        breakdown = phase_breakdown(dh_run.trace.records)
        for b in breakdown.values():
            assert 0 <= b["start"] <= b["end"] <= dh_run.simulated_time
            assert b["span"] == pytest.approx(b["end"] - b["start"])
        # Halving steps begin in order.
        steps = [breakdown[f"step {t}"]["start"] for t in range(3)]
        assert steps == sorted(steps)

    def test_empty_records(self):
        assert phase_breakdown([]) == {}


class TestChromeTrace:
    def test_structure(self, dh_run):
        trace = chrome_trace(dh_run.trace.records, dh_run.finish_times)
        events = trace["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        flows_s = [e for e in events if e["ph"] == "s"]
        flows_f = [e for e in events if e["ph"] == "f"]
        finishes = [e for e in events if e["ph"] == "i"]
        assert len(slices) == len(dh_run.trace.records)
        assert len(flows_s) == len(flows_f) == len(slices)
        assert len(finishes) == len(dh_run.finish_times)

    def test_flow_pairing(self, dh_run):
        trace = chrome_trace(dh_run.trace.records)
        by_id = {}
        for e in trace["traceEvents"]:
            if e["ph"] in ("s", "f"):
                by_id.setdefault(e["id"], []).append(e)
        for pair in by_id.values():
            assert len(pair) == 2
            start = next(e for e in pair if e["ph"] == "s")
            finish = next(e for e in pair if e["ph"] == "f")
            assert finish["ts"] >= start["ts"]  # arrival after injection

    def test_no_flows_option(self, dh_run):
        trace = chrome_trace(dh_run.trace.records, flows=False)
        assert all(e["ph"] == "X" for e in trace["traceEvents"])

    def test_slices_have_positive_duration(self, dh_run):
        trace = chrome_trace(dh_run.trace.records)
        assert all(e["dur"] > 0 for e in trace["traceEvents"] if e["ph"] == "X")

    def test_save_roundtrip(self, dh_run, tmp_path):
        path = save_chrome_trace(tmp_path / "trace.json", dh_run.trace.records,
                                 dh_run.finish_times)
        data = json.loads(path.read_text())
        assert "traceEvents" in data
        assert data["otherData"]["source"].startswith("repro")
