"""Unit + property tests for serialized resources."""

from hypothesis import given, strategies as st

from repro.sim.resources import ResourcePool, SerialResource


class TestSerialResource:
    def test_first_claim_starts_at_earliest(self):
        res = SerialResource("port")
        assert res.claim(5.0, 2.0) == (5.0, 7.0)

    def test_back_to_back_claims_serialize(self):
        res = SerialResource("port")
        res.claim(0.0, 3.0)
        start, end = res.claim(1.0, 2.0)  # wants 1.0 but resource busy to 3.0
        assert (start, end) == (3.0, 5.0)

    def test_gap_preserved(self):
        res = SerialResource("port")
        res.claim(0.0, 1.0)
        start, end = res.claim(10.0, 1.0)
        assert (start, end) == (10.0, 11.0)

    def test_peek_does_not_claim(self):
        res = SerialResource("port")
        res.claim(0.0, 5.0)
        assert res.peek(1.0) == 5.0
        assert res.next_free == 5.0

    def test_busy_time_accumulates(self):
        res = SerialResource("port")
        res.claim(0.0, 2.0)
        res.claim(0.0, 3.0)
        assert res.busy_time == 5.0
        assert res.claims == 2

    def test_negative_duration_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            SerialResource("port").claim(0.0, -1.0)

    @given(st.lists(st.tuples(st.floats(0, 1e3), st.floats(0, 1e2)), min_size=1, max_size=30))
    def test_claims_never_overlap(self, requests):
        res = SerialResource("r")
        intervals = [res.claim(earliest, duration) for earliest, duration in requests]
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1  # strictly serialized in claim order
            assert e2 >= s2


class TestResourcePool:
    def test_lazy_materialization(self):
        pool = ResourcePool()
        assert len(pool) == 0
        a = pool.get("x")
        assert pool.get("x") is a
        assert len(pool) == 1

    def test_utilization(self):
        pool = ResourcePool()
        pool.get("a").claim(0.0, 2.0)
        pool.get("b")
        util = pool.utilization(horizon=4.0)
        assert util["a"] == 0.5
        assert util["b"] == 0.0

    def test_utilization_zero_horizon(self):
        pool = ResourcePool()
        pool.get("a").claim(0.0, 2.0)
        assert pool.utilization(0.0)["a"] == 0.0
