"""Fail-stop crash semantics: engine kills, detection, ULFM recovery.

Covers the crash layer bottom-up: event-granularity kills and in-flight
drop accounting in the :class:`~repro.sim.engine.Engine`, structured
detection via :class:`~repro.sim.faults.FailureDetector` (versus a plain
``DeadlockError`` without one), and the three ``RunOptions.on_failure``
recovery modes for every allgather algorithm.
"""

import math

import pytest

from repro.cluster import Machine
from repro.collectives.runner import RunOptions, run_allgather, verify_allgather
from repro.sim.engine import DeadlockError, Engine, RankFailedError
from repro.sim.faults import FailureDetector, FaultPlan, RankCrash
from repro.topology import erdos_renyi_topology

ALGORITHMS = ("naive", "common_neighbor", "distance_halving", "bruck")


def small_machine():
    return Machine.single_switch(nodes=2, sockets_per_node=2, ranks_per_socket=2)


def small_topology(n=8, density=0.5, seed=7):
    return erdos_renyi_topology(n, density, seed=seed)


def ping_then_reply(comm):
    """Rank 0 pings rank 1 and waits for the reply; rank 1 echoes."""
    if comm.rank == 0:
        yield comm.wait(comm.isend(1, 64, tag=0))
        yield comm.wait(comm.irecv(1, tag=1))
    elif comm.rank == 1:
        yield comm.wait(comm.irecv(0, tag=0))
        yield comm.wait(comm.isend(0, 64, tag=1))


class TestEngineKill:
    def test_detector_raises_structured_failure(self):
        plan = FaultPlan(crashes=(RankCrash(rank=1, time=0.0),))
        engine = Engine(n_ranks=4, machine=small_machine(), faults=plan)
        engine.spawn_all(lambda rank: ping_then_reply)
        with pytest.raises(RankFailedError) as excinfo:
            engine.run()
        err = excinfo.value
        assert err.failed_ranks == (1,)
        detector = plan.detector
        assert err.detection_time >= (
            detector.heartbeat_interval + detector.suspicion_timeout
        )

    def test_detection_lag_charged_in_sim_time(self):
        # The engine clock is advanced to the detection instant before the
        # raise: detection is a simulated cost, not a bookkeeping footnote.
        detector = FailureDetector(heartbeat_interval=1e-3, suspicion_timeout=2e-3)
        plan = FaultPlan(crashes=(RankCrash(rank=1, time=0.0),), detector=detector)
        engine = Engine(n_ranks=4, machine=small_machine(), faults=plan)
        engine.spawn_all(lambda rank: ping_then_reply)
        with pytest.raises(RankFailedError) as excinfo:
            engine.run()
        assert excinfo.value.detection_time >= 3e-3

    def test_no_detector_is_a_plain_deadlock(self):
        # A system without failure detection hangs; the simulator models
        # that as the ordinary drained-heap deadlock.
        plan = FaultPlan(crashes=(RankCrash(rank=1, time=0.0),), detector=None)
        engine = Engine(n_ranks=4, machine=small_machine(), faults=plan)
        engine.spawn_all(lambda rank: ping_then_reply)
        with pytest.raises(DeadlockError):
            engine.run()

    def test_in_flight_send_from_dying_rank_is_dropped(self):
        # Rank 1 posts its reply but dies before the bytes land: the send
        # is rewritten to never arrive and counted as crash-dropped.
        plan = FaultPlan(crashes=(RankCrash(rank=1, time=1e-9),), detector=None)
        engine = Engine(n_ranks=4, machine=small_machine(), faults=plan)
        req = engine.post_send(1, 0, 4096, tag=0, payload=None)
        assert req.lost
        assert engine.faults.crash_dropped == 1
        assert engine.messages_lost == 1

    def test_late_crash_is_a_noop(self):
        topology = small_topology()
        machine = small_machine()
        clean = run_allgather("naive", topology, machine, 256)
        late = FaultPlan(crashes=(RankCrash(rank=3, time=10.0),))
        crashed = run_allgather(
            "naive", topology, machine, 256,
            options=RunOptions(fault_plan=late, on_failure="shrink"),
        )
        verify_allgather(topology, crashed)
        assert crashed.simulated_time == clean.simulated_time
        assert crashed.missing_ranks == ()
        assert crashed.recovery is None
        assert crashed.fault_stats["rank_crashes"] == 0


class TestFinishedSenderDrop:
    """Fuzzer regression (seed=2, it=14): a sender whose program finishes
    *before* its crash time, but whose in-flight zero-byte send arrives
    *after* it, is crash-dropped without ever being killed by an event.
    The starved receiver's stall must still surface as structured
    detection — it used to fall through to a bare DeadlockError because
    ``crashed_ranks`` stayed empty."""

    def scenario(self):
        from repro.exec.spec import MachineSpec, TopologySpec

        topology = TopologySpec("cartesian", 4, dims=1).build()
        machine = MachineSpec(nodes=4, sockets_per_node=1,
                              ranks_per_socket=1).build()
        plan = FaultPlan(
            crashes=(RankCrash(rank=3, time=4.696145690558749e-06),),
            seed=1179901253,
        )
        return topology, machine, plan

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("mode", ["shrink", "degrade"])
    def test_detection_and_recovery(self, algorithm, mode):
        topology, machine, plan = self.scenario()
        run = run_allgather(
            algorithm, topology, machine, 0,
            options=RunOptions(fault_plan=plan, on_failure=mode,
                               fallback="naive"),
        )
        verify_allgather(topology, run, allow_missing=run.missing_ranks)
        assert run.missing_ranks == (3,)
        assert run.recovery["mode"] == mode

    def test_abort_names_the_finished_sender(self):
        topology, machine, plan = self.scenario()
        with pytest.raises(RankFailedError) as excinfo:
            run_allgather(
                "common_neighbor", topology, machine, 0,
                options=RunOptions(fault_plan=plan, on_failure="abort"),
            )
        assert excinfo.value.failed_ranks == (3,)


class TestRecoveryModes:
    #: Crash mid-run: the 8-rank/256B makespan is ~8 us, so 2 us kills the
    #: victims while blocks are still outstanding.
    PLAN = FaultPlan(
        crashes=(RankCrash(rank=2, time=2e-6), RankCrash(rank=5, time=2e-6)),
    )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_abort_reraises(self, algorithm):
        with pytest.raises(RankFailedError):
            run_allgather(
                algorithm, small_topology(), small_machine(), 256,
                options=RunOptions(fault_plan=self.PLAN, on_failure="abort"),
            )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("mode", ["shrink", "degrade"])
    def test_recovery_completes_and_verifies(self, algorithm, mode):
        topology = small_topology()
        run = run_allgather(
            algorithm, topology, small_machine(), 256,
            options=RunOptions(fault_plan=self.PLAN, on_failure=mode),
        )
        verify_allgather(topology, run, allow_missing=run.missing_ranks)
        assert math.isfinite(run.simulated_time)
        assert set(run.missing_ranks) <= {2, 5}
        assert run.missing_ranks  # 2 us is mid-run for every algorithm
        assert run.recovery is not None
        assert run.recovery["mode"] == mode
        assert run.recovery["rounds"] >= 1
        assert run.recovery["time_to_recover"] > 0
        # The run keeps its requested identity; what actually finished the
        # job is recorded separately.
        assert run.algorithm == algorithm
        if mode == "degrade":
            assert run.recovery["recovered_with"] == "naive"
            assert run.recovery["replan_messages"] == 0

    def test_shrink_pays_replanning_degrade_does_not(self):
        topology = small_topology()
        runs = {
            mode: run_allgather(
                "distance_halving", topology, small_machine(), 256,
                options=RunOptions(fault_plan=self.PLAN, on_failure=mode),
            )
            for mode in ("shrink", "degrade")
        }
        assert runs["shrink"].recovery["replan_messages"] > 0
        assert runs["degrade"].recovery["replan_messages"] == 0
        # Both lose only planned victims; survivors agree after masking the
        # union of missing sources (recovery timing differs, so the exact
        # missing sets may too).
        ignore = set(runs["shrink"].missing_ranks) | set(runs["degrade"].missing_ranks)
        assert ignore <= {2, 5}
        for rank in range(topology.n):
            if rank in ignore:
                continue
            a = {s: p for s, p in runs["shrink"].results[rank].items()
                 if s not in ignore}
            b = {s: p for s, p in runs["degrade"].results[rank].items()
                 if s not in ignore}
            assert a == b

    def test_crash_runs_are_deterministic(self):
        options = RunOptions(fault_plan=self.PLAN, on_failure="shrink")
        first = run_allgather(
            "common_neighbor", small_topology(), small_machine(), 256,
            options=options,
        )
        second = run_allgather(
            "common_neighbor", small_topology(), small_machine(), 256,
            options=options,
        )
        assert first.simulated_time == second.simulated_time
        assert first.missing_ranks == second.missing_ranks
        assert first.fault_stats == second.fault_stats
        assert first.recovery == second.recovery
