"""Unit tests for the fabric's message-timing model."""

import pytest

from repro.cluster import Machine
from repro.cluster.spec import LinkClass
from repro.sim.fabric import Fabric


@pytest.fixture
def machine():
    return Machine.niagara_like(nodes=8, ranks_per_socket=2, nodes_per_group=2)


class TestUncontended:
    def test_self_message_is_memcpy(self, machine):
        fabric = Fabric(machine)
        t = fabric.transmit(0, 0, 6000, post_time=1.0)
        assert t.link_class is LinkClass.SELF
        assert t.arrival == pytest.approx(1.0 + 6000 / machine.params.memcpy_beta)

    def test_single_message_is_hockney(self, machine):
        fabric = Fabric(machine)
        cost = machine.params.cost(LinkClass.INTRA_SOCKET)
        t = fabric.transmit(0, 1, 1024, post_time=0.0)
        assert t.link_class is LinkClass.INTRA_SOCKET
        assert t.arrival == pytest.approx(cost.alpha + 1024 / cost.beta)

    def test_inter_group_pays_hops(self, machine):
        fabric = Fabric(machine)
        rpn = machine.spec.ranks_per_node
        near = fabric.transmit(0, rpn, 64, post_time=0.0).arrival
        fabric2 = Fabric(machine)
        far = fabric2.transmit(0, 2 * rpn, 64, post_time=0.0).arrival
        assert far > near

    def test_send_complete_before_arrival(self, machine):
        fabric = Fabric(machine)
        t = fabric.transmit(0, machine.spec.ranks_per_node, 1 << 20, post_time=0.0)
        assert t.send_complete <= t.arrival

    def test_zero_bytes_costs_alpha(self, machine):
        fabric = Fabric(machine)
        t = fabric.transmit(0, 1, 0, post_time=0.0)
        assert t.arrival == pytest.approx(machine.params.cost(LinkClass.INTRA_SOCKET).alpha)


class TestContention:
    def test_sender_port_serializes_full_hockney(self, machine):
        """The paper's single-port model: each message occupies the port
        for alpha + m/beta, so k messages take ~k times one message."""
        fabric = Fabric(machine)
        cost = machine.params.cost(LinkClass.INTRA_SOCKET)
        one = cost.alpha + 1024 / cost.beta
        last = None
        for _ in range(10):
            last = fabric.transmit(0, 1, 1024, post_time=0.0)
        assert last.arrival == pytest.approx(10 * one, rel=0.05)

    def test_receiver_port_serializes(self, machine):
        fabric = Fabric(machine)
        arrivals = [fabric.transmit(src, 0, 1024, post_time=0.0).arrival for src in (1, 1, 1)]
        assert arrivals[0] < arrivals[1] < arrivals[2]

    def test_nic_shared_within_node(self, machine):
        """Two different senders on one node contend for the node NIC."""
        fabric = Fabric(machine)
        rpn = machine.spec.ranks_per_node
        a1 = fabric.transmit(0, rpn, 1 << 20, post_time=0.0).arrival
        a2 = fabric.transmit(1, rpn + 1, 1 << 20, post_time=0.0).arrival
        # Second message (distinct ports, same NIC) lands later.
        assert a2 > a1

    def test_global_link_contention(self, machine):
        """Cross-group traffic from different nodes shares the global link."""
        rpn = machine.spec.ranks_per_node
        fabric = Fabric(machine)
        solo = fabric.transmit(0, 2 * rpn, 1 << 22, post_time=0.0).arrival

        fabric = Fabric(machine)
        sends = []
        for i in range(4):  # four node-pairs across the same group pair
            src = i * rpn  # ranks on nodes 0..3 hmm nodes 0,1 are group 0
            sends.append(src)
        # Same group pair: nodes 0,1 (group 0) -> nodes 4,5 (group 2)? Use
        # node 0 and node 1 senders to nodes in group 1 (nodes 2, 3).
        a1 = fabric.transmit(0, 2 * rpn, 1 << 22, post_time=0.0).arrival
        a2 = fabric.transmit(rpn, 3 * rpn, 1 << 22, post_time=0.0).arrival
        contended = max(a1, a2)
        # If both messages hash to the same global-link lane they serialize;
        # with links_per_pair=2 they may split, so just require no speedup.
        assert contended >= solo

    def test_intra_node_does_not_touch_nic(self, machine):
        fabric = Fabric(machine)
        fabric.transmit(0, 1, 1 << 20, post_time=0.0)
        util = fabric.utilization(horizon=1.0)
        assert not util["nic_tx"] and not util["nic_rx"]


class TestUtilization:
    def test_reports_all_families(self, machine):
        fabric = Fabric(machine)
        fabric.transmit(0, 2 * machine.spec.ranks_per_node, 4096, post_time=0.0)
        util = fabric.utilization(horizon=1.0)
        assert set(util) == {"send_ports", "recv_ports", "nic_tx", "nic_rx", "links"}
        assert util["send_ports"] and util["links"]

    def test_cut_through_extension_counts_as_busy_time(self, machine):
        """Regression: a stage outrun by upstream streaming stays occupied
        until the pipeline drains past it.  The extension used to push
        ``next_free`` without crediting ``busy_time``, so NIC/link
        utilization under-reported whenever the endpoint port (higher
        alpha) was the slow stage."""
        params = machine.params
        rpn = machine.spec.ranks_per_node
        src, dst = 0, rpn  # inter-node, same group: port -> NICs -> port
        cost = params.cost(LinkClass.INTER_NODE)
        nbytes = 1 << 20
        dur = nbytes / cost.beta
        port_dur = cost.alpha + dur
        nic_dur = params.nic_message_overhead + dur
        # The scenario only exercises the bug if the NIC stage is faster
        # than the upstream port stage.
        assert nic_dur < port_dur

        fabric = Fabric(machine)
        fabric.transmit(src, dst, nbytes, post_time=0.0)
        nic = fabric._nic_tx.get(machine.spec.node_of(src))
        # Single message from t=0: the TX NIC starts with the send port and
        # cannot release before the port stops streaming into it.
        assert nic.busy_time == pytest.approx(port_dur)
        assert nic.next_free == pytest.approx(nic.busy_time)
        util = fabric.utilization(horizon=port_dur)
        (frac,) = util["nic_tx"].values()
        assert frac == pytest.approx(1.0)
