"""Zero-valued fault plans are a strict no-op.

A :class:`FaultPlan` whose specs all carry unit factors / zero
probabilities / zero delays routes every message through the fault-aware
transmit path (``Fabric._transmit_faulty`` + ``Fabric._claim``) — so this
grid also pins that path's arithmetic to the inlined fast path, bit for
bit, against the archived seed-engine golden times.
"""

import json
from pathlib import Path

import pytest

from repro.collectives.base import get_algorithm
from repro.collectives.runner import RunOptions, run_allgather
from repro.sim.faults import FaultPlan, LinkFault, MessageLoss, RetryPolicy, Straggler
from repro.topology import erdos_renyi_topology

from tests.sim.test_golden_times import GOLDEN_PATH, MACHINES

#: Explicitly zero-valued specs — not just an empty plan — so the perturb /
#: drop / straggler code paths are all exercised and all must pass through.
ZERO_PLAN = FaultPlan(
    link_faults=(
        LinkFault(alpha_factor=1.0, beta_factor=1.0),
        LinkFault(link_class=None, alpha_factor=1.0, beta_factor=1.0, end=1e9),
    ),
    stragglers=(Straggler(rank=0, compute_factor=1.0, startup_delay=0.0),),
    losses=(MessageLoss(probability=0.0),),
    retry=RetryPolicy(),
    seed=1234,
)


def _rows():
    rows = json.loads(Path(GOLDEN_PATH).read_text())["rows"]
    return [
        pytest.param(row, id=f'{row["machine"]}-{row["algorithm"]}-{row["msg_bytes"]}')
        for row in rows
    ]


def test_zero_plan_is_marked_noop():
    assert ZERO_PLAN.is_noop()


@pytest.mark.parametrize("row", _rows())
def test_zero_plan_matches_golden_grid_exactly(row):
    factory, (n, density, seed) = MACHINES[row["machine"]]
    machine = factory()
    topology = erdos_renyi_topology(n, density, seed=seed)
    algorithm = get_algorithm(row["algorithm"], **row["kwargs"])
    run = run_allgather(
        algorithm, topology, machine, row["msg_bytes"],
        options=RunOptions(fault_plan=ZERO_PLAN),
    )
    assert run.simulated_time == row["simulated_time"]
    assert run.messages_sent == row["messages_sent"]
    assert run.bytes_sent == row["bytes_sent"]
    assert run.fault_stats == {"drops": 0, "retransmissions": 0, "messages_lost": 0}
