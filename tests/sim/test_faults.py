"""Unit and integration tests for the fault-injection layer."""

import math

import pytest

from repro.cluster import Machine
from repro.collectives.runner import RunOptions, run_allgather, verify_allgather
from repro.sim.engine import (
    DeadlockError,
    Engine,
    RetriesExhaustedError,
    SimTimeoutError,
)
from repro.sim.faults import (
    CRASH_PROFILE_MODES,
    FaultInjector,
    FaultPlan,
    LinkFault,
    MessageLoss,
    RetryPolicy,
    Straggler,
    get_profile,
    resilience_profiles,
)
from repro.cluster.spec import LinkClass
from repro.topology import erdos_renyi_topology


def small_machine():
    return Machine.single_switch(nodes=2, sockets_per_node=2, ranks_per_socket=2)


def small_topology(n=8, density=0.5, seed=7):
    return erdos_renyi_topology(n, density, seed=seed)


class TestSpecValidation:
    def test_link_fault_rejects_bad_factors(self):
        with pytest.raises(ValueError):
            LinkFault(alpha_factor=0.0)
        with pytest.raises(ValueError):
            LinkFault(beta_factor=-1.0)

    def test_window_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            LinkFault(start=2.0, end=1.0)
        with pytest.raises(ValueError):
            MessageLoss(probability=0.1, start=5.0, end=0.0)

    def test_loss_probability_range(self):
        with pytest.raises(ValueError):
            MessageLoss(probability=1.5)
        with pytest.raises(ValueError):
            MessageLoss(probability=-0.1)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_straggler_validation(self):
        with pytest.raises(ValueError):
            Straggler(rank=-1)
        with pytest.raises(ValueError):
            Straggler(rank=0, compute_factor=0.0)

    def test_duplicate_straggler_rank_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(stragglers=(Straggler(rank=1), Straggler(rank=1)))

    def test_is_noop(self):
        assert FaultPlan().is_noop()
        assert FaultPlan(
            link_faults=(LinkFault(),),
            stragglers=(Straggler(rank=0),),
            losses=(MessageLoss(probability=0.0),),
        ).is_noop()
        assert not FaultPlan(losses=(MessageLoss(probability=0.1),)).is_noop()
        assert not FaultPlan(link_faults=(LinkFault(alpha_factor=2.0),)).is_noop()


class TestSetupSurvivability:
    def test_no_loss_always_survivable(self):
        assert FaultPlan().setup_survivable(10**9)

    def test_zero_messages_always_survivable(self):
        plan = FaultPlan(losses=(MessageLoss(probability=1.0),))
        assert plan.setup_survivable(0)

    def test_heavy_loss_small_budget_not_survivable(self):
        plan = FaultPlan(
            losses=(MessageLoss(probability=0.9),),
            retry=RetryPolicy(max_retries=1),
        )
        # expected permanent failures = 100 * 0.81 >> 1
        assert not plan.setup_survivable(100)

    def test_light_loss_big_budget_survivable(self):
        plan = FaultPlan(
            losses=(MessageLoss(probability=0.05),),
            retry=RetryPolicy(max_retries=6),
        )
        assert plan.setup_survivable(10_000)

    def test_windows_do_not_shield_setup(self):
        # Setup runs before t=0: a loss spec with an empty runtime window
        # still counts at its peak probability.
        plan = FaultPlan(
            losses=(MessageLoss(probability=0.9, start=0.0, end=0.0),),
            retry=RetryPolicy(max_retries=1),
        )
        assert not plan.setup_survivable(100)


class TestInjector:
    def test_perturb_applies_only_inside_window(self):
        plan = FaultPlan(
            link_faults=(
                LinkFault(link_class=LinkClass.INTER_NODE, alpha_factor=3.0,
                          beta_factor=0.5, start=1.0, end=2.0),
            )
        )
        inj = FaultInjector(plan)
        base = (1e-6, 1e-7, 1e-9, 2e-9)
        # Outside the window / wrong class: bit-identical passthrough.
        assert inj.perturb(LinkClass.INTER_NODE, 0.5, *base) == base
        assert inj.perturb(LinkClass.INTRA_SOCKET, 1.5, *base) == base
        # Inside: alpha and hop scale up, inverse betas scale up (slower).
        a, h, ib, lib = inj.perturb(LinkClass.INTER_NODE, 1.5, *base)
        assert a == base[0] * 3.0 and h == base[1] * 3.0
        assert ib == base[2] / 0.5 and lib == base[3] / 0.5

    def test_zero_probability_never_draws(self):
        inj = FaultInjector(FaultPlan(losses=(MessageLoss(probability=0.0),)))
        state = inj.rng.bit_generator.state
        assert not inj.should_drop(LinkClass.INTER_NODE, 0.0)
        assert inj.rng.bit_generator.state == state  # RNG untouched

    def test_certain_loss_always_drops(self):
        inj = FaultInjector(FaultPlan(losses=(MessageLoss(probability=1.0),)))
        assert all(inj.should_drop(LinkClass.INTER_NODE, 0.0) for _ in range(16))

    def test_straggler_lookups(self):
        plan = FaultPlan(stragglers=(Straggler(rank=2, compute_factor=4.0,
                                               startup_delay=1e-3),))
        inj = FaultInjector(plan)
        assert inj.compute_factor(2) == 4.0
        assert inj.compute_factor(0) == 1.0
        assert inj.startup_delay(2) == 1e-3
        assert inj.startup_delay(1) == 0.0
        assert inj.has_stragglers


class TestRetryAndLoss:
    def test_windowed_certain_loss_forces_exactly_one_retry(self):
        """p=1 inside an early window, 0 after: the first attempt always
        drops, the retransmission (pushed past the window by the ack
        timeout) always lands — RNG-independent retry accounting."""
        machine = small_machine()
        topology = small_topology()
        clean = run_allgather("naive", topology, machine, 256)
        window_end = clean.simulated_time * 0.1
        plan = FaultPlan(
            losses=(MessageLoss(probability=1.0, end=window_end),),
            retry=RetryPolicy(timeout=window_end * 2, backoff=2.0, max_retries=3),
        )
        run = run_allgather("naive", topology, machine, 256,
                            options=RunOptions(fault_plan=plan))
        verify_allgather(topology, run)
        stats = run.fault_stats
        assert stats["messages_lost"] == 0
        assert stats["drops"] == stats["retransmissions"]
        assert stats["drops"] > 0
        # Retransmission + backoff must cost simulated time.
        assert run.simulated_time > clean.simulated_time

    def test_exhausted_retries_raise_structured_error(self):
        # Used to surface much later as an anonymous DeadlockError once the
        # starved receiver drained the heap; now the failure is reported at
        # its source with the transfer named.
        machine = small_machine()
        topology = small_topology()
        plan = FaultPlan(
            losses=(MessageLoss(probability=1.0),),
            retry=RetryPolicy(timeout=1e-5, max_retries=2),
        )
        with pytest.raises(RetriesExhaustedError, match="transmission attempts"):
            run_allgather("naive", topology, machine, 256,
                          options=RunOptions(fault_plan=plan))

    def test_lost_send_request_flags(self):
        machine = small_machine()
        engine = Engine(
            n_ranks=4,
            machine=machine,
            faults=FaultPlan(
                losses=(MessageLoss(probability=1.0),),
                retry=RetryPolicy(timeout=1e-5, max_retries=1),
            ),
        )
        with pytest.raises(RetriesExhaustedError) as excinfo:
            engine.post_send(0, 1, 64, tag=0, payload=None)
        err = excinfo.value
        assert err.rank == 0
        assert err.peer == 1
        assert err.attempts == 2  # first try + one retransmission
        assert err.last_timeout > 0
        # The loss is still fully accounted before the raise.
        assert engine.messages_lost == 1
        assert engine.faults.messages_lost == 1

    def test_retransmission_cost_charged_to_resources(self):
        machine = small_machine()
        plain = Engine(n_ranks=4, machine=machine)
        t_plain = plain.post_send(0, 3, 4096, tag=0, payload=None).completion_time
        lossy = Engine(
            n_ranks=4,
            machine=machine,
            faults=FaultPlan(
                losses=(MessageLoss(probability=1.0, end=1e-7),),
                retry=RetryPolicy(timeout=1e-6, max_retries=3),
            ),
        )
        req = lossy.post_send(0, 3, 4096, tag=0, payload=None)
        assert req.attempts == 2
        assert not req.lost
        assert req.completion_time > t_plain  # retry + backoff in sim time


class TestStragglers:
    def test_startup_delay_shifts_finish_time(self):
        machine = small_machine()
        delay = 5e-4
        plan = FaultPlan(stragglers=(Straggler(rank=1, startup_delay=delay),))
        engine = Engine(n_ranks=4, machine=machine, faults=plan)

        def program(comm):
            yield comm.compute(1e-6)

        engine.spawn_all(lambda rank: program)
        engine.run()
        assert engine.finish_time(1) >= delay
        assert engine.finish_time(0) < delay

    def test_compute_factor_scales_compute(self):
        machine = small_machine()
        plan = FaultPlan(stragglers=(Straggler(rank=2, compute_factor=10.0),))
        engine = Engine(n_ranks=4, machine=machine, faults=plan)

        def program(comm):
            yield comm.compute(1e-5)

        engine.spawn_all(lambda rank: program)
        engine.run()
        assert engine.finish_time(2) == pytest.approx(10 * engine.finish_time(0))


class TestWatchdog:
    def _spin_program(self, comm):
        while True:
            yield comm.compute(1e-6)

    def test_max_events_raises_sim_timeout(self):
        engine = Engine(n_ranks=2, machine=small_machine(), max_events=50)
        engine.spawn_all(lambda rank: self._spin_program)
        with pytest.raises(SimTimeoutError, match="event budget exceeded"):
            engine.run()
        assert engine.events_processed == 50

    def test_max_sim_time_raises_sim_timeout(self):
        engine = Engine(n_ranks=2, machine=small_machine(), max_sim_time=1e-4)
        engine.spawn_all(lambda rank: self._spin_program)
        with pytest.raises(SimTimeoutError, match="simulated-time budget"):
            engine.run()

    def test_timeout_carries_blocked_diagnostics(self):
        engine = Engine(n_ranks=2, machine=small_machine(), max_events=5)

        def waiter(comm):
            yield comm.wait(comm.irecv(src=(comm.rank + 1) % 2))

        def spinner(comm):
            while True:
                yield comm.compute(1e-6)

        engine.spawn(0, waiter)
        engine.spawn(1, spinner)
        with pytest.raises(SimTimeoutError, match=r"rank 0 \(waitall\(1 pending\)\)"):
            engine.run()

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            Engine(n_ranks=2, machine=small_machine(), max_sim_time=0.0)
        with pytest.raises(ValueError):
            Engine(n_ranks=2, machine=small_machine(), max_events=0)

    def test_generous_budgets_do_not_perturb_results(self):
        machine = small_machine()
        topology = small_topology()
        clean = run_allgather("distance_halving", topology, machine, 512)
        guarded = run_allgather(
            "distance_halving", topology, machine, 512,
            options=RunOptions(max_sim_time=10.0, max_events=10**9),
        )
        assert guarded.simulated_time == clean.simulated_time


class TestFallback:
    def test_dh_falls_back_to_naive_when_setup_infeasible(self):
        machine = small_machine()
        topology = small_topology()
        plan = FaultPlan(
            losses=(MessageLoss(probability=0.9, start=0.0, end=0.0),),
            retry=RetryPolicy(max_retries=1),
        )
        run = run_allgather(
            "distance_halving", topology, machine, 256,
            options=RunOptions(fault_plan=plan, fallback="naive"),
        )
        verify_allgather(topology, run)
        assert run.fallback_used
        assert run.algorithm == "naive"
        assert run.requested_algorithm == "distance_halving"
        naive = run_allgather("naive", topology, machine, 256)
        assert run.simulated_time == naive.simulated_time

    def test_no_fallback_without_request(self):
        machine = small_machine()
        topology = small_topology()
        plan = FaultPlan(
            losses=(MessageLoss(probability=0.9, start=0.0, end=0.0),),
            retry=RetryPolicy(max_retries=1),
        )
        run = run_allgather("distance_halving", topology, machine, 256,
                            options=RunOptions(fault_plan=plan))
        assert not run.fallback_used
        assert run.algorithm == "distance_halving"

    def test_naive_never_falls_back(self):
        machine = small_machine()
        topology = small_topology()
        plan = FaultPlan(
            losses=(MessageLoss(probability=0.9, start=0.0, end=0.0),),
            retry=RetryPolicy(max_retries=1),
        )
        run = run_allgather("naive", topology, machine, 256,
                            options=RunOptions(fault_plan=plan, fallback="naive"))
        assert not run.fallback_used


class TestProfiles:
    def test_all_profiles_present_and_typed(self):
        profiles = resilience_profiles(64)
        assert set(profiles) == {
            "jitter", "straggler", "lossy", "setup_loss",
            "crash", "crash_recover",
        }
        for plan in profiles.values():
            assert isinstance(plan, FaultPlan)
            assert not plan.is_noop()

    def test_crash_profiles_have_paired_recovery_modes(self):
        profiles = resilience_profiles(16)
        assert set(CRASH_PROFILE_MODES) == {"crash", "crash_recover"}
        assert CRASH_PROFILE_MODES["crash"] == "degrade"
        assert CRASH_PROFILE_MODES["crash_recover"] == "shrink"
        for name in CRASH_PROFILE_MODES:
            plan = profiles[name]
            assert plan.crashes, name
            assert plan.detector is not None, name
            assert all(0 <= c.rank < 16 for c in plan.crashes)

    def test_straggler_ranks_within_communicator(self):
        for n in (3, 8, 64, 257):
            for s in resilience_profiles(n)["straggler"].stragglers:
                assert 0 <= s.rank < n

    def test_get_profile_clean_is_none(self):
        assert get_profile("clean", 16) is None

    def test_get_profile_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown fault profile"):
            get_profile("meteor", 16)

    def test_profiles_complete_and_verify(self):
        machine = small_machine()
        topology = small_topology()
        for name, plan in resilience_profiles(topology.n, seed=5).items():
            # Crash profiles need their paired ULFM recovery mode; survivors
            # are verified against the relaxed post-condition.
            options = RunOptions(
                fault_plan=plan, fallback="naive",
                on_failure=CRASH_PROFILE_MODES.get(name, "abort"),
            )
            run = run_allgather("distance_halving", topology, machine, 512,
                                options=options)
            verify_allgather(topology, run, allow_missing=run.missing_ranks)
            assert math.isfinite(run.simulated_time), name
