"""Unit tests for adaptive (UGAL-like) vs oblivious lane routing."""

import dataclasses

import pytest

from repro.cluster import DragonflyPlus, FatTree, Machine, Torus
from repro.cluster.hockney import NIAGARA_LIKE
from repro.cluster.spec import ClusterSpec
from repro.sim.fabric import Fabric


def dragonfly_machine(adaptive: bool, links_per_pair: int = 2) -> Machine:
    params = dataclasses.replace(NIAGARA_LIKE, adaptive_routing=adaptive)
    return Machine(
        spec=ClusterSpec(nodes=8, sockets_per_node=2, ranks_per_socket=2),
        network=DragonflyPlus(nodes_per_group=2, links_per_pair=links_per_pair),
        params=params,
    )


class TestLinkChoices:
    def test_dragonfly_offers_all_lanes(self):
        net = DragonflyPlus(nodes_per_group=2, links_per_pair=3)
        (group,) = net.link_choices(0, 4)
        assert len(group) == 3
        assert {k[3] for k in group} == {0, 1, 2}

    def test_dragonfly_same_group_no_choices(self):
        net = DragonflyPlus(nodes_per_group=2)
        assert net.link_choices(0, 1) == ()

    def test_fat_tree_two_groups(self):
        net = FatTree(nodes_per_leaf=4, taper=0.5)
        choices = net.link_choices(0, 5)
        assert len(choices) == 2
        assert all(len(group) == net.uplinks_per_leaf for group in choices)

    def test_torus_bisection_lanes(self):
        net = Torus(dims=(4, 2), bisection_ways=3)
        (group,) = net.link_choices(0, 4)
        assert len(group) == 3

    def test_default_singleton_groups(self):
        """Networks without an override wrap oblivious keys as singletons."""
        net = FatTree(nodes_per_leaf=2, taper=1.0)
        keys = net.shared_link_keys(0, 3)
        # base-class behaviour accessible through any NetworkTopology:
        from repro.cluster.network import NetworkTopology

        groups = NetworkTopology.link_choices(net, 0, 3)
        assert groups == tuple((k,) for k in keys)


class TestAdaptiveRouting:
    def test_adaptive_spreads_load(self):
        """Two concurrent cross-group transfers use different lanes under
        adaptive routing, so the second is not serialized behind the first."""
        rpn = 4  # ranks per node
        big = 1 << 22

        adaptive = Fabric(dragonfly_machine(True))
        a1 = adaptive.transmit(0, 4 * rpn, big, post_time=0.0).arrival
        a2 = adaptive.transmit(1, 4 * rpn + 1, big, post_time=0.0).arrival

        oblivious = Fabric(dragonfly_machine(False))
        o1 = oblivious.transmit(0, 4 * rpn, big, post_time=0.0).arrival
        o2 = oblivious.transmit(1, 4 * rpn + 1, big, post_time=0.0).arrival

        # Same first transfer; the adaptive second should be no slower, and
        # strictly faster if the oblivious hash collided.
        assert a1 == o1
        assert a2 <= o2

    def test_adaptive_uses_both_lanes(self):
        fabric = Fabric(dragonfly_machine(True, links_per_pair=2))
        rpn = 4
        for i in range(4):
            fabric.transmit(i, 4 * rpn + i, 1 << 20, post_time=0.0)
        lanes = {key for key, _ in fabric._links.items()}
        assert len(lanes) == 2

    def test_oblivious_is_hash_deterministic(self):
        f1 = Fabric(dragonfly_machine(False))
        f2 = Fabric(dragonfly_machine(False))
        rpn = 4
        t1 = f1.transmit(0, 4 * rpn, 4096, post_time=0.0).arrival
        t2 = f2.transmit(0, 4 * rpn, 4096, post_time=0.0).arrival
        assert t1 == t2

    def test_adaptive_never_slower_under_burst(self):
        """A burst of cross-group messages completes no later with adaptive
        routing than with oblivious routing."""
        rpn = 4

        def burst(machine):
            fabric = Fabric(machine)
            last = 0.0
            for i in range(16):
                src = i % (2 * rpn)
                dst = 4 * rpn + (i % (2 * rpn))
                last = max(last, fabric.transmit(src, dst, 1 << 20, 0.0).arrival)
            return last

        assert burst(dragonfly_machine(True)) <= burst(dragonfly_machine(False))
