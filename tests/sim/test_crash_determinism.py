"""Determinism audit for crash runs across every execution path.

Golden-grid style: a small grid of crash scenarios (every algorithm under
both recovery modes) must produce bit-identical ``simulated_time``,
``missing_ranks``, ``fault_stats``, and ``recovery`` whether it executes
serially in-process, over a worker pool, or through a cold-then-warm
result cache — crashes and recovery are part of the simulation, so they
inherit the repo-wide serial == parallel == cached contract.
"""

import pytest

from repro.collectives.runner import RunOptions
from repro.exec.cache import ResultCache
from repro.exec.orchestrator import execute
from repro.exec.spec import MachineSpec, RunSpec, TopologySpec
from repro.sim.faults import FailureDetector, FaultPlan, RankCrash

ALGORITHMS = ("naive", "common_neighbor", "distance_halving", "bruck")
MODES = ("shrink", "degrade")


def crash_grid():
    plan = FaultPlan(
        crashes=(RankCrash(rank=1, time=1.5e-6), RankCrash(rank=6, time=3e-6)),
        detector=FailureDetector(),
    )
    topology = TopologySpec("random", 8, density=0.5, seed=7)
    machine = MachineSpec(nodes=2, sockets_per_node=2, ranks_per_socket=2)
    return [
        RunSpec(
            algorithm, topology, machine, 512,
            options=RunOptions(fault_plan=plan, on_failure=mode),
        )
        for algorithm in ALGORITHMS
        for mode in MODES
    ]


def fingerprint(sweep):
    """Everything the determinism contract covers, per spec."""
    return [
        (
            outcome.run.simulated_time,
            tuple(outcome.run.missing_ranks),
            outcome.run.fault_stats,
            outcome.run.recovery,
        )
        for outcome in sweep.outcomes
    ]


class TestCrashDeterminism:
    def test_serial_parallel_cached_identical(self, tmp_path):
        specs = crash_grid()
        serial = execute(specs, workers=1)
        serial.raise_errors()
        golden = fingerprint(serial)
        # Every crash cell actually crashed — a grid of no-ops would make
        # this audit vacuous.
        assert all(missing for _, missing, _, _ in golden)

        parallel = execute(specs, workers=2)
        parallel.raise_errors()
        assert fingerprint(parallel) == golden

        cache = ResultCache(cache_dir=tmp_path / "cache")
        cold = execute(specs, workers=1, cache=cache)
        cold.raise_errors()
        assert fingerprint(cold) == golden
        assert cold.stats["computed"] == len(specs)

        warm = execute(specs, workers=1, cache=cache)
        warm.raise_errors()
        assert fingerprint(warm) == golden
        assert warm.stats["from_cache"] == len(specs)

    def test_identical_seeds_identical_outcomes(self):
        # Two independently constructed (but equal) grids: FaultPlan seeds
        # fully determine the crash behavior, not object identity.
        first = execute(crash_grid(), workers=1)
        second = execute(crash_grid(), workers=1)
        first.raise_errors()
        second.raise_errors()
        assert fingerprint(first) == fingerprint(second)
