"""Unit tests for the trace collector."""

import pytest

from repro.cluster import Machine
from repro.cluster.spec import LinkClass
from repro.sim.engine import Engine
from repro.sim.tracing import TraceCollector


@pytest.fixture
def machine():
    return Machine.single_switch(nodes=2, sockets_per_node=2, ranks_per_socket=2)


def run_all_to_one(machine, trace):
    engine = Engine(n_ranks=8, machine=machine, trace=trace)

    def make_sender(dst):
        def sender(comm):
            yield comm.wait(comm.isend(dst, 128, tag=0, payload=None))

        return sender

    def receiver(comm):
        reqs = [comm.irecv(src, tag=0) for src in range(1, 8)]
        yield comm.waitall(reqs)

    engine.spawn(0, receiver)
    for r in range(1, 8):
        engine.spawn(r, make_sender(0))
    engine.run()
    return engine


class TestTraceCollector:
    def test_counts_and_bytes(self, machine):
        trace = TraceCollector()
        run_all_to_one(machine, trace)
        assert trace.total_messages == 7
        assert trace.total_bytes == 7 * 128
        assert trace.sends_by_rank[1] == 1
        assert trace.recvs_by_rank[0] == 7

    def test_class_breakdown(self, machine):
        trace = TraceCollector()
        run_all_to_one(machine, trace)
        # rank 1 same socket; 2,3 same node other socket; 4..7 other node.
        assert trace.count_by_class[LinkClass.INTRA_SOCKET] == 1
        assert trace.count_by_class[LinkClass.INTER_SOCKET] == 2
        assert trace.count_by_class[LinkClass.INTER_NODE] == 4

    def test_off_socket_messages(self, machine):
        trace = TraceCollector()
        run_all_to_one(machine, trace)
        assert trace.off_socket_messages() == 6

    def test_records_kept_until_cap(self, machine):
        trace = TraceCollector(keep_records=True, max_records=3)
        run_all_to_one(machine, trace)
        assert len(trace.records) == 3  # capped
        assert trace.total_messages == 7  # aggregates still complete

    def test_records_disabled(self, machine):
        trace = TraceCollector(keep_records=False)
        run_all_to_one(machine, trace)
        assert trace.records == []

    def test_summary_shape(self, machine):
        trace = TraceCollector()
        run_all_to_one(machine, trace)
        summary = trace.summary()
        assert summary["INTER_NODE"]["messages"] == 4
        assert summary["INTER_NODE"]["bytes"] == 4 * 128
        assert summary["SELF"]["messages"] == 0

    def test_max_sends_per_rank(self, machine):
        trace = TraceCollector()
        run_all_to_one(machine, trace)
        assert trace.max_sends_per_rank() == 1
        assert TraceCollector().max_sends_per_rank() == 0
