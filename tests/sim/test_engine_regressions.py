"""Regression tests for engine bookkeeping bugs fixed on the hot path.

Covers the unexpected-queue leak (consumed tombstones and empty deques
lingering in the matching tables after every message was matched), barrier
semantics over a partial communicator, the single-rank barrier cost, and
ANY_SOURCE arrival-order matching under the single-table design.
"""

import math

import pytest

from repro.cluster import Machine
from repro.cluster.spec import LinkClass
from repro.sim.communicator import ANY_SOURCE
from repro.sim.engine import DeadlockError, Engine


@pytest.fixture
def machine():
    return Machine.single_switch(nodes=2, sockets_per_node=2, ranks_per_socket=2)


def _matching_state_clean(engine: Engine) -> bool:
    """True when no matching table retains queues after the run drained."""
    return all(not table for table in engine._unexpected) and all(
        not table for table in engine._posted
    ) and all(not table for table in engine._posted_any)


class TestUnexpectedTableLeak:
    """Every matched unexpected message must leave zero residual state.

    The original twin-queue design left consumed tombstones in whichever
    table did not perform the match, and empty deques were never removed
    from either — a per-(src, tag) memory leak across long sweeps.
    """

    def test_directed_matches_leave_no_state(self, machine):
        engine = Engine(n_ranks=2, machine=machine)

        def sender(comm):
            yield comm.waitall([comm.isend(1, 64, tag=t) for t in range(8)])

        def receiver(comm):
            yield comm.compute(1.0)  # everything arrives unexpected
            yield comm.waitall([comm.irecv(0, tag=t) for t in range(8)])

        engine.spawn(0, sender)
        engine.spawn(1, receiver)
        engine.run()
        assert _matching_state_clean(engine)

    def test_any_source_matches_leave_no_state(self, machine):
        engine = Engine(n_ranks=4, machine=machine)

        def make_sender(rank):
            def sender(comm):
                yield comm.waitall(
                    [comm.isend(0, 64, tag=0), comm.isend(0, 64, tag=0)]
                )

            return sender

        def receiver(comm):
            yield comm.compute(1.0)
            yield comm.waitall([comm.irecv(ANY_SOURCE, tag=0) for _ in range(6)])

        engine.spawn(0, receiver)
        for rank in range(1, 4):
            engine.spawn(rank, make_sender(rank))
        engine.run()
        assert _matching_state_clean(engine)

    def test_mixed_any_and_directed_drain_both_views(self, machine):
        """Interleaving ANY and directed receives over the same unexpected
        messages is exactly the pattern that stranded tombstones in the
        old twin queues."""
        engine = Engine(n_ranks=3, machine=machine)
        sources = []

        def make_sender(rank):
            def sender(comm):
                yield comm.waitall(
                    [comm.isend(0, 32, tag=5), comm.isend(0, 32, tag=5)]
                )

            return sender

        def receiver(comm):
            yield comm.compute(1.0)
            first = comm.irecv(ANY_SOURCE, tag=5)
            yield comm.wait(first)
            directed = comm.irecv(2, tag=5)
            yield comm.wait(directed)
            rest = [comm.irecv(ANY_SOURCE, tag=5) for _ in range(2)]
            yield comm.waitall(rest)
            sources.extend(r.source for r in (first, directed, *rest))

        engine.spawn(0, receiver)
        engine.spawn(1, make_sender(1))
        engine.spawn(2, make_sender(2))
        engine.run()
        assert sorted(sources) == [1, 1, 2, 2]
        assert _matching_state_clean(engine)

    def test_any_source_matches_in_arrival_order(self, machine):
        """ANY receives must drain unexpected messages oldest-delivery-first
        across sources (MPI's non-overtaking rule), not per-queue order."""
        engine = Engine(n_ranks=3, machine=machine)
        order = []

        def late_sender(comm):  # rank 1 sends second
            yield comm.compute(1e-3)
            yield comm.wait(comm.isend(0, 16, tag=0))

        def early_sender(comm):  # rank 2 sends first
            yield comm.wait(comm.isend(0, 16, tag=0))

        def receiver(comm):
            yield comm.compute(1.0)
            for _ in range(2):
                req = comm.irecv(ANY_SOURCE, tag=0)
                yield comm.wait(req)
                order.append(req.source)

        engine.spawn(0, receiver)
        engine.spawn(1, late_sender)
        engine.spawn(2, early_sender)
        engine.run()
        assert order == [2, 1]


class TestBarrierSemantics:
    def test_barrier_after_rank_finished_is_deadlock(self, machine):
        """A barrier can never complete once a participant has terminated;
        silently releasing over the survivors masked real MPI deadlocks."""
        engine = Engine(n_ranks=2, machine=machine)

        def finisher(comm):
            yield comm.compute(0.0)

        def straggler(comm):
            yield comm.compute(1.0)
            yield comm.barrier()

        engine.spawn(0, finisher)
        engine.spawn(1, straggler)
        with pytest.raises(DeadlockError, match="already[\\s\\S]*finished"):
            engine.run()

    def test_single_rank_barrier_is_free(self, machine):
        """One process synchronizes with nobody: zero rounds, zero cost
        (the old code charged a full log2(2) round)."""
        engine = Engine(n_ranks=1, machine=machine)

        def program(comm):
            yield comm.barrier()

        engine.spawn(0, program)
        assert engine.run() == 0.0

    def test_barrier_costs_log2_rounds(self, machine):
        """Dissemination barrier: ceil(log2 n) network latencies."""
        n = machine.spec.n_ranks
        engine = Engine(n_ranks=n, machine=machine)

        def make_program(rank):
            def program(comm):
                yield comm.barrier()

            return program

        engine.spawn_all(make_program)
        alpha = machine.params.cost(LinkClass.INTER_NODE).alpha
        expected = math.ceil(math.log2(n)) * alpha
        assert engine.run() == pytest.approx(expected)
