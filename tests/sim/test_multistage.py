"""Multi-stage executor edge cases and the compiled-plan cache.

The multi-stage executor (:func:`repro.sim.fastpath._execute_multi`) is an
exact replay of the engine over statically-matched schedules; the scalar
opcode interpreter (:func:`repro.sim.fastpath._interpret`) is its semantic
reference (itself pinned to the engine by ``test_hybrid`` and the
``hybrid_equivalence`` fuzz invariant).  These tests target the places the
replay could plausibly diverge:

* resource claims that bind *across* stage boundaries (a straggler's send
  delaying a later-stage message on the same port);
* degenerate shapes — empty stages (back-to-back waitalls), single-rank
  schedules, ranks with no program (``None`` ops);
* watchdog budgets tripping on the same event as the engine;
* the keyed plan cache replacing the old single-entry memo (alternating
  two machines must not evict each other's plans — the ``fastpath`` memo
  regression), plus LRU bounds and stats.
"""

import dataclasses

import pytest

from repro.collectives.base import ExecutionContext, get_algorithm
from repro.collectives.runner import RunOptions, run_allgather
from repro.exec.spec import MachineSpec, TopologySpec
from repro.sim.engine import SimTimeoutError
from repro.sim.fastpath import (
    _execute_multi,
    _interpret,
    batch_plan_for,
    compiled_for,
    execute_schedule,
    multi_plan_for,
)
from repro.sim.plancache import (
    PLAN_CACHE,
    PlanCache,
    machine_digest,
    plan_cache_stats,
    reset_plan_cache,
)
from repro.sim.schedule import (
    Schedule,
    contention_free,
    spawn_wake_order,
    static_matching,
    structural_digest,
)


def _machine(nodes=2, sockets=2, rps=4):
    return MachineSpec(nodes=nodes, sockets_per_node=sockets,
                       ranks_per_socket=rps).build()


def _schedule_for(name, kwargs, n, nodes, density, msg=4096, seed=3):
    machine = _machine(nodes=nodes, rps=max(1, n // (nodes * 2)))
    topology = TopologySpec("random", n, density=density, seed=seed).build()
    algorithm = get_algorithm(name, **kwargs)
    algorithm.setup(topology, machine)
    ctx = ExecutionContext(
        topology=topology, machine=machine, msg_size=msg,
        payloads=list(range(n)), results=[{} for _ in range(n)],
    )
    return algorithm.schedule_for(ctx), machine


def _assert_identical(schedule, machine, **budgets):
    """The multi executor must match the interpreter field-for-field."""
    ref = _interpret(schedule, machine, budgets.get("max_sim_time"),
                     budgets.get("max_events"), True)
    plan = multi_plan_for(schedule, machine)
    assert plan is not None
    out = _execute_multi(plan, budgets.get("max_sim_time"),
                         budgets.get("max_events"))
    assert out.simulated_time == ref.simulated_time
    assert out.finish_times == ref.finish_times
    assert out.messages_sent == ref.messages_sent
    assert out.bytes_sent == ref.bytes_sent
    assert out.events_processed == ref.events_processed
    return out


class TestExecutorEdgeCases:
    def test_straggler_claim_binds_across_stages(self):
        # Rank 0 straggles in stage 0 (large memcpy) and only then sends to
        # rank 2; rank 1's stage-1 message to rank 2 contends for rank 2's
        # receive port with that straggling stage-0 message.  The timing is
        # only right if stage-0 claims carry into stage 1.
        machine = _machine(nodes=1, sockets=1, rps=4)
        big, small = 1 << 20, 64
        ops = [
            # rank 0: slow stage 0, send lands late
            [("charge", big), ("send", 2, small, 0), ("wait",)],
            # rank 1: fast stage 0 (pure exchange with rank 2), then a
            # stage-1 send into the port rank 0's message is still claiming
            [("send", 2, small, 1), ("recv", 2, 2), ("wait",),
             ("send", 2, small, 3), ("wait",)],
            # rank 2: stage 0 exchange with 1, stage 1 receives both
            [("send", 1, small, 2), ("recv", 1, 1), ("wait",),
             ("recv", 0, 0), ("recv", 1, 3), ("wait",)],
            None,
        ]
        schedule = Schedule(n_ranks=4, ops=ops, deliveries=[[], [], [], []])
        out = _assert_identical(schedule, machine)
        assert out.messages_sent == 4

    def test_empty_stages_between_waits(self):
        # Back-to-back waitalls: a waitall with nothing pending is still an
        # engine event (wake + seq), so event counts must line up too.
        machine = _machine(nodes=1, sockets=1, rps=2)
        ops = [
            [("wait",), ("wait",), ("send", 1, 64, 0), ("wait",), ("wait",)],
            [("recv", 0, 0), ("wait",), ("wait",)],
        ]
        schedule = Schedule(n_ranks=2, ops=ops, deliveries=[[], []])
        _assert_identical(schedule, machine)

    def test_single_rank_schedule(self):
        machine = _machine(nodes=1, sockets=1, rps=1)
        ops = [[("charge", 512), ("send", 0, 128, 0), ("recv", 0, 0),
                ("wait",), ("charge", 64), ("wait",)]]
        schedule = Schedule(n_ranks=1, ops=ops, deliveries=[[0]])
        out = _assert_identical(schedule, machine)
        assert out.finish_times[0] == out.simulated_time

    def test_none_rank_has_no_events(self):
        machine = _machine(nodes=1, sockets=1, rps=4)
        ops = [
            [("send", 2, 64, 0), ("wait",)],
            None,
            [("recv", 0, 0), ("wait",)],
        ]
        schedule = Schedule(n_ranks=3, ops=ops, deliveries=[[], [], [0]])
        assert spawn_wake_order(schedule) == (0, 2)
        out = _assert_identical(schedule, machine)
        assert out.finish_times[1] == 0.0

    def test_unmatched_send_is_parked_forever(self):
        # A send no receive ever matches: the engine parks it in the
        # unexpected table with no timing effect.  static_matching gives it
        # slot -1 and the executors still agree.
        machine = _machine(nodes=1, sockets=1, rps=2)
        ops = [
            [("send", 1, 64, 0), ("send", 1, 64, 99), ("wait",)],
            [("recv", 0, 0), ("wait",)],
        ]
        schedule = Schedule(n_ranks=2, ops=ops, deliveries=[[], [0]])
        slots, n_slots, fully_matched = static_matching(schedule)
        assert fully_matched and slots == [0, -1] and n_slots == 1
        _assert_identical(schedule, machine)

    def test_unmatched_recv_bails_to_interpreter(self):
        # A receive with no sender deadlocks; the multi executor refuses to
        # compile (fully_matched False) so the interpreter reports it.
        machine = _machine(nodes=1, sockets=1, rps=2)
        ops = [
            [("send", 1, 64, 0), ("wait",)],
            [("recv", 0, 0), ("recv", 0, 7), ("wait",)],
        ]
        schedule = Schedule(n_ranks=2, ops=ops, deliveries=[[], [0]])
        assert static_matching(schedule)[2] is False
        assert multi_plan_for(schedule, machine) is None
        from repro.sim.engine import DeadlockError
        with pytest.raises(DeadlockError):
            execute_schedule(schedule, machine)

    @pytest.mark.parametrize("name,kwargs", [
        ("common_neighbor", {"k": 4}), ("distance_halving", {}), ("bruck", {}),
    ])
    def test_multistage_algorithms_match_interpreter(self, name, kwargs):
        schedule, machine = _schedule_for(name, kwargs, 48, 3, 0.3)
        _assert_identical(schedule, machine)


class TestWatchdogBoundaries:
    """Budget trips on multi-stage schedules: same event, same diagnostics
    as the engine (the multi executor now handles budgeted runs)."""

    def _trip(self, sim_mode, **budget):
        machine = _machine(nodes=2, rps=4)
        topology = TopologySpec("random", 16, density=0.4, seed=2).build()
        algorithm = get_algorithm("common_neighbor", k=4)
        algorithm.setup(topology, machine)
        try:
            run_allgather(algorithm, topology, machine, 256,
                          options=RunOptions(sim_mode=sim_mode, **budget))
        except SimTimeoutError as exc:
            return exc
        return None

    @pytest.mark.parametrize("max_events", [1, 7, 33])
    def test_event_budget_parity_multistage(self, max_events):
        des = self._trip("des", max_events=max_events)
        auto = self._trip("auto", max_events=max_events)
        assert des is not None and auto is not None
        assert str(des) == str(auto)
        assert des.events_processed == auto.events_processed == max_events

    @pytest.mark.parametrize("max_sim_time", [1e-7, 4e-6])
    def test_time_budget_parity_multistage(self, max_sim_time):
        des = self._trip("des", max_sim_time=max_sim_time)
        auto = self._trip("auto", max_sim_time=max_sim_time)
        assert des is not None and auto is not None
        assert str(des) == str(auto)
        assert des.events_processed == auto.events_processed

    def test_generous_budget_takes_multi_executor(self):
        machine = _machine(nodes=2, rps=4)
        topology = TopologySpec("random", 16, density=0.4, seed=2).build()
        algorithm = get_algorithm("common_neighbor", k=4)
        algorithm.setup(topology, machine)
        plain = run_allgather(algorithm, topology, machine, 256,
                              options=RunOptions(sim_mode="auto"))
        budgeted = run_allgather(
            algorithm, topology, machine, 256,
            options=RunOptions(sim_mode="auto", max_events=10**9),
        )
        assert budgeted.simulated_time == plain.simulated_time
        assert budgeted.sim_path == "fastpath"


class TestPlanCacheKeying:
    """The keyed plan cache must hold plans for several machines at once —
    the regression the old single-entry ``_fp``/``_fp_batch`` memo had."""

    def test_two_machines_alternate_without_eviction(self):
        schedule, machine_a = _schedule_for("naive", {}, 16, 2, 0.4)
        machine_b = _machine(nodes=4, rps=2)
        reset_plan_cache()
        try:
            ref_a = batch_plan_for(schedule, machine_a)
            ref_b = batch_plan_for(schedule, machine_b)
            misses_after_first = PLAN_CACHE.misses
            for _ in range(3):
                assert batch_plan_for(schedule, machine_a) is ref_a
                assert batch_plan_for(schedule, machine_b) is ref_b
            assert PLAN_CACHE.misses == misses_after_first
            assert PLAN_CACHE.hits >= 6
        finally:
            reset_plan_cache()

    def test_two_machines_alternate_multi_plans(self):
        schedule, machine_a = _schedule_for("common_neighbor", {"k": 4},
                                            16, 2, 0.4)
        machine_b = _machine(nodes=4, rps=2)
        reset_plan_cache()
        try:
            plan_a = multi_plan_for(schedule, machine_a)
            plan_b = multi_plan_for(schedule, machine_b)
            assert plan_a is not None and plan_b is not None
            for _ in range(3):
                assert multi_plan_for(schedule, machine_a) is plan_a
                assert multi_plan_for(schedule, machine_b) is plan_b
        finally:
            reset_plan_cache()
        # and the results per machine stay bit-identical to the interpreter
        for machine in (machine_a, machine_b):
            _assert_identical(schedule, machine)

    def test_contention_free_memo_keeps_both_machines(self):
        schedule, machine_a = _schedule_for("naive", {}, 16, 2, 0.4)
        machine_b = _machine(nodes=4, rps=2)
        first = (contention_free(schedule, machine_a),
                 contention_free(schedule, machine_b))
        # repeat calls answer from the per-machine memo, not a re-analysis
        # of whichever machine came last
        again = (contention_free(schedule, machine_a),
                 contention_free(schedule, machine_b))
        assert first == again

    def test_structurally_equal_schedules_share_plans(self):
        # Two Schedule objects with identical op streams (fresh algorithm
        # instances over the same cell) must hit the same cache entry.
        sched_a, machine = _schedule_for("naive", {}, 16, 2, 0.4)
        sched_b, _ = _schedule_for("naive", {}, 16, 2, 0.4)
        assert sched_a is not sched_b
        assert structural_digest(sched_a) == structural_digest(sched_b)
        reset_plan_cache()
        try:
            plan_a = batch_plan_for(sched_a, machine)
            plan_b = batch_plan_for(sched_b, machine)
            assert plan_b is plan_a
            assert PLAN_CACHE.hits >= 1
        finally:
            reset_plan_cache()

    def test_machine_digest_distinguishes_structure(self):
        machine_a = _machine(nodes=2, rps=4)
        machine_b = _machine(nodes=4, rps=2)
        machine_c = _machine(nodes=2, rps=4)
        assert machine_digest(machine_a) != machine_digest(machine_b)
        # structurally identical machines share plans
        assert machine_digest(machine_a) == machine_digest(machine_c)
        tweaked = dataclasses.replace(
            machine_a,
            params=dataclasses.replace(machine_a.params, call_overhead=1e-3),
        )
        assert machine_digest(tweaked) != machine_digest(machine_a)


class TestPlanCacheBounds:
    def test_lru_bound_and_stats(self):
        cache = PlanCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refreshes "a"
        cache.put(("c",), 3)  # evicts "b"
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        assert cache.get(("b",)) is not cache.get(("a",))  # "b" is a miss
        assert cache.stats()["misses"] >= 1

    def test_none_results_are_cached(self):
        # ineligibility is a compile-walk verdict worth remembering
        schedule, machine = _schedule_for("common_neighbor", {"k": 4},
                                          16, 2, 0.4)
        reset_plan_cache()
        try:
            assert batch_plan_for(schedule, machine) is None
            misses = PLAN_CACHE.misses
            assert batch_plan_for(schedule, machine) is None
            assert PLAN_CACHE.misses == misses  # second call hit
            assert PLAN_CACHE.hits >= 1
        finally:
            reset_plan_cache()

    def test_stats_snapshot_shape(self):
        stats = plan_cache_stats()
        assert set(stats) == {"hits", "misses", "evictions", "size",
                              "max_entries", "hit_rate"}

    def test_reset_resizes_and_clears(self):
        reset_plan_cache(max_entries=3)
        try:
            assert PLAN_CACHE.max_entries == 3
            assert len(PLAN_CACHE) == 0
            with pytest.raises(ValueError):
                reset_plan_cache(max_entries=0)
        finally:
            reset_plan_cache(max_entries=None)
            from repro.sim.plancache import DEFAULT_MAX_ENTRIES
            PLAN_CACHE.max_entries = DEFAULT_MAX_ENTRIES

    def test_execute_schedule_uses_cached_plans(self):
        schedule, machine = _schedule_for("distance_halving", {}, 16, 2, 0.4)
        first = execute_schedule(schedule, machine)
        hits_before = PLAN_CACHE.hits
        second = execute_schedule(schedule, machine)
        assert PLAN_CACHE.hits > hits_before
        assert second.simulated_time == first.simulated_time
        assert second.events_processed == first.events_processed
