"""Golden regression grid: the optimized hot path must reproduce the seed
engine's results bit-for-bit.

``tests/data/golden_sim_times.json`` was captured from the pre-optimization
engine over a machines x algorithms x sizes grid.  ``simulated_time`` floats
are compared with ``==`` (no tolerance): the fast path is only allowed to
change wall-clock time, never a simulation result.  JSON round-trips Python
floats exactly, so the archived values are the seed engine's doubles.
"""

import json
from pathlib import Path

import pytest

from repro.cluster import Machine
from repro.collectives.base import get_algorithm
from repro.collectives.runner import run_allgather
from repro.topology import erdos_renyi_topology

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "golden_sim_times.json"

#: machine name -> (factory, (ranks, density, topology seed)); must match
#: how the golden file was generated (see its "note" field).
MACHINES = {
    "single_switch_8": (
        lambda: Machine.single_switch(nodes=2, sockets_per_node=2, ranks_per_socket=2),
        (8, 0.5, 7),
    ),
    "niagara_32": (
        lambda: Machine.niagara_like(nodes=4, ranks_per_socket=4),
        (32, 0.3, 1234),
    ),
    "niagara_64": (
        lambda: Machine.niagara_like(nodes=8, ranks_per_socket=4, nodes_per_group=2),
        (64, 0.2, 42),
    ),
}


def _rows():
    rows = json.loads(GOLDEN_PATH.read_text())["rows"]
    return [
        pytest.param(row, id=f'{row["machine"]}-{row["algorithm"]}-{row["msg_bytes"]}')
        for row in rows
    ]


@pytest.mark.parametrize("row", _rows())
def test_matches_seed_engine_exactly(row):
    factory, (n, density, seed) = MACHINES[row["machine"]]
    machine = factory()
    topology = erdos_renyi_topology(n, density, seed=seed)
    algorithm = get_algorithm(row["algorithm"], **row["kwargs"])
    run = run_allgather(
        algorithm, topology, machine, row["msg_bytes"]
    )
    assert run.simulated_time == row["simulated_time"]
    assert run.messages_sent == row["messages_sent"]
    assert run.bytes_sent == row["bytes_sent"]
