"""Hybrid fast-path properties: auto/DES equivalence, the analytic
tolerance contract, batch/interpreter agreement, and watchdog parity.

These are the accuracy gates for ``sim_mode`` (see docs/ARCHITECTURE.md):

* ``auto`` must equal the DES *bit-for-bit* on contended schedules (the
  fast path is an exact replay, not an approximation);
* on fully contention-free schedules ``auto`` routes to the closed-form
  analytic costing, which must stay within
  :data:`~repro.sim.fastpath.ANALYTIC_RTOL` of the DES and never exceed it;
* the single-stage batched executor and the multi-stage executor must
  agree bit-for-bit with the generic opcode interpreter (which remains
  the semantic reference and the fallback for unmatched-recv schedules);
* watchdog budgets must trip on the same event with the same structured
  diagnostics in both paths.
"""

import dataclasses

import pytest

from repro.collectives.base import ExecutionContext, get_algorithm
from repro.collectives.runner import RunOptions, run_allgather
from repro.exec.spec import MachineSpec, TopologySpec
from repro.sim.engine import SimTimeoutError
from repro.sim.fastpath import (
    ANALYTIC_RTOL,
    _interpret,
    batch_plan_for,
    execute_schedule,
    multi_plan_for,
)
from repro.sim.faults import FaultPlan, Straggler
from repro.sim.schedule import analyze_contention, contention_free

ALGORITHMS = [
    ("naive", {}),
    ("common_neighbor", {"k": 4}),
    ("distance_halving", {}),
    ("bruck", {}),
]


def _build(n, nodes, density, seed=0, *, sockets=2, kind="random", **topo_kw):
    rps = max(1, n // (nodes * sockets))
    machine = MachineSpec(
        nodes=nodes, sockets_per_node=sockets, ranks_per_socket=rps
    ).build()
    if kind == "random":
        topo_kw.setdefault("density", density)
        topo_kw.setdefault("seed", seed)
    topology = TopologySpec(kind, n, **topo_kw).build()
    return topology, machine


def _setup(name, kwargs, topology, machine):
    algorithm = get_algorithm(name, **kwargs)
    algorithm.setup(topology, machine)
    return algorithm


def _schedule_of(algorithm, topology, machine, msg_size=64):
    ctx = ExecutionContext(
        topology=topology, machine=machine, msg_size=msg_size,
        payloads=list(range(topology.n)),
        results=[{} for _ in range(topology.n)],
    )
    return algorithm.schedule_for(ctx)


class TestAutoEqualsDes:
    """Property: sim_mode="auto" is bit-identical to the DES on contended
    schedules — simulated time, counters, finish times, and buffers."""

    @pytest.mark.parametrize("name,kwargs", ALGORITHMS)
    @pytest.mark.parametrize("n,nodes,density", [
        (16, 1, 0.4), (32, 2, 0.3), (64, 4, 0.15),
    ])
    def test_bit_identical_on_contended(self, name, kwargs, n, nodes, density):
        topology, machine = _build(n, nodes, density, seed=5)
        algorithm = _setup(name, kwargs, topology, machine)
        des = run_allgather(algorithm, topology, machine, 4096,
                            options=RunOptions(sim_mode="des"))
        auto = run_allgather(algorithm, topology, machine, 4096,
                             options=RunOptions(sim_mode="auto"))
        # Dense-enough random graphs always share receive ports, so the
        # analyzer must route these through the exact replay.
        assert auto.sim_path == "fastpath"
        assert auto.simulated_time == des.simulated_time
        assert auto.finish_times == des.finish_times
        assert auto.messages_sent == des.messages_sent
        assert auto.bytes_sent == des.bytes_sent
        assert auto.results == des.results

    @pytest.mark.parametrize("name,kwargs", ALGORITHMS)
    def test_allgatherv_block_sizes(self, name, kwargs):
        topology, machine = _build(16, 2, 0.3, seed=2)
        algorithm = _setup(name, kwargs, topology, machine)
        sizes = [(r % 5) * 128 + 8 for r in range(16)]
        des = run_allgather(algorithm, topology, machine, sizes,
                            options=RunOptions(sim_mode="des"))
        auto = run_allgather(algorithm, topology, machine, sizes,
                             options=RunOptions(sim_mode="auto"))
        assert auto.simulated_time == des.simulated_time
        assert auto.results == des.results

    def test_self_loop_topology(self):
        topology, machine = _build(16, 1, 0.3, seed=4, self_loops=True)
        algorithm = _setup("naive", {}, topology, machine)
        des = run_allgather(algorithm, topology, machine, 512,
                            options=RunOptions(sim_mode="des"))
        auto = run_allgather(algorithm, topology, machine, 512,
                             options=RunOptions(sim_mode="auto"))
        assert auto.simulated_time == des.simulated_time
        assert auto.results == des.results


class TestDesFallback:
    """Features the replay does not model must fall back to the engine."""

    def test_fault_plan_forces_des(self):
        topology, machine = _build(16, 2, 0.3)
        algorithm = _setup("naive", {}, topology, machine)
        plan = FaultPlan(stragglers=(Straggler(rank=0, startup_delay=1e-4),))
        run = run_allgather(
            algorithm, topology, machine, 512,
            options=RunOptions(sim_mode="auto", fault_plan=plan),
        )
        assert run.sim_path == "des"

    def test_trace_forces_des(self):
        topology, machine = _build(16, 2, 0.3)
        algorithm = _setup("naive", {}, topology, machine)
        run = run_allgather(algorithm, topology, machine, 512,
                            options=RunOptions(sim_mode="auto", trace=True))
        assert run.sim_path == "des"
        assert run.trace is not None

    def test_des_mode_never_takes_fast_path(self):
        topology, machine = _build(16, 2, 0.3)
        algorithm = _setup("naive", {}, topology, machine)
        run = run_allgather(algorithm, topology, machine, 512,
                            options=RunOptions(sim_mode="des"))
        assert run.sim_path == "des"


class TestAnalyticContract:
    """Contention-free schedules route to the closed form; contended runs
    under sim_mode="analytic" give a documented lower bound."""

    def _contention_free_case(self):
        # 4 ranks spread one-per-socket over 2 nodes at density 0.05:
        # so few edges that no port/NIC/link is ever claimed twice.
        topology, machine = _build(4, 2, 0.05, seed=3, sockets=2)
        return topology, machine

    def test_case_is_actually_contention_free(self):
        topology, machine = self._contention_free_case()
        algorithm = _setup("naive", {}, topology, machine)
        schedule = _schedule_of(algorithm, topology, machine)
        reports = analyze_contention(schedule, machine)
        assert all(r.contention_free for r in reports)
        assert contention_free(schedule, machine)

    @pytest.mark.parametrize("name,kwargs", ALGORITHMS)
    def test_auto_routes_contention_free_to_analytic(self, name, kwargs):
        topology, machine = self._contention_free_case()
        algorithm = _setup(name, kwargs, topology, machine)
        des = run_allgather(algorithm, topology, machine, 64,
                            options=RunOptions(sim_mode="des"))
        auto = run_allgather(algorithm, topology, machine, 64,
                             options=RunOptions(sim_mode="auto"))
        assert auto.sim_path == "analytic"
        # Tolerance contract: never above the DES, within ANALYTIC_RTOL.
        gap = des.simulated_time - auto.simulated_time
        assert gap >= 0.0
        if des.simulated_time > 0:
            assert gap / des.simulated_time <= ANALYTIC_RTOL
        assert auto.results == des.results
        assert auto.messages_sent == des.messages_sent

    def test_single_stage_contention_free_is_exact(self):
        # Naive is single-stage (one waitall): the analytic closed form is
        # bit-identical there, not just within tolerance.
        topology, machine = self._contention_free_case()
        algorithm = _setup("naive", {}, topology, machine)
        des = run_allgather(algorithm, topology, machine, 64,
                            options=RunOptions(sim_mode="des"))
        auto = run_allgather(algorithm, topology, machine, 64,
                             options=RunOptions(sim_mode="auto"))
        assert auto.sim_path == "analytic"
        assert auto.simulated_time == des.simulated_time

    @pytest.mark.parametrize("name,kwargs", ALGORITHMS)
    def test_forced_analytic_is_lower_bound_when_contended(self, name, kwargs):
        topology, machine = _build(32, 2, 0.4, seed=9)
        algorithm = _setup(name, kwargs, topology, machine)
        des = run_allgather(algorithm, topology, machine, 4096,
                            options=RunOptions(sim_mode="des"))
        forced = run_allgather(algorithm, topology, machine, 4096,
                               options=RunOptions(sim_mode="analytic"))
        assert forced.sim_path == "analytic"
        assert forced.simulated_time <= des.simulated_time
        assert forced.results == des.results


class TestBatchExecutor:
    """The batched executors (single-stage cohort tables, multi-stage
    heap replay) must agree with the generic interpreter bit-for-bit."""

    def test_naive_single_stage_is_batch_eligible(self):
        topology, machine = _build(32, 2, 0.3, seed=1)
        algorithm = _setup("naive", {}, topology, machine)
        schedule = _schedule_of(algorithm, topology, machine, 4096)
        assert batch_plan_for(schedule, machine) is not None

    def test_multi_stage_takes_the_multi_executor(self):
        # Multi-stage schedules are ineligible for the single-stage cohort
        # executor but compile to a multi-stage plan that replays the
        # engine bit-for-bit (events included).
        topology, machine = _build(32, 2, 0.3, seed=1)
        algorithm = _setup("common_neighbor", {"k": 4}, topology, machine)
        schedule = _schedule_of(algorithm, topology, machine, 4096)
        assert batch_plan_for(schedule, machine) is None
        plan = multi_plan_for(schedule, machine)
        assert plan is not None
        fast = execute_schedule(schedule, machine)
        interp = _interpret(schedule, machine, None, None, True)
        assert fast.simulated_time == interp.simulated_time
        assert fast.finish_times == interp.finish_times
        assert fast.events_processed == interp.events_processed

    def test_batch_matches_interpreter_bit_for_bit(self):
        topology, machine = _build(64, 4, 0.25, seed=6)
        algorithm = _setup("naive", {}, topology, machine)
        schedule = _schedule_of(algorithm, topology, machine, 8192)
        batched = execute_schedule(schedule, machine)
        # The scalar opcode interpreter is the semantic reference; call it
        # directly (budgeted dispatch now routes to the multi executor).
        interp = _interpret(schedule, machine, None, None, True)
        assert batched.simulated_time == interp.simulated_time
        assert batched.finish_times == interp.finish_times
        assert batched.messages_sent == interp.messages_sent
        assert batched.bytes_sent == interp.bytes_sent
        assert batched.events_processed == interp.events_processed


class TestWatchdogParity:
    """Budgets trip on the same event with the same structured fields in
    the engine and the fast path (inclusive boundary semantics)."""

    def _trip(self, sim_mode, **budget):
        topology, machine = _build(16, 2, 0.3, seed=0)
        algorithm = _setup("naive", {}, topology, machine)
        try:
            run_allgather(algorithm, topology, machine, 64,
                          options=RunOptions(sim_mode=sim_mode, **budget))
        except SimTimeoutError as exc:
            return exc
        return None

    @pytest.mark.parametrize("max_events", [1, 5, 20])
    def test_event_budget_parity(self, max_events):
        des = self._trip("des", max_events=max_events)
        auto = self._trip("auto", max_events=max_events)
        assert des is not None and auto is not None
        assert des.budget == auto.budget == "events"
        assert des.events_processed == auto.events_processed == max_events
        assert des.limit == auto.limit == max_events

    @pytest.mark.parametrize("max_sim_time", [1e-7, 1e-5])
    def test_time_budget_parity(self, max_sim_time):
        des = self._trip("des", max_sim_time=max_sim_time)
        auto = self._trip("auto", max_sim_time=max_sim_time)
        assert des is not None and auto is not None
        assert des.budget == auto.budget == "sim_time"
        assert des.events_processed == auto.events_processed
        assert des.limit == auto.limit == max_sim_time

    def test_generous_budget_completes_identically(self):
        topology, machine = _build(16, 2, 0.3, seed=0)
        algorithm = _setup("naive", {}, topology, machine)
        plain = run_allgather(algorithm, topology, machine, 64,
                              options=RunOptions(sim_mode="auto"))
        budgeted = run_allgather(
            algorithm, topology, machine, 64,
            options=RunOptions(sim_mode="auto", max_events=10**9,
                               max_sim_time=1e9),
        )
        assert budgeted.simulated_time == plain.simulated_time
        assert budgeted.results == plain.results

    def test_exact_event_count_is_allowed(self):
        # Boundary semantics: processing exactly max_events events must
        # succeed; max_events - 1 must trip with events_processed recorded.
        topology, machine = _build(16, 2, 0.3, seed=0)
        algorithm = _setup("naive", {}, topology, machine)
        exc = self._trip("des", max_events=10**9)
        assert exc is None  # never trips
        tripped = self._trip("des", max_events=1)
        assert tripped.events_processed == 1
        # Find the true event count, then check the exact boundary.
        run = run_allgather(algorithm, topology, machine, 64,
                            options=RunOptions(sim_mode="des"))
        del run
        probe = self._trip("des", max_events=10**6)
        assert probe is None

    def test_timeout_message_is_deterministic(self):
        first = self._trip("auto", max_events=3)
        second = self._trip("auto", max_events=3)
        assert str(first) == str(second)
        assert "event budget exceeded" in str(first)
        assert "rank" in str(first)


class TestHybridCaching:
    """Repeated invocations reuse the compiled schedule and stay correct."""

    def test_repeat_runs_are_bit_identical(self):
        topology, machine = _build(32, 2, 0.3, seed=8)
        algorithm = _setup("common_neighbor", {"k": 4}, topology, machine)
        opts = RunOptions(sim_mode="auto")
        runs = [run_allgather(algorithm, topology, machine, 2048, options=opts)
                for _ in range(3)]
        assert len({r.simulated_time for r in runs}) == 1
        assert runs[0].results == runs[1].results == runs[2].results

    def test_mode_interleaving_does_not_poison_caches(self):
        topology, machine = _build(16, 2, 0.3, seed=8)
        algorithm = _setup("naive", {}, topology, machine)
        seq = ["auto", "analytic", "des", "auto", "des", "analytic"]
        by_mode = {}
        for mode in seq:
            run = run_allgather(algorithm, topology, machine, 1024,
                                options=RunOptions(sim_mode=mode))
            by_mode.setdefault(mode, []).append(run.simulated_time)
        for mode, times in by_mode.items():
            assert len(set(times)) == 1, mode
        assert by_mode["auto"][0] == by_mode["des"][0]

    def test_jitter_machine_falls_back(self):
        topology, machine = _build(16, 2, 0.3)
        machine = dataclasses.replace(
            machine, params=dataclasses.replace(machine.params, jitter=1e-7),
        )
        algorithm = _setup("naive", {}, topology, machine)
        run = run_allgather(algorithm, topology, machine, 512,
                            options=RunOptions(sim_mode="auto"))
        assert run.sim_path == "des"
