"""Unit tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type("x", 5, int) == 5

    def test_accepts_tuple_of_types(self):
        assert check_type("x", "s", (int, str)) == "s"

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "nope", int)


class TestCheckPositive:
    def test_accepts_positive_int(self):
        assert check_positive("n", 3) == 3
        assert isinstance(check_positive("n", 3), int)

    def test_accepts_positive_float(self):
        assert check_positive("n", 2.5) == 2.5

    def test_accepts_numpy_integer(self):
        assert check_positive("n", np.int64(4)) == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="n must be > 0"):
            check_positive("n", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("n", -1)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive("n", True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("n", "3")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("n", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_non_negative("n", -0.1)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    def test_returns_float(self):
        assert isinstance(check_probability("p", 1), float)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1, 1, 5) == 1
        assert check_in_range("x", 5, 1, 5) == 5

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match=r"\[1, 5\]"):
            check_in_range("x", 6, 1, 5)
