"""Unit tests for RNG resolution."""

import numpy as np
import pytest

from repro.utils.rng import resolve_rng, spawn_rng


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = resolve_rng(42).integers(0, 1 << 30, size=8)
        b = resolve_rng(42).integers(0, 1 << 30, size=8)
        assert (a == b).all()

    def test_distinct_seeds_differ(self):
        a = resolve_rng(1).integers(0, 1 << 30, size=8)
        b = resolve_rng(2).integers(0, 1 << 30, size=8)
        assert not (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(resolve_rng(np.int32(7)), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="seed must be"):
            resolve_rng("seed")


class TestSpawnRng:
    def test_children_differ_by_key(self):
        parent = resolve_rng(0)
        a = spawn_rng(parent, 1).integers(0, 1 << 30, size=4)
        parent = resolve_rng(0)
        b = spawn_rng(parent, 2).integers(0, 1 << 30, size=4)
        assert not (a == b).all()
