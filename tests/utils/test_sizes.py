"""Unit + property tests for byte-size parsing/formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.sizes import format_size, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("8", 8),
            ("8B", 8),
            ("1KB", 1024),
            ("64KB", 64 * 1024),
            ("4MB", 4 * 1024 * 1024),
            ("1GB", 1024**3),
            ("2KiB", 2048),
            (" 32 kb ", 32 * 1024),
            ("0", 0),
        ],
    )
    def test_strings(self, text, expected):
        assert parse_size(text) == expected

    def test_int_passthrough(self):
        assert parse_size(512) == 512

    def test_fractional_whole_bytes(self):
        assert parse_size("0.5KB") == 512

    def test_fractional_non_whole_rejected(self):
        with pytest.raises(ValueError, match="whole number"):
            parse_size("0.3B")

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_size("lots")

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError, match="unknown size unit"):
            parse_size("5XB")

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            parse_size(True)


class TestFormatSize:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [(8, "8B"), (1024, "1KB"), (4 * 1024 * 1024, "4MB"), (1536, "1536B"), (0, "0B")],
    )
    def test_labels(self, nbytes, expected):
        assert format_size(nbytes) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-5)

    @given(st.integers(0, 1 << 40))
    def test_roundtrip(self, nbytes):
        assert parse_size(format_size(nbytes)) == nbytes
