"""Unit + property tests for rank intervals and halving arithmetic."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.intervals import Interval, halving_steps


class TestInterval:
    def test_len_and_contains(self):
        iv = Interval(2, 5)
        assert len(iv) == 4
        assert 2 in iv and 5 in iv
        assert 1 not in iv and 6 not in iv

    def test_iteration(self):
        assert list(Interval(0, 3)) == [0, 1, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty interval"):
            Interval(3, 2)

    def test_mid_matches_paper_formula(self):
        # Algorithm 1 line 13: mid_rank = (start + end) / 2, floor.
        assert Interval(0, 7).mid == 3
        assert Interval(0, 6).mid == 3
        assert Interval(4, 9).mid == 6

    def test_split_halves(self):
        lower, upper = Interval(0, 7).split()
        assert (lower.start, lower.end) == (0, 3)
        assert (upper.start, upper.end) == (4, 7)

    def test_split_odd_interval(self):
        lower, upper = Interval(0, 6).split()
        assert len(lower) == 4 and len(upper) == 3  # midpoint stays low

    def test_split_singleton_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 5).split()

    def test_halves_for_lower_rank(self):
        h1, h2 = Interval(0, 7).halves_for(2)
        assert 2 in h1 and 2 not in h2
        assert (h1.start, h1.end) == (0, 3)

    def test_halves_for_upper_rank(self):
        h1, h2 = Interval(0, 7).halves_for(6)
        assert (h1.start, h1.end) == (4, 7)
        assert (h2.start, h2.end) == (0, 3)

    def test_halves_for_outside_rank_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 7).halves_for(9)

    def test_intersect_sorted(self):
        assert Interval(3, 6).intersect_sorted([1, 3, 5, 7]) == [3, 5]

    @given(st.integers(0, 100), st.integers(0, 100))
    def test_split_partitions(self, a, b):
        lo, hi = min(a, b), max(a, b) + 2  # ensure len >= 2
        iv = Interval(lo, hi)
        lower, upper = iv.split()
        assert len(lower) + len(upper) == len(iv)
        assert lower.end + 1 == upper.start
        assert lower.start == iv.start and upper.end == iv.end


class TestHalvingSteps:
    def test_power_of_two(self):
        assert halving_steps(16, 4) == 2
        assert halving_steps(128, 8) == 4

    def test_already_small(self):
        assert halving_steps(4, 8) == 0
        assert halving_steps(8, 8) == 0

    def test_matches_log_formula_for_powers(self):
        for n, L in [(32, 4), (2048, 16), (1024, 32)]:
            assert halving_steps(n, L) == math.ceil(math.log2(n / L))

    def test_non_power_of_two(self):
        # 2160 ranks, 18 per socket: 2160 -> 1080 -> 540 -> 270 -> 135 ->
        # 68 -> 34 -> 17 <= 18: seven splits.
        assert halving_steps(2160, 18) == 7

    @given(st.integers(1, 10_000), st.integers(1, 64))
    def test_steps_shrink_below_limit(self, n, L):
        steps = halving_steps(n, L)
        size = n
        for _ in range(steps):
            size = math.ceil(size / 2)
        assert size <= L
        # One fewer step would not have been enough (unless already small).
        if steps:
            size = n
            for _ in range(steps - 1):
                size = math.ceil(size / 2)
            assert size > L
