"""Unit tests for scale-free / hub-spoke topologies."""

import numpy as np
import pytest

from repro.collectives import run_allgather, verify_allgather
from repro.topology.scale_free import hub_spoke_topology, scale_free_topology


class TestScaleFree:
    def test_deterministic_by_seed(self):
        assert scale_free_topology(50, seed=3) == scale_free_topology(50, seed=3)
        assert scale_free_topology(50, seed=3) != scale_free_topology(50, seed=4)

    def test_symmetric_by_default(self):
        topo = scale_free_topology(40, seed=0)
        for u in range(40):
            assert topo.out_neighbors(u) == topo.in_neighbors(u)

    def test_directed_variant(self):
        topo = scale_free_topology(40, seed=0, symmetric=False)
        assert any(
            topo.out_neighbors(u) != topo.in_neighbors(u) for u in range(40)
        )

    def test_degree_skew(self):
        """Preferential attachment must produce a heavy-tailed degree
        distribution — the max degree far exceeds the mean."""
        topo = scale_free_topology(200, edges_per_rank=4, seed=7)
        degrees = [topo.outdegree(u) for u in range(200)]
        assert max(degrees) > 4 * np.mean(degrees)

    def test_edge_budget(self):
        topo = scale_free_topology(100, edges_per_rank=3, seed=1, symmetric=False)
        # rank u adds min(u, 3) edges.
        expected = sum(min(u, 3) for u in range(1, 100))
        assert topo.n_edges == expected

    def test_no_self_loops(self):
        assert not scale_free_topology(60, seed=5).has_self_loops()

    def test_allgather_correct(self, small_machine):
        topo = scale_free_topology(small_machine.spec.n_ranks, seed=2)
        for alg in ("naive", "common_neighbor", "distance_halving", "bruck"):
            run = run_allgather(alg, topo, small_machine, 128)
            verify_allgather(topo, run)


class TestHubSpoke:
    def test_structure(self):
        topo = hub_spoke_topology(20, hubs=2)
        assert topo.outdegree(0) == 19
        assert topo.outdegree(5) == 2
        assert topo.out_neighbors(5) == (0, 1)
        assert topo.in_neighbors(5) == (0, 1)

    def test_hubs_must_be_fewer_than_ranks(self):
        with pytest.raises(ValueError, match="must be <"):
            hub_spoke_topology(4, hubs=4)

    def test_allgather_correct(self, small_machine):
        topo = hub_spoke_topology(small_machine.spec.n_ranks, hubs=3)
        for alg in ("naive", "common_neighbor", "distance_halving", "bruck"):
            run = run_allgather(alg, topo, small_machine, 128)
            verify_allgather(topo, run)
