"""Unit tests for topology diagnostics."""

import pytest

from repro.topology import DistGraphTopology, erdos_renyi_topology, moore_topology
from repro.topology.analysis import DegreeStats, analyze_topology, pattern_preview


class TestDegreeStats:
    def test_of_values(self):
        stats = DegreeStats.of([2, 4, 6])
        assert stats.mean == pytest.approx(4.0)
        assert stats.minimum == 2 and stats.maximum == 6

    def test_empty(self):
        stats = DegreeStats.of([])
        assert stats == DegreeStats(0.0, 0.0, 0, 0)


class TestAnalyzeTopology:
    def test_basic_counts(self):
        topo = DistGraphTopology(4, [[1, 2], [2], [], [3]])
        report = analyze_topology(topo)
        assert report.n == 4
        assert report.n_edges == 4
        assert report.self_loops == 1  # 3 -> 3
        assert not report.symmetric

    def test_symmetric_detection(self):
        topo = moore_topology(16, r=1, d=2)
        assert analyze_topology(topo).symmetric

    def test_shared_neighbor_stats(self):
        # 0 and 1 both point at 2 and 3: |O_0 ∩ O_1| = 2, symmetric pair.
        topo = DistGraphTopology(4, [[2, 3], [2, 3], [], []])
        report = analyze_topology(topo)
        # ordered pairs: (0,1) and (1,0) share 2; 10 other pairs share 0.
        assert report.mean_shared_out_neighbors == pytest.approx(4 / 12)
        assert report.candidate_pair_fraction == pytest.approx(2 / 12)

    def test_locality_with_machine(self, small_machine):
        # One intra-socket edge, one inter-group edge.
        n = small_machine.spec.n_ranks
        topo = DistGraphTopology(n, {0: [1, n - 1]})
        report = analyze_topology(topo, small_machine)
        assert report.edge_locality["INTRA_SOCKET"] == pytest.approx(0.5)
        assert report.edge_locality["INTER_GROUP"] == pytest.approx(0.5)

    def test_locality_omitted_without_machine(self):
        report = analyze_topology(erdos_renyi_topology(10, 0.5, seed=0))
        assert report.edge_locality == {}

    def test_machine_too_small(self, tiny_machine):
        topo = erdos_renyi_topology(100, 0.1, seed=0)
        with pytest.raises(ValueError, match="machine only"):
            analyze_topology(topo, tiny_machine)

    def test_summary_lines_render(self, small_machine, small_topology):
        report = analyze_topology(small_topology, small_machine)
        text = "\n".join(report.summary_lines())
        assert "edges=" in text and "edge locality" in text


class TestPatternPreview:
    def test_keys_and_consistency(self, small_machine, small_topology):
        preview = pattern_preview(small_topology, small_machine)
        assert preview["naive_messages_per_call"] == small_topology.n_edges
        assert preview["dh_messages_per_call"] > 0
        assert preview["message_reduction"] == pytest.approx(
            small_topology.n_edges / preview["dh_messages_per_call"]
        )
        assert preview["levels"] == 3  # 32 ranks, L=4
        assert 0 <= preview["agent_success_rate"] <= 1
        assert preview["peak_buffer_blocks"] >= 1

    def test_dense_graph_big_reduction(self, small_machine):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.9, seed=1)
        preview = pattern_preview(topo, small_machine)
        assert preview["message_reduction"] > 2.0
