"""Unit + statistical tests for the Erdős–Rényi generator."""

import numpy as np
import pytest

from repro.topology.random_graphs import erdos_renyi_topology


class TestBasics:
    def test_deterministic_by_seed(self):
        a = erdos_renyi_topology(40, 0.3, seed=9)
        b = erdos_renyi_topology(40, 0.3, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = erdos_renyi_topology(40, 0.3, seed=1)
        b = erdos_renyi_topology(40, 0.3, seed=2)
        assert a != b

    def test_zero_density_empty(self):
        topo = erdos_renyi_topology(10, 0.0, seed=0)
        assert topo.n_edges == 0

    def test_full_density_complete(self):
        topo = erdos_renyi_topology(10, 1.0, seed=0)
        assert topo.n_edges == 10 * 9  # no self-loops

    def test_full_density_with_self_loops(self):
        topo = erdos_renyi_topology(10, 1.0, seed=0, allow_self_loops=True)
        assert topo.n_edges == 100

    def test_no_self_loops_by_default(self):
        topo = erdos_renyi_topology(50, 0.8, seed=3)
        assert not topo.has_self_loops()

    def test_invalid_density_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_topology(10, 1.5)
        with pytest.raises(ValueError):
            erdos_renyi_topology(10, -0.1)


class TestStatistics:
    def test_average_outdegree_matches_delta(self):
        """The paper's model: average outdegree ~ delta * n."""
        n, delta = 400, 0.3
        topo = erdos_renyi_topology(n, delta, seed=7)
        expected = delta * (n - 1)
        # Binomial std ~ sqrt(n * d(1-d)) per rank; the graph-wide mean is tight.
        assert topo.average_outdegree == pytest.approx(expected, rel=0.05)

    def test_edges_independent_across_rows(self):
        """Outdegrees should vary (not a regular graph)."""
        topo = erdos_renyi_topology(200, 0.2, seed=11)
        degs = [topo.outdegree(r) for r in range(200)]
        assert np.std(degs) > 0

    def test_generator_shared_stream(self):
        rng = np.random.default_rng(5)
        a = erdos_renyi_topology(20, 0.5, seed=rng)
        b = erdos_renyi_topology(20, 0.5, seed=rng)  # continues the stream
        assert a != b
