"""Unit tests for Cartesian stencil topologies."""

import pytest

from repro.topology.cartesian import cartesian_topology


class TestPeriodic:
    def test_degree_2d(self):
        topo = cartesian_topology(16, d=2)  # 4x4 torus
        assert all(topo.outdegree(u) == 4 for u in range(16))

    def test_degree_3d(self):
        topo = cartesian_topology(27, dims=(3, 3, 3))
        assert all(topo.outdegree(u) == 6 for u in range(27))

    def test_symmetric(self):
        topo = cartesian_topology(16, d=2)
        for u in range(16):
            assert topo.out_neighbors(u) == topo.in_neighbors(u)

    def test_specific_neighbors(self):
        topo = cartesian_topology(16, dims=(4, 4))
        # rank 0 = (0,0) on a periodic 4x4: up (3,0)=12, down (1,0)=4,
        # left (0,3)=3, right (0,1)=1.
        assert topo.out_neighbors(0) == (1, 3, 4, 12)


class TestNonPeriodic:
    def test_corner_has_two_neighbors(self):
        topo = cartesian_topology(16, dims=(4, 4), periodic=False)
        assert topo.outdegree(0) == 2
        assert topo.out_neighbors(0) == (1, 4)

    def test_interior_has_four(self):
        topo = cartesian_topology(16, dims=(4, 4), periodic=False)
        assert topo.outdegree(5) == 4

    def test_degenerate_extent(self):
        # extent 2 with periodicity: +1 and -1 land on the same rank.
        topo = cartesian_topology(2, dims=(2,))
        assert topo.out_neighbors(0) == (1,)


class TestValidation:
    def test_dims_mismatch(self):
        with pytest.raises(ValueError, match="do not multiply"):
            cartesian_topology(10, dims=(3, 3))
