"""Unit + property tests for matrix-induced topologies and the partition."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.topology.from_matrix import BlockRowPartition, topology_from_sparse


class TestBlockRowPartition:
    def test_even_split(self):
        part = BlockRowPartition(12, 4)
        assert [part.bounds(r) for r in range(4)] == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_remainder_spread_to_leaders(self):
        part = BlockRowPartition(10, 4)
        assert [part.bounds(r) for r in range(4)] == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_owner_inverse_of_bounds(self):
        part = BlockRowPartition(97, 8)
        for r in range(8):
            lo, hi = part.bounds(r)
            assert all(part.owner(row) == r for row in range(lo, hi))

    def test_owners_vectorized_matches_scalar(self):
        part = BlockRowPartition(101, 7)
        rows = np.arange(101)
        vec = part.owners(rows)
        assert all(vec[i] == part.owner(i) for i in range(101))

    def test_more_ranks_than_rows_rejected(self):
        with pytest.raises(ValueError, match="at least one row"):
            BlockRowPartition(3, 4)

    def test_out_of_range(self):
        part = BlockRowPartition(10, 2)
        with pytest.raises(ValueError):
            part.owner(10)
        with pytest.raises(ValueError):
            part.bounds(2)

    @given(st.integers(1, 500), st.integers(1, 32))
    def test_partition_covers_exactly(self, n_rows, n_ranks):
        if n_ranks > n_rows:
            return
        part = BlockRowPartition(n_rows, n_ranks)
        covered = []
        for r in range(n_ranks):
            lo, hi = part.bounds(r)
            assert hi > lo  # everyone owns at least one row
            covered.extend(range(lo, hi))
        assert covered == list(range(n_rows))


class TestTopologyFromSparse:
    def test_diagonal_matrix_no_edges(self):
        mat = sp.eye(16, format="csr")
        topo, _ = topology_from_sparse(mat, 4)
        assert topo.n_edges == 0

    def test_dense_matrix_complete_graph(self):
        mat = sp.csr_matrix(np.ones((16, 16)))
        topo, _ = topology_from_sparse(mat, 4)
        assert topo.n_edges == 4 * 3

    def test_edge_direction_is_owner_to_consumer(self):
        # Rank 1's rows reference a column owned by rank 0 => edge 0 -> 1.
        n = 8
        mat = sp.lil_matrix((n, n))
        mat[4, 0] = 1.0  # row 4 (rank 1 of 2) needs column 0 (rank 0)
        topo, part = topology_from_sparse(mat.tocsr(), 2)
        assert part.owner(4) == 1 and part.owner(0) == 0
        assert topo.has_edge(0, 1)
        assert not topo.has_edge(1, 0)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            topology_from_sparse(sp.random(4, 6, density=0.5), 2)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(2, 6), st.floats(0.01, 0.4))
    def test_edges_are_necessary_and_sufficient(self, n_ranks, density):
        """u -> v exists iff v's stripe references a column owned by u."""
        n = 36
        mat = sp.random(n, n, density=density, format="csr", random_state=7)
        topo, part = topology_from_sparse(mat, n_ranks)
        for v in range(n_ranks):
            lo, hi = part.bounds(v)
            needed_owners = {
                int(o) for o in part.owners(np.unique(mat[lo:hi].indices)) if int(o) != v
            } if mat[lo:hi].nnz else set()
            assert set(topo.in_neighbors(v)) == needed_owners
