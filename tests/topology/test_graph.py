"""Unit + property tests for DistGraphTopology."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.graph import DistGraphTopology


class TestConstruction:
    def test_from_lists(self):
        topo = DistGraphTopology(3, [[1, 2], [2], []])
        assert topo.out_neighbors(0) == (1, 2)
        assert topo.in_neighbors(2) == (0, 1)
        assert topo.n_edges == 3

    def test_from_mapping_missing_ranks(self):
        topo = DistGraphTopology(4, {0: [3]})
        assert topo.out_neighbors(1) == ()
        assert topo.in_neighbors(3) == (0,)

    def test_deduplicates_and_sorts(self):
        topo = DistGraphTopology(4, [[3, 1, 3, 1], [], [], []])
        assert topo.out_neighbors(0) == (1, 3)
        assert topo.n_edges == 2

    def test_self_loops_allowed(self):
        topo = DistGraphTopology(2, [[0, 1], []])
        assert topo.has_self_loops()
        assert 0 in topo.in_neighbors(0)

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            DistGraphTopology(3, [[5], [], []])
        with pytest.raises(ValueError, match="out-of-range"):
            DistGraphTopology(3, [[-1], [], []])

    def test_from_edges(self):
        topo = DistGraphTopology.from_edges(4, [(0, 1), (1, 2), (0, 2)])
        assert topo.n_edges == 3
        assert topo.has_edge(0, 1)
        assert not topo.has_edge(1, 0)


class TestQueries:
    def test_degrees(self):
        topo = DistGraphTopology(3, [[1, 2], [2], []])
        assert topo.outdegree(0) == 2
        assert topo.indegree(2) == 2
        assert topo.max_outdegree == 2
        assert topo.max_indegree == 2
        assert topo.average_outdegree == pytest.approx(1.0)

    def test_density(self):
        topo = DistGraphTopology(2, [[1], [0]])
        assert topo.density == pytest.approx(0.5)

    def test_edges_iterator(self):
        topo = DistGraphTopology(3, [[1], [2], [0]])
        assert sorted(topo.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_equality_and_hash(self):
        a = DistGraphTopology(3, [[1], [], []])
        b = DistGraphTopology(3, {0: [1]})
        c = DistGraphTopology(3, [[2], [], []])
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestTransforms:
    def test_reversed(self):
        topo = DistGraphTopology(3, [[1, 2], [], []])
        rev = topo.reversed()
        assert rev.out_neighbors(1) == (0,)
        assert rev.in_neighbors(0) == (1, 2)
        assert rev.reversed() == topo

    def test_networkx_roundtrip(self):
        topo = DistGraphTopology(5, [[1, 4], [2], [3], [], [0]])
        back = DistGraphTopology.from_networkx(topo.to_networkx())
        assert back == topo


@given(
    st.integers(2, 20).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=60,
            ),
        )
    )
)
def test_in_out_duality(args):
    """u in in_neighbors(v) iff v in out_neighbors(u), and edge counts agree."""
    n, edges = args
    topo = DistGraphTopology.from_edges(n, edges)
    for u in range(n):
        for v in topo.out_neighbors(u):
            assert u in topo.in_neighbors(v)
    assert sum(topo.indegree(v) for v in range(n)) == topo.n_edges
    assert sum(topo.outdegree(u) for u in range(n)) == topo.n_edges
