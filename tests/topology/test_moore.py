"""Unit + property tests for Moore neighborhoods and dims_create."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.topology.moore import dims_create, moore_neighbor_count, moore_topology


class TestDimsCreate:
    @pytest.mark.parametrize(
        "n,d,expected",
        [
            (16, 2, (4, 4)),
            (12, 2, (4, 3)),
            (64, 3, (4, 4, 4)),
            (2048, 2, (64, 32)),
            (7, 2, (7, 1)),
            (1, 3, (1, 1, 1)),
        ],
    )
    def test_known_factorizations(self, n, d, expected):
        assert dims_create(n, d) == expected

    @given(st.integers(1, 4096), st.integers(1, 4))
    def test_product_and_order(self, n, d):
        dims = dims_create(n, d)
        assert len(dims) == d
        assert math.prod(dims) == n
        assert list(dims) == sorted(dims, reverse=True)


class TestMooreTopology:
    def test_neighbor_count_formula(self):
        assert moore_neighbor_count(1, 2) == 8
        assert moore_neighbor_count(2, 2) == 24
        assert moore_neighbor_count(1, 3) == 26
        assert moore_neighbor_count(3, 2) == 48

    def test_exact_degree_on_big_grid(self):
        """(2r+1)^d - 1 neighbors when every extent exceeds 2r+1."""
        topo = moore_topology(64, r=1, d=2)  # 8x8 grid
        assert all(topo.outdegree(u) == 8 for u in range(64))

    def test_radius_two(self):
        topo = moore_topology(144, r=2, d=2)  # 12x12
        assert all(topo.outdegree(u) == 24 for u in range(144))

    def test_three_dimensional(self):
        topo = moore_topology(125, r=1, dims=(5, 5, 5))
        assert all(topo.outdegree(u) == 26 for u in range(125))

    def test_symmetric_graph(self):
        topo = moore_topology(36, r=1, d=2)
        for u in range(36):
            assert topo.out_neighbors(u) == topo.in_neighbors(u)

    def test_small_extent_wraps_dedupe(self):
        # 4x4 grid with r=2: extent 4 < 2r+1=5, whole grid is the neighborhood.
        topo = moore_topology(16, r=2, d=2)
        assert all(topo.outdegree(u) == 15 for u in range(16))

    def test_explicit_dims_must_multiply(self):
        with pytest.raises(ValueError, match="do not multiply"):
            moore_topology(10, r=1, dims=(3, 3))

    def test_locality_in_rank_space(self):
        """Row-major rank order keeps most neighbors nearby — the property
        Distance Halving exploits on structured topologies."""
        n = 256
        topo = moore_topology(n, r=1, d=2)  # 16x16
        close = sum(
            1
            for u in range(n)
            for v in topo.out_neighbors(u)
            if abs(u - v) <= 17  # within one grid row
        )
        assert close / topo.n_edges > 0.5

    def test_grid_adjacency_correct(self):
        topo = moore_topology(16, r=1, dims=(4, 4))
        # rank 5 = (1,1): neighbors are the 8 surrounding cells.
        assert topo.out_neighbors(5) == (0, 1, 2, 4, 6, 8, 9, 10)
