"""Shared fixtures: small machines and topologies used across the suite."""

import pytest

from repro.cluster import Machine
from repro.topology import erdos_renyi_topology


@pytest.fixture
def tiny_machine() -> Machine:
    """2 nodes x 2 sockets x 2 ranks = 8 ranks, flat network."""
    return Machine.single_switch(nodes=2, sockets_per_node=2, ranks_per_socket=2)


@pytest.fixture
def small_machine() -> Machine:
    """4 nodes x 2 sockets x 4 ranks = 32 ranks, Dragonfly+."""
    return Machine.niagara_like(nodes=4, ranks_per_socket=4)


@pytest.fixture
def medium_machine() -> Machine:
    """8 nodes x 2 sockets x 8 ranks = 128 ranks, Dragonfly+."""
    return Machine.niagara_like(nodes=8, ranks_per_socket=8)


@pytest.fixture
def small_topology(small_machine) -> object:
    return erdos_renyi_topology(small_machine.spec.n_ranks, 0.3, seed=1234)
