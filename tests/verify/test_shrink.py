"""The shrinker: minimizes while preserving the failure signature."""

from repro.exec.spec import MachineSpec, TopologySpec
from repro.collectives.runner import RunOptions
from repro.sim.faults import FaultPlan, LinkFault, MessageLoss, Straggler
from repro.verify import Scenario, run_trial, shrink_scenario
from repro.verify.differential import make_bug
from repro.verify.shrink import _candidates


def _failing_trial(scenario):
    corrupt = make_bug("payload-corruption")
    trial = run_trial(scenario, corrupt=corrupt)
    assert not trial.ok
    return trial, corrupt


class TestShrinking:
    def test_shrinks_machine_message_and_density(self):
        scenario = Scenario(
            topology=TopologySpec("random", 32, density=0.6, seed=4),
            machine=MachineSpec(nodes=4, sockets_per_node=2,
                                ranks_per_socket=4),
            msg_size=65536,
            options=RunOptions(trace=True),
        )
        trial, corrupt = _failing_trial(scenario)
        outcome = shrink_scenario(trial, corrupt=corrupt)
        assert outcome.scenario.n_ranks < scenario.n_ranks
        assert outcome.scenario.msg_size < scenario.msg_size
        assert not outcome.result.ok
        # Whatever is left still violates part of the original signature.
        assert outcome.result.signature() & trial.signature()

    def test_keeps_edges_the_bug_needs(self):
        # payload-corruption needs at least one delivered block, so the
        # shrinker must not minimize to a scenario with no edges at all.
        scenario = Scenario(
            topology=TopologySpec("random", 16, density=0.5, seed=1),
            machine=MachineSpec(nodes=2, sockets_per_node=2,
                                ranks_per_socket=4),
            msg_size=512,
            options=RunOptions(trace=True),
        )
        trial, corrupt = _failing_trial(scenario)
        outcome = shrink_scenario(trial, corrupt=corrupt)
        assert outcome.scenario.topology.build().n_edges > 0

    def test_strips_irrelevant_fault_plan(self):
        plan = FaultPlan(
            link_faults=(LinkFault(alpha_factor=2.0),),
            stragglers=(Straggler(rank=1, compute_factor=4.0),),
            losses=(MessageLoss(probability=0.02),),
            seed=5,
        )
        scenario = Scenario(
            topology=TopologySpec("random", 16, density=0.4, seed=2),
            machine=MachineSpec(nodes=2, sockets_per_node=2,
                                ranks_per_socket=4),
            msg_size=512,
            options=RunOptions(trace=True, fault_plan=plan, fallback="naive"),
            profile="faulty",
        )
        trial, corrupt = _failing_trial(scenario)
        outcome = shrink_scenario(trial, corrupt=corrupt)
        # The corruption bug has nothing to do with faults: the whole plan
        # must shrink away.
        assert outcome.scenario.options.fault_plan is None

    def test_bounded_trials(self):
        scenario = Scenario(
            topology=TopologySpec("random", 24, density=0.5, seed=3),
            machine=MachineSpec(nodes=3, sockets_per_node=2,
                                ranks_per_socket=4),
            msg_size=4096,
            options=RunOptions(trace=True),
        )
        trial, corrupt = _failing_trial(scenario)
        outcome = shrink_scenario(trial, corrupt=corrupt, max_trials=10)
        assert outcome.trials <= 10
        assert not outcome.result.ok


class TestCandidates:
    def test_candidates_keep_topology_and_machine_consistent(self):
        scenario = Scenario(
            topology=TopologySpec("random", 16, density=0.3, seed=0),
            machine=MachineSpec(nodes=2, sockets_per_node=2,
                                ranks_per_socket=4),
            msg_size=(64,) * 16,
            options=RunOptions(trace=True),
        )
        for candidate in _candidates(scenario):
            assert candidate.topology.n == candidate.machine.n_ranks
            if isinstance(candidate.msg_size, tuple):
                assert len(candidate.msg_size) == candidate.topology.n

    def test_structured_kinds_offer_a_random_reduction(self):
        scenario = Scenario(
            topology=TopologySpec("moore", 16, radius=2, dims=2),
            machine=MachineSpec(nodes=2, sockets_per_node=2,
                                ranks_per_socket=4),
            msg_size=64,
            options=RunOptions(trace=True),
        )
        kinds = {c.topology.kind for c in _candidates(scenario)}
        assert "random" in kinds
