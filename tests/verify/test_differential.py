"""The fuzz driver end to end, including the mutation self-test.

The mutation test is the subsystem's acceptance check: plant a known
payload-corruption bug, and the pipeline must (a) flag it, (b) shrink the
scenario to a handful of ranks, and (c) emit a repro file that still
reproduces on replay — exactly what it would do for a real defect.
"""

import json

import pytest

from repro.verify import (
    fuzz,
    generate_scenario,
    make_bug,
    replay,
    replay_file,
    run_trial,
)
from repro.verify.differential import ALGORITHMS, BUG_INJECTORS


class TestCleanCampaigns:
    @pytest.mark.parametrize("profile", ("clean", "faulty"))
    def test_short_campaign_is_green(self, tmp_path, profile):
        report = fuzz(seed=0, iterations=25, profile=profile,
                      out_dir=tmp_path)
        assert report.ok, report.summary()
        assert report.iterations_run == 25
        assert report.stopped_by == "iterations"
        assert not list(tmp_path.iterdir())  # no repro files on success

    def test_time_budget_stops_early(self, tmp_path):
        report = fuzz(seed=0, iterations=10_000, time_budget=0.0,
                      out_dir=tmp_path)
        assert report.ok
        assert report.stopped_by == "time_budget"
        assert report.iterations_run < 10_000

    def test_trials_run_every_algorithm(self):
        trial = run_trial(generate_scenario(0, 1))
        assert set(trial.runs) == set(ALGORITHMS)
        assert trial.ok


class TestMutationSelfTest:
    """Acceptance: an injected payload-corruption bug is caught + shrunk."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("fuzz")
        return fuzz(seed=0, iterations=50, inject_bug="payload-corruption",
                    out_dir=out)

    def test_bug_is_caught(self, report):
        assert not report.ok
        assert report.stopped_by == "failure"
        names = {v.invariant for v in report.failure.violations}
        assert "payload_equivalence" in names
        assert "cross_algorithm" in names

    def test_shrunk_to_at_most_8_ranks(self, report):
        assert report.shrunk is not None
        assert report.shrunk.n_ranks <= 8

    def test_repro_file_replays(self, report):
        assert report.repro_path is not None and report.repro_path.exists()
        violations = replay_file(report.repro_path)
        assert any(v.invariant == "payload_equivalence" for v in violations)

    def test_repro_payload_is_wellformed(self, report):
        data = json.loads(report.repro_path.read_text())
        assert data["inject_bug"] == "payload-corruption"
        assert data["scenario"]["topology"]["n"] == report.shrunk.n_ranks
        assert data["violations"]

    def test_pytest_snippet_written(self, report):
        assert report.snippet_path is not None
        text = report.snippet_path.read_text()
        assert "replay_file" in text
        assert report.repro_path.name in text

    def test_repro_without_injector_reports_clean(self, report):
        # The planted bug lives in the injector, not the code under test:
        # replaying the scenario bare proves the shrunk scenario itself is
        # healthy (i.e. the pipeline minimized the trigger, not real code).
        data = json.loads(report.repro_path.read_text())
        data["inject_bug"] = None
        assert replay(data) == []


class TestBugRegistry:
    def test_known_bug_resolves(self):
        assert make_bug("payload-corruption") is BUG_INJECTORS["payload-corruption"]
        assert make_bug(None) is None

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError, match="unknown bug"):
            make_bug("off-by-one")


class TestDeterminism:
    def test_same_campaign_same_failure(self, tmp_path):
        a = fuzz(seed=3, iterations=5, inject_bug="payload-corruption",
                 out_dir=tmp_path / "a")
        b = fuzz(seed=3, iterations=5, inject_bug="payload-corruption",
                 out_dir=tmp_path / "b")
        assert a.failure.scenario == b.failure.scenario
        assert a.shrunk == b.shrunk
        assert [v.as_dict() for v in a.failure.violations] == \
               [v.as_dict() for v in b.failure.violations]
