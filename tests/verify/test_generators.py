"""Scenario generation: deterministic, replayable, within bounds."""

import pytest

from repro.verify import PROFILES, Scenario, ScenarioConfig, generate_scenario


class TestDeterminism:
    def test_same_seed_iteration_same_scenario(self):
        for i in range(20):
            assert generate_scenario(7, i) == generate_scenario(7, i)

    def test_scenarios_vary_across_iterations(self):
        scenarios = {generate_scenario(0, i) for i in range(30)}
        assert len(scenarios) > 20  # frozen dataclasses: set dedup works

    def test_seed_changes_the_stream(self):
        a = [generate_scenario(0, i) for i in range(10)]
        b = [generate_scenario(1, i) for i in range(10)]
        assert a != b


class TestBounds:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_ranks_and_topology_within_config(self, profile):
        config = ScenarioConfig(profile=profile)
        cap = (config.max_nodes * config.max_sockets_per_node
               * config.max_ranks_per_socket)
        for i in range(50):
            s = generate_scenario(3, i, config)
            assert 1 <= s.n_ranks <= cap
            assert s.topology.n == s.machine.n_ranks
            assert s.options.trace  # conservation checks need aggregates
            assert s.options.max_events == config.max_events

    def test_clean_profile_never_draws_faults(self):
        for i in range(50):
            s = generate_scenario(0, i)
            assert s.options.fault_plan is None
            assert s.options.fallback is None

    def test_faulty_profile_always_has_a_plan_and_fallback(self):
        config = ScenarioConfig(profile="faulty")
        for i in range(50):
            s = generate_scenario(0, i, config)
            assert s.options.fault_plan is not None
            assert s.options.fallback == "naive"

    def test_crash_profile_draws_survivable_plans(self):
        config = ScenarioConfig(profile="crash")
        fired = 0
        for i in range(80):
            s = generate_scenario(2, i, config)
            plan = s.options.fault_plan
            if plan is None:
                # A lone rank has no survivable crash: no plan is drawn.
                assert s.n_ranks == 1
                assert s.options.on_failure == "abort"
                continue
            fired += 1
            victims = {c.rank for c in plan.crashes}
            assert 1 <= len(victims) <= 2
            assert len(victims) < s.n_ranks  # always >= 1 survivor
            assert all(0 <= c.rank < s.n_ranks for c in plan.crashes)
            assert all(c.time >= 0.0 for c in plan.crashes)
            # Structured detection rides along: a starving round surfaces
            # as RankFailedError, never a watchdog trip.
            assert plan.detector is not None
            assert s.options.on_failure in ("shrink", "degrade")
            assert s.options.fallback == "naive"
        assert fired > 40

    def test_faulty_stragglers_reference_real_ranks(self):
        config = ScenarioConfig(profile="faulty")
        for i in range(80):
            s = generate_scenario(1, i, config)
            for straggler in s.options.fault_plan.stragglers:
                assert 0 <= straggler.rank < s.n_ranks

    def test_generator_covers_degenerate_shapes(self):
        # The bug classes the satellites pin (empty neighborhoods,
        # self-loops, single-socket machines) must actually be drawable.
        seen_empty = seen_loops = seen_single_socket = False
        for i in range(200):
            s = generate_scenario(0, i)
            if s.topology.kind == "random" and s.topology.density == 0.0:
                seen_empty = True
            if s.topology.kind == "random" and s.topology.self_loops:
                seen_loops = True
            if s.machine.sockets_per_node == 1 and s.machine.nodes == 1:
                seen_single_socket = True
        assert seen_empty and seen_loops and seen_single_socket

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            ScenarioConfig(profile="chaotic")


class TestSerde:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_round_trip_is_exact(self, profile):
        config = ScenarioConfig(profile=profile)
        for i in range(30):
            s = generate_scenario(5, i, config)
            assert Scenario.from_dict(s.to_dict()) == s

    def test_round_trip_preserves_spec_digests(self):
        s = generate_scenario(2, 11)
        restored = Scenario.from_dict(s.to_dict())
        for algorithm in ("naive", "distance_halving"):
            assert (restored.spec_for(algorithm).digest()
                    == s.spec_for(algorithm).digest())

    def test_unknown_format_rejected(self):
        data = generate_scenario(0, 0).to_dict()
        data["format"] = 999
        with pytest.raises(ValueError, match="format"):
            Scenario.from_dict(data)
