"""The invariant battery: green on healthy runs, red on doctored ones."""

import copy
import dataclasses

import pytest

from repro.exec.spec import MachineSpec, TopologySpec
from repro.verify import Scenario, generate_scenario, run_trial
from repro.verify.differential import ALGORITHMS
from repro.verify.invariants import (
    InvariantViolation,
    assert_invariants,
    check_cross_algorithm,
    check_dh_structure,
    check_payload_equivalence,
    check_relabel_conservation,
    check_size_monotonicity,
    check_trace_conservation,
    relabel_topology,
    run_invariants,
    socket_permutation,
)
from repro.collectives.runner import RunOptions


@pytest.fixture(scope="module")
def clean_trial():
    """One healthy mid-size trial shared by the doctoring tests."""
    scenario = Scenario(
        topology=TopologySpec("random", 16, density=0.3, seed=9),
        machine=MachineSpec(nodes=2, sockets_per_node=2, ranks_per_socket=4),
        msg_size=512,
        options=RunOptions(trace=True),
    )
    trial = run_trial(scenario)
    assert trial.ok, [str(v) for v in trial.violations]
    return trial


class TestHealthyRuns:
    def test_full_battery_green_on_clean_scenarios(self):
        for i in range(5):
            trial = run_trial(generate_scenario(11, i))
            assert trial.ok, [str(v) for v in trial.violations]

    def test_assert_invariants_passes(self, clean_trial):
        topology = clean_trial.scenario.topology.build()
        assert_invariants(clean_trial.scenario, topology, clean_trial.runs)

    def test_all_algorithms_ran(self, clean_trial):
        assert set(clean_trial.runs) == set(ALGORITHMS)


class TestDoctoredRuns:
    """Each detector must fire when its law is broken by hand."""

    def test_payload_corruption_detected(self, clean_trial):
        topology = clean_trial.scenario.topology.build()
        runs = {k: copy.copy(v) for k, v in clean_trial.runs.items()}
        runs["naive"] = dataclasses.replace(
            runs["naive"],
            results=[dict(r) for r in runs["naive"].results],
        )
        victim = next(r for r in runs["naive"].results if r)
        victim[next(iter(victim))] = "garbage"
        violations = check_payload_equivalence(topology, runs)
        assert any(v.invariant == "payload_equivalence" for v in violations)

    def test_cross_algorithm_disagreement_detected(self, clean_trial):
        runs = dict(clean_trial.runs)
        runs["distance_halving"] = dataclasses.replace(
            runs["distance_halving"],
            results=[dict(r) for r in runs["distance_halving"].results],
        )
        victim = next(r for r in runs["distance_halving"].results if r)
        victim[next(iter(victim))] = "garbage"
        violations = check_cross_algorithm(runs)
        assert any(v.invariant == "cross_algorithm" for v in violations)

    def test_missing_block_detected_as_neighbor_set(self, clean_trial):
        topology = clean_trial.scenario.topology.build()
        runs = {"naive": dataclasses.replace(
            clean_trial.runs["naive"],
            results=[dict(r) for r in clean_trial.runs["naive"].results],
        )}
        victim = next(r for r in runs["naive"].results if r)
        victim.pop(next(iter(victim)))
        violations = check_payload_equivalence(topology, runs)
        assert violations and violations[0].data["kind"] == "neighbor_set"

    def test_trace_undercount_detected(self, clean_trial):
        run = clean_trial.runs["naive"]
        doctored = dataclasses.replace(
            run, trace_summary=copy.deepcopy(run.trace_summary)
        )
        for counters in doctored.trace_summary.values():
            if counters["messages"]:
                counters["messages"] -= 1
                break
        violations = check_trace_conservation(
            clean_trial.scenario, {"naive": doctored}
        )
        assert any("engine counted" in v.detail or "delivered" in v.detail
                   for v in violations)

    def test_phantom_loss_detected_on_clean_plan(self, clean_trial):
        run = clean_trial.runs["naive"]
        doctored = dataclasses.replace(
            run, trace_summary=copy.deepcopy(run.trace_summary)
        )
        for counters in doctored.trace_summary.values():
            if counters["messages"]:
                counters["lost_messages"] += 1
                counters["delivered_messages"] -= 1
                break
        violations = check_trace_conservation(
            clean_trial.scenario, {"naive": doctored}
        )
        assert any("lost" in v.detail for v in violations)

    def test_missing_summary_detected_when_tracing(self, clean_trial):
        doctored = dataclasses.replace(
            clean_trial.runs["naive"], trace_summary=None
        )
        violations = check_trace_conservation(
            clean_trial.scenario, {"naive": doctored}
        )
        assert violations and "trace_summary" in violations[0].detail

    def test_monotonicity_violation_detected(self, clean_trial):
        # A falsified large-size time *below* any achievable small-size
        # time makes the halved-size rerun look slower.
        doctored = dataclasses.replace(
            clean_trial.runs["naive"], simulated_time=1e-12
        )
        violations = check_size_monotonicity(
            clean_trial.scenario, {"naive": doctored}
        )
        assert any(v.invariant == "size_monotonicity" for v in violations)

    def test_naive_traffic_change_detected_under_relabeling(self, clean_trial):
        topology = clean_trial.scenario.topology.build()
        doctored = dataclasses.replace(
            clean_trial.runs["naive"],
            messages_sent=clean_trial.runs["naive"].messages_sent + 1,
        )
        violations = check_relabel_conservation(
            clean_trial.scenario, topology, {"naive": doctored}
        )
        assert any("totals changed" in v.detail for v in violations)


class TestRelabeling:
    def test_socket_permutation_is_machine_automorphic(self):
        perm = socket_permutation(16, 4, seed=3)
        assert sorted(perm) == list(range(16))
        for r, p in enumerate(perm):
            assert r // 4 == p // 4  # never leaves its socket

    def test_relabel_topology_preserves_edge_count_and_degrees(self):
        topo = TopologySpec("random", 12, density=0.4, seed=2).build()
        perm = socket_permutation(12, 4, seed=5)
        relabeled = relabel_topology(topo, perm)
        assert relabeled.n_edges == topo.n_edges
        for r in range(12):
            assert relabeled.outdegree(perm[r]) == topo.outdegree(r)
            assert relabeled.indegree(perm[r]) == topo.indegree(r)


class TestDHStructure:
    def test_green_on_structured_and_random_topologies(self):
        for spec in (
            TopologySpec("random", 16, density=0.3, seed=1),
            TopologySpec("random", 16, density=0.4, seed=2, self_loops=True),
            TopologySpec("moore", 16, radius=1, dims=2),
        ):
            scenario = Scenario(
                topology=spec,
                machine=MachineSpec(nodes=2, sockets_per_node=2,
                                    ranks_per_socket=4),
                msg_size=64,
                options=RunOptions(trace=True),
            )
            assert check_dh_structure(scenario, spec.build()) == []

    def test_battery_skips_dh_structure_after_fallback(self):
        # A fallback run executed naive's schedule; DH pattern checks
        # would assert properties of code that never ran.
        scenario = generate_scenario(0, 0)
        trial = run_trial(scenario)
        fallback_run = dataclasses.replace(
            trial.runs["distance_halving"], requested_algorithm="distance_halving"
        )
        runs = dict(trial.runs, distance_halving=fallback_run)
        topology = scenario.topology.build()
        violations = run_invariants(scenario, topology, runs, metamorphic=False)
        assert not any(v.invariant == "dh_structure" for v in violations)


class TestInvariantViolationError:
    def test_error_carries_structured_violations(self, clean_trial):
        topology = clean_trial.scenario.topology.build()
        runs = {"naive": dataclasses.replace(
            clean_trial.runs["naive"],
            results=[dict(r) for r in clean_trial.runs["naive"].results],
        )}
        victim = next(r for r in runs["naive"].results if r)
        victim[next(iter(victim))] = "garbage"
        with pytest.raises(InvariantViolation) as excinfo:
            assert_invariants(clean_trial.scenario, topology, runs)
        assert excinfo.value.violations
        assert isinstance(excinfo.value, AssertionError)
        assert "payload_equivalence" in str(excinfo.value)
