"""Tests for the model-vs-simulation validation metrics."""

import pytest

from repro.model.equations import ModelParams
from repro.model.validation import ModelValidation, validate_model


class TestValidateModel:
    @pytest.fixture(scope="class")
    def validation(self):
        from repro.cluster import Machine

        machine = Machine.niagara_like(nodes=4, ranks_per_socket=4)
        return validate_model(
            machine,
            densities=(0.1, 0.4, 0.8),
            sizes=("64", "4KB", "128KB"),
        )

    def test_grid_covered(self, validation):
        assert validation.cells == 9
        assert len(validation.records) == 9

    def test_record_fields(self, validation):
        rec = validation.records[0]
        assert {"density", "msg_size", "measured_speedup",
                "predicted_speedup", "log_error"} <= set(rec)
        assert rec["measured_speedup"] > 0 and rec["predicted_speedup"] > 0

    def test_model_orders_cells_correctly(self, validation):
        """The paper's validation claim, quantified: strong rank agreement."""
        assert validation.spearman > 0.6

    def test_metrics_in_range(self, validation):
        assert -1.0 <= validation.spearman <= 1.0
        assert 0.0 <= validation.sign_agreement <= 1.0
        assert validation.mean_abs_log_error >= 0.0

    def test_known_conservatism(self, validation):
        """The model under-predicts DH at large messages (worst-case doubling
        assumption) — the systematic bias the paper acknowledges."""
        big = [r for r in validation.records if r["msg_size"] >= 128 * 1024]
        assert all(r["predicted_speedup"] <= r["measured_speedup"] for r in big)

    def test_explicit_params_respected(self):
        from repro.cluster import Machine

        machine = Machine.niagara_like(nodes=2, ranks_per_socket=2)
        params = ModelParams(
            n=machine.spec.n_ranks, sockets=2, ranks_per_socket=2,
            alpha=1e-6, beta=1e10,
        )
        validation = validate_model(
            machine, densities=(0.5,), sizes=("64",), params=params
        )
        assert isinstance(validation, ModelValidation)
        assert validation.cells == 1
