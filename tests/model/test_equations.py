"""Unit + property tests for the paper's Eqs. (1)-(8)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.model.equations import (
    ModelParams,
    dh_intra_socket_time,
    dh_messages,
    dh_off_socket_time,
    dh_total_time,
    expected_intra_message_size,
    expected_intra_messages,
    expected_off_socket_messages,
    naive_messages,
    naive_rank_time,
    naive_total_time,
)


@pytest.fixture
def paper_params():
    """The Section V-A worked example: 2000 cores, 50 nodes, 2x20."""
    return ModelParams(n=2000, sockets=2, ranks_per_socket=20, alpha=1.25e-6, beta=1e10)


class TestModelParams:
    def test_halving_steps(self, paper_params):
        # ceil(log2(2000/20)) + 1 = ceil(6.64) + 1 = 8.
        assert paper_params.halving_steps == 8

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            ModelParams(n=10, sockets=2, ranks_per_socket=20, alpha=1e-6, beta=1e9)
        with pytest.raises(ValueError):
            ModelParams(n=100, sockets=2, ranks_per_socket=20, alpha=0, beta=1e9)

    def test_from_machine(self, small_machine):
        params = ModelParams.from_machine(small_machine)
        assert params.n == small_machine.spec.n_ranks
        assert params.ranks_per_socket == small_machine.spec.ranks_per_socket
        assert params.alpha > 0 and params.beta > 0


class TestEquation1:
    def test_dense_graph_hits_step_bound(self, paper_params):
        assert expected_off_socket_messages(paper_params, 0.3) == 8.0

    def test_sparse_graph_limited_by_degree(self, paper_params):
        # delta*(n-L) = 0.001 * 1980 = 1.98 < 8.
        assert expected_off_socket_messages(paper_params, 0.001) == pytest.approx(1.98)

    def test_zero_density(self, paper_params):
        assert expected_off_socket_messages(paper_params, 0.0) == 0.0

    def test_vectorized(self, paper_params):
        out = expected_off_socket_messages(paper_params, np.array([0.0, 0.001, 0.5]))
        assert out.shape == (3,)
        assert out[0] == 0.0 and out[2] == 8.0


class TestEquation2And3:
    def test_intra_messages_bounded_by_L(self, paper_params):
        for delta in (0.01, 0.3, 0.9, 1.0):
            assert expected_intra_messages(paper_params, delta) <= 20.0

    def test_worst_case_is_L(self, paper_params):
        assert expected_intra_messages(paper_params, 1.0) == pytest.approx(20.0)

    def test_paper_example_values(self, paper_params):
        # Section V-A: "23 (7 off-socket + 16 intra-socket)" with loose paper
        # rounding; the formulas give 8 + 19.2 = 27.2, matching the paper's
        # own ceiling claim "will not exceed 27 messages" for delta <= 1.
        assert dh_messages(paper_params, 0.3) == pytest.approx(27.19, abs=0.01)
        assert float(naive_messages(paper_params, 0.3)) == pytest.approx(600.0)

    def test_message_ceiling_claim(self, paper_params):
        """Paper: 'the average number of messages ... will not exceed 27'."""
        deltas = np.linspace(0.0, 1.0, 101)
        assert float(dh_messages(paper_params, deltas).max()) <= 28.1

    def test_intra_size_scales_with_m(self, paper_params):
        small = expected_intra_message_size(paper_params, 0.3, 8)
        big = expected_intra_message_size(paper_params, 0.3, 800)
        assert big == pytest.approx(100 * small)


class TestTimes:
    def test_naive_time_eq4_eq5(self, paper_params):
        m, delta = 1024, 0.3
        per_rank = 2 * delta * paper_params.n * (paper_params.alpha + m / paper_params.beta)
        assert naive_rank_time(paper_params, delta, m) == pytest.approx(per_rank)
        assert naive_total_time(paper_params, delta, m) == pytest.approx(40 * per_rank)

    def test_dh_off_socket_geometric_series(self, paper_params):
        """Eq. (6) closed form equals the explicit sum for integer n_off."""
        m = 512
        n_off = int(expected_off_socket_messages(paper_params, 0.5))
        explicit = sum(
            paper_params.alpha + (2**k) * m / paper_params.beta for k in range(n_off)
        ) + 0  # messages sized m, 2m, ..., 2^(n_off-1) m => sum = (2^n_off - 1) m
        # Paper's Eq. 6 writes the last term as 2^{E[n_off]} m, i.e. the
        # series m + 2m + ... + 2^{n_off} m = (2^{n_off+1} - 1) m.
        paper_series = n_off * paper_params.alpha + (
            (2 ** (n_off + 1) - 1) * m / paper_params.beta
        )
        assert dh_off_socket_time(paper_params, 0.5, m) == pytest.approx(paper_series)
        assert paper_series > explicit  # the paper's series is one doubling deeper

    def test_dh_beats_naive_small_dense(self, paper_params):
        assert dh_total_time(paper_params, 0.7, 8) < naive_total_time(paper_params, 0.7, 8)

    def test_naive_beats_dh_large_sparse(self, paper_params):
        big = 4 * 1024 * 1024
        assert dh_total_time(paper_params, 0.05, big) > naive_total_time(
            paper_params, 0.05, big
        )

    @given(st.floats(0.01, 1.0), st.floats(0.01, 1.0))
    def test_naive_time_monotone_in_density(self, d1, d2):
        params = ModelParams(n=200, sockets=2, ranks_per_socket=10, alpha=1e-6, beta=1e9)
        lo, hi = min(d1, d2), max(d1, d2)
        assert naive_total_time(params, lo, 64) <= naive_total_time(params, hi, 64)

    @given(st.integers(1, 1 << 22), st.integers(1, 1 << 22))
    def test_times_monotone_in_message_size(self, m1, m2):
        params = ModelParams(n=200, sockets=2, ranks_per_socket=10, alpha=1e-6, beta=1e9)
        lo, hi = min(m1, m2), max(m1, m2)
        assert dh_total_time(params, 0.3, lo) <= dh_total_time(params, 0.3, hi)
        assert naive_total_time(params, 0.3, lo) <= naive_total_time(params, 0.3, hi)
