"""Hockney-crossover helpers feeding the adaptive-selection prior."""

import pytest

from repro.model.crossover import (
    MODELED,
    analytic_ranking,
    crossover_density,
    crossover_size,
    halving_viable,
    model_params_for,
    predicted_times,
)

PARAMS = model_params_for(n=512, sockets=64, ranks_per_socket=8,
                          alpha=2e-6, beta=8e9)


class TestModelParamsFor:
    def test_clamps_ranks_per_socket_to_the_communicator(self):
        params = model_params_for(n=2, sockets=1, ranks_per_socket=8,
                                  alpha=1e-6, beta=1e9)
        assert params.ranks_per_socket == 2

    def test_degenerate_inputs_stay_positive(self):
        params = model_params_for(n=0, sockets=0, ranks_per_socket=0,
                                  alpha=1e-6, beta=1e9)
        assert params.n >= 1 and params.sockets >= 1
        assert params.ranks_per_socket >= 1


class TestAnalyticRanking:
    def test_modeled_pair_ordered_by_predicted_time(self):
        for delta in (0.05, 0.3, 0.9):
            times = predicted_times(PARAMS, delta, 4096.0)
            ranking = analytic_ranking(PARAMS, delta, 4096.0)
            assert set(ranking) == set(MODELED)
            assert times[ranking[0]] <= times[ranking[1]]

    def test_unmodeled_candidates_follow_in_given_order(self):
        candidates = ("naive", "common_neighbor", "distance_halving",
                      "bruck")
        ranking = analytic_ranking(PARAMS, 0.3, 4096.0,
                                   candidates=candidates)
        assert set(ranking) == set(candidates)
        assert ranking[2:] == ("common_neighbor", "bruck")


class TestCrossovers:
    def test_density_crossover_brackets_the_flip(self):
        cross = crossover_density(PARAMS, 65536.0)
        if cross is None:
            pytest.skip("naive predicted best at every density")
        above = predicted_times(PARAMS, min(1.0, cross + 0.01), 65536.0)
        assert above["distance_halving"] < above["naive"]

    def test_size_crossover_consistent_with_predictions(self):
        cross = crossover_size(PARAMS, 0.6)
        if cross is None:
            below = predicted_times(PARAMS, 0.6, float(1 << 24))
            assert below["naive"] <= below["distance_halving"]
        else:
            at = predicted_times(PARAMS, 0.6, float(cross))
            assert at["distance_halving"] < at["naive"]

    def test_crossovers_agree_with_the_ranking(self):
        cross = crossover_density(PARAMS, 65536.0)
        if cross is None:
            pytest.skip("no crossover at this size")
        hi = analytic_ranking(PARAMS, min(1.0, cross + 0.05), 65536.0)
        assert hi[0] == "distance_halving"


class TestHalvingViable:
    def test_single_socket_communicator_has_no_levels(self):
        assert not halving_viable(4, 8)

    def test_multi_socket_communicator_does(self):
        assert halving_viable(64, 8)
