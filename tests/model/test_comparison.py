"""Unit tests for the Fig. 2 model grid."""

import numpy as np
import pytest

from repro.model.comparison import FIG2_DENSITIES, FIG2_SIZES, model_grid
from repro.model.equations import ModelParams


@pytest.fixture
def params():
    return ModelParams(n=2000, sockets=2, ranks_per_socket=20, alpha=1.25e-6, beta=1e10)


class TestModelGrid:
    def test_grid_shape(self, params):
        grid = model_grid(params)
        assert grid.naive_time.shape == (len(FIG2_DENSITIES), len(FIG2_SIZES))
        assert grid.dh_time.shape == grid.naive_time.shape
        assert (grid.naive_time > 0).all() and (grid.dh_time > 0).all()

    def test_custom_axes(self, params):
        grid = model_grid(params, densities=(0.1, 0.5), sizes=("8", "4MB"))
        assert grid.densities == (0.1, 0.5)
        assert grid.sizes == (8, 4 * 1024 * 1024)

    def test_speedup_definition(self, params):
        grid = model_grid(params)
        assert np.allclose(grid.speedup, grid.naive_time / grid.dh_time)

    def test_crossover_moves_right_with_density(self, params):
        """Fig. 2's key shape: denser graphs keep DH winning to larger sizes."""
        grid = model_grid(params)
        crossings = [grid.crossover_size(d) or 0 for d in grid.densities]
        assert crossings == sorted(crossings)
        assert crossings[-1] > crossings[0]

    def test_crossover_none_when_dh_never_wins(self, params):
        grid = model_grid(params, densities=(0.001,), sizes=("4MB",))
        assert grid.crossover_size(0.001) is None

    def test_rows_flatten_grid(self, params):
        grid = model_grid(params)
        rows = grid.rows()
        assert len(rows) == len(FIG2_DENSITIES) * len(FIG2_SIZES)
        first = rows[0]
        assert set(first) == {
            "density",
            "msg_size",
            "msg_label",
            "naive_time",
            "dh_time",
            "speedup",
        }

    def test_small_message_speedups_match_paper_magnitude(self, params):
        """Fig. 2 predicts order-10x model speedups for small messages at
        moderate-to-high density at the paper's scale."""
        grid = model_grid(params)
        i = grid.densities.index(0.7)
        assert grid.speedup[i, 0] > 10.0
