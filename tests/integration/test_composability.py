"""Simulator composability: applications embed collectives via ``yield from``.

A rank program can delegate to an algorithm's program generator and mix in
its own computation — the natural way to model a full application phase
(and the mechanism behind non-blocking/overlap studies).  These tests pin
that contract, including compute/communication overlap semantics.
"""

import pytest

from repro.collectives import get_algorithm, run_allgather
from repro.collectives.base import ExecutionContext
from repro.sim.engine import Engine
from repro.topology import erdos_renyi_topology


def make_ctx(topology, machine, msg_size):
    return ExecutionContext(
        topology=topology,
        machine=machine,
        msg_size=msg_size,
        payloads=list(range(topology.n)),
        results=[{} for _ in range(topology.n)],
    )


class TestYieldFromComposition:
    def test_app_program_embeds_collective(self, small_machine, small_topology):
        """compute -> allgather -> compute, per rank, in one program."""
        alg = get_algorithm("distance_halving")
        alg.setup(small_topology, small_machine)
        ctx = make_ctx(small_topology, small_machine, 1024)
        engine = Engine(n_ranks=small_topology.n, machine=small_machine)
        compute = 5e-6

        def make_program(rank):
            def program(comm):
                yield comm.compute(compute)
                inner = alg.program(comm, ctx)
                if inner is not None:
                    yield from inner
                yield comm.compute(compute)

            return program

        engine.spawn_all(make_program)
        makespan = engine.run()

        # Results are the standard allgather post-condition...
        for v in range(small_topology.n):
            assert set(ctx.results[v]) == set(small_topology.in_neighbors(v))
        # ...and the makespan includes both compute phases.
        plain = run_allgather(alg, small_topology, small_machine, 1024).simulated_time
        assert makespan >= plain + 2 * compute - 1e-12

    def test_two_collectives_back_to_back(self, small_machine, small_topology):
        """Two different algorithms can run sequentially in one program
        (distinct contexts keep their results separate)."""
        dh = get_algorithm("distance_halving")
        cn = get_algorithm("common_neighbor")
        dh.setup(small_topology, small_machine)
        cn.setup(small_topology, small_machine)
        ctx1 = make_ctx(small_topology, small_machine, 256)
        ctx2 = make_ctx(small_topology, small_machine, 256)
        engine = Engine(n_ranks=small_topology.n, machine=small_machine)

        def make_program(rank):
            def program(comm):
                first = dh.program(comm, ctx1)
                if first is not None:
                    yield from first
                second = cn.program(comm, ctx2)
                if second is not None:
                    yield from second

            return program

        engine.spawn_all(make_program)
        engine.run()
        for ctx in (ctx1, ctx2):
            for v in range(small_topology.n):
                assert set(ctx.results[v]) == set(small_topology.in_neighbors(v))

    def test_overlap_hides_computation(self, small_machine):
        """Non-blocking style: computation issued while communication is in
        flight should (partially) hide — the motivation for the related
        work's non-blocking neighborhood collectives."""
        n = small_machine.spec.n_ranks
        topo = erdos_renyi_topology(n, 0.4, seed=91)
        msg = 1 << 16
        compute = 2e-4  # comparable to the transfer time

        def run_mode(overlap: bool) -> float:
            engine = Engine(n_ranks=n, machine=small_machine)

            def make_program(rank):
                def program(comm):
                    recvs = [comm.irecv(src, tag=0) for src in topo.in_neighbors(rank)]
                    sends = [
                        comm.isend(dst, msg, tag=0, payload=rank)
                        for dst in topo.out_neighbors(rank)
                    ]
                    if overlap:
                        yield comm.compute(compute)      # while messages fly
                        yield comm.waitall(recvs + sends)
                    else:
                        yield comm.waitall(recvs + sends)
                        yield comm.compute(compute)      # strictly after

                return program

            engine.spawn_all(make_program)
            return engine.run()

        overlapped = run_mode(True)
        sequential = run_mode(False)
        assert overlapped < sequential
        # Full overlap would save exactly `compute`; require most of it.
        assert sequential - overlapped > 0.5 * compute
