"""Smoke tests: every example script runs end-to-end at a tiny scale.

Examples double as the repository's acceptance tests — each verifies its
own results internally (identical buffers, numerically checked products),
so a clean exit is a meaningful signal, not just an import check.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(monkeypatch, name: str, *args: str) -> None:
    monkeypatch.setattr(sys, "argv", [name, *args])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        run_example(monkeypatch, "quickstart.py", "32", "0.3")
        out = capsys.readouterr().out
        assert "verified identical" in out
        assert "distance_halving" in out

    def test_moore_stencil(self, monkeypatch, capsys):
        run_example(monkeypatch, "moore_stencil.py", "32", "1", "2")
        out = capsys.readouterr().out
        assert "final fields identical across algorithms: True" in out

    def test_spmm_kernel(self, monkeypatch, capsys):
        run_example(monkeypatch, "spmm_kernel.py", "dwt_193")
        out = capsys.readouterr().out
        assert "dwt_193" in out and "DH speedup" in out

    def test_model_explorer(self, monkeypatch, capsys):
        run_example(monkeypatch, "model_explorer.py")
        out = capsys.readouterr().out
        assert "Section V-A example" in out
        assert "naive total" in out

    def test_pagerank(self, monkeypatch, capsys):
        run_example(monkeypatch, "pagerank.py", "300", "16", "3")
        out = capsys.readouterr().out
        assert "top pages" in out
        assert "results verified" in out
