"""Integration: all four allgather algorithms produce identical receive
buffers on every workload family the paper evaluates, on several machine
shapes."""

import numpy as np
import pytest

from repro.cluster import FatTree, HockneyParameters, Machine, Torus
from repro.cluster.hockney import NIAGARA_LIKE
from repro.cluster.spec import ClusterSpec
from repro.collectives import run_allgather, verify_allgather
from repro.topology import (
    cartesian_topology,
    erdos_renyi_topology,
    moore_topology,
    topology_from_sparse,
)
from repro.spmm.matrices import synthetic_matrix

ALGORITHMS = ("naive", "common_neighbor", "distance_halving", "hierarchical", "bruck")


def machines():
    yield Machine.single_switch(nodes=2, sockets_per_node=2, ranks_per_socket=2)
    yield Machine.niagara_like(nodes=4, ranks_per_socket=4)
    yield Machine(
        spec=ClusterSpec(nodes=4, sockets_per_node=2, ranks_per_socket=4),
        network=FatTree(nodes_per_leaf=2, taper=0.5),
        params=NIAGARA_LIKE,
    )
    yield Machine(
        spec=ClusterSpec(nodes=8, sockets_per_node=2, ranks_per_socket=2),
        network=Torus(dims=(4, 2)),
        params=NIAGARA_LIKE,
    )


def run_all(topology, machine, msg_size=256):
    runs = {}
    for name in ALGORITHMS:
        run = run_allgather(name, topology, machine, msg_size)
        verify_allgather(topology, run)
        runs[name] = run
    return runs


class TestAllMachinesAllWorkloads:
    @pytest.mark.parametrize("machine", machines(), ids=lambda m: m.network.describe())
    def test_random_graph(self, machine):
        topo = erdos_renyi_topology(machine.spec.n_ranks, 0.4, seed=77)
        runs = run_all(topo, machine)
        results = [r.results for r in runs.values()]
        assert results[0] == results[1] == results[2]

    @pytest.mark.parametrize("machine", machines(), ids=lambda m: m.network.describe())
    def test_moore(self, machine):
        topo = moore_topology(machine.spec.n_ranks, r=1, d=2)
        run_all(topo, machine)

    @pytest.mark.parametrize("machine", machines(), ids=lambda m: m.network.describe())
    def test_cartesian(self, machine):
        topo = cartesian_topology(machine.spec.n_ranks, d=2)
        run_all(topo, machine)

    def test_spmm_topology(self, small_machine):
        mat = synthetic_matrix("ash292", seed=0)
        topo, _ = topology_from_sparse(mat, small_machine.spec.n_ranks)
        run_all(topo, small_machine)


class TestArrayPayloadsEndToEnd:
    """Numpy payloads survive forwarding/packing in every algorithm."""

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_array_identity(self, small_machine, name):
        n = small_machine.spec.n_ranks
        topo = erdos_renyi_topology(n, 0.4, seed=88)
        rng = np.random.default_rng(0)
        payloads = [rng.random(16) for _ in range(n)]
        run = run_allgather(name, topo, small_machine, 128, payloads=payloads)
        for v in range(n):
            for src in topo.in_neighbors(v):
                assert run.results[v][src] is payloads[src]


class TestRepeatedCalls:
    """An application calls the collective many times on one pattern; results
    and timings must be reproducible and the setup reused."""

    def test_repeat_stability(self, small_machine, small_topology):
        from repro.collectives import get_algorithm

        alg = get_algorithm("distance_halving")
        times = [
            run_allgather(alg, small_topology, small_machine, 1024).simulated_time
            for _ in range(3)
        ]
        assert times[0] == times[1] == times[2]


class TestWorkloadScaling:
    def test_speedup_increases_with_scale(self):
        """Fig. 5's scaling trend: DH's advantage grows with communicator
        size (more halving levels to save)."""
        speedups = []
        for nodes in (2, 8):
            machine = Machine.niagara_like(nodes=nodes, ranks_per_socket=8)
            topo = erdos_renyi_topology(machine.spec.n_ranks, 0.5, seed=99)
            naive = run_allgather("naive", topo, machine, 64)
            dh = run_allgather("distance_halving", topo, machine, 64)
            speedups.append(naive.simulated_time / dh.simulated_time)
        assert speedups[1] > speedups[0]
