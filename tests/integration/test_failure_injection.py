"""Failure injection: corrupted plans and misbehaving programs are detected.

The executors carry runtime assertions (buffer block counts, received byte
counts, destination checks) precisely so that a corrupted or stale
communication pattern fails loudly instead of silently delivering wrong
data.  These tests corrupt patterns/plans on purpose and assert the failure
is caught — either by the executor's own checks or by result verification.
"""

import dataclasses

import pytest

from repro.collectives import get_algorithm, run_allgather, verify_allgather
from repro.collectives.alltoall import DistanceHalvingAlltoall, run_alltoall
from repro.collectives.distance_halving.pattern import FinalRecv, FinalSend, HalvingStep
from repro.sim.engine import DeadlockError
from repro.topology import erdos_renyi_topology


@pytest.fixture
def setup(small_machine):
    topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.4, seed=71)
    alg = get_algorithm("distance_halving")
    alg.setup(topo, small_machine)
    return topo, small_machine, alg


def find_rank_with_agent(alg):
    for rp in alg.pattern.ranks:
        for i, step in enumerate(rp.steps):
            if step.agent is not None and step.send_block_count > 0:
                return rp, i
    raise AssertionError("no agented step found")


class TestCorruptedPatterns:
    def test_wrong_send_block_count_detected(self, setup):
        topo, machine, alg = setup
        rp, i = find_rank_with_agent(alg)
        step = rp.steps[i]
        rp.steps[i] = dataclasses.replace(step, send_block_count=step.send_block_count + 3)
        with pytest.raises(AssertionError, match="pattern says"):
            run_allgather(alg, topo, machine, 128)

    def test_wrong_recv_blocks_detected(self, setup):
        topo, machine, alg = setup
        for rp in alg.pattern.ranks:
            for i, step in enumerate(rp.steps):
                if step.origin is not None and step.recv_blocks:
                    rp.steps[i] = dataclasses.replace(
                        step, recv_blocks=step.recv_blocks + (0,)
                    )
                    with pytest.raises(AssertionError, match="expected"):
                        run_allgather(alg, topo, machine, 128)
                    return
        raise AssertionError("no origin step found")

    def test_dropped_final_recv_detected(self, setup):
        """Removing an expected final receive leaves a block undelivered —
        caught by verification (and often as an unmatched message)."""
        topo, machine, alg = setup
        victim = next(rp for rp in alg.pattern.ranks if rp.final_recvs)
        victim.final_recvs = victim.final_recvs[1:]
        run = run_allgather(alg, topo, machine, 128)
        with pytest.raises(AssertionError, match="missing blocks"):
            verify_allgather(topo, run)

    def test_extra_final_recv_deadlocks(self, setup):
        """Expecting a message nobody sends must deadlock, not hang silently."""
        topo, machine, alg = setup
        victim = next(rp for rp in alg.pattern.ranks if rp.final_recvs)
        victim.final_recvs = victim.final_recvs + [FinalRecv(sender=victim.rank, blocks=(0,))]
        with pytest.raises(DeadlockError):
            run_allgather(alg, topo, machine, 128)

    def test_misrouted_final_send_detected(self, setup):
        """Redirecting a final send to the wrong target corrupts delivery —
        caught by verification on the receiving side."""
        topo, machine, alg = setup
        victim = next(rp for rp in alg.pattern.ranks if rp.final_sends)
        fs = victim.final_sends[0]
        wrong = (fs.target + 1) % topo.n
        victim.final_sends[0] = FinalSend(target=wrong, blocks=fs.blocks)
        with pytest.raises((AssertionError, DeadlockError)):
            run = run_allgather(alg, topo, machine, 128)
            verify_allgather(topo, run)


class TestCorruptedAlltoall:
    def test_dropped_pair_detected(self, small_machine):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.4, seed=72)
        alg = DistanceHalvingAlltoall()
        alg.setup(topo, small_machine)
        # Remove one duty pair from a step's send list: the block stays in
        # the store and the executor flags it as undelivered.
        for rp in alg.pattern.ranks:
            for i, step in enumerate(rp.steps):
                if step.agent is not None and step.send_pairs:
                    rp.steps[i] = dataclasses.replace(
                        step, send_pairs=step.send_pairs[1:]
                    )
                    with pytest.raises(AssertionError):
                        run_alltoall(alg, topo, small_machine, 64)
                    return
        raise AssertionError("no pair-carrying step found")


class TestStalePatternReuse:
    def test_pattern_not_reused_across_topologies(self, small_machine):
        """setup() keys on the topology object: a new topology rebuilds."""
        t1 = erdos_renyi_topology(small_machine.spec.n_ranks, 0.3, seed=73)
        t2 = erdos_renyi_topology(small_machine.spec.n_ranks, 0.3, seed=74)
        alg = get_algorithm("distance_halving")
        run1 = run_allgather(alg, t1, small_machine, 64)
        verify_allgather(t1, run1)
        run2 = run_allgather(alg, t2, small_machine, 64)
        verify_allgather(t2, run2)  # would fail if the t1 pattern leaked
