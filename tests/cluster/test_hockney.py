"""Unit tests for Hockney link-cost parameters."""

import pytest

from repro.cluster.hockney import NIAGARA_LIKE, HockneyParameters, LinkCost
from repro.cluster.spec import LinkClass


class TestLinkCost:
    def test_time_is_hockney(self):
        cost = LinkCost(alpha=1e-6, beta=1e9)
        assert cost.time(0) == pytest.approx(1e-6)
        assert cost.time(1_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_serialization_excludes_alpha(self):
        cost = LinkCost(alpha=1e-6, beta=1e9)
        assert cost.serialization(1000) == pytest.approx(1e-6, abs=1e-12)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            LinkCost(alpha=0, beta=1e9).time(-1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LinkCost(alpha=-1e-6, beta=1e9)
        with pytest.raises(ValueError):
            LinkCost(alpha=1e-6, beta=0)


class TestHockneyParameters:
    def test_defaults_have_all_classes(self):
        for cls in (
            LinkClass.INTRA_SOCKET,
            LinkClass.INTER_SOCKET,
            LinkClass.INTER_NODE,
            LinkClass.INTER_GROUP,
        ):
            assert NIAGARA_LIKE.cost(cls).beta > 0

    def test_self_maps_to_memcpy(self):
        cost = NIAGARA_LIKE.cost(LinkClass.SELF)
        assert cost.alpha == 0.0
        assert cost.beta == NIAGARA_LIKE.memcpy_beta

    def test_missing_class_rejected(self):
        with pytest.raises(ValueError, match="missing link classes"):
            HockneyParameters(links={LinkClass.INTER_NODE: LinkCost(1e-6, 1e9)})

    def test_memcpy_time(self):
        assert NIAGARA_LIKE.memcpy_time(NIAGARA_LIKE.memcpy_beta) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            NIAGARA_LIKE.memcpy_time(-1)

    def test_latency_hierarchy_plausible(self):
        # Shared memory < socket interconnect < network.
        a = NIAGARA_LIKE
        assert (
            a.cost(LinkClass.INTRA_SOCKET).alpha
            < a.cost(LinkClass.INTER_SOCKET).alpha
            < a.cost(LinkClass.INTER_NODE).alpha
            < a.cost(LinkClass.INTER_GROUP).alpha
        )

    def test_with_overrides(self):
        faster = NIAGARA_LIKE.with_overrides(INTER_NODE=LinkCost(alpha=1e-7, beta=4e10))
        assert faster.cost(LinkClass.INTER_NODE).alpha == 1e-7
        # Untouched classes preserved; original unchanged.
        assert faster.cost(LinkClass.INTRA_SOCKET) == NIAGARA_LIKE.cost(LinkClass.INTRA_SOCKET)
        assert NIAGARA_LIKE.cost(LinkClass.INTER_NODE).alpha != 1e-7
