"""Unit tests for node-placement permutations and the jitter noise model."""

import dataclasses

import pytest

from repro.cluster import DragonflyPlus, Machine, PermutedNodes
from repro.cluster.spec import LinkClass
from repro.collectives import RunOptions, run_allgather, verify_allgather
from repro.sim.fabric import Fabric
from repro.topology import erdos_renyi_topology


class TestPermutedNodes:
    def test_identity_permutation_is_transparent(self):
        base = DragonflyPlus(nodes_per_group=2)
        net = PermutedNodes(base, (0, 1, 2, 3))
        for a in range(4):
            for b in range(4):
                assert net.classify(a, b) is base.classify(a, b)
                assert net.hops(a, b) == base.hops(a, b)

    def test_permutation_changes_classification(self):
        base = DragonflyPlus(nodes_per_group=2)  # groups {0,1}, {2,3}
        swapped = PermutedNodes(base, (0, 2, 1, 3))  # logical 1 -> physical 2
        assert base.classify(0, 1) is LinkClass.INTER_NODE
        assert swapped.classify(0, 1) is LinkClass.INTER_GROUP

    def test_invalid_permutation_rejected(self):
        base = DragonflyPlus(nodes_per_group=2)
        with pytest.raises(ValueError, match="permutation"):
            PermutedNodes(base, (0, 0, 1, 2))

    def test_out_of_range_node(self):
        net = PermutedNodes(DragonflyPlus(nodes_per_group=2), (1, 0))
        with pytest.raises(ValueError, match="outside permutation"):
            net.classify(0, 5)


class TestMachinePlacements:
    def test_with_node_permutation_preserves_spec(self, small_machine):
        permuted = small_machine.with_node_permutation((3, 2, 1, 0))
        assert permuted.spec == small_machine.spec
        assert isinstance(permuted.network, PermutedNodes)

    def test_wrong_length_rejected(self, small_machine):
        with pytest.raises(ValueError, match="entries for"):
            small_machine.with_node_permutation((0, 1))

    def test_random_placement_deterministic_by_seed(self, small_machine):
        a = small_machine.random_placement(seed=7)
        b = small_machine.random_placement(seed=7)
        assert a.network.perm == b.network.perm

    def test_allgather_correct_under_any_placement(self, small_machine):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.4, seed=51)
        for trial in range(3):
            machine = small_machine.random_placement(seed=trial)
            for alg in ("naive", "distance_halving"):
                run = run_allgather(alg, topo, machine, 256)
                verify_allgather(topo, run)

    def test_placement_changes_latency(self):
        machine = Machine.niagara_like(nodes=8, ranks_per_socket=4, nodes_per_group=2)
        topo = erdos_renyi_topology(machine.spec.n_ranks, 0.3, seed=52)
        times = {
            run_allgather("naive", topo, machine.random_placement(seed=s), 4096).simulated_time
            for s in range(5)
        }
        assert len(times) > 1  # the placement lottery is not a no-op


class TestJitter:
    def make_noisy(self, machine, jitter):
        params = dataclasses.replace(machine.params, jitter=jitter)
        return dataclasses.replace(machine, params=params)

    def test_zero_jitter_is_deterministic(self, small_machine):
        f1 = Fabric(small_machine, noise_seed=1)
        f2 = Fabric(small_machine, noise_seed=2)
        t1 = f1.transmit(0, 8, 1024, 0.0)
        t2 = f2.transmit(0, 8, 1024, 0.0)
        assert t1.arrival == t2.arrival

    def test_jitter_inflates_latency(self, small_machine):
        noisy = self.make_noisy(small_machine, 0.5)
        clean_t = Fabric(small_machine).transmit(0, 8, 1024, 0.0).arrival
        noisy_t = Fabric(noisy, noise_seed=3).transmit(0, 8, 1024, 0.0).arrival
        assert clean_t < noisy_t <= clean_t * 1.6

    def test_jitter_seed_reproducible(self, small_machine):
        noisy = self.make_noisy(small_machine, 0.3)
        a = Fabric(noisy, noise_seed=9).transmit(0, 8, 1024, 0.0).arrival
        b = Fabric(noisy, noise_seed=9).transmit(0, 8, 1024, 0.0).arrival
        assert a == b

    def test_jitter_varies_across_seeds(self, small_machine):
        noisy = self.make_noisy(small_machine, 0.3)
        arrivals = {
            Fabric(noisy, noise_seed=s).transmit(0, 8, 1024, 0.0).arrival for s in range(6)
        }
        assert len(arrivals) > 1

    def test_allgather_still_correct_with_noise(self, small_machine):
        noisy = self.make_noisy(small_machine, 0.4)
        topo = erdos_renyi_topology(noisy.spec.n_ranks, 0.4, seed=53)
        for alg in ("naive", "common_neighbor", "distance_halving", "bruck"):
            run = run_allgather(alg, topo, noisy, 256,
                                options=RunOptions(noise_seed=11))
            verify_allgather(topo, run)

    def test_negative_jitter_rejected(self, small_machine):
        with pytest.raises(ValueError):
            self.make_noisy(small_machine, -0.1)
