"""Unit + property tests for ClusterSpec placement arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.spec import ClusterSpec, LinkClass


class TestShape:
    def test_counts(self):
        spec = ClusterSpec(nodes=3, sockets_per_node=2, ranks_per_socket=4)
        assert spec.ranks_per_node == 8
        assert spec.n_ranks == 24
        assert spec.n_sockets == 6

    def test_paper_shape(self):
        # The paper's 2160-rank runs: 60 nodes x 2 sockets x 18 ranks.
        spec = ClusterSpec(nodes=60, sockets_per_node=2, ranks_per_socket=18)
        assert spec.n_ranks == 2160

    @pytest.mark.parametrize("field", ["nodes", "sockets_per_node", "ranks_per_socket"])
    def test_rejects_non_positive(self, field):
        kwargs = {"nodes": 2, "sockets_per_node": 2, "ranks_per_socket": 2, field: 0}
        with pytest.raises(ValueError):
            ClusterSpec(**kwargs)


class TestPlacement:
    def test_block_placement(self):
        spec = ClusterSpec(nodes=2, sockets_per_node=2, ranks_per_socket=3)
        # Ranks 0-2 socket 0 node 0; 3-5 socket 1 node 0; 6-8 socket 2 node 1.
        assert [spec.node_of(r) for r in range(12)] == [0] * 6 + [1] * 6
        assert [spec.socket_of(r) for r in range(12)] == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]
        assert spec.local_socket_of(4) == 1
        assert spec.core_of(4) == 1

    def test_ranks_on_node_and_socket(self):
        spec = ClusterSpec(nodes=2, sockets_per_node=2, ranks_per_socket=3)
        assert list(spec.ranks_on_node(1)) == [6, 7, 8, 9, 10, 11]
        assert list(spec.ranks_on_socket(2)) == [6, 7, 8]

    def test_out_of_range_rank(self):
        spec = ClusterSpec(nodes=1, sockets_per_node=1, ranks_per_socket=4)
        with pytest.raises(ValueError):
            spec.node_of(4)
        with pytest.raises(ValueError):
            spec.ranks_on_node(1)
        with pytest.raises(ValueError):
            spec.ranks_on_socket(1)

    @given(st.integers(1, 8), st.integers(1, 4), st.integers(1, 16))
    def test_placement_consistency(self, nodes, sockets, rps):
        spec = ClusterSpec(nodes, sockets, rps)
        for rank in range(0, spec.n_ranks, max(1, spec.n_ranks // 17)):
            node = spec.node_of(rank)
            socket = spec.socket_of(rank)
            assert rank in spec.ranks_on_node(node)
            assert rank in spec.ranks_on_socket(socket)
            assert socket // sockets == node
            assert spec.local_socket_of(rank) == socket % sockets


class TestLinkClassification:
    def test_ordering(self):
        assert LinkClass.SELF < LinkClass.INTRA_SOCKET < LinkClass.INTER_SOCKET
        assert LinkClass.INTER_SOCKET < LinkClass.INTER_NODE < LinkClass.INTER_GROUP

    def test_intra_node_classes(self):
        spec = ClusterSpec(nodes=2, sockets_per_node=2, ranks_per_socket=2)
        assert spec.intra_node_class(0, 0) is LinkClass.SELF
        assert spec.intra_node_class(0, 1) is LinkClass.INTRA_SOCKET
        assert spec.intra_node_class(0, 2) is LinkClass.INTER_SOCKET
        assert spec.intra_node_class(0, 4) is LinkClass.INTER_NODE

    def test_symmetry(self):
        spec = ClusterSpec(nodes=2, sockets_per_node=2, ranks_per_socket=2)
        for a in range(8):
            for b in range(8):
                assert spec.intra_node_class(a, b) is spec.intra_node_class(b, a)


class TestForRanks:
    def test_exact_fit(self):
        spec = ClusterSpec.for_ranks(2160, sockets_per_node=2, ranks_per_socket=18)
        assert spec.nodes == 60

    def test_partial_node_rejected(self):
        with pytest.raises(ValueError, match="does not fill whole nodes"):
            ClusterSpec.for_ranks(100, sockets_per_node=2, ranks_per_socket=18)
