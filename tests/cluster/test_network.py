"""Unit + property tests for network topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.network import DragonflyPlus, FatTree, SingleSwitch, Torus
from repro.cluster.spec import LinkClass


class TestSingleSwitch:
    def test_all_inter_node(self):
        net = SingleSwitch()
        assert net.classify(0, 1) is LinkClass.INTER_NODE
        assert net.classify(3, 3) is LinkClass.SELF
        assert net.hops(0, 5) == 2
        assert net.shared_link_keys(0, 5) == ()


class TestDragonflyPlus:
    def test_grouping(self):
        net = DragonflyPlus(nodes_per_group=4)
        assert net.group_of(0) == 0
        assert net.group_of(3) == 0
        assert net.group_of(4) == 1

    def test_classification(self):
        net = DragonflyPlus(nodes_per_group=4)
        assert net.classify(0, 3) is LinkClass.INTER_NODE
        assert net.classify(0, 4) is LinkClass.INTER_GROUP
        assert net.classify(2, 2) is LinkClass.SELF

    def test_hops(self):
        net = DragonflyPlus(nodes_per_group=4)
        assert net.hops(0, 0) == 0
        assert net.hops(0, 1) == 2
        assert net.hops(0, 7) == 5  # leaf-spine-global-spine-leaf

    def test_global_link_keys(self):
        net = DragonflyPlus(nodes_per_group=4, links_per_pair=2)
        keys = net.shared_link_keys(0, 4)
        assert len(keys) == 1
        tag, lo, hi, lane = keys[0]
        assert tag == "global" and (lo, hi) == (0, 1) and 0 <= lane < 2
        assert net.shared_link_keys(0, 1) == ()

    def test_key_symmetry(self):
        net = DragonflyPlus(nodes_per_group=3, links_per_pair=4)
        assert net.shared_link_keys(1, 7) == net.shared_link_keys(7, 1)

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_classify_symmetric(self, a, b):
        net = DragonflyPlus(nodes_per_group=8)
        assert net.classify(a, b) is net.classify(b, a)
        assert net.hops(a, b) == net.hops(b, a)


class TestFatTree:
    def test_classification(self):
        net = FatTree(nodes_per_leaf=4)
        assert net.classify(0, 3) is LinkClass.INTER_NODE
        assert net.classify(0, 4) is LinkClass.INTER_GROUP

    def test_taper_limits_uplinks(self):
        net = FatTree(nodes_per_leaf=8, taper=0.25)
        assert net.uplinks_per_leaf == 2
        lanes = {net.shared_link_keys(src, 8)[0] for src in range(8)}
        assert len(lanes) == 2  # 8 nodes share 2 uplink lanes

    def test_cross_leaf_uses_both_ends(self):
        net = FatTree(nodes_per_leaf=4)
        keys = net.shared_link_keys(0, 5)
        assert len(keys) == 2
        assert {k[1] for k in keys} == {0, 1}  # source leaf and dest leaf

    def test_invalid_taper(self):
        with pytest.raises(ValueError):
            FatTree(nodes_per_leaf=4, taper=0.0)
        with pytest.raises(ValueError):
            FatTree(nodes_per_leaf=4, taper=1.5)


class TestTorus:
    def test_coords_roundtrip(self):
        net = Torus(dims=(4, 4))
        assert net.coords_of(0) == (0, 0)
        assert net.coords_of(5) == (1, 1)
        assert net.coords_of(15) == (3, 3)

    def test_wraparound_distance(self):
        net = Torus(dims=(8,))
        assert net.hops(0, 7) == 1 + 1  # neighbors through the wrap + switch hop
        assert net.hops(0, 4) == 4 + 1

    def test_bisection_classification(self):
        net = Torus(dims=(4, 2))
        # dim-0 halves: x in {0,1} vs {2,3}.
        assert net.classify(0, 2) is LinkClass.INTER_NODE  # x=0 -> x=1
        assert net.classify(0, 4) is LinkClass.INTER_GROUP  # x=0 -> x=2

    def test_bisection_keys_only_when_crossing(self):
        net = Torus(dims=(4, 2), bisection_ways=2)
        assert net.shared_link_keys(0, 2) == ()
        keys = net.shared_link_keys(0, 4)
        assert keys and keys[0][0] == "bisect"

    def test_out_of_range_node(self):
        with pytest.raises(ValueError):
            Torus(dims=(2, 2)).coords_of(4)

    @given(st.integers(0, 31), st.integers(0, 31))
    def test_hops_symmetric(self, a, b):
        net = Torus(dims=(4, 4, 2))
        assert net.hops(a, b) == net.hops(b, a)
        assert net.classify(a, b) is net.classify(b, a)
