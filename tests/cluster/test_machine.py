"""Unit tests for the Machine bundle."""

import pytest

from repro.cluster import DragonflyPlus, Machine, SingleSwitch
from repro.cluster.spec import LinkClass


class TestLinkQueries:
    def test_refines_inter_node_with_network(self):
        m = Machine.niagara_like(nodes=8, ranks_per_socket=2, nodes_per_group=2)
        rpn = m.spec.ranks_per_node
        assert m.link_class(0, 1) is LinkClass.INTRA_SOCKET
        assert m.link_class(0, 2) is LinkClass.INTER_SOCKET
        assert m.link_class(0, rpn) is LinkClass.INTER_NODE  # same group
        assert m.link_class(0, 2 * rpn) is LinkClass.INTER_GROUP

    def test_path_alpha_increases_with_distance(self):
        m = Machine.niagara_like(nodes=8, ranks_per_socket=2, nodes_per_group=2)
        rpn = m.spec.ranks_per_node
        alphas = [
            m.path_alpha(0, 1),
            m.path_alpha(0, 2),
            m.path_alpha(0, rpn),
            m.path_alpha(0, 2 * rpn),
        ]
        assert alphas == sorted(alphas)
        assert alphas[-1] > alphas[-2]

    def test_hop_extra_only_for_network_links(self):
        m = Machine.niagara_like(nodes=8, ranks_per_socket=2, nodes_per_group=2)
        assert m.hop_extra_alpha(0, 1) == 0.0
        assert m.hop_extra_alpha(0, 2 * m.spec.ranks_per_node) > 0.0

    def test_shared_keys_empty_within_node(self):
        m = Machine.niagara_like(nodes=4, ranks_per_socket=2)
        assert m.shared_link_keys(0, 1) == ()

    def test_ptp_time_self_is_memcpy(self):
        m = Machine.single_switch(nodes=1, ranks_per_socket=4)
        assert m.ptp_time(0, 0, 6_000_000) == pytest.approx(
            6_000_000 / m.params.memcpy_beta
        )

    def test_ptp_time_matches_hockney(self):
        m = Machine.single_switch(nodes=2, ranks_per_socket=2)
        cost = m.params.cost(LinkClass.INTER_NODE)
        assert m.ptp_time(0, 4, 1024) == pytest.approx(cost.alpha + 1024 / cost.beta)


class TestConstructors:
    def test_niagara_like_single_node_uses_flat_network(self):
        m = Machine.niagara_like(nodes=1, ranks_per_socket=4)
        assert isinstance(m.network, SingleSwitch)

    def test_niagara_like_defaults_to_dragonfly(self):
        m = Machine.niagara_like(nodes=16, ranks_per_socket=4)
        assert isinstance(m.network, DragonflyPlus)

    def test_describe_mentions_shape(self):
        m = Machine.niagara_like(nodes=4, ranks_per_socket=4)
        assert "4 nodes" in m.describe()
