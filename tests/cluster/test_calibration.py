"""Unit tests for ping-pong calibration and the Hockney fit."""

import pytest

from repro.cluster import Machine
from repro.cluster.calibration import calibrate, fit_hockney, simulated_ping_pong
from repro.cluster.spec import LinkClass


class TestFitHockney:
    def test_exact_linear_samples(self):
        alpha, beta = 2e-6, 5e9
        samples = {m: alpha + m / beta for m in (64, 4096, 65536, 1 << 20)}
        fit = fit_hockney(samples)
        assert fit.alpha == pytest.approx(alpha, rel=1e-6)
        assert fit.beta == pytest.approx(beta, rel=1e-6)
        assert fit.residual == pytest.approx(0.0, abs=1e-18)

    def test_time_method(self):
        fit = fit_hockney({64: 1e-6 + 64e-9, 1024: 1e-6 + 1024e-9})
        assert fit.time(2048) == pytest.approx(1e-6 + 2048e-9, rel=1e-6)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            fit_hockney({64: 1e-6})

    def test_degenerate_samples_rejected(self):
        # Decreasing time with size => nonsensical bandwidth.
        with pytest.raises(ValueError, match="non-positive bandwidth"):
            fit_hockney({64: 2e-6, 1 << 20: 1e-6})


class TestSimulatedPingPong:
    def test_monotone_in_size(self, small_machine):
        pp = simulated_ping_pong(small_machine, sizes=(64, 65536, 1 << 20))
        times = [pp[s] for s in sorted(pp)]
        assert times == sorted(times)

    def test_crosses_network_by_default(self, small_machine):
        pp = simulated_ping_pong(small_machine, sizes=(64,))
        inter = small_machine.params.cost(LinkClass.INTER_NODE)
        # One-way small-message latency should be at least the network alpha.
        assert pp[64] >= inter.alpha

    def test_same_rank_rejected(self, small_machine):
        with pytest.raises(ValueError, match="distinct"):
            simulated_ping_pong(small_machine, rank_a=3, rank_b=3)

    def test_calibrate_recovers_inter_node_costs(self, small_machine):
        fit = calibrate(small_machine)
        inter = small_machine.params.cost(LinkClass.INTER_NODE)
        # alpha within 2x (call overheads inflate it slightly), beta close.
        assert inter.alpha <= fit.alpha <= 3 * inter.alpha
        assert fit.beta == pytest.approx(inter.beta, rel=0.2)
