"""Unit tests for the distributed SpMM kernel."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.spmm.kernel import run_spmm
from repro.spmm.matrices import synthetic_matrix


class TestNumericalCorrectness:
    @pytest.mark.parametrize("alg", ["naive", "common_neighbor", "distance_halving"])
    def test_matches_direct_product(self, small_machine, alg):
        mat = sp.random(100, 100, density=0.1, format="csr", random_state=1)
        res = run_spmm(mat, 4, small_machine, alg, seed=2)
        assert res.verified
        rng = np.random.default_rng(2)
        Y = rng.random((100, 4))
        assert np.allclose(res.Z, mat @ Y)

    def test_table_ii_matrix(self, small_machine):
        mat = synthetic_matrix("dwt_193", seed=0)
        res = run_spmm(mat, 8, small_machine, "distance_halving", seed=0)
        assert res.verified

    def test_identity_matrix_needs_no_comm(self, small_machine):
        n_ranks = small_machine.spec.n_ranks
        mat = sp.eye(n_ranks * 3, format="csr")
        res = run_spmm(mat, 2, small_machine, "naive", seed=0)
        assert res.verified
        assert res.messages == 0


class TestShapeAndTiming:
    def test_ranks_capped_by_rows(self, small_machine):
        mat = sp.random(10, 10, density=0.5, format="csr", random_state=0)
        res = run_spmm(mat, 2, small_machine, "naive")
        assert res.n_ranks == 10

    def test_msg_size_covers_largest_stripe(self, small_machine):
        mat = sp.random(101, 101, density=0.2, format="csr", random_state=0)
        res = run_spmm(mat, 3, small_machine, "naive")
        max_rows = -(-101 // res.n_ranks)  # ceil
        assert res.msg_size == max_rows * 3 * 8

    def test_total_time_includes_compute(self, small_machine):
        mat = synthetic_matrix("Journals", seed=0)
        res = run_spmm(mat, 8, small_machine, "naive")
        assert res.total_time >= res.comm_time
        assert res.compute_time > 0

    def test_flop_rate_scales_compute(self, small_machine):
        mat = synthetic_matrix("Journals", seed=0)
        slow = run_spmm(mat, 8, small_machine, "naive", flop_rate=1e8)
        fast = run_spmm(mat, 8, small_machine, "naive", flop_rate=1e11)
        assert slow.compute_time > fast.compute_time

    def test_invalid_args(self, small_machine):
        mat = sp.eye(50, format="csr")
        with pytest.raises(ValueError):
            run_spmm(mat, 0, small_machine)
        with pytest.raises(ValueError):
            run_spmm(mat, 4, small_machine, flop_rate=0)


class TestAlgorithmComparison:
    def test_dense_matrix_dh_wins(self, small_machine):
        mat = synthetic_matrix("Journals", seed=1)  # densest pattern
        naive = run_spmm(mat, 8, small_machine, "naive", seed=1)
        dh = run_spmm(mat, 8, small_machine, "distance_halving", seed=1)
        assert dh.comm_time < naive.comm_time

    def test_all_algorithms_same_result(self, small_machine):
        mat = synthetic_matrix("ash292", seed=2)
        results = {
            alg: run_spmm(mat, 4, small_machine, alg, seed=2).Z
            for alg in ("naive", "common_neighbor", "distance_halving")
        }
        assert np.allclose(results["naive"], results["common_neighbor"])
        assert np.allclose(results["naive"], results["distance_halving"])
