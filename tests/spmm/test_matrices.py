"""Unit tests for the synthetic Table II matrix generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.spmm.matrices import TABLE_II, matrix_names, synthetic_matrix


class TestTableII:
    def test_all_seven_matrices_present(self):
        assert matrix_names() == (
            "dwt_193",
            "Journals",
            "Heart1",
            "ash292",
            "bcsstk13",
            "cegb2802",
            "comsol",
        )

    def test_published_sizes(self):
        by_name = {s.name: s for s in TABLE_II}
        assert by_name["dwt_193"].n == 193 and by_name["dwt_193"].nnz == 1843
        assert by_name["Heart1"].n == 3600 and by_name["Heart1"].nnz == 1387773
        assert by_name["Journals"].density == pytest.approx(6096 / 128**2)


class TestGenerators:
    @pytest.mark.parametrize("spec", TABLE_II, ids=lambda s: s.name)
    def test_shape_and_nnz_close_to_target(self, spec):
        mat = synthetic_matrix(spec.name, seed=0)
        assert mat.shape == (spec.n, spec.n)
        assert mat.nnz == pytest.approx(spec.nnz, rel=0.05)

    @pytest.mark.parametrize("name", ["dwt_193", "Journals", "bcsstk13"])
    def test_symmetric_pattern(self, name):
        mat = synthetic_matrix(name, seed=0)
        assert (abs(mat - mat.T)).nnz == 0

    def test_full_diagonal(self):
        mat = synthetic_matrix("comsol", seed=0)
        assert (mat.diagonal() != 0).all()

    def test_banded_structure(self):
        from repro.spmm.matrices import _SPECS

        spec = _SPECS["bcsstk13"]
        mat = synthetic_matrix("bcsstk13", seed=0).tocoo()
        bw = max(2, int(spec.band_fraction * spec.n))
        assert (np.abs(mat.row - mat.col) <= bw).all()

    def test_deterministic_by_seed(self):
        a = synthetic_matrix("ash292", seed=3)
        b = synthetic_matrix("ash292", seed=3)
        assert (a != b).nnz == 0

    def test_seeds_differ(self):
        a = synthetic_matrix("ash292", seed=3)
        b = synthetic_matrix("ash292", seed=4)
        assert (a != b).nnz > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown matrix"):
            synthetic_matrix("laplace_9000")

    def test_positive_values(self):
        mat = synthetic_matrix("Journals", seed=0)
        assert (mat.data > 0).all()

    def test_csr_format(self):
        assert isinstance(synthetic_matrix("dwt_193"), sp.csr_matrix)
