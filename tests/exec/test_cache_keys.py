"""Cache-key audit: every RunSpec knob must reach the content digest.

The result cache addresses runs by ``RunSpec.digest()``; any field that can
change a simulation's outcome but not its digest silently aliases cache
entries.  These tests enumerate the option/fault surface and assert that
specs differing in exactly one field never share a digest — and that the
default digest is stable across the ``sim_mode`` field's introduction.
"""

import itertools

from repro.collectives.runner import RunOptions
from repro.exec.spec import MachineSpec, RunSpec, TopologySpec
from repro.sim.faults import (
    FailureDetector,
    FaultPlan,
    LinkFault,
    MessageLoss,
    RankCrash,
    RetryPolicy,
    Straggler,
)
from repro.cluster.spec import LinkClass

BASE_TOPOLOGY = TopologySpec("random", 16, density=0.3, seed=1)
BASE_MACHINE = MachineSpec(nodes=2, sockets_per_node=2, ranks_per_socket=4)

#: Digest of the default naive spec above, frozen when the capability
#: registry landed; it must never move (cached results stay addressable).
GOLDEN_NAIVE_DIGEST = (
    "e88e30c65d8bdc7e6b56262f309ac2f22df66098cd72eda936d4972d859fcd60"
)


def _spec(options: RunOptions) -> RunSpec:
    return RunSpec(
        algorithm="naive",
        topology=BASE_TOPOLOGY,
        machine=BASE_MACHINE,
        msg_size=1024,
        options=options,
    )


#: One variant per RunOptions field, each differing from the default in
#: exactly that field.  A new RunOptions field must be added here (the
#: completeness test below fails otherwise).
OPTION_VARIANTS = {
    "default": RunOptions(),
    "trace": RunOptions(trace=True),
    "noise_seed": RunOptions(noise_seed=7),
    "fault_plan": RunOptions(fault_plan=FaultPlan(seed=1)),
    "fallback": RunOptions(fallback="naive"),
    "max_sim_time": RunOptions(max_sim_time=1.0),
    "max_events": RunOptions(max_events=1000),
    "verify": RunOptions(verify=True),
    "sim_mode_auto": RunOptions(sim_mode="auto"),
    "sim_mode_analytic": RunOptions(sim_mode="analytic"),
    "on_failure_shrink": RunOptions(on_failure="shrink"),
    "on_failure_degrade": RunOptions(on_failure="degrade"),
}

#: FaultPlan variants: each embeds a plan differing in exactly one field
#: (or one nested rule field) from the empty plan.
FAULT_VARIANTS = {
    "empty_plan": FaultPlan(),
    "plan_seed": FaultPlan(seed=3),
    "link_fault": FaultPlan(link_faults=(LinkFault(alpha_factor=2.0),)),
    "link_fault_class": FaultPlan(
        link_faults=(LinkFault(alpha_factor=2.0,
                               link_class=LinkClass.INTER_NODE),)
    ),
    "link_fault_beta": FaultPlan(link_faults=(LinkFault(beta_factor=0.5),)),
    "link_fault_window": FaultPlan(
        link_faults=(LinkFault(alpha_factor=2.0, start=1e-3, end=2e-3),)
    ),
    "straggler": FaultPlan(stragglers=(Straggler(rank=1, startup_delay=1e-4),)),
    "straggler_rank": FaultPlan(
        stragglers=(Straggler(rank=2, startup_delay=1e-4),)
    ),
    "straggler_compute": FaultPlan(
        stragglers=(Straggler(rank=1, compute_factor=2.0),)
    ),
    "loss": FaultPlan(losses=(MessageLoss(probability=0.1),)),
    "loss_probability": FaultPlan(losses=(MessageLoss(probability=0.2),)),
    "loss_window": FaultPlan(
        losses=(MessageLoss(probability=0.1, start=1e-3, end=2e-3),)
    ),
    "retry_timeout": FaultPlan(retry=RetryPolicy(timeout=50e-6)),
    "retry_backoff": FaultPlan(retry=RetryPolicy(backoff=3.0)),
    "retry_max": FaultPlan(retry=RetryPolicy(max_retries=2)),
    "crash": FaultPlan(crashes=(RankCrash(rank=1),)),
    "crash_rank": FaultPlan(crashes=(RankCrash(rank=2),)),
    "crash_time": FaultPlan(crashes=(RankCrash(rank=1, time=1e-5),)),
    "detector_heartbeat": FaultPlan(
        detector=FailureDetector(heartbeat_interval=50e-6)
    ),
    "detector_suspicion": FaultPlan(
        detector=FailureDetector(suspicion_timeout=1e-3)
    ),
    "detector_none": FaultPlan(detector=None),
}


class TestOptionFieldsReachDigest:
    def test_every_option_field_changes_the_digest(self):
        digests = {name: _spec(opts).digest()
                   for name, opts in OPTION_VARIANTS.items()}
        for (a, da), (b, db) in itertools.combinations(digests.items(), 2):
            assert da != db, f"digest collision between {a!r} and {b!r}"

    def test_variant_table_covers_every_field(self):
        """Adding a RunOptions field without a digest-audit variant fails
        here — the audit table must grow with the dataclass."""
        fields = set(RunOptions.__dataclass_fields__)
        covered = {
            "trace", "noise_seed", "fault_plan", "fallback",
            "max_sim_time", "max_events", "verify", "sim_mode",
            "on_failure",
        }
        assert fields == covered, (
            f"RunOptions fields changed ({sorted(fields ^ covered)}); "
            "extend OPTION_VARIANTS and this set"
        )

    def test_fault_plan_fields_reach_digest(self):
        digests = {
            name: _spec(RunOptions(fault_plan=plan)).digest()
            for name, plan in FAULT_VARIANTS.items()
        }
        for (a, da), (b, db) in itertools.combinations(digests.items(), 2):
            assert da != db, f"digest collision between {a!r} and {b!r}"

    def test_digest_round_trips_through_serialization(self):
        for name, opts in OPTION_VARIANTS.items():
            spec = _spec(opts)
            restored = RunSpec.from_dict(spec.canonical())
            assert restored.digest() == spec.digest(), name


class TestDigestStability:
    def test_default_canonical_omits_sim_mode(self):
        """Digest-stability pin: sim_mode="des" must not appear in the
        canonical form, so digests computed before the field existed (and
        the cached results they address) remain valid."""
        assert "sim_mode" not in RunOptions().canonical()
        assert "sim_mode" not in _spec(RunOptions()).to_json()

    def test_non_default_sim_mode_is_emitted(self):
        assert RunOptions(sim_mode="auto").canonical()["sim_mode"] == "auto"
        assert (RunOptions(sim_mode="analytic").canonical()["sim_mode"]
                == "analytic")

    def test_sim_mode_round_trips(self):
        for mode in ("des", "auto", "analytic"):
            opts = RunOptions(sim_mode=mode)
            assert RunOptions.from_dict(opts.canonical()).sim_mode == mode

    def test_default_canonical_omits_crash_fields(self):
        """Digest-stability pin for the fail-stop additions: defaults for
        on_failure ("abort"), crashes (empty), and detector (the default
        FailureDetector) must not appear in canonical forms, so digests —
        and the cached results they address — from before these fields
        existed remain valid."""
        assert "on_failure" not in RunOptions().canonical()
        plan_dict = FaultPlan().to_dict()
        assert "crashes" not in plan_dict
        assert "detector" not in plan_dict
        assert "on_failure" not in _spec(RunOptions()).to_json()

    def test_non_default_crash_fields_are_emitted(self):
        assert RunOptions(on_failure="shrink").canonical()["on_failure"] == "shrink"
        crashy = FaultPlan(crashes=(RankCrash(rank=1, time=1e-5),)).to_dict()
        assert crashy["crashes"] == [{"rank": 1, "time": 1e-5}]
        assert FaultPlan(detector=None).to_dict()["detector"] is None
        tuned = FaultPlan(detector=FailureDetector(heartbeat_interval=50e-6))
        assert tuned.to_dict()["detector"]["heartbeat_interval"] == 50e-6

    def test_crash_fields_round_trip(self):
        for mode in ("abort", "shrink", "degrade"):
            opts = RunOptions(on_failure=mode)
            assert RunOptions.from_dict(opts.canonical()).on_failure == mode
        plan = FaultPlan(
            crashes=(RankCrash(rank=3, time=2e-6),),
            detector=FailureDetector(suspicion_timeout=1e-3),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.from_dict(FaultPlan(detector=None).to_dict()).detector is None


class TestAlgorithmNamesReachDigest:
    """Every registered backend is digest-visible: a sweep over the full
    registry can never alias two algorithms to one cache entry."""

    def test_every_registered_algorithm_digest_distinct(self):
        from repro.collectives.base import list_algorithms

        digests = {}
        for info in list_algorithms():
            spec = RunSpec(
                algorithm=info.name,
                topology=BASE_TOPOLOGY,
                machine=BASE_MACHINE,
                msg_size=1024,
            )
            digests[info.name] = spec.digest()
        assert "bruck" in digests
        collisions = len(digests) - len(set(digests.values()))
        assert collisions == 0, f"digest collisions across {sorted(digests)}"

    def test_bruck_locality_kwarg_reaches_digest(self):
        base = RunSpec("bruck", BASE_TOPOLOGY, BASE_MACHINE, 1024)
        node = RunSpec(
            "bruck", BASE_TOPOLOGY, BASE_MACHINE, 1024,
            algorithm_kwargs=(("locality", "node"),),
        )
        assert base.digest() != node.digest()

    def test_preexisting_digests_unchanged(self):
        """Golden pin: adding the bruck backend and the capability registry
        must not move any existing digest (cached results stay valid)."""
        spec = RunSpec("naive", BASE_TOPOLOGY, BASE_MACHINE, 1024,
                       options=RunOptions())
        assert spec.digest() == GOLDEN_NAIVE_DIGEST


class TestSelectorTableReachesDigest:
    """Adaptive-selection audit: an ``algorithm="auto"`` spec's outcome
    depends on the decision table it resolves against, so the table's
    content version must reach the digest — while named-algorithm specs
    (whose outcome the table cannot touch) keep their frozen digests."""

    def _auto(self) -> RunSpec:
        return RunSpec("auto", BASE_TOPOLOGY, BASE_MACHINE, 1024)

    def test_auto_pins_the_active_table_version(self):
        from repro.select.table import active_table_version

        spec = self._auto()
        assert spec.selector_table == active_table_version()
        assert spec.canonical()["selector_table"] == spec.selector_table

    def test_table_version_changes_the_digest(self):
        from dataclasses import replace

        spec = self._auto()
        other = replace(spec, selector_table="0" * 16)
        assert spec.digest() != other.digest()

    def test_different_tables_different_digests(self):
        from repro.select.table import DecisionTable, TableEntry, use_table

        tiny = DecisionTable(
            candidates=(("naive", ()),),
            entries={"xs/mid/regular/lat": TableEntry(
                ranking=("naive",), source="analytic")},
        )
        default_digest = self._auto().digest()
        use_table(tiny)
        try:
            assert self._auto().digest() != default_digest
        finally:
            use_table(None)

    def test_named_specs_omit_selector_table(self):
        """Digest-stability pin: selector_table must not appear in a
        named-algorithm spec's canonical form, so every digest from
        before ``auto`` existed — the golden naive pin above included —
        remains a valid cache address."""
        spec = _spec(RunOptions())
        assert "selector_table" not in spec.canonical()
        assert "selector_table" not in spec.to_json()
        assert spec.digest() == GOLDEN_NAIVE_DIGEST

    def test_named_spec_with_selector_table_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="selector_table"):
            RunSpec("naive", BASE_TOPOLOGY, BASE_MACHINE, 1024,
                    selector_table="0" * 16)

    def test_auto_round_trips_through_serialization(self):
        spec = self._auto()
        restored = RunSpec.from_dict(spec.canonical())
        assert restored.selector_table == spec.selector_table
        assert restored.digest() == spec.digest()
