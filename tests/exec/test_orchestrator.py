"""The orchestrator's contract: parallel == serial == cached, bit for bit."""

import json

import pytest

from repro.collectives.runner import RunOptions
from repro.exec import (
    WALL_CLOCK_FIELDS,
    MachineSpec,
    ResultCache,
    RunSpec,
    TopologySpec,
    execute,
    run_to_dict,
)


def grid(sizes=(64, 1024, 16384), algorithms=("naive", "distance_halving")):
    topology = TopologySpec("random", 16, density=0.4, seed=11)
    machine = MachineSpec.for_ranks(16, ranks_per_socket=4)
    return [
        RunSpec(alg, topology, machine, size)
        for alg in algorithms
        for size in sizes
    ]


def report(result, strip_wall=False):
    """Spec-ordered serialized runs — the bytes a figure would archive.

    ``strip_wall`` drops the host-measured wall-clock fields, which is the
    determinism contract's boundary: everything else must be bit-identical
    across serial/parallel/cached execution.
    """
    rows = [run_to_dict(run) for run in result.runs]
    if strip_wall:
        for row in rows:
            for field in WALL_CLOCK_FIELDS:
                row.pop(field)
            row["setup_stats"].pop("wall_time")
    return json.dumps(rows)


class TestOrdering:
    def test_results_in_spec_order(self):
        specs = grid()
        result = execute(specs)
        assert [o.spec for o in result.outcomes] == specs
        for spec, run in zip(specs, result.runs):
            assert run.msg_size == spec.msg_size

    def test_serial_and_parallel_reports_identical(self):
        specs = grid()
        serial = report(execute(specs, workers=1), strip_wall=True)
        parallel = report(execute(specs, workers=4), strip_wall=True)
        assert serial == parallel

    def test_cached_rerun_report_identical(self, tmp_path):
        specs = grid()
        cache = ResultCache(tmp_path)
        cold = execute(specs, cache=cache)
        warm = execute(specs, cache=ResultCache(tmp_path))
        assert report(cold) == report(warm)
        assert warm.stats["from_cache"] == len(specs)
        assert warm.stats["computed"] == 0
        assert warm.stats["cache"]["hit_rate"] == 1.0

    def test_parallel_populates_cache(self, tmp_path):
        specs = grid(sizes=(64, 256, 1024, 4096))
        cache = ResultCache(tmp_path)
        execute(specs, workers=2, cache=cache)
        assert len(cache) == len(specs)


class TestFailureTolerance:
    def test_bad_spec_becomes_error_outcome(self):
        good = grid(sizes=(64,))
        bad = RunSpec(
            "common_neighbor",
            TopologySpec("random", 16, density=0.4, seed=11),
            MachineSpec.for_ranks(16, ranks_per_socket=4),
            64,
            algorithm_kwargs={"k": 0},  # invalid K
        )
        result = execute([*good, bad])
        assert [o.ok for o in result.outcomes] == [True] * len(good) + [False]
        assert result.stats["failed"] == 1
        with pytest.raises(RuntimeError, match="1/3 specs failed"):
            result.raise_errors()

    def test_watchdog_error_is_prefixed_by_type(self):
        strangled = RunSpec(
            "naive",
            TopologySpec("random", 16, density=0.4, seed=11),
            MachineSpec.for_ranks(16, ranks_per_socket=4),
            64,
            options=RunOptions(max_events=1),
        )
        (outcome,) = execute([strangled]).outcomes
        assert not outcome.ok
        assert outcome.error.startswith("SimTimeoutError: ")

    def test_errors_are_not_cached(self, tmp_path):
        bad = RunSpec(
            "common_neighbor",
            TopologySpec("random", 16, density=0.4, seed=11),
            MachineSpec.for_ranks(16, ranks_per_socket=4),
            64,
            algorithm_kwargs={"k": 0},
        )
        cache = ResultCache(tmp_path)
        execute([bad], cache=cache)
        assert len(cache) == 0


class TestManifest:
    def test_manifest_records_every_outcome(self, tmp_path):
        specs = grid(sizes=(64, 1024))
        manifest = tmp_path / "sweep.jsonl"
        execute(specs, manifest_path=manifest)
        entries = [json.loads(x) for x in manifest.read_text().splitlines()]
        assert len(entries) == len(specs)
        assert {e["status"] for e in entries} == {"ok"}
        assert {e["digest"] for e in entries} == {s.digest() for s in specs}

    def test_resume_counts_prior_entries(self, tmp_path):
        specs = grid(sizes=(64, 1024))
        manifest = tmp_path / "sweep.jsonl"
        execute(specs, manifest_path=manifest)
        again = execute(specs, manifest_path=manifest)
        assert again.stats["resumed_manifest_entries"] == len(specs)

    def test_torn_tail_line_tolerated(self, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        manifest.write_text('{"digest": "abc", "status": "ok"}\n{"dig')
        result = execute(grid(sizes=(64,)), manifest_path=manifest)
        assert result.stats["failed"] == 0


def test_progress_callback_streams():
    seen = []
    specs = grid(sizes=(64, 1024))
    execute(specs, progress=lambda done, total, outcome: seen.append((done, total)))
    total = len(specs)
    assert seen == [(i, total) for i in range(1, total + 1)]
