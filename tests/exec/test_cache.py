"""Content-addressed cache: hits are exact, corruption self-heals."""

import json

from repro.exec import MachineSpec, ResultCache, RunSpec, TopologySpec
from repro.exec.cache import CACHE_DIR_ENV, code_salt, default_cache_dir


def make_spec(**overrides) -> RunSpec:
    base = dict(
        algorithm="naive",
        topology=TopologySpec("random", 16, density=0.4, seed=11),
        machine=MachineSpec.for_ranks(16, ranks_per_socket=4),
        msg_size=512,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestHitMiss:
    def test_cold_lookup_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(make_spec()) is None
        assert cache.stats.misses == 1 and cache.stats.hits == 0

    def test_hit_is_bit_identical_including_wall_clock(self, tmp_path):
        # The cached entry IS the original measurement; even wall_time
        # comes back verbatim (report writers may strip it, the cache
        # does not).
        cache = ResultCache(tmp_path)
        spec = make_spec()
        run = spec.run().slim()
        cache.put(spec, run)
        cached = cache.get(spec)
        assert cached == run
        assert cached.simulated_time == run.simulated_time
        assert cached.wall_time == run.wall_time
        assert cache.stats.hits == 1

    def test_different_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, spec.run().slim())
        assert cache.get(make_spec(msg_size=1024)) is None

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for size in (64, 128, 256):
            spec = make_spec(msg_size=size)
            cache.put(spec, spec.run().slim())
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0


class TestInvalidation:
    def test_corrupted_entry_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        path = cache.put(spec, spec.run().slim())
        path.write_text("{ not json")
        assert cache.get(spec) is None
        assert cache.stats.invalidated == 1
        assert not path.exists()  # self-deleted; next put recomputes it

    def test_tampered_spec_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        path = cache.put(spec, spec.run().slim())
        payload = json.loads(path.read_text())
        payload["spec"]["msg_size"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None
        assert cache.stats.invalidated == 1

    def test_stale_salt_invalidated(self, tmp_path):
        spec = make_spec()
        old = ResultCache(tmp_path, salt="repro-0.0-fmt0")
        old.put(spec, spec.run().slim())
        new = ResultCache(tmp_path, salt="repro-9.9-fmt1")
        # Different salt -> different key -> plain miss, never a misread.
        assert new.get(spec) is None
        assert new.stats.misses == 1


class TestConfiguration:
    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"

    def test_salt_carries_version_and_format(self):
        import repro
        from repro.exec.serialize import FORMAT_VERSION

        assert repro.__version__ in code_salt()
        assert f"fmt{FORMAT_VERSION}" in code_salt()
