"""Slim-run serialization round-trips bit-for-bit (modulo nothing)."""

import json

import pytest

from repro.collectives import RunOptions, run_allgather
from repro.exec import run_from_dict, run_to_dict
from repro.exec.serialize import FORMAT_VERSION
from repro.sim.faults import get_profile
from repro.topology import erdos_renyi_topology


def make_run(small_machine, small_topology, **option_kwargs):
    return run_allgather(
        "distance_halving", small_topology, small_machine, "2KB",
        options=RunOptions(**option_kwargs),
    )


class TestRoundTrip:
    def test_slim_round_trip_is_exact(self, small_machine, small_topology):
        run = make_run(small_machine, small_topology)
        restored = run_from_dict(run_to_dict(run.slim()))
        assert restored == run.slim()

    def test_round_trip_survives_json_text(self, small_machine, small_topology):
        # The cache stores text, not dicts: floats must survive the full
        # dump/load cycle bit-for-bit (shortest-repr round-trip).
        run = make_run(small_machine, small_topology).slim()
        text = json.dumps(run_to_dict(run))
        assert run_from_dict(json.loads(text)) == run

    def test_fault_run_round_trips(self, small_machine, small_topology):
        plan = get_profile("lossy", small_topology.n, seed=3)
        run = make_run(
            small_machine, small_topology, fault_plan=plan, fallback="naive"
        ).slim()
        restored = run_from_dict(run_to_dict(run))
        assert restored.fault_stats == run.fault_stats
        assert restored == run

    def test_allgatherv_block_sizes_survive(self, small_machine):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.3, seed=5)
        sizes = [64 * (1 + r % 3) for r in range(topo.n)]
        run = run_allgather("naive", topo, small_machine, sizes).slim()
        restored = run_from_dict(run_to_dict(run))
        assert restored.block_sizes == run.block_sizes
        assert restored == run

    def test_slim_preserves_trace_summary(self, small_machine, small_topology):
        # The repro.verify conservation checks run on trace_summary after
        # cache round-trips: slim() may drop the TraceCollector (closed
        # over simulator state) but never the per-class aggregates.
        run = make_run(small_machine, small_topology, trace=True)
        assert run.trace_summary is not None
        slim = run.slim()
        assert slim.trace is None
        assert slim.trace_summary == run.trace_summary
        restored = run_from_dict(json.loads(json.dumps(run_to_dict(slim))))
        assert restored.trace_summary == run.trace_summary
        total = sum(c["messages"] for c in restored.trace_summary.values())
        assert total == run.messages_sent

    def test_untraced_run_has_no_trace_summary(self, small_machine, small_topology):
        run = make_run(small_machine, small_topology).slim()
        assert run.trace_summary is None
        assert run_from_dict(run_to_dict(run)).trace_summary is None


class TestGuards:
    def test_traced_run_rejected(self, small_machine, small_topology):
        run = make_run(small_machine, small_topology, trace=True)
        with pytest.raises(ValueError, match="slim"):
            run_to_dict(run)

    def test_unknown_format_rejected(self, small_machine, small_topology):
        data = run_to_dict(make_run(small_machine, small_topology).slim())
        data["format"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="unsupported run format"):
            run_from_dict(data)


def test_slim_drops_only_buffers_and_trace(small_machine, small_topology):
    run = make_run(small_machine, small_topology, trace=True)
    slim = run.slim()
    assert slim.results == [] and slim.trace is None
    assert slim.simulated_time == run.simulated_time
    assert slim.finish_times == run.finish_times
    assert slim.setup_stats == run.setup_stats
    assert slim.utilization == run.utilization
