"""Worker-crash retry: a dying worker must not kill or corrupt the sweep.

Real process deaths are injected through the orchestrator's chaos marker
protocol (``$REPRO_CHAOS_DIR``): a ``kill-<digest>`` marker makes the
worker executing that spec ``os._exit(137)`` once, a ``poison-<digest>``
marker kills every attempt.  The contract under test: killed specs are
retried on a fresh pool and complete with ``attempts >= 2``, poison specs
are quarantined as ``WorkerCrashed`` error outcomes after ``MAX_ATTEMPTS``,
bystander specs always survive, and the manifest records the attempt
count.
"""

import json

import pytest

from repro.exec.orchestrator import CHAOS_ENV, MAX_ATTEMPTS, execute
from repro.exec.spec import MachineSpec, RunSpec, TopologySpec


def sweep_specs():
    topology = TopologySpec("random", 8, density=0.4, seed=11)
    machine = MachineSpec.for_ranks(8, ranks_per_socket=4)
    return [
        RunSpec("naive", topology, machine, size)
        for size in (128, 512, 2048)
    ]


def read_manifest(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestWorkerRetry:
    def test_killed_worker_retried_to_completion(self, tmp_path, monkeypatch):
        specs = sweep_specs()
        victim = 1
        monkeypatch.setenv(CHAOS_ENV, str(tmp_path))
        (tmp_path / f"kill-{specs[victim].digest()[:12]}").write_text("")
        manifest = tmp_path / "manifest.jsonl"

        sweep = execute(specs, workers=2, manifest_path=manifest)
        sweep.raise_errors()
        assert 2 <= sweep.outcomes[victim].attempts <= MAX_ATTEMPTS
        assert sweep.stats["retried"] >= 1
        # The kill marker was atomically claimed: exactly one death.
        assert (tmp_path / f"killed-{specs[victim].digest()[:12]}").exists()
        entries = {e["digest"]: e for e in read_manifest(manifest)}
        entry = entries[specs[victim].digest()]
        assert entry["status"] == "ok"
        assert entry["attempts"] == sweep.outcomes[victim].attempts

    def test_poison_spec_quarantined_not_hung(self, tmp_path, monkeypatch):
        specs = sweep_specs()
        monkeypatch.setenv(CHAOS_ENV, str(tmp_path))
        (tmp_path / f"poison-{specs[0].digest()[:12]}").write_text("")
        manifest = tmp_path / "manifest.jsonl"

        sweep = execute(specs, workers=2, manifest_path=manifest)
        bad = sweep.outcomes[0]
        assert not bad.ok
        assert bad.error.startswith("WorkerCrashed")
        assert bad.attempts == MAX_ATTEMPTS
        # Bystanders complete; the sweep never crashes wholesale.
        assert all(o.ok for o in sweep.outcomes[1:])
        entries = {e["digest"]: e for e in read_manifest(manifest)}
        entry = entries[specs[0].digest()]
        assert entry["status"] == "error"
        assert entry["attempts"] == MAX_ATTEMPTS

    def test_serial_execution_ignores_markers(self, tmp_path, monkeypatch):
        # The marker protocol only fires inside pool workers: a serial
        # (in-process) run must never os._exit the caller.
        specs = sweep_specs()
        monkeypatch.setenv(CHAOS_ENV, str(tmp_path))
        for spec in specs:
            (tmp_path / f"kill-{spec.digest()[:12]}").write_text("")
        sweep = execute(specs, workers=1)
        sweep.raise_errors()
        assert all(o.attempts == 1 for o in sweep.outcomes)

    def test_attempts_default_to_one(self):
        sweep = execute(sweep_specs(), workers=2)
        sweep.raise_errors()
        assert all(o.attempts == 1 for o in sweep.outcomes)
        assert sweep.stats["retried"] == 0
