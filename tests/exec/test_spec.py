"""Unit tests for TopologySpec / MachineSpec / RunSpec identity and build."""

import pickle

import pytest

from repro.collectives.runner import RunOptions
from repro.exec import MachineSpec, RunSpec, TopologySpec
from repro.sim.faults import get_profile
from repro.topology import erdos_renyi_topology


def spec(**overrides) -> RunSpec:
    base = dict(
        algorithm="distance_halving",
        topology=TopologySpec("random", 16, density=0.3, seed=7),
        machine=MachineSpec.for_ranks(16, ranks_per_socket=4),
        msg_size="4KB",
    )
    base.update(overrides)
    return RunSpec(**base)


class TestTopologySpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            TopologySpec("torus", 16)

    def test_random_requires_density(self):
        with pytest.raises(ValueError, match="density"):
            TopologySpec("random", 16)

    def test_canonical_only_carries_consumed_fields(self):
        # Moore topologies ignore density/seed: two specs differing only in
        # those fields must digest identically.
        a = TopologySpec("moore", 16, radius=1, dims=2, seed=0)
        b = TopologySpec("moore", 16, radius=1, dims=2, seed=999, density=0.5)
        assert a.canonical() == b.canonical()

    def test_build_matches_direct_generator(self):
        topo_spec = TopologySpec("random", 16, density=0.3, seed=7)
        direct = erdos_renyi_topology(16, 0.3, seed=7)
        built = topo_spec.build()
        assert sorted(built.edges()) == sorted(direct.edges())


class TestMachineSpec:
    def test_for_ranks_round_trips(self):
        ms = MachineSpec.for_ranks(32, ranks_per_socket=4)
        assert ms.n_ranks == 32
        assert ms.build().spec.n_ranks == 32

    def test_for_ranks_rejects_partial_nodes(self):
        with pytest.raises(ValueError, match="multiple"):
            MachineSpec.for_ranks(10, ranks_per_socket=4)

    def test_placement_seed_changes_build(self):
        plain = MachineSpec.for_ranks(16, ranks_per_socket=4)
        shuffled = MachineSpec.for_ranks(
            16, ranks_per_socket=4, placement_seed=3
        )
        assert plain.canonical() != shuffled.canonical()
        assert shuffled.build().spec.n_ranks == 16


class TestRunSpecIdentity:
    def test_digest_is_stable_across_kwarg_order(self):
        a = spec(algorithm="common_neighbor", algorithm_kwargs={"k": 4})
        b = spec(algorithm="common_neighbor",
                 algorithm_kwargs=(("k", 4),))
        assert a == b
        assert a.digest() == b.digest()
        assert hash(a) == hash(b)

    def test_msg_size_strings_normalize(self):
        assert spec(msg_size="4KB") == spec(msg_size=4096)
        assert spec(msg_size=["1KB", 2048]).msg_size == (1024, 2048)

    def test_different_options_different_digest(self):
        assert spec().digest() != spec(
            options=RunOptions(noise_seed=1)
        ).digest()

    def test_fault_plan_participates_in_digest(self):
        plan = get_profile("lossy", 16, seed=5)
        with_plan = spec(options=RunOptions(fault_plan=plan))
        assert with_plan.digest() != spec().digest()
        # Same profile re-derived -> same digest.
        again = spec(options=RunOptions(fault_plan=get_profile("lossy", 16, seed=5)))
        assert with_plan.digest() == again.digest()

    def test_canonical_json_is_deterministic(self):
        assert spec().to_json() == spec().to_json()

    def test_specs_pickle(self):
        plan = get_profile("lossy", 16, seed=5)
        s = spec(options=RunOptions(fault_plan=plan, fallback="naive"))
        assert pickle.loads(pickle.dumps(s)) == s


class TestRunSpecExecution:
    def test_run_matches_direct_call(self):
        from repro.collectives import run_allgather

        s = spec()
        via_spec = s.run()
        direct = run_allgather(
            "distance_halving",
            erdos_renyi_topology(16, 0.3, seed=7),
            s.machine.build(),
            "4KB",
        )
        assert via_spec.simulated_time == direct.simulated_time
        assert via_spec.messages_sent == direct.messages_sent

    def test_verify_option_checks_postcondition(self):
        run = spec(options=RunOptions(verify=True)).run()
        assert run.simulated_time > 0

    def test_label_mentions_algorithm_and_size(self):
        label = spec().label()
        assert "distance_halving" in label
        assert "4KB" in label
