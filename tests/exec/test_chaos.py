"""The chaos harness itself: one full battery must pass, and a failing
check must fail loudly with artifacts kept."""

import pytest

from repro.exec.chaos import ChaosError, ChaosReport, run_chaos


class TestChaosHarness:
    def test_full_battery_passes(self, tmp_path):
        report = run_chaos(
            iterations=1, workers=2, kill_workers=True, seed=3,
            root=tmp_path / "chaos",
        )
        assert report.ok
        assert report.failed == []
        # Every phase ran: kills, resume, truncation, corruption, poison.
        names = {c["name"] for c in report.checks}
        assert {
            "kill/all-specs-complete",
            "kill/victim-retried",
            "resume/zero-recompute",
            "resume/bit-identical",
            "truncate/zero-recompute",
            "corrupt/recompute-exactly-one",
            "corrupt/recompute-deterministic",
            "poison/quarantined",
            "poison/manifest-attempts",
        } <= names
        assert "PASS" in report.summary()

    def test_without_kills_still_covers_resume_paths(self, tmp_path):
        report = run_chaos(
            iterations=1, workers=1, kill_workers=False, seed=5,
            root=tmp_path / "chaos",
        )
        assert report.ok
        names = {c["name"] for c in report.checks}
        assert "resume/zero-recompute" in names
        assert "kill/victim-retried" not in names
        assert "poison/quarantined" not in names

    def test_progress_callback_narrates_phases(self, tmp_path):
        lines = []
        run_chaos(
            iterations=1, workers=1, kill_workers=False, seed=5,
            root=tmp_path / "chaos", progress=lines.append,
        )
        assert any("phase A" in line for line in lines)
        assert any("phase D" in line for line in lines)

    def test_report_flags_failures(self):
        report = ChaosReport(iterations=1, kill_workers=False)
        report.checks.append(
            {"iteration": 0, "name": "demo", "ok": False, "detail": "boom"}
        )
        assert not report.ok
        assert report.failed[0]["name"] == "demo"
        assert "FAIL" in report.summary()
