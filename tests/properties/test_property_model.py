"""Property-based tests for the analytic model's structural guarantees."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.model.equations import (
    ModelParams,
    dh_messages,
    dh_total_time,
    expected_intra_messages,
    expected_off_socket_messages,
    naive_messages,
    naive_total_time,
)

params_st = st.builds(
    ModelParams,
    n=st.integers(40, 5000),
    sockets=st.sampled_from([1, 2, 4]),
    ranks_per_socket=st.integers(1, 40),
    alpha=st.floats(1e-7, 1e-5),
    beta=st.floats(1e8, 1e11),
).filter(lambda p: p.n >= p.ranks_per_socket)


@settings(deadline=None, max_examples=60)
@given(params_st, st.floats(0.0, 1.0))
def test_eq1_bounds(params, delta):
    """E[n_off] <= halving steps and <= delta*(n-L)."""
    n_off = float(expected_off_socket_messages(params, delta))
    assert 0.0 <= n_off <= params.halving_steps
    assert n_off <= delta * (params.n - params.ranks_per_socket) + 1e-9


@settings(deadline=None, max_examples=60)
@given(params_st, st.floats(0.0, 1.0))
def test_eq2_bounds(params, delta):
    """0 <= E[n_in] <= L (the paper's 'worst case E[n_in] equals L')."""
    n_in = float(expected_intra_messages(params, delta))
    assert 0.0 <= n_in <= params.ranks_per_socket + 1e-9


@settings(deadline=None, max_examples=60)
@given(params_st, st.floats(0.01, 1.0), st.floats(0.01, 1.0))
def test_message_counts_monotone_in_density(params, d1, d2):
    lo, hi = min(d1, d2), max(d1, d2)
    assert float(dh_messages(params, lo)) <= float(dh_messages(params, hi)) + 1e-9
    assert float(naive_messages(params, lo)) <= float(naive_messages(params, hi))


@settings(deadline=None, max_examples=60)
@given(params_st, st.floats(0.05, 1.0))
def test_dh_message_count_beats_naive_at_scale(params, delta):
    """The core message-reduction claim: whenever the naive count exceeds
    the DH ceiling (log-steps + L), DH sends fewer messages on average."""
    dh = float(dh_messages(params, delta))
    naive = float(naive_messages(params, delta))
    ceiling = params.halving_steps + params.ranks_per_socket
    if naive > ceiling:
        assert dh <= ceiling + 1e-9
        assert dh < naive


@settings(deadline=None, max_examples=60)
@given(params_st, st.floats(0.0, 1.0), st.sampled_from([8, 1024, 1 << 20]))
def test_times_positive_and_finite(params, delta, m):
    for t in (float(naive_total_time(params, delta, m)), float(dh_total_time(params, delta, m))):
        assert np.isfinite(t)
        assert t >= 0.0


@settings(deadline=None, max_examples=40)
@given(params_st, st.floats(0.1, 1.0))
def test_dh_advantage_shrinks_with_message_size(params, delta):
    """speedup(m) is non-increasing: DH's doubling penalty grows with m.

    Holds whenever halving actually happens (n > L).  The degenerate
    single-socket case n == L makes Eq. (6)'s closed form charge one m/beta
    term with zero messages — a quirk of the paper's formula, excluded here.
    """
    assume(params.n > params.ranks_per_socket)
    sizes = [8, 1024, 1 << 17, 1 << 22]
    speedups = [
        float(naive_total_time(params, delta, m)) / float(dh_total_time(params, delta, m))
        for m in sizes
    ]
    for a, b in zip(speedups, speedups[1:]):
        assert b <= a + 1e-9
