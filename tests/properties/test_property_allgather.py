"""Property-based tests: the allgather post-condition holds for arbitrary
topologies, machine shapes, and message sizes, for every algorithm.

This is the repository's central correctness property: whatever the graph
and machine, all three algorithms deliver exactly the incoming neighbors'
blocks — so any scheduling/offloading bug in Distance Halving or Common
Neighbor shows up as a verify failure on some generated instance.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Machine
from repro.collectives import get_algorithm, run_allgather, verify_allgather
from repro.collectives.distance_halving.builder import build_patterns, check_pattern
from repro.topology import DistGraphTopology, erdos_renyi_topology

machines_st = st.builds(
    Machine.niagara_like,
    nodes=st.integers(1, 4),
    ranks_per_socket=st.integers(1, 5),
)


@st.composite
def topology_and_machine(draw):
    machine = draw(machines_st)
    n = machine.spec.n_ranks
    density = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**31 - 1))
    loops = draw(st.booleans())
    topo = erdos_renyi_topology(n, density, seed=seed, allow_self_loops=loops)
    return topo, machine


@st.composite
def adversarial_topology_and_machine(draw):
    """Hand-drawn edge lists (not ER): skewed, disconnected, hub-heavy."""
    machine = draw(machines_st)
    n = machine.spec.n_ranks
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=3 * n,
        )
    )
    return DistGraphTopology.from_edges(n, edges), machine


class TestAllgatherPostcondition:
    @settings(deadline=None, max_examples=25)
    @given(topology_and_machine(), st.sampled_from([0, 1, 64, 4096]))
    def test_random_topologies(self, tm, msg_size):
        topo, machine = tm
        for name in ("naive", "common_neighbor", "distance_halving", "hierarchical", "bruck"):
            run = run_allgather(name, topo, machine, msg_size)
            verify_allgather(topo, run)

    @settings(deadline=None, max_examples=25)
    @given(adversarial_topology_and_machine())
    def test_adversarial_topologies(self, tm):
        topo, machine = tm
        for name in ("naive", "common_neighbor", "distance_halving", "bruck"):
            run = run_allgather(name, topo, machine, 64)
            verify_allgather(topo, run)

    @settings(deadline=None, max_examples=15)
    @given(topology_and_machine(), st.integers(1, 8))
    def test_common_neighbor_any_k(self, tm, k):
        topo, machine = tm
        run = run_allgather(get_algorithm("common_neighbor", k=k), topo, machine, 64)
        verify_allgather(topo, run)


class TestPatternInvariants:
    @settings(deadline=None, max_examples=25)
    @given(topology_and_machine())
    def test_exactly_once_delivery(self, tm):
        topo, machine = tm
        check_pattern(topo, build_patterns(topo, machine))

    @settings(deadline=None, max_examples=15)
    @given(topology_and_machine(), st.integers(1, 8))
    def test_exactly_once_any_stop(self, tm, stop):
        topo, machine = tm
        check_pattern(topo, build_patterns(topo, machine, stop_ranks=stop))

    @settings(deadline=None, max_examples=15)
    @given(adversarial_topology_and_machine())
    def test_exactly_once_adversarial(self, tm):
        topo, machine = tm
        check_pattern(topo, build_patterns(topo, machine))


class TestDeterminism:
    @settings(deadline=None, max_examples=10)
    @given(topology_and_machine())
    def test_simulated_time_reproducible(self, tm):
        topo, machine = tm
        t1 = run_allgather("distance_halving", topo, machine, 128).simulated_time
        t2 = run_allgather("distance_halving", topo, machine, 128).simulated_time
        assert t1 == t2
