"""Determinism audit for fault injection.

Contract (see docs/ARCHITECTURE.md): the same ``(seed, FaultPlan)`` pair
must yield bit-identical ``simulated_time`` and identical drop/retry
counters across repeated runs and across ``trace=True``/``trace=False`` —
all fault randomness is routed through ``repro.utils.rng.resolve_rng`` and
drawn in engine event order, which tracing never perturbs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Machine
from repro.cluster.spec import LinkClass
from repro.collectives.runner import RunOptions, run_allgather
from repro.sim.engine import DeadlockError
from repro.sim.faults import (
    FaultPlan,
    LinkFault,
    MessageLoss,
    RetryPolicy,
    Straggler,
)
from repro.topology import erdos_renyi_topology

MACHINE = Machine.single_switch(nodes=2, sockets_per_node=2, ranks_per_socket=2)
TOPOLOGY = erdos_renyi_topology(8, 0.5, seed=11)

ALGORITHMS = ("naive", "common_neighbor", "distance_halving", "bruck")


@st.composite
def fault_plans(draw):
    """Arbitrary small-but-meaningful fault plans."""
    link_faults = []
    if draw(st.booleans()):
        link_faults.append(
            LinkFault(
                link_class=draw(st.sampled_from(
                    [None, LinkClass.INTER_NODE, LinkClass.INTRA_SOCKET]
                )),
                alpha_factor=draw(st.floats(0.5, 8.0)),
                beta_factor=draw(st.floats(0.25, 2.0)),
                start=draw(st.floats(0.0, 1e-5)),
                end=draw(st.floats(1e-4, 1.0)),
            )
        )
    stragglers = []
    if draw(st.booleans()):
        stragglers.append(
            Straggler(
                rank=draw(st.integers(0, 7)),
                compute_factor=draw(st.floats(1.0, 16.0)),
                startup_delay=draw(st.floats(0.0, 1e-4)),
            )
        )
    losses = []
    if draw(st.booleans()):
        # Keep permanent loss effectively impossible: p <= 0.3 with 8
        # retries gives p_fail <= 2e-5 per message on this tiny grid.
        losses.append(MessageLoss(probability=draw(st.floats(0.0, 0.3))))
    return FaultPlan(
        link_faults=tuple(link_faults),
        stragglers=tuple(stragglers),
        losses=tuple(losses),
        retry=RetryPolicy(timeout=5e-6, backoff=2.0, max_retries=8),
        seed=draw(st.integers(0, 2**31)),
    )


def _signature(algorithm, plan, trace):
    run = run_allgather(
        algorithm, TOPOLOGY, MACHINE, 512,
        options=RunOptions(fault_plan=plan, trace=trace)
    )
    return (run.simulated_time, run.messages_sent, tuple(sorted(run.fault_stats.items())))


@settings(max_examples=25, deadline=None)
@given(plan=fault_plans(), algorithm=st.sampled_from(ALGORITHMS))
def test_same_seed_and_plan_is_bit_identical(plan, algorithm):
    try:
        first = _signature(algorithm, plan, trace=False)
    except DeadlockError:
        # Astronomically unlikely permanent loss; determinism still holds:
        # the rerun must deadlock too.
        with pytest.raises(DeadlockError):
            _signature(algorithm, plan, trace=False)
        return
    assert _signature(algorithm, plan, trace=False) == first
    # Tracing must never perturb timing, drops, or retry counts.
    assert _signature(algorithm, plan, trace=True) == first


@settings(max_examples=10, deadline=None)
@given(seed_a=st.integers(0, 2**31), seed_b=st.integers(0, 2**31))
def test_seed_controls_the_loss_stream(seed_a, seed_b):
    """Same plan, different seeds: counters may differ, determinism holds
    per seed (and equal seeds must agree exactly)."""
    def plan(seed):
        return FaultPlan(
            losses=(MessageLoss(probability=0.2),),
            retry=RetryPolicy(timeout=5e-6, max_retries=8),
            seed=seed,
        )

    sig_a = _signature("naive", plan(seed_a), trace=False)
    sig_b = _signature("naive", plan(seed_b), trace=False)
    if seed_a == seed_b:
        assert sig_a == sig_b
    assert _signature("naive", plan(seed_a), trace=False) == sig_a
    assert _signature("naive", plan(seed_b), trace=False) == sig_b
