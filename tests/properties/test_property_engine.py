"""Property-based tests for the discrete-event engine's semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Machine
from repro.sim.engine import Engine


def make_machine(nodes, rps):
    return Machine.niagara_like(nodes=nodes, ranks_per_socket=rps)


@settings(deadline=None, max_examples=25)
@given(
    st.integers(1, 3),
    st.integers(1, 4),
    st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 200), st.integers(0, 4096)),
        min_size=1,
        max_size=40,
    ),
)
def test_conservation_and_causality(nodes, rps, raw_msgs):
    """Every send is received exactly once; receives complete no earlier than
    their sends were posted; all clocks are non-negative and finite."""
    machine = make_machine(nodes, rps)
    n = machine.spec.n_ranks
    msgs = [(s % n, d % n, size) for s, d, size in raw_msgs]
    per_pair: dict[tuple[int, int], int] = {}
    for s, d, _ in msgs:
        per_pair[(s, d)] = per_pair.get((s, d), 0) + 1

    engine = Engine(n_ranks=n, machine=machine)
    received = []

    def make_program(rank):
        my_sends = [(d, size) for s, d, size in msgs if s == rank]
        my_recv_counts = {s: c for (s, d), c in per_pair.items() if d == rank}

        def program(comm):
            reqs = []
            for dst, size in my_sends:
                reqs.append(comm.isend(dst, size, tag=0, payload=(rank, size)))
            for src, count in my_recv_counts.items():
                for _ in range(count):
                    reqs.append(comm.irecv(src, tag=0))
            if reqs:
                yield comm.waitall(reqs)
            for req in reqs:
                if req.payload is not None and req.source is not None:
                    received.append((req.source, rank, req.nbytes, req.completion_time))

        return program

    engine.spawn_all(make_program)
    makespan = engine.run()

    assert len(received) == len(msgs)
    got_pairs: dict[tuple[int, int], int] = {}
    for s, d, _, t in received:
        got_pairs[(s, d)] = got_pairs.get((s, d), 0) + 1
        assert 0.0 <= t <= makespan
    assert got_pairs == per_pair


@settings(deadline=None, max_examples=15)
@given(st.integers(1, 3), st.integers(1, 3), st.integers(0, 2**31 - 1))
def test_exchange_is_deterministic(nodes, rps, seed):
    """Two identical runs produce identical finish times and makespans."""
    import numpy as np

    machine = make_machine(nodes, rps)
    n = machine.spec.n_ranks
    rng = np.random.default_rng(seed)
    peers = [int(rng.integers(0, n)) for _ in range(n)]

    def run_once():
        engine = Engine(n_ranks=n, machine=machine)

        def make_program(rank):
            def program(comm):
                dst = peers[rank]
                reqs = [comm.isend(dst, 512, tag=1, payload=rank)]
                srcs = [r for r in range(n) if peers[r] == rank]
                reqs += [comm.irecv(src, tag=1) for src in srcs]
                yield comm.waitall(reqs)

            return program

        engine.spawn_all(make_program)
        engine.run()
        return engine.finish_times()

    assert run_once() == run_once()


@settings(deadline=None, max_examples=10)
@given(
    st.sampled_from(["naive", "common_neighbor", "distance_halving", "bruck"]),
    st.integers(2, 4),
    st.floats(0.1, 0.6),
    st.integers(0, 1 << 16),
    st.integers(0, 2**31 - 1),
)
def test_tracing_never_perturbs_the_simulation(algorithm, nodes, density, size, seed):
    """``trace=True`` only observes: simulated time, message count, byte
    count and per-rank finish times must be bit-identical to an untraced
    run of the same collective."""
    from repro.collectives.runner import RunOptions, run_allgather
    from repro.topology import erdos_renyi_topology

    machine = make_machine(nodes, 2)
    topology = erdos_renyi_topology(machine.spec.n_ranks, density, seed=seed)
    plain = run_allgather(algorithm, topology, machine, size)
    traced = run_allgather(algorithm, topology, machine, size,
                           options=RunOptions(trace=True))
    assert traced.simulated_time == plain.simulated_time
    assert traced.messages_sent == plain.messages_sent
    assert traced.bytes_sent == plain.bytes_sent
    assert traced.finish_times == plain.finish_times
    assert traced.trace is not None
    assert traced.trace.total_messages == traced.messages_sent


@settings(deadline=None, max_examples=15)
@given(st.integers(2, 12), st.integers(1, 20), st.integers(1, 1 << 16))
def test_port_serialization_lower_bound(n_senders, msgs_each, size):
    """A single receiver draining k messages cannot finish faster than the
    sum of its per-message port occupancies (single-port assumption)."""
    machine = make_machine(4, 4)
    n = machine.spec.n_ranks
    n_senders = min(n_senders, n - 1)
    engine = Engine(n_ranks=n, machine=machine)

    def receiver(comm):
        reqs = []
        for src in range(1, n_senders + 1):
            for _ in range(msgs_each):
                reqs.append(comm.irecv(src, tag=0))
        yield comm.waitall(reqs)

    def make_sender(rank):
        def sender(comm):
            reqs = [comm.isend(0, size, tag=0) for _ in range(msgs_each)]
            yield comm.waitall(reqs)

        return sender

    engine.spawn(0, receiver)
    for r in range(1, n_senders + 1):
        engine.spawn(r, make_sender(r))
    for r in range(n_senders + 1, n):
        engine.spawn(r, lambda comm: None)
    engine.run()

    total_msgs = n_senders * msgs_each
    # Cheapest possible per-message occupancy at the receiver's port.
    cheapest = min(
        machine.params.cost(cls).alpha + size / machine.params.cost(cls).beta
        for cls in (
            machine.link_class(0, r) for r in range(1, n_senders + 1)
        )
    )
    assert engine.finish_time(0) >= total_msgs * cheapest * 0.999
