"""Unit tests for the terminal heatmap renderer."""

import numpy as np
import pytest

from repro.bench.heatmap import render_heatmap, render_speedup_grid, shade_for_speedup


class TestShadeForSpeedup:
    def test_parity_is_middle_shade(self):
        from repro.bench.heatmap import _SHADES

        middle = _SHADES.index(shade_for_speedup(1.0))
        assert abs(middle - (len(_SHADES) - 1) / 2) <= 0.5

    def test_extremes(self):
        assert shade_for_speedup(1000.0) == "@"
        assert shade_for_speedup(0.001) == " "

    def test_monotone(self):
        from repro.bench.heatmap import _SHADES

        shades = [shade_for_speedup(v) for v in (0.05, 0.3, 1.0, 3.0, 20.0)]
        indices = [_SHADES.index(s) for s in shades]
        assert indices == sorted(indices)

    def test_invalid_values(self):
        assert shade_for_speedup(0.0) == "?"
        assert shade_for_speedup(float("nan")) == "?"


class TestRenderHeatmap:
    def test_contains_labels_and_values(self):
        text = render_heatmap(
            [[1.0, 2.0], [0.5, 8.0]], ["r1", "r2"], ["c1", "c2"], title="T"
        )
        for token in ("T", "r1", "r2", "c1", "c2", "1.00", "8.00", "shades:"):
            assert token in text

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match labels"):
            render_heatmap([[1.0]], ["a", "b"], ["c"])

    def test_rows_aligned(self):
        text = render_heatmap(np.ones((3, 4)), ["a", "bb", "ccc"], list("wxyz"))
        data_lines = text.splitlines()[1:-1]
        assert len({len(line) for line in data_lines[1:]}) == 1


class TestRenderSpeedupGrid:
    def test_pivot(self):
        rows = [
            {"d": 0.1, "m": 8, "s": 2.0},
            {"d": 0.1, "m": 64, "s": 1.0},
            {"d": 0.5, "m": 8, "s": 4.0},
            {"d": 0.5, "m": 64, "s": 3.0},
        ]
        text = render_speedup_grid(rows, "d", "m", "s", title="grid")
        assert "grid" in text and "4.00" in text

    def test_incomplete_grid_rejected(self):
        rows = [
            {"d": 0.1, "m": 8, "s": 2.0},
            {"d": 0.5, "m": 64, "s": 3.0},
        ]
        with pytest.raises(ValueError, match="full row x column grid"):
            render_speedup_grid(rows, "d", "m", "s")


class TestSweepHeatmap:
    def test_orchestrated_grid_renders(self):
        from repro.bench.heatmap import sweep_heatmap

        text = sweep_heatmap(
            ranks=16, ranks_per_socket=4,
            densities=(0.1, 0.5), sizes=("64", "16KB"),
        )
        assert "speedup over naive" in text
        assert "d=0.1" in text and "16KB" in text
