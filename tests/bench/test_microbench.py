"""Unit tests for the iterated latency micro-benchmark."""

import dataclasses

import pytest

from repro.bench.microbench import latency_benchmark
from repro.cluster.hockney import NIAGARA_LIKE


class TestLatencyBenchmark:
    def test_noiseless_machine_is_flat(self, small_machine, small_topology):
        stats = latency_benchmark("naive", small_topology, small_machine, 256,
                                  iterations=5)
        assert stats.minimum == stats.maximum == stats.average
        assert stats.std == 0.0
        assert stats.cv == 0.0
        assert stats.iterations == 5

    def test_jitter_produces_distribution(self, small_machine, small_topology):
        noisy = dataclasses.replace(
            small_machine, params=dataclasses.replace(NIAGARA_LIKE, jitter=0.4)
        )
        stats = latency_benchmark("naive", small_topology, noisy, 256, iterations=8)
        assert stats.minimum < stats.maximum
        assert stats.std > 0.0
        assert stats.minimum <= stats.average <= stats.maximum

    def test_vary_placement_produces_distribution(self, small_machine, small_topology):
        stats = latency_benchmark(
            "naive", small_topology, small_machine, 4096,
            iterations=6, vary_placement=True,
        )
        assert stats.std > 0.0

    def test_size_label_parsed(self, small_machine, small_topology):
        stats = latency_benchmark("naive", small_topology, small_machine, "4KB",
                                  iterations=2)
        assert stats.msg_size == 4096

    def test_deterministic_by_seed(self, small_machine, small_topology):
        kwargs = dict(iterations=4, vary_placement=True, seed=5)
        a = latency_benchmark("naive", small_topology, small_machine, 64, **kwargs)
        b = latency_benchmark("naive", small_topology, small_machine, 64, **kwargs)
        assert a == b

    def test_dh_more_stable_under_placement(self, medium_machine):
        """The Fig. 6 stability claim, via the micro-benchmark interface."""
        from repro.topology import moore_topology

        topo = moore_topology(medium_machine.spec.n_ranks, r=2, d=2)
        naive = latency_benchmark("naive", topo, medium_machine, 512,
                                  iterations=6, vary_placement=True)
        dh = latency_benchmark("distance_halving", topo, medium_machine, 512,
                               iterations=6, vary_placement=True)
        assert dh.average < naive.average
        assert dh.cv <= naive.cv * 1.5

    def test_validation(self, small_machine, small_topology):
        with pytest.raises(ValueError, match="iterations"):
            latency_benchmark("naive", small_topology, small_machine, 64, iterations=0)
        with pytest.raises(ValueError, match="warmup"):
            latency_benchmark("naive", small_topology, small_machine, 64, warmup=-1)
