"""Unit tests for sweep helpers."""

import pytest

from repro.bench.sweep import best_common_neighbor, speedup_over, sweep_latency
from repro.topology import erdos_renyi_topology


class TestSweepLatency:
    def test_one_record_per_size(self, small_machine, small_topology):
        records = sweep_latency("naive", small_topology, small_machine, ("64", "4KB"))
        assert [r.msg_size for r in records] == [64, 4096]
        assert all(r.algorithm == "naive" for r in records)
        assert records[0].simulated_time < records[1].simulated_time

    def test_msg_label(self, small_machine, small_topology):
        records = sweep_latency("naive", small_topology, small_machine, ("4KB",))
        assert records[0].msg_label == "4KB"

    def test_setup_amortized_across_sizes(self, small_machine, small_topology):
        records = sweep_latency(
            "distance_halving", small_topology, small_machine, ("64", "4KB", "64KB")
        )
        details = [r.detail["data_messages_per_call"] for r in records]
        assert details[0] == details[1] == details[2]


class TestBestCommonNeighbor:
    def test_picks_minimum_per_size(self, small_machine):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.5, seed=31)
        sizes = ("64", "64KB")
        best = best_common_neighbor(topo, small_machine, sizes, ks=(1, 2, 4))
        for i, size in enumerate(sizes):
            per_k = [
                sweep_latency("common_neighbor", topo, small_machine, (size,), k=k)[0]
                for k in (1, 2, 4)
            ]
            assert best[i].simulated_time == min(r.simulated_time for r in per_k)
            assert best[i].detail["best_k"] in (1, 2, 4)


class TestSpeedupOver:
    def test_ratio(self, small_machine, small_topology):
        naive = sweep_latency("naive", small_topology, small_machine, ("64",))
        dh = sweep_latency("distance_halving", small_topology, small_machine, ("64",))
        (size, ratio), = speedup_over(naive, dh)
        assert size == 64
        assert ratio == pytest.approx(naive[0].simulated_time / dh[0].simulated_time)

    def test_mismatched_lengths_rejected(self, small_machine, small_topology):
        a = sweep_latency("naive", small_topology, small_machine, ("64",))
        b = sweep_latency("naive", small_topology, small_machine, ("64", "128"))
        with pytest.raises(ValueError, match="different lengths"):
            speedup_over(a, b)

    def test_mismatched_sizes_rejected(self, small_machine, small_topology):
        a = sweep_latency("naive", small_topology, small_machine, ("64",))
        b = sweep_latency("naive", small_topology, small_machine, ("128",))
        with pytest.raises(ValueError, match="size mismatch"):
            speedup_over(a, b)


class TestSmokeSweep:
    def test_cold_then_warm_answers_from_cache(self, tmp_path):
        from repro.bench.config import SweepConfig
        from repro.bench.sweep import smoke_sweep

        cold = smoke_sweep(SweepConfig(cache_dir=tmp_path, use_cache=True))
        warm = smoke_sweep(
            SweepConfig(cache_dir=tmp_path, use_cache=True, workers=2)
        )
        assert cold["execution"]["computed"] == cold["execution"]["total"]
        assert warm["execution"]["from_cache"] == warm["execution"]["total"]
        assert warm["execution"]["cache"]["hit_rate"] == 1.0
        # The determinism contract: cached records == computed records.
        assert warm["records"] == cold["records"]

    def test_cacheless_run_computes_everything(self):
        from repro.bench.config import SweepConfig
        from repro.bench.sweep import smoke_sweep

        report = smoke_sweep(SweepConfig())
        assert report["execution"]["computed"] == report["execution"]["total"]
        assert "cache" not in report["execution"]


class TestPaperSmokeSweep:
    """Shape test at a tiny rank count; CI runs the real 2160-rank slice."""

    def test_runs_in_auto_mode_and_reports_sim_path(self, tmp_path):
        from repro.bench.config import SweepConfig
        from repro.bench.sweep import paper_smoke_sweep

        cold = paper_smoke_sweep(
            SweepConfig(cache_dir=tmp_path, use_cache=True),
            ranks=32, ranks_per_socket=4,
        )
        assert cold["sim_mode"] == "auto"
        assert cold["execution"]["computed"] == cold["execution"]["total"]
        # Auto mode must never silently fall back to the engine here: the
        # slice has no faults, no trace, and a jitter-free machine.
        assert all(r["sim_path"] in ("fastpath", "analytic")
                   for r in cold["records"])
        warm = paper_smoke_sweep(
            SweepConfig(cache_dir=tmp_path, use_cache=True),
            ranks=32, ranks_per_socket=4,
        )
        assert warm["execution"]["cache"]["hit_rate"] == 1.0
        # sim_path must survive the cache round-trip (serialize.py).
        assert warm["records"] == cold["records"]
