"""Smoke + structure tests for the per-figure drivers at a tiny scale."""

import pytest

import repro.bench.reporting as reporting
from repro.bench.config import BenchScale
from repro.bench.figures import (
    ablation_agent_policy,
    ablation_stop_granularity,
    fig2_model,
    fig4_latency,
    fig5_speedup_scaling,
    fig6_moore,
    fig7_spmm,
    fig8_overhead,
)

TINY = BenchScale(
    name="tiny",
    ranks=32,
    ranks_per_socket=4,
    densities=(0.1, 0.5),
    sizes=("64", "16KB"),
    moore_ranks=32,
)


@pytest.fixture(autouse=True)
def isolated_results(tmp_path, monkeypatch):
    monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
    yield tmp_path


class TestDrivers:
    def test_fig2(self, isolated_results):
        payload = fig2_model(TINY, verbose=False)
        assert payload["params"]["n"] == 2000  # always at paper scale
        assert len(payload["rows"]) > 0
        assert (isolated_results / "fig2_model.json").exists()

    def test_fig4(self, isolated_results):
        payload = fig4_latency(TINY, verbose=False)
        assert len(payload["rows"]) == len(TINY.densities) * len(TINY.sizes)
        row = payload["rows"][0]
        assert {"density", "msg_size", "measured_speedup", "model_speedup"} <= set(row)
        assert (isolated_results / "fig4_latency.json").exists()

    def test_fig5(self, isolated_results):
        payload = fig5_speedup_scaling(TINY, verbose=False)
        assert len(payload["rank_counts"]) == 3
        assert payload["rank_counts"][0] == 32
        assert payload["summary"]
        assert all(r["dh_speedup"] > 0 for r in payload["rows"])

    def test_fig6(self, isolated_results):
        payload = fig6_moore(TINY, verbose=False)
        assert {(r["r"], r["d"]) for r in payload["rows"]} == {
            (1, 2), (2, 2), (3, 2), (1, 3), (2, 3)
        }
        assert all(r["msg_size"] in (4096, 262144, 4194304) for r in payload["rows"])

    def test_fig7(self, isolated_results):
        payload = fig7_spmm(TINY, verbose=False)
        assert len(payload["rows"]) == 7
        assert all(r["dh_speedup"] > 0 and r["cn_speedup"] > 0 for r in payload["rows"])

    def test_fig8(self, isolated_results):
        payload = fig8_overhead(TINY, verbose=False)
        assert len(payload["rows"]) == len(TINY.densities)
        assert all(r["dh_setup_messages"] > 0 for r in payload["rows"])

    def test_ablation_agent_policy(self, isolated_results):
        payload = ablation_agent_policy(TINY, verbose=False)
        assert all(r["random_over_aware"] > 0 for r in payload["rows"])

    def test_ablation_stop_granularity(self, isolated_results):
        payload = ablation_stop_granularity(TINY, verbose=False)
        assert all(r["single_over_socket"] > 0 for r in payload["rows"])

    def test_verbose_prints_table(self, isolated_results, capsys):
        fig8_overhead(TINY, verbose=True)
        out = capsys.readouterr().out
        assert "Fig. 8" in out and "density" in out
