"""Unit tests for benchmark scale configuration."""

import pytest

from repro.bench.config import ENV_VAR, bench_machine, get_scale


class TestGetScale:
    def test_default_is_small(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert get_scale().name == "small"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "medium")
        assert get_scale().name == "medium"

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "medium")
        assert get_scale("large").name == "large"

    def test_unknown_scale(self):
        with pytest.raises(KeyError, match="unknown bench scale"):
            get_scale("galactic")

    def test_paper_scale_matches_paper(self):
        scale = get_scale("paper")
        assert scale.ranks == 2160
        assert scale.ranks_per_socket == 18
        assert scale.moore_ranks == 2048

    def test_all_scales_have_paper_density_grid(self):
        for name in ("small", "medium", "large", "paper"):
            scale = get_scale(name)
            assert scale.densities == (0.05, 0.1, 0.2, 0.3, 0.5, 0.7)


class TestBenchMachine:
    def test_exact_rank_count(self):
        machine = bench_machine(128, 8)
        assert machine.spec.n_ranks == 128
        assert machine.spec.sockets_per_node == 2

    def test_partial_node_rejected(self):
        with pytest.raises(ValueError, match="does not fill"):
            bench_machine(100, 8)

    def test_scales_build_their_machines(self):
        for name in ("small", "medium", "large"):
            scale = get_scale(name)
            machine = bench_machine(scale.ranks, scale.ranks_per_socket)
            assert machine.spec.n_ranks == scale.ranks


class TestSweepConfig:
    def test_library_default_is_serial_and_cacheless(self):
        from repro.bench.config import SweepConfig

        cfg = SweepConfig()
        assert cfg.workers == 1
        assert cfg.cache() is None

    def test_cache_is_shared_across_calls(self, tmp_path):
        from pathlib import Path as P

        from repro.bench.config import SweepConfig

        cfg = SweepConfig(cache_dir=tmp_path, use_cache=True)
        assert cfg.cache() is cfg.cache()
        assert cfg.cache().cache_dir == P(tmp_path)

    def test_resolve_scale_prefers_explicit_argument(self):
        from repro.bench.config import SweepConfig, get_scale

        small, medium = get_scale("small"), get_scale("medium")
        assert SweepConfig(scale=small).resolve_scale(medium) is medium
        assert SweepConfig(scale=small).resolve_scale() is small
        assert SweepConfig().resolve_scale().name == "small"

    def test_resolve_seed(self):
        from repro.bench.config import SweepConfig

        assert SweepConfig().resolve_seed(23) == 23
        assert SweepConfig(seed=7).resolve_seed(23) == 7

    def test_run_routes_through_orchestrator(self, tmp_path):
        from repro.bench.config import SweepConfig
        from repro.exec import MachineSpec, RunSpec, TopologySpec

        spec = RunSpec(
            "naive",
            TopologySpec("random", 8, density=0.5, seed=1),
            MachineSpec.for_ranks(8, ranks_per_socket=2),
            64,
        )
        cfg = SweepConfig(cache_dir=tmp_path, use_cache=True)
        first = cfg.run([spec])
        second = cfg.run([spec])
        assert first.runs[0].simulated_time == second.runs[0].simulated_time
        assert second.stats["from_cache"] == 1
