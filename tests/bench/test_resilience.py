"""Tests for the fault-injection resilience study harness."""

import json

import pytest

from repro.bench.config import get_scale
from repro.bench.resilience import ALGORITHMS, build_grid, resilience_bench
from repro.cli import main
from repro.sim.faults import PROFILE_NAMES

SMALL = get_scale("small")


def _strip_wall(payload: dict) -> dict:
    """Drop the wall-clock fields excluded from the determinism contract."""
    payload = {k: v for k, v in payload.items() if k not in ("timestamp", "wall_total")}
    payload["cases"] = [
        {k: v for k, v in case.items() if k != "wall_time"}
        for case in payload["cases"]
    ]
    return payload


class TestGrid:
    def test_smoke_grid_is_tiny(self):
        grid = build_grid(SMALL, smoke=True)
        assert len(grid) == 1
        assert grid[0][0] == 4 * SMALL.ranks_per_socket

    def test_full_grid_uses_scale_ranks(self):
        grid = build_grid(SMALL, smoke=False)
        assert all(ranks == SMALL.ranks for ranks, _, _ in grid)
        assert len(grid) == 4  # 2 densities x 2 sizes


class TestSmokeRun:
    @pytest.fixture(scope="class")
    def payload(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("resilience") / "BENCH_resilience.json"
        payload = resilience_bench(scale=SMALL, smoke=True, out_path=out)
        on_disk = json.loads(out.read_text())
        assert _strip_wall(on_disk) == _strip_wall(payload)
        return payload

    def test_every_algorithm_and_profile_covered(self, payload):
        cells = {(c["algorithm"], c["profile"]) for c in payload["cases"]}
        assert cells == {
            (a, p) for a in ALGORITHMS for p in PROFILE_NAMES
        }

    def test_all_cases_completed_and_report_slowdown(self, payload):
        for case in payload["cases"]:
            assert case["status"] == "completed", case
            if case["profile"] != "clean":
                assert case["slowdown_vs_clean"] > 0

    def test_slowdown_geomean_for_all_algorithms(self, payload):
        summary = payload["slowdown_geomean"]
        assert len(summary) >= 3  # at least 3 fault profiles
        for profile, per_alg in summary.items():
            for algorithm in ALGORITHMS:
                assert per_alg[algorithm] is not None, (profile, algorithm)

    def test_faults_actually_hurt(self, payload):
        """Perturbed profiles must cost simulated time (slowdown > 1)."""
        for case in payload["cases"]:
            if case["profile"] in ("jitter", "straggler", "lossy"):
                assert case["slowdown_vs_clean"] > 1.0, case

    def test_lossy_profile_retransmits(self, payload):
        lossy = [c for c in payload["cases"] if c["profile"] == "lossy"]
        assert any(c["fault_stats"]["retransmissions"] > 0 for c in lossy)
        assert all(c["fault_stats"]["messages_lost"] == 0 for c in lossy)

    def test_setup_loss_triggers_fallback_for_planned_algorithms(self, payload):
        by_alg = {
            c["algorithm"]: c for c in payload["cases"]
            if c["profile"] == "setup_loss"
        }
        assert not by_alg["naive"]["fallback_used"]
        assert by_alg["distance_halving"]["fallback_used"]
        assert by_alg["distance_halving"]["executed_algorithm"] == "naive"

    def test_two_runs_identical_modulo_wallclock(self, payload):
        again = resilience_bench(scale=SMALL, smoke=True, out_path=None)
        assert _strip_wall(again) == _strip_wall(payload)


class TestCli:
    def test_bench_resilience_smoke(self, tmp_path, capsys):
        out = tmp_path / "BENCH_resilience.json"
        assert main(["bench", "--resilience", "--smoke", "--scale", "small",
                     "--out", str(out)]) == 0
        assert out.is_file()
        assert "slowdown vs clean" in capsys.readouterr().out

    def test_wallclock_and_resilience_mutually_exclusive(self, capsys):
        assert main(["bench", "--wallclock", "--resilience"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err
