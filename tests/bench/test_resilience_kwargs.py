"""Kwargs-threading audit for the resilience study.

Every row of ``repro bench --resilience`` must run its algorithm with
exactly the registry's ``bench_kwargs`` pin — a row that silently falls
back to another algorithm's tuning (or to defaults) would corrupt the
cross-algorithm slowdown comparison.  The audit runs on
:func:`repro.bench.resilience.build_study`'s specs (cheap, no
simulation) and on a real smoke report's recorded rows.
"""

from repro.bench.config import get_scale
from repro.bench.resilience import ALGORITHMS, build_study, resilience_bench
from repro.collectives.base import algorithm_info


class TestStudySpecs:
    def test_every_spec_carries_the_registry_bench_kwargs(self):
        study = build_study(get_scale("small"), smoke=False)
        assert study, "empty study grid"
        for case, spec in study:
            expected = tuple(algorithm_info(case.algorithm).bench_kwargs)
            assert spec.algorithm == case.algorithm
            assert tuple(spec.algorithm_kwargs) == expected, (
                f"{case.label()} runs with {spec.algorithm_kwargs!r}, "
                f"registry pins {expected!r}"
            )

    def test_study_covers_every_bench_algorithm(self):
        study = build_study(get_scale("small"), smoke=True)
        assert {case.algorithm for case, _ in study} == set(ALGORITHMS)

    def test_tuned_and_untuned_kwargs_differ(self):
        """Vacuity guard: the audit only means something if at least one
        algorithm actually pins non-empty kwargs."""
        pinned = {
            name: tuple(algorithm_info(name).bench_kwargs)
            for name in ALGORITHMS
        }
        assert pinned["common_neighbor"] == (("k", 4),)
        assert any(not kw for kw in pinned.values())


class TestReportRows:
    def test_smoke_report_rows_match_the_registry(self, tmp_path):
        payload = resilience_bench(
            scale=get_scale("small"), smoke=True,
            out_path=tmp_path / "BENCH_resilience.json",
        )
        assert payload["bench_kwargs"] == {
            name: dict(algorithm_info(name).bench_kwargs)
            for name in ALGORITHMS
        }
        assert payload["cases"], "smoke study produced no rows"
        for row in payload["cases"]:
            assert row["algorithm_kwargs"] == payload["bench_kwargs"][
                row["algorithm"]
            ], row
