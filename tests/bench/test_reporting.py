"""Unit tests for reporting helpers."""

import json

import pytest

import repro.bench.reporting as reporting
from repro.bench.reporting import format_table, geometric_mean, save_results


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_floats_formatted(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.123" in text

    def test_wide_cells_grow_columns(self):
        text = format_table(["h"], [["a-very-long-cell"]])
        header, sep, row = text.splitlines()
        assert len(header) == len(sep) == len(row)


class TestSaveResults:
    def test_writes_json(self, tmp_path, monkeypatch):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        path = save_results("exp1", {"rows": [{"x": 1}]})
        assert path == tmp_path / "exp1.json"
        data = json.loads(path.read_text())
        assert data["experiment"] == "exp1"
        assert data["rows"] == [{"x": 1}]
        assert "timestamp" in data

    def test_non_serializable_values_stringified(self, tmp_path, monkeypatch):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        path = save_results("exp2", {"rows": [], "weird": {1, 2}})
        assert json.loads(path.read_text())["weird"]


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
