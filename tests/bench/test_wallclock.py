"""Tests for the sim-core wall-clock harness (and its CLI entry point)."""

import json

import pytest

from repro.bench.config import get_scale
from repro.bench.wallclock import (
    ALGORITHMS,
    FULL_DENSITIES,
    FULL_SIZES,
    build_cases,
    wallclock_bench,
)
from repro.cli import main

SMALL = get_scale("small")


class TestBuildCases:
    def test_full_grid_shape(self):
        cases = build_cases(SMALL)
        assert len(cases) == len(ALGORITHMS) * len(FULL_DENSITIES) * len(FULL_SIZES)
        assert {c.algorithm for c in cases} == set(ALGORITHMS)
        assert all(c.ranks == SMALL.ranks for c in cases)

    def test_smoke_grid_is_tiny(self):
        cases = build_cases(SMALL, smoke=True)
        assert len(cases) == len(ALGORITHMS)
        assert all(c.ranks == 4 * SMALL.ranks_per_socket for c in cases)


class TestWallclockBench:
    def test_smoke_run_writes_report(self, tmp_path):
        out = tmp_path / "bench.json"
        payload = wallclock_bench(
            scale=SMALL, repeats=2, smoke=True, out_path=out,
            baseline_path=tmp_path / "missing.json",
        )
        assert out.is_file()
        on_disk = json.loads(out.read_text())
        assert on_disk["experiment"] == "sim_core_wallclock"
        assert on_disk["smoke"] is True
        assert len(on_disk["cases"]) == len(ALGORITHMS)
        for case in on_disk["cases"]:
            assert case["simulated_time"] > 0
            assert case["messages_sent"] > 0
            assert len(case["wall_seconds"]) == 2
            assert case["wall_median"] > 0
        # Disk payload and return value agree on the sim results.
        assert [c["simulated_time"] for c in on_disk["cases"]] == [
            c["simulated_time"] for c in payload["cases"]
        ]

    def test_baseline_record_then_compare(self, tmp_path):
        """Recording a baseline and re-running must report bit-identical sim
        times (deterministic engine) and a finite speedup."""
        baseline = tmp_path / "baseline.json"
        wallclock_bench(
            scale=SMALL, repeats=1, smoke=True, out_path=None,
            baseline_path=baseline, record_baseline=True,
        )
        assert baseline.is_file()
        payload = wallclock_bench(
            scale=SMALL, repeats=1, smoke=True, out_path=None,
            baseline_path=baseline,
        )
        check = payload["baseline"]
        assert check["sim_time_identical"] is True
        assert check["checked_cases"] == len(ALGORITHMS)
        assert check["speedup_total"] > 0

    def test_divergent_baseline_rejected(self, tmp_path):
        """A sim-time mismatch against the baseline must fail loudly — the
        harness asserts before/after equivalence, it does not just report."""
        baseline = tmp_path / "baseline.json"
        wallclock_bench(
            scale=SMALL, repeats=1, smoke=True, out_path=None,
            baseline_path=baseline, record_baseline=True,
        )
        recorded = json.loads(baseline.read_text())
        recorded["cases"][0]["simulated_time"] *= 2.0
        baseline.write_text(json.dumps(recorded))
        with pytest.raises(RuntimeError, match="diverged from the baseline"):
            wallclock_bench(
                scale=SMALL, repeats=1, smoke=True, out_path=None,
                baseline_path=baseline,
            )

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            wallclock_bench(scale=SMALL, repeats=0, smoke=True, out_path=None)


class TestCli:
    def test_bench_wallclock_smoke(self, tmp_path, capsys):
        """The tier-1 wallclock smoke invocation: must run in seconds and
        emit the report + table."""
        out = tmp_path / "BENCH_sim_core.json"
        assert main([
            "bench", "--wallclock", "--smoke", "--scale", "small",
            "--out", str(out),
        ]) == 0
        assert out.is_file()
        assert "sim-core wallclock" in capsys.readouterr().out

    def test_bench_without_figure_or_wallclock_errors(self, capsys):
        assert main(["bench"]) == 2
        assert "figure name is required" in capsys.readouterr().err
