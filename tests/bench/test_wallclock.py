"""Tests for the sim-core wall-clock harness (and its CLI entry point)."""

import json

import pytest

from repro.bench.config import get_scale
from repro.bench.wallclock import (
    ALGORITHMS,
    FULL_DENSITIES,
    FULL_SIZES,
    build_cases,
    wallclock_bench,
)
from repro.cli import main

SMALL = get_scale("small")


class TestBuildCases:
    def test_full_grid_shape(self):
        cases = build_cases(SMALL)
        assert len(cases) == len(ALGORITHMS) * len(FULL_DENSITIES) * len(FULL_SIZES)
        assert {c.algorithm for c in cases} == set(ALGORITHMS)
        assert all(c.ranks == SMALL.ranks for c in cases)

    def test_smoke_grid_is_tiny(self):
        cases = build_cases(SMALL, smoke=True)
        assert len(cases) == len(ALGORITHMS)
        assert all(c.ranks == 4 * SMALL.ranks_per_socket for c in cases)


class TestWallclockBench:
    def test_smoke_run_writes_report(self, tmp_path):
        out = tmp_path / "bench.json"
        payload = wallclock_bench(
            scale=SMALL, repeats=2, smoke=True, out_path=out,
            baseline_path=tmp_path / "missing.json",
        )
        assert out.is_file()
        on_disk = json.loads(out.read_text())
        assert on_disk["experiment"] == "sim_core_wallclock"
        assert on_disk["smoke"] is True
        assert len(on_disk["cases"]) == len(ALGORITHMS)
        for case in on_disk["cases"]:
            assert case["simulated_time"] > 0
            assert case["messages_sent"] > 0
            assert len(case["wall_seconds"]) == 2
            assert case["wall_median"] > 0
        # Disk payload and return value agree on the sim results.
        assert [c["simulated_time"] for c in on_disk["cases"]] == [
            c["simulated_time"] for c in payload["cases"]
        ]

    def test_baseline_record_then_compare(self, tmp_path):
        """Recording a baseline and re-running must report bit-identical sim
        times (deterministic engine) and a finite speedup."""
        baseline = tmp_path / "baseline.json"
        wallclock_bench(
            scale=SMALL, repeats=1, smoke=True, out_path=None,
            baseline_path=baseline, record_baseline=True,
        )
        assert baseline.is_file()
        payload = wallclock_bench(
            scale=SMALL, repeats=1, smoke=True, out_path=None,
            baseline_path=baseline,
        )
        check = payload["baseline"]
        assert check["sim_time_identical"] is True
        assert check["checked_cases"] == len(ALGORITHMS)
        assert check["speedup_total"] > 0

    def test_divergent_baseline_rejected(self, tmp_path):
        """A sim-time mismatch against the baseline must fail loudly — the
        harness asserts before/after equivalence, it does not just report."""
        baseline = tmp_path / "baseline.json"
        wallclock_bench(
            scale=SMALL, repeats=1, smoke=True, out_path=None,
            baseline_path=baseline, record_baseline=True,
        )
        recorded = json.loads(baseline.read_text())
        recorded["cases"][0]["simulated_time"] *= 2.0
        baseline.write_text(json.dumps(recorded))
        with pytest.raises(RuntimeError, match="diverged from the baseline"):
            wallclock_bench(
                scale=SMALL, repeats=1, smoke=True, out_path=None,
                baseline_path=baseline,
            )

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            wallclock_bench(scale=SMALL, repeats=0, smoke=True, out_path=None)

    def test_profile_attaches_top_n_rows(self, tmp_path):
        payload = wallclock_bench(
            scale=SMALL, repeats=1, smoke=True, out_path=None,
            baseline_path=tmp_path / "missing.json", profile=True,
        )
        for case in payload["cases"]:
            rows = case["profile"]
            assert 0 < len(rows) <= 15
            # sorted by cumulative time, JSON-friendly shape
            cums = [r["cumtime"] for r in rows]
            assert cums == sorted(cums, reverse=True)
            assert all({"function", "ncalls", "tottime", "cumtime"}
                       <= set(r) for r in rows)

    def test_payload_carries_plan_cache_stats(self, tmp_path):
        payload = wallclock_bench(
            scale=SMALL, repeats=2, smoke=True, out_path=None,
            baseline_path=tmp_path / "missing.json",
        )
        stats = payload["plan_cache"]
        assert {"hits", "misses", "evictions", "size", "max_entries",
                "hit_rate"} <= set(stats)
        # warm repeats within the harness itself must produce hits
        assert stats["hits"] > 0


class TestCli:
    def test_bench_wallclock_smoke(self, tmp_path, capsys):
        """The tier-1 wallclock smoke invocation: must run in seconds and
        emit the report + table."""
        out = tmp_path / "BENCH_sim_core.json"
        assert main([
            "bench", "--wallclock", "--smoke", "--scale", "small",
            "--out", str(out),
        ]) == 0
        assert out.is_file()
        assert "sim-core wallclock" in capsys.readouterr().out

    def test_bench_without_figure_or_wallclock_errors(self, capsys):
        assert main(["bench"]) == 2
        assert "figure name is required" in capsys.readouterr().err

    def test_profile_flag_prints_tables(self, tmp_path, capsys):
        out = tmp_path / "BENCH_sim_core.json"
        assert main([
            "bench", "--wallclock", "--smoke", "--scale", "small",
            "--profile", "--out", str(out),
        ]) == 0
        assert "profile:" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert all("profile" in c for c in payload["cases"])

    def test_speedup_gate_fails_when_unreachable(self, tmp_path, capsys):
        out = tmp_path / "BENCH_sim_core.json"
        assert main([
            "bench", "--wallclock", "--smoke", "--scale", "small",
            "--out", str(out), "--min-speedup", "1e9",
        ]) == 1
        assert "below the required" in capsys.readouterr().err

    def test_speedup_gate_needs_compared_cases(self, tmp_path, capsys):
        out = tmp_path / "BENCH_sim_core.json"
        assert main([
            "bench", "--wallclock", "--smoke", "--scale", "small",
            "--sim-mode", "auto", "--out", str(out), "--min-speedup", "1",
        ]) == 2
        assert "compared cases" in capsys.readouterr().err

    def test_plan_cache_gate(self, tmp_path, capsys):
        out = tmp_path / "BENCH_sim_core.json"
        # repeats >= 2 warms the plan cache within the run, so a modest
        # hit-rate floor passes...
        assert main([
            "bench", "--wallclock", "--smoke", "--scale", "small",
            "--repeats", "3", "--out", str(out),
            "--min-plan-cache-hit-rate", "0.01",
        ]) == 0
        capsys.readouterr()
        # ...while an impossible floor trips the gate.
        assert main([
            "bench", "--wallclock", "--smoke", "--scale", "small",
            "--out", str(out), "--min-plan-cache-hit-rate", "1.1",
        ]) == 1
        assert "plan-cache hit rate" in capsys.readouterr().err
