"""Unit tests for the execution harness."""

import pytest

from repro.collectives import (
    RunOptions,
    get_algorithm,
    run_allgather,
    verify_allgather,
)
from repro.topology import DistGraphTopology, erdos_renyi_topology


class TestRunAllgather:
    def test_returns_complete_record(self, small_machine, small_topology):
        run = run_allgather("naive", small_topology, small_machine, "1KB")
        assert run.algorithm == "naive"
        assert run.msg_size == 1024
        assert run.simulated_time > 0
        assert run.messages_sent == small_topology.n_edges
        assert run.bytes_sent == small_topology.n_edges * 1024
        assert len(run.finish_times) == small_topology.n

    def test_size_strings_parsed(self, small_machine, small_topology):
        run = run_allgather("naive", small_topology, small_machine, "64KB")
        assert run.msg_size == 65536

    def test_instance_reuse_amortizes_setup(self, small_machine, small_topology):
        alg = get_algorithm("distance_halving")
        r1 = run_allgather(alg, small_topology, small_machine, 64)
        r2 = run_allgather(alg, small_topology, small_machine, 4096)
        assert r1.setup_stats is r2.setup_stats

    def test_kwargs_with_instance_rejected(self, small_machine, small_topology):
        alg = get_algorithm("naive")
        with pytest.raises(ValueError, match="unexpected keyword"):
            run_allgather(alg, small_topology, small_machine, 64, k=4)

    def test_trace_collection(self, small_machine, small_topology):
        run = run_allgather("naive", small_topology, small_machine, 512, options=RunOptions(trace=True))
        assert run.trace is not None
        assert run.trace.total_messages == run.messages_sent

    def test_utilization_with_trace(self, small_machine, small_topology):
        run = run_allgather("naive", small_topology, small_machine, 512, options=RunOptions(trace=True))
        assert run.utilization is not None
        ports = run.utilization["send_ports"]
        assert ports and all(0.0 <= u <= 1.0 for u in ports.values())

    def test_no_utilization_without_trace(self, small_machine, small_topology):
        run = run_allgather("naive", small_topology, small_machine, 512)
        assert run.utilization is None

    def test_load_imbalance_metric(self, small_machine, small_topology):
        from repro.collectives.runner import load_imbalance

        run = run_allgather("naive", small_topology, small_machine, 512)
        li = load_imbalance(run)
        assert li >= 1.0
        empty = run_allgather(
            "naive",
            type(small_topology)(small_topology.n, {}),
            small_machine,
            512,
        )
        assert load_imbalance(empty) == 1.0

    def test_custom_payloads(self, small_machine):
        topo = DistGraphTopology(small_machine.spec.n_ranks, {0: [1]})
        payloads = [f"data-{r}" for r in range(topo.n)]
        run = run_allgather("naive", topo, small_machine, 64, payloads=payloads)
        assert run.results[1][0] == "data-0"

    def test_wrong_payload_count_rejected(self, small_machine, small_topology):
        with pytest.raises(ValueError, match="payloads has"):
            run_allgather("naive", small_topology, small_machine, 64, payloads=[1, 2])

    def test_simulated_time_is_max_finish(self, small_machine, small_topology):
        run = run_allgather("naive", small_topology, small_machine, 256)
        assert run.simulated_time == pytest.approx(max(run.finish_times.values()))


class TestVerifyAllgather:
    def test_accepts_correct_run(self, small_machine, small_topology):
        run = run_allgather("naive", small_topology, small_machine, 64)
        verify_allgather(small_topology, run)  # should not raise

    def test_detects_missing_block(self, small_machine):
        topo = DistGraphTopology(small_machine.spec.n_ranks, {0: [1], 2: [1]})
        run = run_allgather("naive", topo, small_machine, 64)
        del run.results[1][0]
        with pytest.raises(AssertionError, match="missing blocks"):
            verify_allgather(topo, run)

    def test_detects_extra_block(self, small_machine):
        topo = DistGraphTopology(small_machine.spec.n_ranks, {0: [1]})
        run = run_allgather("naive", topo, small_machine, 64)
        run.results[1][5] = 5
        with pytest.raises(AssertionError, match="unexpected blocks"):
            verify_allgather(topo, run)

    def test_detects_corrupt_payload(self, small_machine):
        topo = DistGraphTopology(small_machine.spec.n_ranks, {0: [1]})
        run = run_allgather("naive", topo, small_machine, 64)
        run.results[1][0] = 99
        with pytest.raises(AssertionError, match="wrong payload"):
            verify_allgather(topo, run)

    def test_accepts_custom_payload_run(self, small_machine):
        """Regression: verification used to assert ``payload == src`` even
        when the run carried custom payloads, rejecting correct runs."""
        topo = DistGraphTopology(small_machine.spec.n_ranks, {0: [1], 2: [1]})
        payloads = [f"data-{r}" for r in range(topo.n)]
        run = run_allgather("naive", topo, small_machine, 64, payloads=payloads)
        verify_allgather(topo, run, expected_payloads=payloads)  # should not raise

    def test_custom_payload_corruption_still_detected(self, small_machine):
        topo = DistGraphTopology(small_machine.spec.n_ranks, {0: [1]})
        payloads = [f"data-{r}" for r in range(topo.n)]
        run = run_allgather("naive", topo, small_machine, 64, payloads=payloads)
        run.results[1][0] = "data-corrupt"
        with pytest.raises(AssertionError, match="expected 'data-0'"):
            verify_allgather(topo, run, expected_payloads=payloads)

    def test_wrong_expected_payload_count_rejected(self, small_machine, small_topology):
        run = run_allgather("naive", small_topology, small_machine, 64)
        with pytest.raises(ValueError, match="expected_payloads has"):
            verify_allgather(small_topology, run, expected_payloads=[1, 2])


class TestDegenerateTopologies:
    @pytest.mark.parametrize("name", ["naive", "common_neighbor", "distance_halving", "bruck"])
    def test_empty_topology(self, small_machine, name):
        topo = DistGraphTopology(small_machine.spec.n_ranks, {})
        run = run_allgather(name, topo, small_machine, 64)
        verify_allgather(topo, run)
        assert run.simulated_time >= 0

    @pytest.mark.parametrize("name", ["naive", "common_neighbor", "distance_halving", "bruck"])
    def test_single_edge(self, small_machine, name):
        topo = DistGraphTopology(small_machine.spec.n_ranks, {0: [small_machine.spec.n_ranks - 1]})
        run = run_allgather(name, topo, small_machine, 64)
        verify_allgather(topo, run)

    @pytest.mark.parametrize("name", ["naive", "common_neighbor", "distance_halving", "bruck"])
    def test_self_loops(self, small_machine, name):
        n = small_machine.spec.n_ranks
        topo = DistGraphTopology(n, {r: [r, (r + 1) % n] for r in range(n)})
        run = run_allgather(name, topo, small_machine, 64)
        verify_allgather(topo, run)

    @pytest.mark.parametrize("name", ["naive", "common_neighbor", "distance_halving", "bruck"])
    def test_complete_graph(self, small_machine, name):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 1.0, seed=0)
        run = run_allgather(name, topo, small_machine, 64)
        verify_allgather(topo, run)

    @pytest.mark.parametrize("name", ["naive", "common_neighbor", "distance_halving", "bruck"])
    def test_zero_byte_messages(self, small_machine, small_topology, name):
        run = run_allgather(name, small_topology, small_machine, 0)
        verify_allgather(small_topology, run)


class TestUnexpectedKeywords:
    """The pre-RunOptions keyword surface is gone: clean rejection only."""

    def test_option_keyword_rejected(self, small_machine, small_topology):
        with pytest.raises(ValueError, match="unexpected keyword.*trace"):
            run_allgather("naive", small_topology, small_machine, 64, trace=True)

    def test_algorithm_kwarg_rejected(self, small_machine, small_topology):
        with pytest.raises(ValueError, match="unexpected keyword.*k"):
            run_allgather(
                "common_neighbor", small_topology, small_machine, 64, k=2
            )

    def test_error_names_every_stray_keyword(self, small_machine, small_topology):
        with pytest.raises(ValueError, match="noise_seed.*trace"):
            run_allgather(
                "naive", small_topology, small_machine, 64,
                options=RunOptions(), trace=True, noise_seed=3,
            )

    def test_error_points_at_modern_surface(self, small_machine, small_topology):
        with pytest.raises(ValueError, match="options=RunOptions"):
            run_allgather("naive", small_topology, small_machine, 64, trace=True)

    def test_modern_call_is_warning_free(self, small_machine, small_topology):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_allgather(
                "naive", small_topology, small_machine, 64,
                options=RunOptions(noise_seed=2),
            )

    def test_unknown_fallback_rejected_at_options_construction(self):
        with pytest.raises(ValueError, match="fallback.*no_such_algorithm"):
            RunOptions(fallback="no_such_algorithm")
