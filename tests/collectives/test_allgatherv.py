"""Unit + property tests for the allgatherv (variable block size) variant."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Machine
from repro.collectives import run_allgather, run_allgatherv, verify_allgather
from repro.topology import DistGraphTopology, erdos_renyi_topology

ALGS = ("naive", "common_neighbor", "distance_halving", "bruck")


class TestBasics:
    @pytest.mark.parametrize("alg", ALGS)
    def test_correct_with_varied_sizes(self, small_machine, small_topology, alg):
        n = small_topology.n
        sizes = [(r % 7 + 1) * 128 for r in range(n)]
        run = run_allgatherv(alg, small_topology, small_machine, sizes)
        verify_allgather(small_topology, run)
        assert run.block_sizes == sizes
        assert run.msg_size == max(sizes)

    def test_size_strings_accepted(self, small_machine, small_topology):
        sizes = ["1KB"] * small_topology.n
        run = run_allgatherv("naive", small_topology, small_machine, sizes)
        assert run.block_sizes == [1024] * small_topology.n

    def test_wrong_length_rejected(self, small_machine, small_topology):
        with pytest.raises(ValueError, match="block_sizes has"):
            run_allgatherv("naive", small_topology, small_machine, [64, 64])

    def test_zero_sized_blocks(self, small_machine, small_topology):
        sizes = [0 if r % 2 else 256 for r in range(small_topology.n)]
        for alg in ALGS:
            run = run_allgatherv(alg, small_topology, small_machine, sizes)
            verify_allgather(small_topology, run)

    def test_uniform_v_equals_plain_allgather(self, small_machine, small_topology):
        """allgatherv with equal sizes must time out identically to allgather."""
        n = small_topology.n
        plain = run_allgather("distance_halving", small_topology, small_machine, 512)
        varied = run_allgatherv(
            "distance_halving", small_topology, small_machine, [512] * n
        )
        assert varied.simulated_time == pytest.approx(plain.simulated_time)


class TestByteAccounting:
    def test_naive_bytes_are_exact(self, small_machine):
        n = small_machine.spec.n_ranks
        topo = DistGraphTopology(n, {0: [1, 2], 3: [1]})
        sizes = [100 * (r + 1) for r in range(n)]
        run = run_allgatherv("naive", topo, small_machine, sizes)
        # rank 0 sends 100 twice; rank 3 sends 400 once.
        assert run.bytes_sent == 2 * 100 + 400

    def test_one_big_block_dominates(self, medium_machine):
        """A single large block should cost like its own transfer, not like
        n large blocks (the max-padding an allgather would need)."""
        n = medium_machine.spec.n_ranks
        topo = erdos_renyi_topology(n, 0.3, seed=61)
        small = run_allgatherv("naive", topo, medium_machine, [64] * n)
        one_big = [64] * n
        one_big[0] = 1 << 20
        big = run_allgatherv("naive", topo, medium_machine, one_big)
        padded = run_allgather("naive", topo, medium_machine, 1 << 20)
        assert small.simulated_time < big.simulated_time < padded.simulated_time


@settings(deadline=None, max_examples=20)
@given(
    st.integers(1, 3),
    st.integers(1, 4),
    st.floats(0.0, 1.0),
    st.integers(0, 2**31 - 1),
)
def test_allgatherv_postcondition_property(nodes, rps, density, seed):
    machine = Machine.niagara_like(nodes=nodes, ranks_per_socket=rps)
    n = machine.spec.n_ranks
    topo = erdos_renyi_topology(n, density, seed=seed)
    rng = np.random.default_rng(seed)
    sizes = [int(s) for s in rng.integers(0, 8192, n)]
    for alg in ALGS:
        run = run_allgatherv(alg, topo, machine, sizes)
        verify_allgather(topo, run)
