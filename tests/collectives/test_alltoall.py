"""Unit + property tests for the neighborhood alltoall extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Machine
from repro.collectives.alltoall import (
    CommonNeighborAlltoall,
    DistanceHalvingAlltoall,
    alltoall_algorithms,
    run_alltoall,
    verify_alltoall,
)
from repro.topology import DistGraphTopology, erdos_renyi_topology, moore_topology

ALGS = ("naive_alltoall", "common_neighbor_alltoall", "distance_halving_alltoall")


class TestBasics:
    def test_registry(self):
        assert set(alltoall_algorithms()) == set(ALGS)

    def test_unknown_algorithm(self, small_machine, small_topology):
        with pytest.raises(KeyError, match="unknown alltoall"):
            run_alltoall("smoke_signals", small_topology, small_machine, 64)

    @pytest.mark.parametrize("alg", ALGS)
    def test_correct_on_random_graph(self, small_machine, small_topology, alg):
        run = run_alltoall(alg, small_topology, small_machine, 64)
        verify_alltoall(small_topology, run)

    @pytest.mark.parametrize("alg", ALGS)
    def test_self_loops(self, small_machine, alg):
        n = small_machine.spec.n_ranks
        topo = DistGraphTopology(n, {r: [r, (r + 5) % n] for r in range(n)})
        run = run_alltoall(alg, topo, small_machine, 64)
        verify_alltoall(topo, run)

    @pytest.mark.parametrize("alg", ALGS)
    def test_empty_topology(self, small_machine, alg):
        topo = DistGraphTopology(small_machine.spec.n_ranks, {})
        run = run_alltoall(alg, topo, small_machine, 64)
        verify_alltoall(topo, run)

    def test_custom_payloads(self, small_machine):
        topo = DistGraphTopology(small_machine.spec.n_ranks, {0: [1, 2]})
        fn = lambda u, v: f"{u}->{v}"  # noqa: E731
        run = run_alltoall("naive_alltoall", topo, small_machine, 64, payload_fn=fn)
        verify_alltoall(topo, run, payload_fn=fn)
        assert run.results[2][0] == "0->2"


class TestDistinctBlocks:
    """The defining alltoall property: each target gets ITS block, even
    though DH routes blocks through agents."""

    def test_blocks_not_interchanged(self, small_machine):
        n = small_machine.spec.n_ranks
        topo = erdos_renyi_topology(n, 0.5, seed=41)
        run = run_alltoall("distance_halving_alltoall", topo, small_machine, 64)
        for v in range(n):
            for u, payload in run.results[v].items():
                assert payload == (u, v)

    def test_distinct_payload_fn(self, small_machine):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.4, seed=42)
        fn = lambda u, v: u * 1000 + v  # noqa: E731
        run = run_alltoall(
            "distance_halving_alltoall", topo, small_machine, 64, payload_fn=fn
        )
        verify_alltoall(topo, run, payload_fn=fn)


class TestCosts:
    def test_naive_message_count_is_edges(self, small_machine, small_topology):
        run = run_alltoall("naive_alltoall", small_topology, small_machine, 64)
        assert run.messages_sent == small_topology.n_edges

    def test_dh_sends_fewer_messages_on_dense(self, small_machine):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.7, seed=43)
        naive = run_alltoall("naive_alltoall", topo, small_machine, 64)
        dh = run_alltoall("distance_halving_alltoall", topo, small_machine, 64)
        assert dh.messages_sent < naive.messages_sent

    def test_dh_moves_more_bytes_due_to_forwarding(self, small_machine):
        """Distinct data cannot be deduplicated, so every extra hop a block
        takes adds its bytes again — the alltoall trade-off."""
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.7, seed=43)
        naive = run_alltoall("naive_alltoall", topo, small_machine, 4096)
        dh = run_alltoall("distance_halving_alltoall", topo, small_machine, 4096)
        assert dh.bytes_sent >= naive.bytes_sent

    def test_dh_wins_small_messages(self, medium_machine):
        topo = erdos_renyi_topology(medium_machine.spec.n_ranks, 0.5, seed=44)
        naive = run_alltoall("naive_alltoall", topo, medium_machine, 32)
        dh = run_alltoall("distance_halving_alltoall", topo, medium_machine, 32)
        assert naive.simulated_time / dh.simulated_time > 2.0

    def test_setup_reused_across_calls(self, small_machine, small_topology):
        alg = DistanceHalvingAlltoall()
        run_alltoall(alg, small_topology, small_machine, 64)
        pattern = alg.pattern
        run_alltoall(alg, small_topology, small_machine, 4096)
        assert alg.pattern is pattern


class TestCommonNeighborAlltoall:
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_any_k_correct(self, small_machine, small_topology, k):
        run = run_alltoall("common_neighbor_alltoall", small_topology, small_machine, 64, k=k)
        verify_alltoall(small_topology, run)

    def test_sits_between_naive_and_dh_on_small_messages(self, medium_machine):
        topo = erdos_renyi_topology(medium_machine.spec.n_ranks, 0.5, seed=45)
        t_naive = run_alltoall("naive_alltoall", topo, medium_machine, 64).simulated_time
        t_cn = run_alltoall(
            "common_neighbor_alltoall", topo, medium_machine, 64, k=8
        ).simulated_time
        t_dh = run_alltoall(
            "distance_halving_alltoall", topo, medium_machine, 64
        ).simulated_time
        assert t_dh < t_cn < t_naive

    def test_phase1_ships_distinct_target_blocks(self, small_machine):
        """A member covering 3 targets of peer g receives 3 distinct blocks."""
        n = small_machine.spec.n_ranks
        # ranks 0 and 1 (same group) both send to three shared targets.
        shared = [n - 1, n - 2, n - 3]
        topo = DistGraphTopology(n, {0: shared, 1: shared})
        alg = CommonNeighborAlltoall(k=4)
        run = run_alltoall(alg, topo, small_machine, 100)
        verify_alltoall(topo, run)
        # Combining: each shared target is covered by exactly one phase-2
        # message carrying both members' (distinct) blocks.
        plans = alg._inner.plans
        phase2 = [fs for p in plans for fs in p.phase2_sends]
        assert sorted(v for v, _ in phase2) == sorted(shared)
        assert all(sorted(blocks) == [0, 1] for _, blocks in phase2)


class TestAlltoallv:
    """Per-pair variable sizes (the v-variant, paper §VIII 'other variants')."""

    def pair_size(self, u, v):
        return 16 * ((u + 2 * v) % 7 + 1)

    @pytest.mark.parametrize("alg", ALGS)
    def test_correct_with_varied_pair_sizes(self, small_machine, small_topology, alg):
        run = run_alltoall(
            alg, small_topology, small_machine, 64, pair_sizes=self.pair_size
        )
        verify_alltoall(small_topology, run)

    def test_naive_bytes_exact(self, small_machine):
        n = small_machine.spec.n_ranks
        topo = DistGraphTopology(n, {0: [1, 2], 3: [1]})
        run = run_alltoall(
            "naive_alltoall", topo, small_machine, 64, pair_sizes=self.pair_size
        )
        expected = sum(self.pair_size(u, v) for u, v in topo.edges())
        assert run.bytes_sent == expected

    def test_zero_sized_pairs(self, small_machine, small_topology):
        for alg in ALGS:
            run = run_alltoall(
                alg, small_topology, small_machine, 64,
                pair_sizes=lambda u, v: 0 if (u + v) % 2 else 256,
            )
            verify_alltoall(small_topology, run)


@settings(deadline=None, max_examples=20)
@given(
    st.integers(1, 3),
    st.integers(1, 4),
    st.floats(0.0, 1.0),
    st.integers(0, 2**31 - 1),
)
def test_alltoall_postcondition_property(nodes, rps, density, seed):
    """All alltoall algorithms deliver per-pair-correct blocks on arbitrary
    random topologies and machine shapes, including variable pair sizes."""
    machine = Machine.niagara_like(nodes=nodes, ranks_per_socket=rps)
    topo = erdos_renyi_topology(machine.spec.n_ranks, density, seed=seed)
    for alg in ALGS:
        run = run_alltoall(alg, topo, machine, 64)
        verify_alltoall(topo, run)
        run_v = run_alltoall(
            alg, topo, machine, 64, pair_sizes=lambda u, v: (u * 31 + v * 7) % 513
        )
        verify_alltoall(topo, run_v)
