"""Fuzz-promoted Distance Halving regressions.

Each scenario below is the shrunk form of a fuzzer-drawn trial exercising
a negotiation edge case — kept here (instead of as loose repro JSON files)
so the full differential battery re-runs it on every CI pass:

* **empty neighborhoods** — ranks with no in/out edges at all (density-0
  and near-0 random graphs).  The builder must produce empty duty maps,
  zero halving sends, and a no-op final phase for them, never a failed
  agent search that blocks the level.
* **self-loops** — MPI permits ``u -> u`` edges; the pattern must deliver
  them as local copies (``self_copy``), not as simulated messages.
* **single-socket communicators** — ``n <= ranks_per_socket`` means the
  interval [0, n) is already at stop granularity: zero halving levels,
  direct final-phase delivery only.
"""

import pytest

from repro.collectives.distance_halving.builder import build_patterns
from repro.collectives.runner import RunOptions
from repro.exec.spec import MachineSpec, TopologySpec
from repro.verify import Scenario, run_trial
from repro.verify.invariants import check_dh_structure

OPTIONS = RunOptions(trace=True)


def _promoted(topology: TopologySpec, machine: MachineSpec,
              msg_size=64) -> Scenario:
    return Scenario(topology=topology, machine=machine, msg_size=msg_size,
                    options=OPTIONS)


#: The shrunk scenarios, by the edge case they pin.
REPROS = {
    # shrunk from fuzz (clean profile): density-0 graph — every
    # neighborhood empty, nothing to negotiate, nothing to send.
    "all_neighborhoods_empty": _promoted(
        TopologySpec("random", 8, density=0.0, seed=0),
        MachineSpec(nodes=1, sockets_per_node=2, ranks_per_socket=4),
    ),
    # near-0 density: isolated ranks coexist with a few connected ones, so
    # agent searches run with empty duty sets in half the interval.
    "mostly_empty_neighborhoods": _promoted(
        TopologySpec("random", 16, density=0.05, seed=3),
        MachineSpec(nodes=2, sockets_per_node=2, ranks_per_socket=4),
    ),
    # self-loops only (plus sparse edges): delivery must happen without a
    # single simulated self-message.
    "self_loops": _promoted(
        TopologySpec("random", 8, density=0.3, seed=5, self_loops=True),
        MachineSpec(nodes=1, sockets_per_node=2, ranks_per_socket=4),
    ),
    # single socket: halving never runs; the final phase alone must cover
    # every edge.
    "single_socket": _promoted(
        TopologySpec("random", 4, density=0.6, seed=1),
        MachineSpec(nodes=1, sockets_per_node=1, ranks_per_socket=4),
    ),
    # single rank with a self-loop: the most degenerate communicator the
    # generator can draw (n=1 machines are legal MPI_COMM_SELF analogues).
    "single_rank_self_loop": _promoted(
        TopologySpec("random", 1, density=1.0, seed=0, self_loops=True),
        MachineSpec(nodes=1, sockets_per_node=1, ranks_per_socket=1),
    ),
}


@pytest.mark.parametrize("name", sorted(REPROS), ids=str)
def test_promoted_repro_passes_full_battery(name):
    scenario = REPROS[name]
    trial = run_trial(scenario)
    assert trial.ok, "\n".join(str(v) for v in trial.violations)


@pytest.mark.parametrize("name", sorted(REPROS), ids=str)
def test_promoted_repro_dh_structure(name):
    scenario = REPROS[name]
    assert check_dh_structure(scenario, scenario.topology.build()) == []


class TestEdgeCaseStructure:
    """Sharper structural claims than the generic battery makes."""

    def test_empty_neighborhoods_send_nothing(self):
        scenario = REPROS["all_neighborhoods_empty"]
        topology, machine = scenario.topology.build(), scenario.machine.build()
        pattern = build_patterns(topology, machine)
        for rp in pattern.ranks:
            assert rp.final_sends == [] and rp.final_recvs == []
            assert not rp.self_copy
        run = run_trial(scenario).runs["distance_halving"]
        assert run.messages_sent == 0  # local spawn ticks only, no traffic
        assert all(not r for r in run.results)

    def test_self_loops_become_local_copies(self):
        scenario = REPROS["self_loops"]
        topology, machine = scenario.topology.build(), scenario.machine.build()
        pattern = build_patterns(topology, machine)
        for rp in pattern.ranks:
            assert rp.self_copy == topology.has_edge(rp.rank, rp.rank)
        trial = run_trial(scenario)
        # A self-loop delivery never crosses the fabric as a message.
        trace = trial.runs["distance_halving"].trace
        assert all(rec.src != rec.dst for rec in trace.records)

    def test_single_socket_skips_halving_entirely(self):
        scenario = REPROS["single_socket"]
        topology, machine = scenario.topology.build(), scenario.machine.build()
        pattern = build_patterns(topology, machine)
        assert pattern.stats.levels == 0
        assert all(rp.steps == [] for rp in pattern.ranks)
        # Every edge is a direct final-phase delivery.
        delivered = {
            (fr.sender, rp.rank)
            for rp in pattern.ranks for fr in rp.final_recvs
        }
        expected = {(u, v) for u, v in topology.edges() if u != v}
        assert delivered == expected

    def test_single_rank_is_a_pure_local_copy(self):
        scenario = REPROS["single_rank_self_loop"]
        trial = run_trial(scenario)
        run = trial.runs["distance_halving"]
        assert run.messages_sent == 0
        assert run.results[0] == {0: 0}
