"""Unit tests for the communication-pattern data model."""

import pytest

from repro.collectives.distance_halving.pattern import (
    CommunicationPattern,
    FinalRecv,
    FinalSend,
    HalvingStep,
    PatternStats,
    RankPattern,
)


class TestRankPattern:
    def make(self):
        rp = RankPattern(rank=0)
        rp.steps = [
            HalvingStep(0, agent=5, origin=3, send_block_count=1,
                        recv_blocks=(3,), recv_for_me=(3,)),
            HalvingStep(1, agent=None, origin=2, send_block_count=0,
                        recv_blocks=(2, 7), recv_for_me=()),
            HalvingStep(2, agent=1, origin=None, send_block_count=4,
                        recv_blocks=(), recv_for_me=()),
        ]
        rp.final_sends = [FinalSend(target=1, blocks=(0, 3))]
        rp.final_recvs = [FinalRecv(sender=2, blocks=(2,))]
        return rp

    def test_send_recv_counts(self):
        rp = self.make()
        assert rp.halving_sends == 2
        assert rp.halving_recvs == 2

    def test_max_buffer_blocks(self):
        rp = self.make()
        # step 1: 0 send blocks is irrelevant; buffer peaks at 4 (step 2's
        # send count) vs step 1's 0+2; initial 1+1=2 ... peak is 4.
        assert rp.max_buffer_blocks() == 4


class TestPatternStats:
    def test_success_rate(self):
        stats = PatternStats(agent_attempts=10, agent_successes=8)
        assert stats.success_rate == pytest.approx(0.8)

    def test_success_rate_no_attempts(self):
        assert PatternStats().success_rate == 0.0

    def test_total_setup_messages(self):
        stats = PatternStats(
            matrix_a_messages=10,
            protocol_messages=5,
            notification_messages=3,
            descriptor_messages=2,
        )
        assert stats.total_setup_messages == 20


class TestCommunicationPattern:
    def test_length_checked(self):
        with pytest.raises(ValueError, match="expected 3"):
            CommunicationPattern(
                n=3, ranks_per_socket=2, ranks=[RankPattern(0)], stats=PatternStats()
            )

    def test_indexing_and_totals(self):
        ranks = [RankPattern(r) for r in range(2)]
        ranks[0].steps = [
            HalvingStep(0, agent=1, origin=None, send_block_count=1,
                        recv_blocks=(), recv_for_me=())
        ]
        ranks[0].final_sends = [FinalSend(1, (0,))]
        pattern = CommunicationPattern(
            n=2, ranks_per_socket=1, ranks=ranks, stats=PatternStats()
        )
        assert pattern[0] is ranks[0]
        assert pattern.total_data_messages() == 2  # one halving + one final
