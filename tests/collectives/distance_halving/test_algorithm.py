"""End-to-end tests for the Distance Halving algorithm (Algorithm 4)."""

import pytest

from repro.collectives import (
    RunOptions,
    get_algorithm,
    run_allgather,
    verify_allgather,
)
from repro.topology import DistGraphTopology, erdos_renyi_topology, moore_topology


class TestCorrectness:
    @pytest.mark.parametrize("density", [0.02, 0.1, 0.3, 0.5, 0.9])
    def test_random_graphs(self, small_machine, density):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, density, seed=21)
        run = run_allgather("distance_halving", topo, small_machine, 256)
        verify_allgather(topo, run)

    def test_moore(self, small_machine):
        topo = moore_topology(small_machine.spec.n_ranks, r=1, d=2)
        run = run_allgather("distance_halving", topo, small_machine, 256)
        verify_allgather(topo, run)

    def test_directed_asymmetric(self, small_machine):
        n = small_machine.spec.n_ranks
        topo = DistGraphTopology(n, {u: [(u * 7 + 3) % n] for u in range(n)})
        run = run_allgather("distance_halving", topo, small_machine, 256)
        verify_allgather(topo, run)

    def test_medium_scale(self, medium_machine):
        topo = erdos_renyi_topology(medium_machine.spec.n_ranks, 0.3, seed=22)
        run = run_allgather("distance_halving", topo, medium_machine, 1024)
        verify_allgather(topo, run)


class TestMessageBehaviour:
    def test_fewer_off_socket_messages_than_naive(self, small_machine):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.5, seed=23)
        naive = run_allgather("naive", topo, small_machine, 64, options=RunOptions(trace=True))
        dh = run_allgather("distance_halving", topo, small_machine, 64, options=RunOptions(trace=True))
        assert dh.trace.off_socket_messages() < naive.trace.off_socket_messages()

    def test_off_socket_messages_bounded_by_model(self, small_machine):
        """Eq. (1): at most ceil(log2(n/L)) halving sends per rank go off
        socket... plus direct leftovers; with a dense graph leftovers are
        rare, so the max per-rank send count stays near the level count."""
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.9, seed=24)
        dh = run_allgather("distance_halving", topo, small_machine, 64, options=RunOptions(trace=True))
        levels = dh.setup_stats.extras["levels"]
        L = small_machine.spec.ranks_per_socket
        # halving sends + final phase (<= L-1 socket peers + few leftovers)
        assert dh.trace.max_sends_per_rank() <= levels + L + 4

    def test_message_sizes_double_along_halving(self, small_machine):
        """In a dense graph, halving-phase messages grow roughly geometrically
        (the paper's worst-case doubling)."""
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 1.0, seed=0)
        m = 1000
        dh = run_allgather("distance_halving", topo, small_machine, m, options=RunOptions(trace=True))
        by_tag = {}
        for rec in dh.trace.records:
            if rec.tag < 100:  # halving steps only
                by_tag.setdefault(rec.tag, []).append(rec.nbytes)
        for t in sorted(by_tag)[:-1]:
            assert max(by_tag[t + 1]) >= max(by_tag[t])
        assert max(by_tag[max(by_tag)]) >= m * 2 ** (len(by_tag) - 1)

    def test_setup_extras_present(self, small_machine, small_topology):
        alg = get_algorithm("distance_halving")
        stats = alg.setup(small_topology, small_machine)
        for key in (
            "levels",
            "agent_success_rate",
            "matrix_a_messages",
            "data_messages_per_call",
        ):
            assert key in stats.extras


class TestPerformanceShape:
    """The headline claims, at test scale: DH beats naive where the paper
    says it should."""

    def test_dense_small_messages_big_win(self, medium_machine):
        topo = erdos_renyi_topology(medium_machine.spec.n_ranks, 0.7, seed=25)
        naive = run_allgather("naive", topo, medium_machine, 32)
        dh = run_allgather("distance_halving", topo, medium_machine, 32)
        assert naive.simulated_time / dh.simulated_time > 5.0

    def test_sparse_graphs_still_no_collapse(self, medium_machine):
        topo = erdos_renyi_topology(medium_machine.spec.n_ranks, 0.05, seed=26)
        naive = run_allgather("naive", topo, medium_machine, 4096)
        dh = run_allgather("distance_halving", topo, medium_machine, 4096)
        assert naive.simulated_time / dh.simulated_time > 0.7

    def test_speedup_grows_with_density(self, small_machine):
        speedups = []
        for density in (0.1, 0.4, 0.8):
            topo = erdos_renyi_topology(small_machine.spec.n_ranks, density, seed=27)
            naive = run_allgather("naive", topo, small_machine, 64)
            dh = run_allgather("distance_halving", topo, small_machine, 64)
            speedups.append(naive.simulated_time / dh.simulated_time)
        assert speedups[0] < speedups[-1]


class TestLoadBalance:
    """Section IV: offloading "decreases the load imbalance among the
    ranks".  Measured as per-rank communication load: DH bounds every
    rank's send count near ``O(log n + L)``, so the worst-loaded rank
    carries far fewer messages than under the naive algorithm, and on
    skewed (hub-heavy) patterns the spread across ranks shrinks too."""

    def _send_stats(self, topo, machine, alg):
        import numpy as np

        from repro.collectives import run_allgather

        run = run_allgather(alg, topo, machine, 64, options=RunOptions(trace=True))
        sends = np.array([run.trace.sends_by_rank.get(r, 0) for r in range(topo.n)])
        return sends

    def test_max_load_reduced_on_uniform_graph(self, medium_machine):
        topo = erdos_renyi_topology(medium_machine.spec.n_ranks, 0.3, seed=93)
        naive = self._send_stats(topo, medium_machine, "naive")
        dh = self._send_stats(topo, medium_machine, "distance_halving")
        assert dh.max() < naive.max() * 0.7
        assert dh.mean() < naive.mean() / 2

    def test_spread_reduced_on_skewed_graph(self, medium_machine):
        from repro.topology import scale_free_topology

        topo = scale_free_topology(medium_machine.spec.n_ranks, edges_per_rank=6, seed=93)
        naive = self._send_stats(topo, medium_machine, "naive")
        dh = self._send_stats(topo, medium_machine, "distance_halving")
        assert dh.max() < naive.max()
        cv_naive = naive.std() / naive.mean()
        cv_dh = dh.std() / dh.mean()
        assert cv_dh < cv_naive


class TestStopRanksVariant:
    def test_stop_ranks_one_correct(self, small_machine, small_topology):
        run = run_allgather(
            get_algorithm("distance_halving", stop_ranks=1),
            small_topology, small_machine, 128
        )
        verify_allgather(small_topology, run)

    def test_protocol_selection_correct(self, small_machine, small_topology):
        run = run_allgather(
            get_algorithm("distance_halving", selection="protocol"),
            small_topology, small_machine, 128
        )
        verify_allgather(small_topology, run)
