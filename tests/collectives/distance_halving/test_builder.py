"""Unit + property tests for Algorithm 1 (pattern construction)."""

import math

import pytest

from repro.cluster import Machine
from repro.collectives.distance_halving.builder import build_patterns, check_pattern
from repro.topology import (
    DistGraphTopology,
    cartesian_topology,
    erdos_renyi_topology,
    moore_topology,
)


@pytest.fixture
def machine():
    return Machine.niagara_like(nodes=4, ranks_per_socket=4)  # 32 ranks, L=4


class TestStructure:
    def test_levels_match_halving_depth(self, machine):
        topo = erdos_renyi_topology(32, 0.3, seed=0)
        pattern = build_patterns(topo, machine)
        # 32 ranks, L=4: 32->16->8->4 = 3 levels.
        assert pattern.stats.levels == 3

    def test_steps_bounded_by_levels(self, machine):
        topo = erdos_renyi_topology(32, 0.5, seed=1)
        pattern = build_patterns(topo, machine)
        for rp in pattern.ranks:
            assert len(rp.steps) <= pattern.stats.levels
            indices = [s.index for s in rp.steps]
            assert indices == sorted(indices)

    def test_at_most_one_agent_and_origin_per_step(self, machine):
        topo = erdos_renyi_topology(32, 0.7, seed=2)
        pattern = build_patterns(topo, machine)
        for rp in pattern.ranks:
            seen = set()
            for step in rp.steps:
                assert step.index not in seen
                seen.add(step.index)

    def test_agents_in_opposite_half(self, machine):
        """At level t the agent must lie on the other side of the level-t
        split of the rank's current interval."""
        n = 32
        topo = erdos_renyi_topology(n, 0.5, seed=3)
        pattern = build_patterns(topo, machine)
        for rp in pattern.ranks:
            lo, hi = 0, n
            by_index = {s.index: s for s in rp.steps}
            for t in range(pattern.stats.levels):
                if hi - lo <= machine.spec.ranks_per_socket:
                    break
                mid = (lo + hi - 1) // 2
                in_lower = rp.rank <= mid
                step = by_index.get(t)
                if step is not None:
                    for peer in (step.agent, step.origin):
                        if peer is not None:
                            peer_lower = peer <= mid
                            assert peer_lower != in_lower
                lo, hi = (lo, mid + 1) if in_lower else (mid + 1, hi)

    def test_matching_is_one_to_one_per_level(self, machine):
        topo = erdos_renyi_topology(32, 0.7, seed=4)
        pattern = build_patterns(topo, machine)
        for t in range(pattern.stats.levels):
            agents = [
                s.agent for rp in pattern.ranks for s in rp.steps
                if s.index == t and s.agent is not None
            ]
            origins = [
                s.origin for rp in pattern.ranks for s in rp.steps
                if s.index == t and s.origin is not None
            ]
            assert len(agents) == len(set(agents))
            assert len(origins) == len(set(origins))
            # Every agent relationship has its mirror origin relationship.
            pairs_a = {
                (rp.rank, s.agent) for rp in pattern.ranks for s in rp.steps
                if s.index == t and s.agent is not None
            }
            pairs_o = {
                (s.origin, rp.rank) for rp in pattern.ranks for s in rp.steps
                if s.index == t and s.origin is not None
            }
            assert pairs_a == pairs_o

    def test_buffer_growth_is_consistent(self, machine):
        """send_block_count at step t equals 1 + sum of blocks received in
        earlier steps — the main_buf append-only discipline."""
        topo = erdos_renyi_topology(32, 0.5, seed=5)
        pattern = build_patterns(topo, machine)
        for rp in pattern.ranks:
            blocks = 1
            for step in rp.steps:
                if step.agent is not None:
                    assert step.send_block_count == blocks
                blocks += len(step.recv_blocks)

    def test_final_phase_mostly_socket_local(self, machine):
        """With good agent coverage, the bulk of final-phase messages stay
        on-socket (that is the point of stopping the halving at L)."""
        topo = erdos_renyi_topology(32, 0.7, seed=6)
        pattern = build_patterns(topo, machine)
        total, local = 0, 0
        for rp in pattern.ranks:
            for fs in rp.final_sends:
                total += 1
                local += machine.spec.same_socket(rp.rank, fs.target)
        assert total > 0
        assert local / total > 0.7


class TestDeliveryInvariant:
    @pytest.mark.parametrize("density", [0.02, 0.1, 0.3, 0.7, 1.0])
    def test_random_graphs(self, machine, density):
        topo = erdos_renyi_topology(32, density, seed=7)
        check_pattern(topo, build_patterns(topo, machine))

    def test_moore(self, machine):
        topo = moore_topology(32, r=1, d=2)
        check_pattern(topo, build_patterns(topo, machine))

    def test_cartesian(self, machine):
        topo = cartesian_topology(32, d=2)
        check_pattern(topo, build_patterns(topo, machine))

    def test_star_graphs(self, machine):
        n = 32
        out_star = DistGraphTopology(n, {0: list(range(1, n))})
        check_pattern(out_star, build_patterns(out_star, machine))
        in_star = DistGraphTopology(n, {u: [0] for u in range(1, n)})
        check_pattern(in_star, build_patterns(in_star, machine))

    def test_self_loops(self, machine):
        n = 32
        topo = DistGraphTopology(n, {r: [r, (r + 3) % n] for r in range(n)})
        pattern = build_patterns(topo, machine)
        check_pattern(topo, pattern)
        assert all(rp.self_copy for rp in pattern.ranks)

    def test_non_power_of_two_communicator(self):
        machine = Machine.niagara_like(nodes=3, ranks_per_socket=3)  # 18 ranks
        topo = erdos_renyi_topology(18, 0.4, seed=8)
        check_pattern(topo, build_patterns(topo, machine))

    def test_paper_like_odd_shape(self):
        machine = Machine.niagara_like(nodes=5, ranks_per_socket=9)  # 90 ranks
        topo = erdos_renyi_topology(90, 0.2, seed=9)
        check_pattern(topo, build_patterns(topo, machine))


class TestSelectionVariants:
    def test_protocol_equals_greedy_pattern(self, machine):
        topo = erdos_renyi_topology(32, 0.4, seed=10)
        greedy = build_patterns(topo, machine, selection="greedy")
        proto = build_patterns(topo, machine, selection="protocol")
        for r in range(32):
            assert [(s.index, s.agent, s.origin) for s in greedy[r].steps] == [
                (s.index, s.agent, s.origin) for s in proto[r].steps
            ]
        assert proto.stats.protocol_messages > 0
        assert greedy.stats.protocol_messages == 0

    def test_random_selection_still_correct(self, machine):
        topo = erdos_renyi_topology(32, 0.4, seed=11)
        check_pattern(topo, build_patterns(topo, machine, selection="random"))

    def test_random_selection_deterministic_by_seed(self, machine):
        topo = erdos_renyi_topology(32, 0.4, seed=12)
        a = build_patterns(topo, machine, selection="random", seed=5)
        b = build_patterns(topo, machine, selection="random", seed=5)
        for r in range(32):
            assert [(s.agent, s.origin) for s in a[r].steps] == [
                (s.agent, s.origin) for s in b[r].steps
            ]

    def test_unknown_selection_rejected(self, machine):
        topo = erdos_renyi_topology(32, 0.1, seed=0)
        with pytest.raises(ValueError, match="selection"):
            build_patterns(topo, machine, selection="psychic")


class TestStopGranularity:
    def test_stop_at_one_has_no_final_sends_needed_off_socket(self, machine):
        """Halving to single ranks leaves no interval bigger than one, so
        more levels and (near-)empty leftovers except unmatched duties."""
        topo = erdos_renyi_topology(32, 0.5, seed=13)
        deep = build_patterns(topo, machine, stop_ranks=1)
        normal = build_patterns(topo, machine)
        assert deep.stats.levels == math.ceil(math.log2(32))
        assert deep.stats.levels > normal.stats.levels
        check_pattern(topo, deep)

    def test_stop_larger_than_n_gives_no_halving(self, machine):
        topo = erdos_renyi_topology(32, 0.5, seed=14)
        flat = build_patterns(topo, machine, stop_ranks=32)
        assert flat.stats.levels == 0
        # Everything is delivered directly in the final phase => naive-like.
        assert flat.total_data_messages() == topo.n_edges
        check_pattern(topo, flat)

    def test_invalid_stop_rejected(self, machine):
        topo = erdos_renyi_topology(32, 0.1, seed=0)
        with pytest.raises(ValueError, match="stop_ranks"):
            build_patterns(topo, machine, stop_ranks=0)


class TestStats:
    def test_success_rate_bounds(self, machine):
        topo = erdos_renyi_topology(32, 0.3, seed=15)
        stats = build_patterns(topo, machine).stats
        assert 0.0 <= stats.success_rate <= 1.0
        assert stats.agent_successes <= stats.agent_attempts

    def test_high_density_high_success(self, machine):
        topo = erdos_renyi_topology(32, 0.9, seed=16)
        stats = build_patterns(topo, machine).stats
        assert stats.success_rate > 0.9

    def test_message_counts_grow_with_density(self, machine):
        sparse = build_patterns(erdos_renyi_topology(32, 0.05, seed=17), machine,
                                selection="protocol").stats
        dense = build_patterns(erdos_renyi_topology(32, 0.7, seed=17), machine,
                               selection="protocol").stats
        assert dense.protocol_messages > sparse.protocol_messages

    def test_fewer_data_messages_than_naive_on_dense(self, machine):
        topo = erdos_renyi_topology(32, 0.7, seed=18)
        pattern = build_patterns(topo, machine)
        assert pattern.total_data_messages() < topo.n_edges
