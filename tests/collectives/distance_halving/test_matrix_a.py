"""Unit tests for candidates and Matrix A."""

import numpy as np
import pytest

from repro.collectives.distance_halving.matrix_a import (
    adjacency_matrix,
    build_matrix_a,
    half_scores,
)
from repro.topology import DistGraphTopology, erdos_renyi_topology


class TestAdjacencyMatrix:
    def test_matches_topology(self):
        topo = DistGraphTopology(4, [[1, 3], [2], [], [0]])
        adj = adjacency_matrix(topo)
        assert adj.dtype == bool
        for u in range(4):
            assert set(np.flatnonzero(adj[u])) == set(topo.out_neighbors(u))

    def test_empty_topology(self):
        adj = adjacency_matrix(DistGraphTopology(3, {}))
        assert not adj.any()


class TestBuildMatrixA:
    def test_candidates_share_a_neighbor(self):
        # 0 -> {2, 3}; 1 -> {3}; 4 -> {2}; 5 -> nothing shared.
        topo = DistGraphTopology(6, [[2, 3], [3], [], [], [2], [0]])
        candidates, A = build_matrix_a(topo, 0)
        assert candidates == [1, 4]
        # Fig. 3 semantics: A[i][j] = O[j] is an outgoing neighbor of C[i].
        out = topo.out_neighbors(0)  # (2, 3)
        assert A.shape == (2, 2)
        assert A[0].tolist() == [False, True]  # cand 1 shares 3
        assert A[1].tolist() == [True, False]  # cand 4 shares 2

    def test_rank_itself_excluded(self):
        topo = DistGraphTopology(3, [[1], [1], [1]])
        candidates, _ = build_matrix_a(topo, 0)
        assert 0 not in candidates
        assert candidates == [1, 2]

    def test_no_outgoing_neighbors(self):
        topo = DistGraphTopology(3, {1: [2]})
        candidates, A = build_matrix_a(topo, 0)
        assert candidates == [] and A.shape == (0, 0)

    def test_accepts_precomputed_adjacency(self):
        topo = erdos_renyi_topology(20, 0.3, seed=1)
        adj = adjacency_matrix(topo)
        c1, a1 = build_matrix_a(topo, 5, adj=adj)
        c2, a2 = build_matrix_a(topo, 5)
        assert c1 == c2 and (a1 == a2).all()


class TestHalfScores:
    def test_counts_shared_in_half_only(self):
        # Ranks 0,1 in lower; 2,3 in upper.  0 -> {2,3}, 2 -> {3}: share {3}
        # within the upper half; 0 and 2 also share nothing in lower.
        topo = DistGraphTopology(4, [[2, 3], [], [3], []])
        adj = adjacency_matrix(topo).astype(np.float32)
        scores = half_scores(adj, range(0, 2), range(2, 4), range(2, 4))
        assert scores[0, 0] == 1.0  # (rank 0, rank 2) share rank 3
        assert scores[0, 1] == 0.0  # rank 3 has no out-edges
        assert scores[1, 0] == 0.0

    def test_symmetry_of_scores(self):
        topo = erdos_renyi_topology(16, 0.5, seed=3)
        adj = adjacency_matrix(topo).astype(np.float32)
        s_ab = half_scores(adj, range(0, 8), range(8, 16), range(8, 16))
        s_ba = half_scores(adj, range(8, 16), range(0, 8), range(8, 16))
        assert np.array_equal(s_ab, s_ba.T)

    def test_matches_bruteforce(self):
        topo = erdos_renyi_topology(12, 0.4, seed=9)
        adj = adjacency_matrix(topo).astype(np.float32)
        scores = half_scores(adj, range(0, 6), range(6, 12), range(6, 12))
        for i, a in enumerate(range(0, 6)):
            for j, b in enumerate(range(6, 12)):
                expected = len(
                    set(topo.out_neighbors(a))
                    & set(topo.out_neighbors(b))
                    & set(range(6, 12))
                )
                assert scores[i, j] == expected
