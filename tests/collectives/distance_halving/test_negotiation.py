"""Unit + property tests for agent/origin selection (Algorithms 2 & 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.distance_halving.negotiation import (
    greedy_matching,
    protocol_matching,
    random_matching,
)


def scores_of(pairs, n_s, n_a):
    scores = np.zeros((n_s, n_a), dtype=np.float32)
    for (i, j), w in pairs.items():
        scores[i, j] = w
    return scores


class TestGreedyMatching:
    def test_empty(self):
        assert greedy_matching([], [], np.zeros((0, 0))) == {}

    def test_zero_scores_unmatched(self):
        assert greedy_matching([0], [1], np.zeros((1, 1))) == {}

    def test_prefers_highest_weight(self):
        scores = scores_of({(0, 0): 5, (0, 1): 3, (1, 0): 4, (1, 1): 1}, 2, 2)
        m = greedy_matching([10, 11], [20, 21], scores)
        assert m == {10: 20, 11: 21}  # (10,20)=5 first, then (11,21)=1

    def test_one_to_one(self):
        scores = scores_of({(0, 0): 5, (1, 0): 5}, 2, 1)
        m = greedy_matching([10, 11], [20], scores)
        assert m == {10: 20}  # tie broken to lower searcher; 11 unmatched

    def test_tie_break_lowest_acceptor(self):
        scores = scores_of({(0, 0): 2, (0, 1): 2}, 1, 2)
        m = greedy_matching([10], [20, 21], scores)
        assert m == {10: 20}

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            greedy_matching([0], [1, 2], np.zeros((1, 1)))


class TestProtocolMatching:
    def test_single_pair_handshake(self):
        outcome = protocol_matching([0], [1], scores_of({(0, 0): 3}, 1, 1))
        assert outcome.matching == {0: 1}
        assert outcome.req_messages == 1
        assert outcome.accept_messages == 1
        assert outcome.total_messages == 2

    def test_rejected_searcher_moves_on(self):
        # Both searchers prefer acceptor 20; loser falls back to 21.
        scores = scores_of({(0, 0): 5, (1, 0): 4, (1, 1): 2}, 2, 2)
        outcome = protocol_matching([10, 11], [20, 21], scores)
        assert outcome.matching == {10: 20, 11: 21}
        assert outcome.drop_messages >= 1

    def test_waiting_searcher_accepted_after_exit(self):
        # 20's best is 11, but 11 matches 21 (their mutual weight is top);
        # 10 proposes to 20, WAITS, then gets accepted after 11's EXIT.
        scores = scores_of({(0, 0): 3, (1, 0): 5, (1, 1): 7}, 2, 2)
        outcome = protocol_matching([10, 11], [20, 21], scores)
        assert outcome.matching == {11: 21, 10: 20}
        assert outcome.exit_messages >= 1

    def test_failed_search(self):
        outcome = protocol_matching([0, 1], [2], scores_of({(0, 0): 2, (1, 0): 1}, 2, 1))
        assert outcome.matching == {0: 2}  # searcher 1 exhausts candidates

    def test_message_bound_four_per_pair(self):
        rng = np.random.default_rng(0)
        scores = (rng.random((12, 12)) < 0.6).astype(np.float32) * rng.integers(
            1, 9, (12, 12)
        )
        outcome = protocol_matching(list(range(12)), list(range(12, 24)), scores)
        candidate_pairs = int((scores > 0).sum())
        # Section VII-D: worst case 4 messages per candidate pair.
        assert outcome.total_messages <= 4 * candidate_pairs


class TestRandomMatching:
    def test_respects_candidate_edges(self):
        scores = scores_of({(0, 1): 1}, 2, 2)
        rng = np.random.default_rng(1)
        m = random_matching([10, 11], [20, 21], scores, rng)
        assert m in ({10: 21}, {})
        assert m == {10: 21}  # only one candidate edge: must take it

    def test_is_maximal_one_to_one(self):
        rng = np.random.default_rng(3)
        scores = np.ones((4, 4), dtype=np.float32)
        m = random_matching(list(range(4)), list(range(4, 8)), scores, rng)
        assert len(m) == 4
        assert len(set(m.values())) == 4


@settings(deadline=None, max_examples=60)
@given(
    st.integers(1, 10),
    st.integers(1, 10),
    st.integers(0, 2**31 - 1),
    st.floats(0.1, 0.9),
)
def test_protocol_equals_greedy(n_s, n_a, seed, density):
    """The distributed protocol's fixed point is exactly the greedy matching
    (symmetric scores + lowest-rank tie-break) — the core claim that lets the
    builder use the fast path."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n_s, n_a)) < density
    scores = (mask * rng.integers(1, 6, (n_s, n_a))).astype(np.float32)
    searchers = list(range(n_s))
    acceptors = list(range(100, 100 + n_a))
    assert protocol_matching(searchers, acceptors, scores).matching == greedy_matching(
        searchers, acceptors, scores
    )


@settings(deadline=None, max_examples=30)
@given(st.integers(2, 12), st.integers(0, 2**31 - 1))
def test_matchings_are_valid(n, seed):
    """Every produced matching is one-to-one over positive-score pairs."""
    rng = np.random.default_rng(seed)
    scores = (rng.random((n, n)) < 0.5).astype(np.float32) * rng.integers(1, 4, (n, n))
    searchers = list(range(n))
    acceptors = list(range(n, 2 * n))
    for matching in (
        greedy_matching(searchers, acceptors, scores),
        protocol_matching(searchers, acceptors, scores).matching,
        random_matching(searchers, acceptors, scores, np.random.default_rng(0)),
    ):
        assert len(set(matching.values())) == len(matching)
        for s, a in matching.items():
            assert scores[searchers.index(s), acceptors.index(a)] > 0
