"""Unit tests for the Common Neighbor baseline."""

import pytest

from repro.collectives import get_algorithm, run_allgather, verify_allgather
from repro.topology import DistGraphTopology, erdos_renyi_topology


class TestGroupFormation:
    def test_groups_respect_socket_boundaries(self, small_machine, small_topology):
        alg = get_algorithm("common_neighbor", k=3)  # 3 does not divide L=4
        alg.setup(small_topology, small_machine)
        L = small_machine.spec.ranks_per_socket
        for plan in alg.plans:
            sockets = {g // L for g in plan.group}
            assert len(sockets) == 1  # never straddles a socket

    def test_group_sizes_at_most_k(self, small_machine, small_topology):
        alg = get_algorithm("common_neighbor", k=3)
        alg.setup(small_topology, small_machine)
        assert all(1 <= len(p.group) <= 3 for p in alg.plans)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            get_algorithm("common_neighbor", k=0)


class TestMessageCombining:
    def test_fewer_messages_than_naive_on_dense_graph(self, small_machine):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.6, seed=4)
        naive = run_allgather("naive", topo, small_machine, 64)
        cn = run_allgather(get_algorithm("common_neighbor", k=4), topo, small_machine, 64)
        assert cn.messages_sent < naive.messages_sent

    def test_k1_degenerates_to_naive_message_count(self, small_machine, small_topology):
        """K=1 means singleton groups: no combining, exactly one message per
        off-self edge, like the naive algorithm."""
        naive = run_allgather("naive", small_topology, small_machine, 64)
        cn = run_allgather(get_algorithm("common_neighbor", k=1), small_topology, small_machine, 64)
        assert cn.messages_sent == naive.messages_sent

    def test_single_source_targets_keep_sender(self, small_machine):
        """A target needed by one member only must be sent by that member."""
        n = small_machine.spec.n_ranks
        topo = DistGraphTopology(n, {0: [n - 1]})
        alg = get_algorithm("common_neighbor", k=4)
        alg.setup(topo, small_machine)
        sends = alg.plans[0].phase2_sends
        assert sends == (((n - 1), (0,)),)
        # And no intra-group traffic is needed for it.
        assert alg.plans[0].phase1_sends == ()

    def test_shared_target_combined_into_one_message(self, small_machine):
        """All K group members sending to one target => one phase-2 message."""
        n = small_machine.spec.n_ranks
        target = n - 1
        topo = DistGraphTopology(n, {g: [target] for g in range(4)})
        alg = get_algorithm("common_neighbor", k=4)
        run = run_allgather(alg, topo, small_machine, 64)
        verify_allgather(topo, run)
        phase2 = [p for p in alg.plans if p.phase2_sends]
        assert len(phase2) == 1
        (tgt, blocks), = phase2[0].phase2_sends
        assert tgt == target and sorted(blocks) == [0, 1, 2, 3]

    def test_member_targets_delivered_via_phase1(self, small_machine):
        """A target inside the group gets its blocks in phase 1, not phase 2."""
        topo = DistGraphTopology(small_machine.spec.n_ranks, {0: [1], 2: [1]})
        alg = get_algorithm("common_neighbor", k=4)
        run = run_allgather(alg, topo, small_machine, 64)
        verify_allgather(topo, run)
        assert all(not p.phase2_sends for p in alg.plans)
        assert set(alg.plans[1].phase1_for_me) == {0, 2}


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_all_k_values_correct(self, small_machine, small_topology, k):
        run = run_allgather(get_algorithm("common_neighbor", k=k), small_topology, small_machine, 128)
        verify_allgather(small_topology, run)

    @pytest.mark.parametrize("density", [0.05, 0.5, 1.0])
    def test_densities(self, small_machine, density):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, density, seed=6)
        run = run_allgather(get_algorithm("common_neighbor", k=4), topo, small_machine, 64)
        verify_allgather(topo, run)

    def test_setup_counts_matrix_a_exchange(self, small_machine, small_topology):
        alg = get_algorithm("common_neighbor", k=4)
        stats = alg.setup(small_topology, small_machine)
        n = small_topology.n
        assert stats.protocol_messages >= n * (n - 1)
