"""Unit tests for the hierarchical leader-based baseline."""

import pytest

from repro.collectives import (
    RunOptions,
    get_algorithm,
    run_allgather,
    verify_allgather,
)
from repro.topology import DistGraphTopology, erdos_renyi_topology, moore_topology


class TestPlanStructure:
    def test_leaders_round_robin(self, small_machine, small_topology):
        alg = get_algorithm("hierarchical", leaders_per_node=2)
        alg.setup(small_topology, small_machine)
        rpn = small_machine.spec.ranks_per_node
        for r, plan in enumerate(alg.plans):
            node_base = (r // rpn) * rpn
            assert plan.leader in (node_base, node_base + 1)
            assert small_machine.spec.node_of(plan.leader) == small_machine.spec.node_of(r)

    def test_single_leader_mode(self, small_machine, small_topology):
        alg = get_algorithm("hierarchical", leaders_per_node=1)
        alg.setup(small_topology, small_machine)
        rpn = small_machine.spec.ranks_per_node
        assert all(plan.leader % rpn == 0 for plan in alg.plans)

    def test_leaders_capped_by_node_size(self, small_machine, small_topology):
        alg = get_algorithm("hierarchical", leaders_per_node=1000)
        stats = alg.setup(small_topology, small_machine)
        assert stats.extras["leaders_per_node"] == small_machine.spec.ranks_per_node

    def test_invalid_leaders(self):
        with pytest.raises(ValueError):
            get_algorithm("hierarchical", leaders_per_node=0)

    def test_intra_node_edges_bypass_hierarchy(self, small_machine):
        n = small_machine.spec.n_ranks
        topo = DistGraphTopology(n, {0: [1]})  # same socket
        alg = get_algorithm("hierarchical")
        run = run_allgather(alg, topo, small_machine, 64)
        verify_allgather(topo, run)
        assert run.messages_sent == 1  # direct, no leader hops

    def test_cross_node_edge_takes_three_hops(self, small_machine):
        n = small_machine.spec.n_ranks
        rpn = small_machine.spec.ranks_per_node
        # last rank of node 0 -> last rank of node 1: member->leader,
        # leader->leader, leader->member.
        topo = DistGraphTopology(n, {rpn - 1: [2 * rpn - 1]})
        alg = get_algorithm("hierarchical")
        run = run_allgather(alg, topo, small_machine, 64)
        verify_allgather(topo, run)
        assert run.messages_sent == 3

    def test_leader_source_skips_aggregation(self, small_machine):
        n = small_machine.spec.n_ranks
        rpn = small_machine.spec.ranks_per_node
        # rank 0 IS a leader; its cross-node message needs only 2 hops
        # (exchange + distribute), or 1 if the target is also a leader.
        topo = DistGraphTopology(n, {0: [2 * rpn - 1]})
        run = run_allgather("hierarchical", topo, small_machine, 64)
        verify_allgather(topo, run)
        assert run.messages_sent == 2


class TestCorrectness:
    @pytest.mark.parametrize("density", [0.05, 0.3, 0.8])
    @pytest.mark.parametrize("leaders", [1, 2, 4])
    def test_random_graphs(self, small_machine, density, leaders):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, density, seed=81)
        alg = get_algorithm("hierarchical", leaders_per_node=leaders)
        run = run_allgather(alg, topo, small_machine, 256)
        verify_allgather(topo, run)

    def test_moore(self, small_machine):
        topo = moore_topology(small_machine.spec.n_ranks, r=1, d=2)
        run = run_allgather("hierarchical", topo, small_machine, 256)
        verify_allgather(topo, run)

    def test_self_loops(self, small_machine):
        n = small_machine.spec.n_ranks
        topo = DistGraphTopology(n, {r: [r] for r in range(n)})
        run = run_allgather("hierarchical", topo, small_machine, 256)
        verify_allgather(topo, run)
        assert run.messages_sent == 0

    def test_allgatherv(self, small_machine, small_topology):
        from repro.collectives import run_allgatherv

        sizes = [(r % 5 + 1) * 64 for r in range(small_topology.n)]
        run = run_allgatherv("hierarchical", small_topology, small_machine, sizes)
        verify_allgather(small_topology, run)


class TestPerformanceShape:
    def test_combines_cross_node_messages(self, small_machine):
        """Dense graph: leader exchange sends far fewer network messages."""
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.6, seed=82)
        naive = run_allgather("naive", topo, small_machine, 64, options=RunOptions(trace=True))
        hier = run_allgather("hierarchical", topo, small_machine, 64, options=RunOptions(trace=True))
        assert hier.trace.off_socket_messages() < naive.trace.off_socket_messages()

    def test_wins_on_dense_graphs(self, medium_machine):
        topo = erdos_renyi_topology(medium_machine.spec.n_ranks, 0.5, seed=83)
        t_naive = run_allgather("naive", topo, medium_machine, 4096).simulated_time
        t_hier = run_allgather("hierarchical", topo, medium_machine, 4096).simulated_time
        assert t_naive / t_hier > 1.3
