"""Unit tests for the algorithm interface and registry."""

import pytest

from repro.collectives.base import (
    NeighborhoodAllgatherAlgorithm,
    SetupStats,
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.topology import erdos_renyi_topology


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_algorithms()) >= {
            "naive",
            "common_neighbor",
            "distance_halving",
        }

    def test_get_algorithm_instantiates(self):
        alg = get_algorithm("naive")
        assert alg.name == "naive"
        assert not alg.is_setup

    def test_get_algorithm_passes_kwargs(self):
        alg = get_algorithm("common_neighbor", k=8)
        assert alg.k == 8

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("telepathy")

    def test_duplicate_registration_rejected(self):
        class Dup(NeighborhoodAllgatherAlgorithm):
            name = "naive"

            def _build(self, topology, machine):
                return SetupStats()

            def program(self, comm, ctx):
                return None

        with pytest.raises(ValueError, match="already registered"):
            register_algorithm(Dup)

    def test_abstract_name_rejected(self):
        class NoName(NeighborhoodAllgatherAlgorithm):
            def _build(self, topology, machine):
                return SetupStats()

            def program(self, comm, ctx):
                return None

        with pytest.raises(ValueError, match="non-abstract name"):
            register_algorithm(NoName)


class TestLifecycle:
    def test_setup_idempotent(self, small_machine, small_topology):
        alg = get_algorithm("distance_halving")
        s1 = alg.setup(small_topology, small_machine)
        s2 = alg.setup(small_topology, small_machine)
        assert s1 is s2  # cached, not rebuilt

    def test_setup_rebuilds_for_new_topology(self, small_machine):
        alg = get_algorithm("distance_halving")
        t1 = erdos_renyi_topology(small_machine.spec.n_ranks, 0.2, seed=0)
        t2 = erdos_renyi_topology(small_machine.spec.n_ranks, 0.2, seed=1)
        s1 = alg.setup(t1, small_machine)
        s2 = alg.setup(t2, small_machine)
        assert s1 is not s2

    def test_program_before_setup_rejected(self, small_machine):
        alg = get_algorithm("distance_halving")
        with pytest.raises(RuntimeError, match="setup"):
            alg.require_setup()

    def test_topology_too_big_for_machine(self, tiny_machine):
        alg = get_algorithm("naive")
        topo = erdos_renyi_topology(100, 0.1, seed=0)
        with pytest.raises(ValueError, match="machine only"):
            alg.setup(topo, tiny_machine)
