"""Unit tests for the algorithm interface and registry."""

import pytest

from repro.collectives.base import (
    NeighborhoodAllgatherAlgorithm,
    SetupStats,
    algorithm_info,
    available_algorithms,
    get_algorithm,
    list_algorithms,
    register_algorithm,
)
from repro.topology import erdos_renyi_topology


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_algorithms()) >= {
            "naive",
            "common_neighbor",
            "distance_halving",
        }

    def test_get_algorithm_instantiates(self):
        alg = get_algorithm("naive")
        assert alg.name == "naive"
        assert not alg.is_setup

    def test_get_algorithm_passes_kwargs(self):
        alg = get_algorithm("common_neighbor", k=8)
        assert alg.k == 8

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("telepathy")

    def test_duplicate_registration_rejected(self):
        class Dup(NeighborhoodAllgatherAlgorithm):
            name = "naive"

            def _build(self, topology, machine):
                return SetupStats()

            def program(self, comm, ctx):
                return None

        with pytest.raises(ValueError, match="already registered"):
            register_algorithm(Dup)

    def test_abstract_name_rejected(self):
        class NoName(NeighborhoodAllgatherAlgorithm):
            def _build(self, topology, machine):
                return SetupStats()

            def program(self, comm, ctx):
                return None

        with pytest.raises(ValueError, match="non-abstract name"):
            register_algorithm(NoName)


class TestLifecycle:
    def test_setup_idempotent(self, small_machine, small_topology):
        alg = get_algorithm("distance_halving")
        s1 = alg.setup(small_topology, small_machine)
        s2 = alg.setup(small_topology, small_machine)
        assert s1 is s2  # cached, not rebuilt

    def test_setup_rebuilds_for_new_topology(self, small_machine):
        alg = get_algorithm("distance_halving")
        t1 = erdos_renyi_topology(small_machine.spec.n_ranks, 0.2, seed=0)
        t2 = erdos_renyi_topology(small_machine.spec.n_ranks, 0.2, seed=1)
        s1 = alg.setup(t1, small_machine)
        s2 = alg.setup(t2, small_machine)
        assert s1 is not s2

    def test_program_before_setup_rejected(self, small_machine):
        alg = get_algorithm("distance_halving")
        with pytest.raises(RuntimeError, match="setup"):
            alg.require_setup()

    def test_topology_too_big_for_machine(self, tiny_machine):
        alg = get_algorithm("naive")
        topo = erdos_renyi_topology(100, 0.1, seed=0)
        with pytest.raises(ValueError, match="machine only"):
            alg.setup(topo, tiny_machine)


class TestCapabilityDeclarations:
    """Registration-time validation of the capability vocabulary."""

    @pytest.fixture
    def scratch(self):
        """Record scratch registrations; pop them from the registry after."""
        from repro.collectives import base as base_mod

        names = []
        yield names
        for name in names:
            base_mod._REGISTRY.pop(name, None)

    @staticmethod
    def _minimal(name):
        class Minimal(NeighborhoodAllgatherAlgorithm):
            def _build(self, topology, machine):
                return SetupStats()

            def program(self, comm, ctx):
                return None

        Minimal.name = name
        return Minimal

    def test_unknown_capability_rejected(self):
        with pytest.raises(ValueError, match="unknown capabilities"):
            register_algorithm(self._minimal("scratch_typo"),
                               capabilities=("shedule",))

    def test_schedule_requires_build_schedule_override(self):
        with pytest.raises(ValueError, match="does not override build_schedule"):
            register_algorithm(self._minimal("scratch_sched"),
                               capabilities=("schedule",))

    def test_replan_requires_replan_override(self):
        with pytest.raises(ValueError, match="does not override replan"):
            register_algorithm(self._minimal("scratch_replan"),
                               capabilities=("replan",))

    def test_tunable_requires_grid(self):
        with pytest.raises(ValueError, match="declared together"):
            register_algorithm(self._minimal("scratch_tun"),
                               capabilities=("tunable",))

    def test_grid_requires_tunable(self):
        with pytest.raises(ValueError, match="declared together"):
            register_algorithm(self._minimal("scratch_grid"),
                               tuning=(("k", (1, 2)),))

    def test_bench_kwargs_must_construct(self):
        with pytest.raises(TypeError):
            register_algorithm(self._minimal("scratch_bench"),
                               capabilities=("bench",),
                               bench_kwargs=(("no_such_param", 1),))

    def test_bare_registration_is_lookup_only(self, scratch):
        cls = register_algorithm(self._minimal("scratch_bare"))
        scratch.append("scratch_bare")
        info = algorithm_info("scratch_bare")
        assert info.cls is cls
        assert info.capabilities == frozenset()
        assert info.label == "scratch_bare"
        # Lookup-only backends stay out of every capability-gated surface.
        assert all(i.name != "scratch_bare"
                   for i in list_algorithms(requires={"oracle"}))

    def test_list_algorithms_unknown_requirement(self):
        with pytest.raises(ValueError, match="unknown"):
            list_algorithms(requires={"bogus_capability"})

    def test_list_algorithms_registration_order(self):
        names = [i.name for i in list_algorithms()]
        assert names == [
            "naive", "common_neighbor", "distance_halving",
            "hierarchical", "bruck",
        ]

    def test_info_has_and_tuning_values(self):
        cn = algorithm_info("common_neighbor")
        assert cn.has("tunable", "bench") and not cn.has("setup_free")
        assert cn.tuning_values("k")
        with pytest.raises(KeyError, match="no tuning grid"):
            cn.tuning_values("radius")

    def test_algorithm_info_unknown_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            algorithm_info("telepathy")


class TestRegistryCompleteness:
    """Pins: every capability-enrolled algorithm reaches every consumer
    surface (fuzz oracles, bench sweeps, chaos) through the registry."""

    def test_oracle_set_drives_fuzzer_and_chaos(self):
        from repro.exec import chaos
        from repro.verify import differential

        oracle = tuple(i.name for i in list_algorithms(requires={"oracle"}))
        assert differential.ALGORITHMS == oracle
        assert chaos.ALGORITHMS == oracle
        assert "bruck" in oracle

    def test_bench_set_drives_every_bench_surface(self):
        from repro.bench import resilience, sweep, wallclock

        bench = tuple(i.name for i in list_algorithms(requires={"bench"}))
        assert wallclock.ALGORITHMS == bench
        assert resilience.ALGORITHMS == bench
        assert tuple(name for name, _ in sweep.SMOKE_ALGORITHMS) == bench
        assert "bruck" in bench

    def test_fallback_is_registered_and_setup_free(self):
        from repro.collectives.base import SETUP_FREE_FALLBACK

        info = algorithm_info(SETUP_FREE_FALLBACK)
        assert info.has("setup_free")

    def test_every_schedule_algorithm_also_replans(self):
        # The shrink path replays a schedule-capable backend over the
        # residual topology; all current schedule exporters support it.
        for info in list_algorithms(requires={"schedule"}):
            assert info.has("replan"), info.name
