"""Unit tests for the naive baseline."""

import pytest

from repro.collectives import run_allgather, verify_allgather
from repro.topology import DistGraphTopology, erdos_renyi_topology


class TestMessageAccounting:
    def test_one_message_per_edge(self, small_machine, small_topology):
        run = run_allgather("naive", small_topology, small_machine, 256)
        assert run.messages_sent == small_topology.n_edges

    def test_no_setup_cost(self, small_machine, small_topology):
        run = run_allgather("naive", small_topology, small_machine, 256)
        assert run.setup_stats.protocol_messages == 0
        assert run.setup_stats.simulated_time == 0.0

    def test_self_loop_is_local_copy(self, small_machine):
        topo = DistGraphTopology(small_machine.spec.n_ranks, {0: [0]})
        run = run_allgather("naive", topo, small_machine, 256)
        assert run.messages_sent == 0  # no network traffic for self-edges
        assert run.results[0][0] == 0


class TestLatencyBehaviour:
    def test_latency_scales_with_degree(self, small_machine):
        n = small_machine.spec.n_ranks
        sparse = erdos_renyi_topology(n, 0.1, seed=2)
        dense = erdos_renyi_topology(n, 0.8, seed=2)
        t_sparse = run_allgather("naive", sparse, small_machine, 1024).simulated_time
        t_dense = run_allgather("naive", dense, small_machine, 1024).simulated_time
        assert t_dense > 3 * t_sparse

    def test_latency_grows_with_message_size(self, small_machine, small_topology):
        t_small = run_allgather("naive", small_topology, small_machine, 64).simulated_time
        t_big = run_allgather("naive", small_topology, small_machine, 1 << 20).simulated_time
        assert t_big > 10 * t_small

    def test_correct_on_asymmetric_graph(self, small_machine):
        """Directed star: rank 0 broadcasts, never receives."""
        n = small_machine.spec.n_ranks
        topo = DistGraphTopology(n, {0: list(range(1, n))})
        run = run_allgather("naive", topo, small_machine, 128)
        verify_allgather(topo, run)
        assert run.results[0] == {}
        assert all(run.results[v] == {0: 0} for v in range(1, n))
