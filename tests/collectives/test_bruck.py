"""Unit tests for the locality-aware Bruck allgather backend."""

import pytest

from repro.cluster import Machine
from repro.collectives import (
    RunOptions,
    get_algorithm,
    run_allgather,
    verify_allgather,
)
from repro.collectives.bruck import (
    LOCALITIES,
    LocalityAwareBruckAllgather,
    _rotation_offsets,
)
from repro.sim.faults import FaultPlan, RankCrash
from repro.topology import DistGraphTopology, erdos_renyi_topology


class TestRotationOffsets:
    def test_trivial_group_counts_need_no_rounds(self):
        assert _rotation_offsets(0) == ()
        assert _rotation_offsets(1) == ()

    @pytest.mark.parametrize("s", [2, 4, 8, 16])
    def test_power_of_two_doubling_rounds(self, s):
        offsets = _rotation_offsets(s)
        assert offsets == tuple((1 << r, 1 << r) for r in range(s.bit_length() - 1))

    @pytest.mark.parametrize("s", [3, 5, 6, 7, 11])
    def test_remainder_round_covers_every_group(self, s):
        offsets = _rotation_offsets(s)
        k = s.bit_length() - 1
        # floor(log2 S) full rounds plus one partial round.
        assert len(offsets) == k + 1
        assert offsets[-1] == (1 << k, s - (1 << k))
        # After all rounds each leader has accumulated every group's chunk.
        assert sum(cnt for _, cnt in offsets) == s - 1

    def test_offsets_distinct_mod_s(self):
        for s in range(2, 40):
            offsets = [o % s for o, _ in _rotation_offsets(s)]
            assert len(offsets) == len(set(offsets))


class TestPlanStructure:
    def test_invalid_locality_rejected(self):
        with pytest.raises(ValueError, match="locality"):
            get_algorithm("bruck", locality="rack")

    def test_localities_exposed(self):
        assert LOCALITIES == ("socket", "node")

    def test_socket_groups_one_leader_per_socket(self, small_machine, small_topology):
        alg = get_algorithm("bruck")
        alg.setup(small_topology, small_machine)
        width = small_machine.spec.ranks_per_socket
        leaders = [
            r for r, plan in enumerate(alg.plans)
            if plan.rounds or plan.gather_recvs or plan.dist_sends
        ]
        assert leaders and all(r % width == 0 for r in leaders)
        # Non-leaders never participate in rotation rounds.
        for r, plan in enumerate(alg.plans):
            if r % width != 0:
                assert plan.rounds == ()

    def test_node_locality_widens_groups(self, small_machine, small_topology):
        socket = get_algorithm("bruck")
        node = get_algorithm("bruck", locality="node")
        socket.setup(small_topology, small_machine)
        node.setup(small_topology, small_machine)
        assert (
            node.setup_stats.extras["groups"]
            < socket.setup_stats.extras["groups"]
        )
        assert node.setup_stats.extras["locality"] == "node"

    def test_log_round_count(self, small_machine, small_topology):
        alg = get_algorithm("bruck")
        alg.setup(small_topology, small_machine)
        groups = alg.setup_stats.extras["groups"]
        k = groups.bit_length() - 1
        expected = k + (0 if groups == 1 << k else 1)
        assert alg.setup_stats.extras["rounds"] == expected

    def test_replan_preserves_locality(self):
        alg = LocalityAwareBruckAllgather(locality="node")
        shrunk = alg.replan(survivors=(0, 1, 2), delivered_state={})
        assert isinstance(shrunk, LocalityAwareBruckAllgather)
        assert shrunk.locality == "node"
        assert not shrunk.is_setup


class TestCorrectness:
    @pytest.mark.parametrize("density", [0.0, 0.1, 0.3, 0.7, 1.0])
    def test_densities_match_oracle(self, small_machine, density):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, density, seed=11)
        run = run_allgather("bruck", topo, small_machine, 128)
        verify_allgather(topo, run)

    @pytest.mark.parametrize("locality", LOCALITIES)
    def test_both_localities_correct(self, small_machine, small_topology, locality):
        run = run_allgather(
            get_algorithm("bruck", locality=locality),
            small_topology, small_machine, 256,
        )
        verify_allgather(small_topology, run)

    def test_non_power_of_two_group_count(self):
        # 5 sockets -> remainder rotation round (S=5: offsets 1, 2, 4).
        machine = Machine.single_switch(
            nodes=5, sockets_per_node=1, ranks_per_socket=2
        )
        topo = erdos_renyi_topology(10, 0.4, seed=3)
        alg = get_algorithm("bruck")
        run = run_allgather(alg, topo, machine, 64)
        verify_allgather(topo, run)
        assert alg.setup_stats.extras["groups"] == 5

    def test_self_loops_only(self, small_machine):
        n = small_machine.spec.n_ranks
        topo = DistGraphTopology(n, {r: [r] for r in range(n)})
        run = run_allgather("bruck", topo, small_machine, 64)
        verify_allgather(topo, run)

    def test_zero_byte_messages(self, small_machine, small_topology):
        run = run_allgather("bruck", small_topology, small_machine, 0)
        verify_allgather(small_topology, run)

    def test_single_socket_machine_skips_rotation(self):
        machine = Machine.single_switch(
            nodes=1, sockets_per_node=1, ranks_per_socket=8
        )
        topo = erdos_renyi_topology(8, 0.5, seed=9)
        alg = get_algorithm("bruck")
        run = run_allgather(alg, topo, machine, 64)
        verify_allgather(topo, run)
        assert alg.setup_stats.extras["rounds"] == 0

    def test_fewer_messages_than_naive_on_dense_graph(self, small_machine):
        topo = erdos_renyi_topology(small_machine.spec.n_ranks, 0.7, seed=4)
        naive = run_allgather("naive", topo, small_machine, 64)
        bruck = run_allgather("bruck", topo, small_machine, 64)
        assert bruck.messages_sent < naive.messages_sent


class TestScheduleParity:
    def test_auto_mode_replays_bit_identically(self, small_machine, small_topology):
        des = run_allgather("bruck", small_topology, small_machine, "4KB")
        auto = run_allgather(
            "bruck", small_topology, small_machine, "4KB",
            options=RunOptions(sim_mode="auto"),
        )
        assert auto.simulated_time == des.simulated_time
        assert auto.messages_sent == des.messages_sent

    def test_schedule_deliveries_cover_in_neighbors(self, small_machine, small_topology):
        from repro.collectives.base import ExecutionContext

        alg = get_algorithm("bruck")
        alg.setup(small_topology, small_machine)
        n = small_topology.n
        ctx = ExecutionContext(
            topology=small_topology, machine=small_machine, msg_size=64,
            payloads=list(range(n)), results=[{} for _ in range(n)],
        )
        schedule = alg.build_schedule(ctx)
        for rank in range(n):
            assert sorted(schedule.deliveries[rank]) == sorted(
                small_topology.in_neighbors(rank)
            )

    def test_idle_ranks_have_no_program(self, small_machine):
        n = small_machine.spec.n_ranks
        topo = DistGraphTopology(n, {0: [1]})
        alg = get_algorithm("bruck")
        run = run_allgather(alg, topo, small_machine, 64)
        verify_allgather(topo, run)
        # Every rank outside 0/1's gather+dist chain contributes no events.
        assert run.messages_sent > 0


class TestShrinkRecovery:
    def test_shrink_replans_over_survivors(self, small_machine):
        n = small_machine.spec.n_ranks
        topo = erdos_renyi_topology(n, 0.6, seed=21)
        victim = n - 1
        plan = FaultPlan(crashes=(RankCrash(rank=victim, time=1e-7),))
        run = run_allgather(
            "bruck", topo, small_machine, 256,
            options=RunOptions(fault_plan=plan, on_failure="shrink"),
        )
        assert victim in run.missing_ranks
        assert run.algorithm == "bruck"
        verify_allgather(topo, run, allow_missing=run.missing_ranks)

    def test_degrade_falls_back_to_setup_free(self, small_machine):
        from repro.collectives.base import SETUP_FREE_FALLBACK

        n = small_machine.spec.n_ranks
        topo = erdos_renyi_topology(n, 0.6, seed=22)
        plan = FaultPlan(crashes=(RankCrash(rank=0, time=1e-7),))
        run = run_allgather(
            "bruck", topo, small_machine, 256,
            options=RunOptions(
                fault_plan=plan, on_failure="degrade",
                fallback=SETUP_FREE_FALLBACK,
            ),
        )
        assert run.recovery["recovered_with"] == SETUP_FREE_FALLBACK
        verify_allgather(topo, run, allow_missing=run.missing_ranks)
