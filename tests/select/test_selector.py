"""Selection semantics: candidate sets, the ranking walk, survivability.

Includes the registry-completeness pin: the packaged table's candidate
set must equal the registry's oracle query, so registering a fifth
fuzz-oracle backend fails here until the table is re-distilled
(``repro advise --distill``) — and until then the selector still ranks
the newcomer (last) via :func:`repro.select.selector._merge_ranking`.
"""

from dataclasses import dataclass, replace

import pytest

from repro.cluster import Machine
from repro.collectives.base import list_algorithms
from repro.collectives.runner import RunOptions, run_allgather
from repro.select import (
    candidates_for,
    default_table,
    select,
    table_candidates,
)
from repro.select.distill import TABLE_REQUIRES
from repro.select.features import setup_message_bound
from repro.select.selector import (
    CANDIDATE_REQUIRES,
    _kwargs_for,
    _merge_ranking,
)
from repro.sim.faults import FaultPlan, MessageLoss, RankCrash, RetryPolicy
from repro.topology import erdos_renyi_topology

MACHINE = Machine.niagara_like(nodes=2, ranks_per_socket=4)
TOPOLOGY = erdos_renyi_topology(16, 0.3, seed=11)


class TestRegistryCompletenessPin:
    """Import-time contracts tying the table to the live registry."""

    def test_table_candidates_is_the_oracle_query(self):
        expected = tuple(
            (info.name, tuple(info.bench_kwargs))
            for info in list_algorithms(requires=TABLE_REQUIRES)
        )
        assert table_candidates() == expected

    def test_packaged_table_matches_the_registry(self):
        """A newly registered oracle backend changes table_candidates()
        but not the shipped artifact: this is the test that demands a
        re-distillation."""
        assert default_table().candidates == table_candidates()

    def test_every_candidate_set_is_registry_derived(self):
        for fault, requires in CANDIDATE_REQUIRES.items():
            expected = tuple(
                info.name for info in list_algorithms(requires=requires)
            )
            assert candidates_for(fault) == expected

    def test_only_setup_free_when_setup_can_starve(self):
        """``risky`` is the only class that restricts beyond the oracle
        set — and it restricts exactly to setup-free algorithms."""
        assert CANDIDATE_REQUIRES["risky"] == {"oracle", "setup_free"}
        assert candidates_for("risky") == ("naive",)
        for fault in ("clean", "perturbed", "crash"):
            assert CANDIDATE_REQUIRES[fault] == {"oracle"}
            assert candidates_for(fault) == tuple(
                name for name, _ in table_candidates()
            )

    def test_capability_less_backends_are_not_selectable(self):
        registered = {info.name for info in list_algorithms()}
        assert "hierarchical" in registered
        for fault in CANDIDATE_REQUIRES:
            assert "hierarchical" not in candidates_for(fault)


class TestMergeRanking:
    def test_filters_to_allowed(self):
        assert _merge_ranking(("a", "b", "c"), ("b", "a")) == ("a", "b")

    def test_appends_unranked_candidates_last(self):
        """A backend the table has never seen is still selectable —
        after every ranked candidate."""
        assert _merge_ranking(("a", "b"), ("b", "a", "new")) == (
            "a", "b", "new",
        )

    def test_kwargs_fall_back_to_the_registry(self):
        table = default_table()
        assert _kwargs_for("common_neighbor", table) == (("k", 4),)
        # Not a table candidate -> the registry's bench pin applies.
        assert _kwargs_for("hierarchical", table) == ()


class TestCleanSelection:
    def test_picks_the_table_winner(self):
        selection = select(TOPOLOGY, MACHINE, 1024)
        table = default_table()
        entry = table.lookup(selection.features.key())
        assert entry is not None
        assert selection.algorithm == entry.ranking[0]
        assert selection.source == entry.source
        assert selection.table_version == table.version
        assert selection.rejected == ()

    def test_instance_matches_the_pick(self):
        selection = select(TOPOLOGY, MACHINE, 1024)
        assert selection.instance.name == selection.algorithm

    def test_runner_resolves_auto_identically(self):
        selection = select(TOPOLOGY, MACHINE, 1024)
        run = run_allgather("auto", TOPOLOGY, MACHINE, 1024)
        direct = run_allgather(
            selection.instance, TOPOLOGY, MACHINE, 1024
        )
        assert run.selected_algorithm == selection.algorithm
        assert run.simulated_time == direct.simulated_time

    def test_auto_with_kwargs_rejected_by_runner(self):
        from repro.exec.spec import MachineSpec, RunSpec, TopologySpec

        with pytest.raises(ValueError, match="auto"):
            RunSpec(
                "auto",
                TopologySpec("random", 16, density=0.3, seed=11),
                MachineSpec(nodes=2, sockets_per_node=2, ranks_per_socket=4),
                1024,
                algorithm_kwargs=(("k", 2),),
            )


class TestSurvivabilityWalk:
    def test_risky_plan_selects_the_setup_free_fallback(self):
        plan = FaultPlan(
            losses=(MessageLoss(probability=0.9, start=0.0, end=0.0),),
            retry=RetryPolicy(max_retries=8),
        )
        options = RunOptions(fault_plan=plan, fallback="naive")
        selection = select(TOPOLOGY, MACHINE, 1024, options)
        assert selection.features.fault == "risky"
        assert selection.algorithm == "naive"

    def test_crash_plan_still_selects_among_the_full_field(self):
        plan = FaultPlan(crashes=(RankCrash(rank=1, time=1e-6),))
        options = RunOptions(fault_plan=plan, fallback="naive",
                             on_failure="degrade")
        selection = select(TOPOLOGY, MACHINE, 1024, options)
        assert selection.features.fault == "crash"
        assert selection.algorithm in candidates_for("crash")

    def test_walk_rejects_non_survivable_setups(self):
        """Candidates whose *actual* setup traffic the plan would starve
        are rejected in ranking order; the first survivor wins."""
        n = TOPOLOGY.n

        @dataclass(frozen=True)
        class HolePlan(FaultPlan):
            # Survivable at the conservative bound (so the fault class
            # stays "perturbed" and the full field is walked) but not at
            # any real nonzero setup count: only setup-free survives.
            def setup_survivable(self, protocol_messages: int) -> bool:
                return (protocol_messages == 0
                        or protocol_messages >= setup_message_bound(n))

        plan = HolePlan(losses=(MessageLoss(probability=0.01),))
        options = RunOptions(fault_plan=plan, fallback="naive")
        selection = select(TOPOLOGY, MACHINE, 1024, options)
        assert selection.features.fault == "perturbed"
        assert selection.algorithm == "naive"
        # Everything ranked ahead of naive was walked and rejected.
        ranked_ahead = selection.ranking[
            : selection.ranking.index("naive")
        ]
        assert selection.rejected == ranked_ahead
        assert len(selection.rejected) >= 1

    def test_no_survivor_fails_loudly(self):
        n = TOPOLOGY.n

        @dataclass(frozen=True)
        class StarvePlan(FaultPlan):
            # Passes the conservative pre-classification bound but fails
            # every actual setup, even setup-free ones.
            def setup_survivable(self, protocol_messages: int) -> bool:
                return protocol_messages >= setup_message_bound(n)

        plan = StarvePlan(losses=(MessageLoss(probability=0.01),))
        options = RunOptions(fault_plan=plan, fallback="naive")
        with pytest.raises(RuntimeError, match="no candidate survives"):
            select(TOPOLOGY, MACHINE, 1024, options)


class TestAnalyticFallback:
    def test_uncovered_key_resolves_analytically(self):
        """A table with zero entries forces the Hockney-model fallback —
        selection stays total over the key space."""
        table = replace(default_table(), entries={})
        selection = select(TOPOLOGY, MACHINE, 1024, table=table)
        assert selection.source == "analytic-fallback"
        assert selection.algorithm in candidates_for("clean")
        assert set(selection.ranking) == set(candidates_for("clean"))
