"""Regret harness: scenario generation, evaluation, and the gates."""

import math

from repro.select import (
    check_gates,
    default_table,
    evaluate_scenario,
    generate_scenarios,
    regret_report,
)
from repro.select.table import active_table, use_table


class TestScenarioGeneration:
    def test_deterministic_per_seed(self):
        a = generate_scenarios(3, 5, "clean")
        b = generate_scenarios(3, 5, "clean")
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]

    def test_tracing_stripped(self):
        for scenario in generate_scenarios(3, 5, "faulty"):
            assert scenario.options.trace is False

    def test_profiles_respected(self):
        assert all(s.profile == "crash"
                   for s in generate_scenarios(1, 4, "crash"))


class TestEvaluateScenario:
    def test_clean_scenario_regret_at_least_one(self):
        scenario = generate_scenarios(11, 1, "clean")[0]
        result = evaluate_scenario(scenario)
        assert result.selected in {n for n, _ in default_table().candidates}
        assert result.best in result.candidate_times
        assert result.regret >= 1.0 - 1e-12
        assert not result.violation

    def test_auto_time_matches_the_selected_candidate(self):
        """Auto's run must be the selected candidate's run, bit-for-bit —
        the selector adds a decision, never a different simulation."""
        scenario = generate_scenarios(11, 3, "clean")[2]
        result = evaluate_scenario(scenario)
        assert result.auto_time == result.candidate_times[result.selected]

    def test_record_round_trips_to_json_shape(self):
        scenario = generate_scenarios(11, 1, "clean")[0]
        record = evaluate_scenario(scenario).to_dict()
        assert record["scenario"]["seed"] == 11
        assert set(record) >= {
            "label", "selected", "auto_time", "candidate_times", "best",
            "regret", "fallback_used", "error",
        }


class TestRegretReport:
    def test_report_shape_and_gates(self):
        scenarios = generate_scenarios(5, 4, "clean")
        report = regret_report(scenarios)
        assert report["experiment"] == "selection_regret"
        assert report["scenarios"] == 4
        assert report["table_version"] == default_table().version
        assert report["profiles"] == ["clean"]
        assert len(report["records"]) == 4
        assert len(report["worst"]) <= 3
        assert math.isfinite(report["geomean_regret"])

    def test_table_override_is_restored(self):
        before = active_table()
        scenarios = generate_scenarios(5, 1, "clean")
        regret_report(scenarios, table=default_table())
        assert active_table() is before or active_table() == before

    def test_gates_pass_and_fail(self):
        good = {"geomean_regret": 1.05, "non_survivable_picks": 0}
        assert check_gates(good) == []
        bad = {"geomean_regret": 1.5, "non_survivable_picks": 2}
        failures = check_gates(bad)
        assert len(failures) == 2
        assert any("geomean" in f for f in failures)
        assert any("non-survivable" in f for f in failures)

    def test_geomean_gate_is_tunable(self):
        report = {"geomean_regret": 1.5, "non_survivable_picks": 0}
        assert check_gates(report, max_geomean_regret=2.0) == []
        assert check_gates(report, max_geomean_regret=math.inf) == []

    def test_infinite_geomean_always_fails_a_finite_gate(self):
        report = {"geomean_regret": math.inf, "non_survivable_picks": 0}
        assert check_gates(report) != []


class TestRegretGatesSmoke:
    """A miniature of CI's selection-smoke job: the shipped table must
    clear the gates on a fresh scenario draw (seed disjoint from the
    pinned BENCH_selection.json artifact's)."""

    def test_clean_profile_clears_the_gates(self):
        report = regret_report(generate_scenarios(2026, 60, "clean"))
        assert check_gates(report) == [], report["worst"]

    def test_fault_profiles_never_pick_non_survivable(self):
        for profile in ("faulty", "crash"):
            report = regret_report(generate_scenarios(2026, 10, profile))
            assert report["non_survivable_picks"] == 0, report["violations"]
