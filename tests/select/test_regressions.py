"""Regret-harness-promoted selection regressions.

The three highest-regret scenarios from the pinned
``BENCH_selection.json`` campaign (seed 101, 120 clean scenarios),
promoted to replayable repro files in ``tests/select/data/`` — the same
promotion pattern as the fuzz-promoted Distance Halving regressions.
Each file carries the scenario (replayable via
:meth:`repro.verify.Scenario.from_dict`) plus the regret recorded when
it was pinned.

What the pins assert:

* the scenario still replays, selection still picks a survivable
  candidate, and auto's run is bit-identical to the picked candidate's
  direct run;
* regret has not *worsened* past the pinned value — a re-distilled table
  may improve these cells (lowering regret passes), but a regression on
  a known-bad workload fails loudly with the table versions named;
* the full differential battery (which now includes the
  ``auto_selection`` invariant) stays clean on these adversarial draws.
"""

import json
import math
from pathlib import Path

import pytest

from repro.select import default_table, evaluate_scenario
from repro.verify import Scenario, run_trial

DATA_DIR = Path(__file__).with_name("data")
REPRO_FILES = sorted(DATA_DIR.glob("regret_*.json"))

#: Headroom over the pinned regret: simulated times are bit-deterministic
#: per table, so any drift beyond float noise means the table changed for
#: the worse on this key.
TOLERANCE = 1e-9


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def _ids(paths):
    return [p.stem.removeprefix("regret_") for p in paths]


def test_repro_files_present():
    assert len(REPRO_FILES) == 3


@pytest.mark.parametrize("path", REPRO_FILES, ids=_ids(REPRO_FILES))
def test_pinned_scenario_replays(path):
    payload = _load(path)
    scenario = Scenario.from_dict(payload["scenario"])
    assert scenario.label() == payload["label"]


@pytest.mark.parametrize("path", REPRO_FILES, ids=_ids(REPRO_FILES))
def test_regret_has_not_worsened(path):
    payload = _load(path)
    scenario = Scenario.from_dict(payload["scenario"])
    result = evaluate_scenario(scenario)
    assert not result.violation, result.error
    assert math.isfinite(result.regret)
    pinned = payload["pinned"]
    assert result.regret <= pinned["regret"] + TOLERANCE, (
        f"regret on {payload['label']} worsened: {result.regret:.4f} vs "
        f"pinned {pinned['regret']:.4f} (pinned against table "
        f"{pinned['table_version']}, active {default_table().version})"
    )
    # Auto never invents a simulation: its time is the picked candidate's.
    assert result.auto_time == result.candidate_times[result.selected]


@pytest.mark.parametrize("path", REPRO_FILES, ids=_ids(REPRO_FILES))
def test_pinned_scenario_passes_full_battery(path):
    from dataclasses import replace

    scenario = Scenario.from_dict(_load(path)["scenario"])
    # The regret harness strips tracing for speed; the differential
    # battery's conservation oracles want it back.
    traced = scenario.with_(options=replace(scenario.options, trace=True))
    trial = run_trial(traced)
    assert trial.ok, "\n".join(str(v) for v in trial.violations)
