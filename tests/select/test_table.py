"""Decision-table artifact: content versioning, serde, and resolution."""

import json

import pytest

from repro.select.table import (
    DEFAULT_TABLE_PATH,
    TABLE_ENV_VAR,
    DecisionTable,
    TableEntry,
    active_table,
    active_table_version,
    default_table,
    use_table,
)

CANDIDATES = (
    ("naive", ()),
    ("common_neighbor", (("k", 4),)),
)


def tiny_table(**provenance) -> DecisionTable:
    return DecisionTable(
        candidates=CANDIDATES,
        entries={
            "xs/mid/regular/lat": TableEntry(
                ranking=("common_neighbor", "naive"), source="empirical",
                cells=3,
            ),
            "paper/full/hub/bw": TableEntry(
                ranking=("naive", "common_neighbor"), source="analytic",
            ),
        },
        provenance=provenance,
    )


class TestContentVersion:
    def test_version_is_deterministic(self):
        assert tiny_table().version == tiny_table().version

    def test_version_tracks_content(self):
        base = tiny_table()
        reranked = DecisionTable(
            candidates=CANDIDATES,
            entries={
                **base.entries,
                "xs/mid/regular/lat": TableEntry(
                    ranking=("naive", "common_neighbor"), source="empirical",
                    cells=3,
                ),
            },
        )
        assert base.version != reranked.version

    def test_provenance_is_versioned(self):
        assert tiny_table().version != tiny_table(seed=1).version


class TestValidation:
    def test_bad_key_rejected(self):
        with pytest.raises(ValueError, match="bucket vocabulary"):
            DecisionTable(
                candidates=CANDIDATES,
                entries={"huge/mid/regular/lat": TableEntry(
                    ranking=("naive",), source="analytic")},
            )
        with pytest.raises(ValueError, match="malformed"):
            DecisionTable(
                candidates=CANDIDATES,
                entries={"nope": TableEntry(ranking=("naive",),
                                            source="analytic")},
            )

    def test_unknown_candidate_rejected(self):
        with pytest.raises(ValueError, match="non-candidate"):
            DecisionTable(
                candidates=CANDIDATES,
                entries={"xs/mid/regular/lat": TableEntry(
                    ranking=("mystery",), source="analytic")},
            )

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="source"):
            TableEntry.from_dict({"ranking": ["naive"], "source": "vibes"})


class TestSerde:
    def test_round_trip(self, tmp_path):
        table = tiny_table(note="x")
        path = table.save(tmp_path / "table.json")
        loaded = DecisionTable.load(path)
        assert loaded == table
        assert loaded.version == table.version

    def test_hand_edited_artifact_rejected(self, tmp_path):
        """A table whose recorded version disagrees with its payload hash
        is corrupt — auditability demands a loud failure, not a silent
        re-hash."""
        path = tiny_table().save(tmp_path / "table.json")
        data = json.loads(path.read_text())
        data["entries"]["xs/mid/regular/lat"]["ranking"].reverse()
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="hand-edited"):
            DecisionTable.load(path)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "table.json"
        payload = tiny_table().to_dict()
        payload["format"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format"):
            DecisionTable.load(path)

    def test_diff_reports_changed_keys_only(self):
        base = tiny_table()
        changed = DecisionTable(
            candidates=CANDIDATES,
            entries={
                **base.entries,
                "xs/mid/regular/lat": TableEntry(
                    ranking=("naive", "common_neighbor"), source="analytic",
                ),
            },
        )
        diff = base.diff(changed)
        assert set(diff["changed"]) == {"xs/mid/regular/lat"}
        assert diff["versions"] == [base.version, changed.version]


class TestResolution:
    def test_default_table_is_complete_and_self_consistent(self):
        table = default_table()
        assert table.is_complete()
        recorded = json.loads(DEFAULT_TABLE_PATH.read_text())["version"]
        assert table.version == recorded

    def test_override_wins(self):
        table = tiny_table()
        use_table(table)
        try:
            assert active_table() is table
            assert active_table_version() == table.version
        finally:
            use_table(None)
        assert active_table() == default_table()

    def test_env_var_between_override_and_default(self, tmp_path,
                                                  monkeypatch):
        table = tiny_table(env=True)
        path = table.save(tmp_path / "env_table.json")
        monkeypatch.setenv(TABLE_ENV_VAR, str(path))
        assert active_table().version == table.version
        override = tiny_table(override=True)
        use_table(override)
        try:
            assert active_table() is override
        finally:
            use_table(None)
