"""Feature extraction: buckets, fault classes, and the table-key space."""

import pytest

from repro.collectives.runner import RunOptions
from repro.exec.spec import MachineSpec
from repro.select.features import (
    DENSITY_BUCKETS,
    DENSITY_REPRESENTATIVE,
    FAULT_CLASSES,
    MSG_BUCKETS,
    MSG_REPRESENTATIVE,
    SCALE_BUCKETS,
    SCALE_REPRESENTATIVE,
    SHAPE_BUCKETS,
    all_keys,
    degree_shape,
    density_bucket,
    extract_features,
    fault_class,
    msg_bucket,
    scale_bucket,
    setup_message_bound,
    split_key,
)
from repro.sim.faults import FaultPlan, MessageLoss, RankCrash, RetryPolicy
from repro.topology import erdos_renyi_topology, moore_topology

MACHINE = MachineSpec(nodes=2, sockets_per_node=2, ranks_per_socket=4)


class TestBuckets:
    def test_scale_edges(self):
        assert scale_bucket(1) == "xs"
        assert scale_bucket(8) == "xs"
        assert scale_bucket(9) == "s"
        assert scale_bucket(32) == "m"
        assert scale_bucket(128) == "l"
        assert scale_bucket(512) == "xl"
        assert scale_bucket(2160) == "paper"

    def test_density_edges(self):
        assert density_bucket(0.0) == "empty"
        assert density_bucket(0.01) == "sparse"
        assert density_bucket(0.1) == "low"
        assert density_bucket(0.3) == "mid"
        assert density_bucket(0.5) == "high"
        assert density_bucket(0.75) == "full"
        assert density_bucket(1.0) == "full"

    def test_msg_edges(self):
        assert msg_bucket(0) == "zero"
        assert msg_bucket(64) == "lat"
        assert msg_bucket(256) == "lat"
        assert msg_bucket(4096) == "mid"
        assert msg_bucket(65536) == "bw"

    def test_representatives_land_in_their_own_bucket(self):
        """Each bucket's representative value must re-bucket to itself —
        otherwise the analytic prior prices the wrong cell."""
        for bucket, n in SCALE_REPRESENTATIVE.items():
            assert scale_bucket(n) == bucket
        for bucket, d in DENSITY_REPRESENTATIVE.items():
            assert density_bucket(d) == bucket
        for bucket, m in MSG_REPRESENTATIVE.items():
            assert msg_bucket(m) == bucket


class TestFaultClass:
    def test_none_and_noop_are_clean(self):
        assert fault_class(None, 16) == "clean"
        assert fault_class(FaultPlan(), 16) == "clean"

    def test_light_perturbation(self):
        plan = FaultPlan(losses=(MessageLoss(probability=0.01),))
        assert fault_class(plan, 16) == "perturbed"

    def test_heavy_loss_is_risky(self):
        plan = FaultPlan(
            losses=(MessageLoss(probability=0.9, start=0.0, end=0.0),),
            retry=RetryPolicy(max_retries=8),
        )
        assert fault_class(plan, 16) == "risky"

    def test_crash(self):
        plan = FaultPlan(crashes=(RankCrash(rank=1),))
        assert fault_class(plan, 16) == "crash"

    def test_risky_dominates_crash(self):
        plan = FaultPlan(
            crashes=(RankCrash(rank=1),),
            losses=(MessageLoss(probability=0.9, start=0.0, end=0.0),),
            retry=RetryPolicy(max_retries=8),
        )
        assert fault_class(plan, 16) == "risky"

    def test_bound_grows_quadratically(self):
        assert setup_message_bound(1) == 4
        assert setup_message_bound(16) == 4 * 16 * 16


class TestDegreeShape:
    def test_uniform_is_regular(self):
        assert degree_shape([2, 2, 2], [2, 2, 2]) == "regular"
        assert degree_shape([], []) == "regular"

    def test_hub(self):
        assert degree_shape([1, 1, 1, 9], [3, 3, 3, 3]) == "hub"

    def test_mixed(self):
        assert degree_shape([1, 2, 3], [2, 2, 2]) == "mixed"


class TestKeySpace:
    def test_all_keys_is_the_full_product(self):
        keys = all_keys()
        expected = (len(SCALE_BUCKETS) * len(DENSITY_BUCKETS)
                    * len(SHAPE_BUCKETS) * len(MSG_BUCKETS))
        assert len(keys) == expected == 432
        assert len(set(keys)) == len(keys)

    def test_split_key_round_trips(self):
        for key in all_keys():
            assert "/".join(split_key(key)) == key

    def test_split_key_rejects_garbage(self):
        with pytest.raises(ValueError):
            split_key("xs/mid/regular")
        with pytest.raises(ValueError):
            split_key("huge/mid/regular/lat")

    def test_fault_is_not_a_key_dimension(self):
        """The fault class restricts candidates at selection time; two
        workloads differing only in fault plan share a table key."""
        topology = erdos_renyi_topology(16, 0.3, seed=1)
        clean = extract_features(topology, MACHINE, 1024, None)
        crashed = extract_features(
            topology, MACHINE, 1024,
            RunOptions(fault_plan=FaultPlan(crashes=(RankCrash(rank=1),))),
        )
        assert clean.key() == crashed.key()
        assert clean.fault == "clean" and crashed.fault == "crash"
        assert crashed.fault in FAULT_CLASSES


class TestExtractFeatures:
    def test_self_loops_excluded_from_density(self):
        with_loops = erdos_renyi_topology(8, 0.3, seed=2,
                                          allow_self_loops=True)
        feats = extract_features(with_loops, MACHINE, 64, None)
        loops = sum(1 for r in range(8) if with_loops.has_edge(r, r))
        edges = sum(len(with_loops.out_neighbors(r)) for r in range(8)) - loops
        assert feats.density == pytest.approx(edges / (8 * 7))

    def test_moore_is_regular(self):
        feats = extract_features(moore_topology(16, r=1, d=2), MACHINE,
                                 "4KB", None)
        assert feats.shape == "regular"
        assert feats.msg_class == "mid"

    def test_allgatherv_buckets_by_mean_block(self):
        topology = erdos_renyi_topology(4, 0.5, seed=0)
        feats = extract_features(topology, MACHINE, [0, 0, 0, 16384], None)
        assert feats.mean_bytes == pytest.approx(4096.0)
        assert feats.msg_class == "mid"

    def test_deterministic(self):
        topology = erdos_renyi_topology(16, 0.3, seed=9)
        a = extract_features(topology, MACHINE, 512, None)
        b = extract_features(topology, MACHINE, 512, None)
        assert a == b
