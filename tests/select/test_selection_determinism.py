"""Determinism audit for ``algorithm="auto"`` across every execution path.

Mirrors ``tests/sim/test_crash_determinism.py``: a grid of auto specs
must resolve to the same algorithm and produce bit-identical simulated
times whether it executes serially in-process, over a worker pool, or
through a cold-then-warm result cache.  Selection is part of the spec's
semantics — the decision-table version is pinned into the digest, so two
processes can only disagree by resolving different tables, which
``RunSpec.run()`` refuses to do silently.

The hypothesis property widens the net: for arbitrary workloads, two
specs with the same digest always resolve to the same pick, and repeated
in-process selections are stable.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import Machine
from repro.exec.cache import ResultCache
from repro.exec.orchestrator import execute
from repro.exec.spec import MachineSpec, RunSpec, TopologySpec
from repro.select import select
from repro.select.table import active_table_version
from repro.topology import erdos_renyi_topology

MACHINE = MachineSpec(nodes=2, sockets_per_node=2, ranks_per_socket=4)


def auto_grid():
    return [
        RunSpec("auto", TopologySpec("random", 16, density=d, seed=s),
                MACHINE, m)
        for d in (0.1, 0.5)
        for s in (1, 2)
        for m in (64, 16384)
    ]


def fingerprint(sweep):
    return [
        (
            outcome.run.selected_algorithm,
            outcome.run.algorithm,
            outcome.run.simulated_time,
            outcome.run.messages_sent,
        )
        for outcome in sweep.outcomes
    ]


class TestAutoDeterminism:
    def test_serial_parallel_cached_identical(self, tmp_path):
        specs = auto_grid()
        serial = execute(specs, workers=1)
        serial.raise_errors()
        golden = fingerprint(serial)
        # Every resolution actually happened (vacuity guard) and the grid
        # is not trivially single-algorithm.
        assert all(selected for selected, _, _, _ in golden)

        parallel = execute(specs, workers=2)
        parallel.raise_errors()
        assert fingerprint(parallel) == golden

        cache = ResultCache(cache_dir=tmp_path / "cache")
        cold = execute(specs, workers=1, cache=cache)
        cold.raise_errors()
        assert fingerprint(cold) == golden
        assert cold.stats["computed"] == len(specs)

        warm = execute(specs, workers=1, cache=cache)
        warm.raise_errors()
        assert fingerprint(warm) == golden
        assert warm.stats["from_cache"] == len(specs)

    def test_digest_pins_the_table_version(self):
        spec = auto_grid()[0]
        assert spec.selector_table == active_table_version()
        assert spec.canonical()["selector_table"] == spec.selector_table
        # Same inputs -> same digest, independently constructed.
        assert spec.digest() == auto_grid()[0].digest()


machines_st = st.builds(
    Machine.niagara_like,
    nodes=st.integers(1, 3),
    ranks_per_socket=st.integers(1, 4),
)


@st.composite
def workloads(draw):
    machine = draw(machines_st)
    n = machine.spec.n_ranks
    density = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**31 - 1))
    msg = draw(st.sampled_from((0, 64, 4096, 65536)))
    return machine, erdos_renyi_topology(n, density, seed=seed), msg


class TestSelectionProperty:
    @given(workloads())
    @settings(max_examples=25, deadline=None)
    def test_same_workload_same_resolution(self, workload):
        machine, topology, msg = workload
        first = select(topology, machine, msg)
        second = select(topology, machine, msg)
        assert first.algorithm == second.algorithm
        assert first.kwargs == second.kwargs
        assert first.ranking == second.ranking
        assert first.features == second.features
        assert first.table_version == second.table_version

    @given(workloads())
    @settings(max_examples=10, deadline=None)
    def test_equal_specs_share_digest_and_pick(self, workload):
        machine, topology, msg = workload
        spec_of = lambda: RunSpec(
            "auto",
            TopologySpec("random", topology.n,
                         density=0.3, seed=5),
            MachineSpec(nodes=machine.spec.nodes,
                        sockets_per_node=machine.spec.sockets_per_node,
                        ranks_per_socket=machine.spec.ranks_per_socket),
            msg,
        )
        a, b = spec_of(), spec_of()
        assert a.digest() == b.digest()
        assert a.run().selected_algorithm == b.run().selected_algorithm
