#!/usr/bin/env python
"""Moore-neighborhood stencil application (a Fig. 6-style workload).

Each rank owns a tile of a 2D field.  Every iteration it exchanges its
whole tile with all ranks within Chebyshev distance ``r`` on the process
grid (a Moore neighborhood — the halo pattern of wide-stencil codes), then
relaxes its tile toward the neighborhood mean.  The exchange runs through
``MPI_Neighbor_allgather`` on the simulator with the *actual numpy tiles*
as payloads, so the physics is computed from simulated communication —
identical final fields across all three algorithms prove correctness, and
per-iteration simulated latency shows the Distance Halving advantage on a
structured topology.

Run:  python examples/moore_stencil.py [n_ranks] [radius] [iterations]
"""

import sys

import numpy as np

from repro import Machine, get_algorithm, moore_topology, run_allgather
from repro.bench.reporting import format_table

TILE = 24  # tile side; tile payload = TILE*TILE float64 ~ 4.5KB


def simulate(algorithm_name: str, n_ranks: int, radius: int, iterations: int, machine):
    """Run the stencil; returns (final field stack, total simulated time)."""
    topology = moore_topology(n_ranks, r=radius, d=2)
    algorithm = get_algorithm(algorithm_name)  # reuse pattern across iterations
    rng = np.random.default_rng(7)
    tiles = [rng.random((TILE, TILE)) for _ in range(n_ranks)]
    msg_size = tiles[0].nbytes

    total_time = 0.0
    for _ in range(iterations):
        run = run_allgather(algorithm, topology, machine, msg_size, payloads=tiles)
        total_time += run.simulated_time
        new_tiles = []
        for rank in range(n_ranks):
            received = run.results[rank]
            neighborhood = np.mean([received[src] for src in sorted(received)], axis=0)
            new_tiles.append(0.5 * tiles[rank] + 0.5 * neighborhood)
        tiles = new_tiles
    return np.stack(tiles), total_time


def main() -> None:
    n_ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    radius = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    iterations = int(sys.argv[3]) if len(sys.argv) > 3 else 5

    machine = Machine.niagara_like(nodes=max(1, n_ranks // 16), ranks_per_socket=8)
    n_ranks = machine.spec.n_ranks
    print(
        f"{n_ranks} ranks, Moore radius {radius} "
        f"({(2 * radius + 1) ** 2 - 1} neighbors), {iterations} iterations, "
        f"tile {TILE}x{TILE} float64\n"
    )

    fields = {}
    rows = []
    baseline = None
    for name in ("naive", "common_neighbor", "distance_halving"):
        field, total = simulate(name, n_ranks, radius, iterations, machine)
        fields[name] = field
        if name == "naive":
            baseline = total
        rows.append(
            (name, f"{total * 1e3:.3f} ms", f"{total / iterations * 1e6:.1f} us",
             f"{baseline / total:.2f}x")
        )
    print(
        format_table(
            ["algorithm", "total comm", "per iteration", "speedup"],
            rows,
            title="Stencil communication time (simulated)",
        )
    )

    same = all(
        np.allclose(fields["naive"], fields[name])
        for name in ("common_neighbor", "distance_halving")
    )
    print(f"\nfinal fields identical across algorithms: {same}")
    if not same:
        raise SystemExit("correctness failure: algorithms diverged")


if __name__ == "__main__":
    main()
