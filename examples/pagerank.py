#!/usr/bin/env python
"""Distributed PageRank via neighborhood allgather (a graph-analytics app).

The paper motivates SpMM with "computational linear algebra, big data
analytics, and graph algorithms".  PageRank is the canonical example: every
power iteration computes ``x' = d * P^T x + (1-d)/n``, a sparse
matrix-vector product whose communication is exactly a neighborhood
allgather of ``x`` stripes over the topology induced by the link matrix.

Each iteration runs the actual numpy stripes through the simulator with the
selected collective; the final ranking is verified against a sequential
power iteration, and the per-iteration simulated communication time shows
the Distance Halving advantage on a power-law-ish web graph.

Run:  python examples/pagerank.py [n_pages] [n_ranks] [iterations]
"""

import sys

import numpy as np
import scipy.sparse as sp

from repro import Machine, get_algorithm, topology_from_sparse
from repro.bench.reporting import format_table
from repro.collectives.runner import run_allgather

DAMPING = 0.85


def web_graph(n_pages: int, seed: int = 3) -> sp.csr_matrix:
    """A small synthetic web: preferential-attachment-ish link matrix."""
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    for page in range(1, n_pages):
        out_links = 1 + rng.integers(0, 5)
        # preferential attachment: earlier pages attract more links
        targets = np.unique(rng.integers(0, page, size=out_links))
        rows.extend([page] * len(targets))
        cols.extend(targets.tolist())
        # and a back-link to keep the graph strongly-ish connected
        rows.append(int(targets[0]))
        cols.append(page)
    data = np.ones(len(rows))
    return sp.csr_matrix((data, (rows, cols)), shape=(n_pages, n_pages))


def transition_matrix(links: sp.csr_matrix) -> sp.csr_matrix:
    """Column-stochastic transposed transition matrix ``P^T``."""
    out_degree = np.asarray(links.sum(axis=1)).ravel()
    out_degree[out_degree == 0] = 1.0
    inv = sp.diags(1.0 / out_degree)
    return (links.T @ inv).tocsr()


def distributed_pagerank(pt, machine, algorithm_name, iterations, n_ranks):
    """Power iteration with simulated allgather communication per step."""
    n = pt.shape[0]
    topology, partition = topology_from_sparse(pt, n_ranks)
    algorithm = get_algorithm(algorithm_name)  # one pattern, many iterations
    block_sizes = [partition.size_of(r) * 8 for r in range(n_ranks)]

    x = np.full(n, 1.0 / n)
    total_comm = 0.0
    for _ in range(iterations):
        payloads = [x[slice(*partition.bounds(r))] for r in range(n_ranks)]
        run = run_allgather(
            algorithm, topology, machine, block_sizes, payloads=payloads
        )
        total_comm += run.simulated_time
        x_next = np.empty_like(x)
        for r in range(n_ranks):
            lo, hi = partition.bounds(r)
            x_local = np.zeros(n)
            x_local[lo:hi] = payloads[r]
            for src, block in run.results[r].items():
                s_lo, s_hi = partition.bounds(src)
                x_local[s_lo:s_hi] = block
            x_next[lo:hi] = DAMPING * (pt[lo:hi] @ x_local) + (1 - DAMPING) / n
        x = x_next
    return x, total_comm


def main() -> None:
    n_pages = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    n_ranks = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    iterations = int(sys.argv[3]) if len(sys.argv) > 3 else 10

    machine = Machine.niagara_like(nodes=max(1, n_ranks // 16), ranks_per_socket=8)
    n_ranks = machine.spec.n_ranks
    links = web_graph(n_pages)
    pt = transition_matrix(links)
    print(
        f"{n_pages} pages, {links.nnz} links, {n_ranks} ranks, "
        f"{iterations} power iterations\n"
    )

    # Sequential reference.
    x_ref = np.full(n_pages, 1.0 / n_pages)
    for _ in range(iterations):
        x_ref = DAMPING * (pt @ x_ref) + (1 - DAMPING) / n_pages

    rows = []
    baseline = None
    for name in ("naive", "common_neighbor", "distance_halving"):
        x, comm = distributed_pagerank(pt, machine, name, iterations, n_ranks)
        assert np.allclose(x, x_ref), f"{name}: PageRank diverged from reference"
        if name == "naive":
            baseline = comm
        rows.append(
            (name, f"{comm * 1e3:.3f} ms", f"{comm / iterations * 1e6:.1f} us",
             f"{baseline / comm:.2f}x")
        )
    print(
        format_table(
            ["algorithm", "total comm", "per iteration", "speedup"],
            rows,
            title="PageRank communication time (simulated; results verified)",
        )
    )
    top = np.argsort(x_ref)[::-1][:5]
    print("\ntop pages:", ", ".join(f"#{p} ({x_ref[p]:.4f})" for p in top))


if __name__ == "__main__":
    main()
