#!/usr/bin/env python
"""Quickstart: compare the three neighborhood-allgather algorithms.

Builds a Niagara-like machine, generates a random sparse virtual topology,
runs the naive (default Open MPI), Common Neighbor, and Distance Halving
algorithms through the discrete-event simulator, verifies that all three
deliver identical receive buffers, and prints latencies, speedups, and the
message/byte breakdown by link distance class.

Run:  python examples/quickstart.py [n_ranks] [density]
"""

import sys

from repro import (
    Machine,
    RunOptions,
    erdos_renyi_topology,
    run_allgather,
    verify_allgather,
)
from repro.bench.reporting import format_table
from repro.utils.sizes import format_size, parse_size


def main() -> None:
    n_ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    density = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3

    ranks_per_socket = 8
    nodes = max(1, n_ranks // (2 * ranks_per_socket))
    machine = Machine.niagara_like(nodes=nodes, ranks_per_socket=ranks_per_socket)
    n_ranks = machine.spec.n_ranks
    print(f"machine : {machine.describe()}")

    topology = erdos_renyi_topology(n_ranks, density, seed=42)
    print(f"topology: {topology!r}\n")

    sizes = ("32", "4KB", "256KB")
    algorithms = ("naive", "common_neighbor", "distance_halving")
    rows = []
    for size in sizes:
        baseline = None
        for name in algorithms:
            run = run_allgather(name, topology, machine, size,
                                options=RunOptions(trace=True))
            verify_allgather(topology, run)  # raises if any block is wrong
            if name == "naive":
                baseline = run.simulated_time
            off_socket = run.trace.off_socket_messages()
            rows.append(
                (
                    format_size(parse_size(size)),
                    name,
                    f"{run.simulated_time * 1e6:.1f} us",
                    f"{baseline / run.simulated_time:.2f}x",
                    run.messages_sent,
                    off_socket,
                )
            )
    print(
        format_table(
            ["msg", "algorithm", "latency", "speedup", "messages", "off-socket"],
            rows,
            title="Neighborhood allgather comparison (all results verified identical)",
        )
    )

    # The distance-halving pattern's construction statistics.
    run = run_allgather("distance_halving", topology, machine, "4KB")
    extras = run.setup_stats.extras
    print(
        f"\nDistance Halving pattern: {extras['levels']} halving levels, "
        f"agent success rate {extras['agent_success_rate']:.0%}, "
        f"{extras['data_messages_per_call']} data messages per call "
        f"(naive would send {topology.n_edges})."
    )


if __name__ == "__main__":
    main()
