#!/usr/bin/env python
"""SpMM kernel over neighborhood allgather (the paper's Section VII-C).

Distributes each Table II matrix block-row-wise, derives the virtual
topology from its sparsity structure, gathers the needed Y stripes with
each algorithm (actual numpy blocks travel through the simulator), checks
``Z == X @ Y`` numerically, and reports speedups over the naive default —
the content of the paper's Fig. 7.

Run:  python examples/spmm_kernel.py [matrix ...]   (default: all seven)
"""

import sys

from repro import Machine, run_spmm, synthetic_matrix
from repro.spmm.matrices import matrix_names
from repro.bench.reporting import format_table


def main() -> None:
    names = sys.argv[1:] or list(matrix_names())
    machine = Machine.niagara_like(nodes=8, ranks_per_socket=8)  # 128 ranks
    print(f"machine: {machine.describe()}\n")

    rows = []
    for name in names:
        matrix = synthetic_matrix(name, seed=1)
        naive = run_spmm(matrix, 8, machine, "naive", seed=1)
        cn = run_spmm(matrix, 8, machine, "common_neighbor", seed=1, k=4)
        dh = run_spmm(matrix, 8, machine, "distance_halving", seed=1)
        assert naive.verified and cn.verified and dh.verified
        rows.append(
            (
                name,
                f"{matrix.shape[0]}x{matrix.shape[1]}",
                matrix.nnz,
                naive.n_ranks,
                f"{naive.total_time * 1e6:.0f} us",
                f"{naive.total_time / cn.total_time:.2f}x",
                f"{naive.total_time / dh.total_time:.2f}x",
            )
        )
    print(
        format_table(
            ["matrix", "size", "nnz", "ranks", "naive time", "CN speedup", "DH speedup"],
            rows,
            title="SpMM: speedup over naive (Z = X @ Y verified numerically)",
        )
    )


if __name__ == "__main__":
    main()
