#!/usr/bin/env python
"""Explore the paper's analytic performance model (Section V / Fig. 2).

Reproduces the Section V-A message-count example (a 2000-core cluster with
δ=0.3 sends ~23-27 messages per rank under Distance Halving vs 600 naive)
and prints the Fig. 2 speedup grid with alpha/beta fitted from a simulated
ping-pong, including the per-density crossover message size — the point
where the model says the naive algorithm catches up.

Run:  python examples/model_explorer.py
"""

from repro import Machine
from repro.bench.reporting import format_table
from repro.cluster.calibration import calibrate
from repro.model import ModelParams, model_grid
from repro.model.equations import (
    dh_messages,
    expected_intra_messages,
    expected_off_socket_messages,
    naive_messages,
)
from repro.utils.sizes import format_size


def main() -> None:
    machine = Machine.niagara_like(nodes=8, ranks_per_socket=8)
    fit = calibrate(machine)
    print(
        f"ping-pong fit on {machine.describe()}:\n"
        f"  alpha = {fit.alpha * 1e6:.2f} us,  beta = {fit.beta / 1e9:.1f} GB/s\n"
    )

    # Section V-A worked example at the paper's scale.
    params = ModelParams(n=2000, sockets=2, ranks_per_socket=20,
                         alpha=fit.alpha, beta=fit.beta)
    delta = 0.3
    print(
        f"Section V-A example (n=2000, L=20, delta={delta}):\n"
        f"  off-socket messages per rank : {float(expected_off_socket_messages(params, delta)):.1f}\n"
        f"  intra-socket messages per rank: {float(expected_intra_messages(params, delta)):.1f}\n"
        f"  Distance Halving total        : {float(dh_messages(params, delta)):.1f}\n"
        f"  naive total                   : {float(naive_messages(params, delta)):.0f}\n"
    )

    grid = model_grid(params)
    rows = []
    for i, density in enumerate(grid.densities):
        cross = grid.crossover_size(density)
        rows.append(
            (
                density,
                f"{grid.speedup[i].max():.1f}x",
                f"{grid.speedup[i].min():.2f}x",
                format_size(cross) if cross else "never wins",
            )
        )
    print(
        format_table(
            ["density", "best speedup", "worst", "DH wins up to"],
            rows,
            title="Fig. 2 model grid — predicted DH vs naive (paper scale)",
        )
    )


if __name__ == "__main__":
    main()
