"""The neighborhood-allgather SpMM kernel.

``run_spmm`` distributes ``X`` (sparse, n x n) block-row-wise over the
machine's ranks, derives the neighborhood topology from its sparsity,
gathers the needed ``Y`` stripes with the selected allgather algorithm
(carrying the *actual* numpy blocks as payloads through the simulator), and
multiplies locally.  The result is numerically checked against ``X @ Y``,
so the collective's data movement is verified end-to-end, not just timed.

Time model: ``total = max over ranks of (allgather finish + local flops)``,
with local flops = ``2 * nnz(stripe) * Y.shape[1] / flop_rate``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.cluster.machine import Machine
from repro.collectives.base import NeighborhoodAllgatherAlgorithm, get_algorithm
from repro.collectives.runner import run_allgather
from repro.topology.from_matrix import BlockRowPartition, topology_from_sparse
from repro.utils.validation import check_positive

#: Default sustained local compute rate (flops/s) for the time model.
DEFAULT_FLOP_RATE = 5.0e9


@dataclass
class SpMMResult:
    """Outcome of one distributed SpMM run."""

    algorithm: str
    n_ranks: int
    msg_size: int           #: allgather block size in bytes
    comm_time: float        #: simulated allgather makespan
    compute_time: float     #: max local multiply time (model)
    total_time: float       #: max over ranks of (comm finish + local compute)
    Z: np.ndarray           #: the assembled product (for verification)
    messages: int
    verified: bool


def run_spmm(
    matrix: sp.spmatrix | sp.sparray,
    y_cols: int,
    machine: Machine,
    algorithm: str | NeighborhoodAllgatherAlgorithm = "distance_halving",
    *,
    flop_rate: float = DEFAULT_FLOP_RATE,
    seed: int = 0,
    verify: bool = True,
    **algorithm_kwargs,
) -> SpMMResult:
    """Distributed ``Z = X @ Y`` with a dense random ``Y`` of ``y_cols`` columns."""
    check_positive("y_cols", y_cols)
    check_positive("flop_rate", flop_rate)
    matrix = sp.csr_matrix(matrix)
    n = matrix.shape[0]
    n_ranks = min(machine.spec.n_ranks, n)

    topology, partition = topology_from_sparse(matrix, n_ranks)
    rng = np.random.default_rng(seed)
    Y = rng.random((n, y_cols))

    # Per-rank payload: its Y stripe; allgatherv semantics with exact
    # per-stripe byte counts (stripes differ by up to one row).
    block_sizes = [partition.size_of(r) * y_cols * Y.itemsize for r in range(n_ranks)]
    msg_size = max(block_sizes)
    payloads = [Y[slice(*partition.bounds(r))] for r in range(n_ranks)]

    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm, **algorithm_kwargs)
    elif algorithm_kwargs:
        raise ValueError("algorithm_kwargs only apply when algorithm is a name")
    run = run_allgather(algorithm, topology, machine, block_sizes, payloads=payloads)

    # Local multiply per rank, using own stripe + received neighbor stripes.
    Z = np.zeros((n, y_cols))
    total_time = 0.0
    max_compute = 0.0
    for r in range(n_ranks):
        lo, hi = partition.bounds(r)
        stripe = matrix[lo:hi]
        y_local = np.zeros_like(Y)
        y_local[lo:hi] = payloads[r]
        for src, block in run.results[r].items():
            s_lo, s_hi = partition.bounds(src)
            y_local[s_lo:s_hi] = block
        Z[lo:hi] = stripe @ y_local
        compute = 2.0 * stripe.nnz * y_cols / flop_rate
        max_compute = max(max_compute, compute)
        finish = run.finish_times.get(r, 0.0)
        total_time = max(total_time, finish + compute)

    verified = True
    if verify:
        expected = matrix @ Y
        verified = bool(np.allclose(Z, expected))
        if not verified:
            raise AssertionError(
                f"SpMM result mismatch (algorithm={run.algorithm}); the collective "
                "delivered wrong or missing Y stripes"
            )

    return SpMMResult(
        algorithm=run.algorithm,
        n_ranks=n_ranks,
        msg_size=msg_size,
        comm_time=run.simulated_time,
        compute_time=max_compute,
        total_time=total_time,
        Z=Z,
        messages=run.messages_sent,
        verified=verified,
    )
