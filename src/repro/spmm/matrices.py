"""Synthetic stand-ins for the paper's Table II SuiteSparse matrices.

Each generator is seeded and matched to the published size, nonzero count,
and structure class of its namesake:

=========  ============  =========  ==========================================
Matrix     Size          Non-zeros  Structure class we generate
=========  ============  =========  ==========================================
dwt_193    193 x 193     1843       narrow banded, symmetric (structural mesh)
Journals   128 x 128     6096       dense-ish random symmetric (co-citation)
Heart1     3600 x 3600   1387773    wide banded + random fill, symmetric
ash292     292 x 292     2208       narrow banded, symmetric (least squares)
bcsstk13   2003 x 2003   83883      banded, symmetric (stiffness matrix)
cegb2802   2802 x 2802   277362     banded, symmetric (finite elements)
comsol     1500 x 1500   97645      banded + random fill, symmetric
=========  ============  =========  ==========================================

Nonzero counts land within a few percent of the targets (generation is
stochastic); the induced SpMM communication topology — which is all the
collective sees — has the same block structure and density as the original.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import RandomState, resolve_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MatrixSpec:
    """Published shape of one Table II matrix plus our structure class."""

    name: str
    n: int
    nnz: int
    structure: str          #: "banded" or "random"
    band_fraction: float    #: bandwidth as a fraction of n (banded only)

    @property
    def density(self) -> float:
        return self.nnz / (self.n * self.n)


#: The paper's Table II, in its row order.
TABLE_II: tuple[MatrixSpec, ...] = (
    MatrixSpec("dwt_193", 193, 1843, "banded", 0.12),
    MatrixSpec("Journals", 128, 6096, "random", 0.0),
    MatrixSpec("Heart1", 3600, 1387773, "banded", 0.30),
    MatrixSpec("ash292", 292, 2208, "banded", 0.10),
    MatrixSpec("bcsstk13", 2003, 83883, "banded", 0.08),
    MatrixSpec("cegb2802", 2802, 277362, "banded", 0.10),
    MatrixSpec("comsol", 1500, 97645, "banded", 0.15),
)

_SPECS = {spec.name: spec for spec in TABLE_II}


def matrix_names() -> tuple[str, ...]:
    return tuple(spec.name for spec in TABLE_II)


def synthetic_matrix(name: str, seed: RandomState = 0) -> sp.csr_matrix:
    """Generate the synthetic stand-in for a Table II matrix by name."""
    try:
        spec = _SPECS[name]
    except KeyError:
        raise KeyError(f"unknown matrix {name!r}; known: {matrix_names()}") from None
    rng = resolve_rng(seed)
    if spec.structure == "random":
        mat = _random_symmetric(spec.n, spec.nnz, rng)
    else:
        mat = _banded_symmetric(spec.n, spec.nnz, max(2, int(spec.band_fraction * spec.n)), rng)
    return mat


def _random_symmetric(n: int, nnz_target: int, rng: np.random.Generator) -> sp.csr_matrix:
    """Uniformly random symmetric pattern with ~nnz_target nonzeros."""
    check_positive("n", n)
    check_positive("nnz_target", nnz_target)
    # Sample slightly more than half (symmetrization doubles off-diagonals).
    k = int(nnz_target * 0.55)
    rows = rng.integers(0, n, size=2 * k)
    cols = rng.integers(0, n, size=2 * k)
    return _assemble_symmetric(n, nnz_target, rows, cols, rng)


def _banded_symmetric(
    n: int, nnz_target: int, bandwidth: int, rng: np.random.Generator
) -> sp.csr_matrix:
    """Banded symmetric pattern: offsets within [-bandwidth, bandwidth]."""
    check_positive("bandwidth", bandwidth)
    k = int(nnz_target * 0.7)
    rows = rng.integers(0, n, size=2 * k)
    offsets = rng.integers(-bandwidth, bandwidth + 1, size=2 * k)
    cols = rows + offsets
    keep = (cols >= 0) & (cols < n)
    return _assemble_symmetric(n, nnz_target, rows[keep], cols[keep], rng)


def _assemble_symmetric(
    n: int, nnz_target: int, rows: np.ndarray, cols: np.ndarray, rng: np.random.Generator
) -> sp.csr_matrix:
    """Symmetrize, add the diagonal, and trim toward the nnz target."""
    # Unique (row, col) pairs plus transposes plus the full diagonal
    # (FEM/stiffness matrices have nonzero diagonals).
    diag = np.arange(n)
    r = np.concatenate([rows, cols, diag])
    c = np.concatenate([cols, rows, diag])
    keys = np.unique(r * n + c)
    if keys.size > nnz_target:
        # Drop random off-diagonal entries symmetrically to approach target.
        rr, cc = keys // n, keys % n
        off_upper = np.flatnonzero(rr < cc)
        excess = (keys.size - nnz_target) // 2
        if excess > 0 and off_upper.size:
            drop = rng.choice(off_upper, size=min(excess, off_upper.size), replace=False)
            dropped = set(keys[drop].tolist())
            dropped |= {int(cc[i] * n + rr[i]) for i in drop}
            keys = np.array([k for k in keys.tolist() if k not in dropped])
    rr, cc = keys // n, keys % n
    data = rng.random(keys.size) + 0.1
    mat = sp.csr_matrix((data, (rr, cc)), shape=(n, n))
    # Symmetrize values too (pattern already symmetric).
    return ((mat + mat.T) * 0.5).tocsr()
