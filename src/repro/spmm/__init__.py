"""Sparse matrix-matrix multiplication kernel (paper Section VII-C).

``Z = X @ Y`` with ``X`` sparse and block-striped row-wise; each rank
gathers the stripes of ``Y`` it needs through ``MPI_Neighbor_allgather``
over the topology induced by ``X``'s sparsity, then multiplies locally.

The paper uses seven SuiteSparse matrices (Table II); without network
access we generate seeded synthetic matrices matched to each one's size,
nonzero count and structure class — the communication pattern depends only
on these (see DESIGN.md's substitution table).
"""

from repro.spmm.matrices import TABLE_II, MatrixSpec, synthetic_matrix
from repro.spmm.kernel import SpMMResult, run_spmm

__all__ = [
    "TABLE_II",
    "MatrixSpec",
    "synthetic_matrix",
    "SpMMResult",
    "run_spmm",
]
