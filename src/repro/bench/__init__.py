"""Benchmark harness: regenerates every figure of the paper's evaluation.

Each ``figN_*`` driver in :mod:`repro.bench.figures` produces the rows the
corresponding paper figure plots (who is compared, over which sweep), at a
configurable scale (:mod:`repro.bench.config`; paper scale is available but
slow in pure Python).  ``benchmarks/`` wraps these drivers in
pytest-benchmark targets; EXPERIMENTS.md records paper-vs-measured.
"""

from repro.bench.config import BenchScale, bench_machine, get_scale
from repro.bench.sweep import SweepRecord, best_common_neighbor, sweep_latency
from repro.bench.reporting import format_table, save_results
from repro.bench.wallclock import wallclock_bench

__all__ = [
    "BenchScale",
    "bench_machine",
    "get_scale",
    "SweepRecord",
    "sweep_latency",
    "best_common_neighbor",
    "format_table",
    "save_results",
    "wallclock_bench",
]
