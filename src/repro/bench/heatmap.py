"""Terminal heatmaps: render speedup grids the way the paper's figures do.

No plotting dependencies are available offline, so figures render as
character-shaded grids.  :func:`render_speedup_grid` centers the palette at
1.0x (parity): ``-`` shades mark slowdowns, ``+``-family shades speedups,
with the numeric value printed in each cell.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Shades from strong slowdown to strong speedup (log scale around 1.0x).
_SHADES = " .:-=+*#%@"


def shade_for_speedup(value: float, max_abs_log: float = 3.5) -> str:
    """Map a speedup ratio to a shade character (log2-scaled, 1.0 centered)."""
    if value <= 0 or not np.isfinite(value):
        return "?"
    level = np.log2(value)  # 0 at parity
    normalized = (np.clip(level, -max_abs_log, max_abs_log) + max_abs_log) / (
        2 * max_abs_log
    )
    index = int(round(normalized * (len(_SHADES) - 1)))
    return _SHADES[index]


def render_heatmap(
    values: np.ndarray | Sequence[Sequence[float]],
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: str | None = None,
    cell_format: str = "{:6.2f}",
) -> str:
    """Shaded grid with numeric cells; rows x columns follow ``values``."""
    values = np.asarray(values, dtype=float)
    if values.shape != (len(row_labels), len(col_labels)):
        raise ValueError(
            f"values shape {values.shape} does not match labels "
            f"({len(row_labels)}, {len(col_labels)})"
        )
    row_width = max((len(r) for r in row_labels), default=0)
    cell_width = max(
        max((len(c) for c in col_labels), default=0),
        len(cell_format.format(1.0)) + 2,
    )
    lines = []
    if title:
        lines.append(title)
    header = " " * row_width + " " + "".join(c.rjust(cell_width) for c in col_labels)
    lines.append(header)
    for label, row in zip(row_labels, values):
        cells = []
        for value in row:
            shade = shade_for_speedup(float(value))
            cells.append(f"{shade}{cell_format.format(value)}{shade}".rjust(cell_width))
        lines.append(label.rjust(row_width) + " " + "".join(cells))
    lines.append(
        f"shades: '{_SHADES[0]}' << 1x  ...  '{shade_for_speedup(1.0)}' ~ 1x  ...  "
        f"'{_SHADES[-1]}' >> 1x"
    )
    return "\n".join(lines)


def render_speedup_grid(
    rows: Sequence[dict],
    row_key: str,
    col_key: str,
    value_key: str,
    title: str | None = None,
    col_label=str,
    row_label=str,
) -> str:
    """Pivot flat records (like the figure drivers emit) into a heatmap."""
    row_vals = sorted({r[row_key] for r in rows})
    col_vals = sorted({r[col_key] for r in rows})
    grid = np.full((len(row_vals), len(col_vals)), np.nan)
    for rec in rows:
        i = row_vals.index(rec[row_key])
        j = col_vals.index(rec[col_key])
        grid[i, j] = rec[value_key]
    if np.isnan(grid).any():
        raise ValueError("records do not cover the full row x column grid")
    return render_heatmap(
        grid,
        [row_label(v) for v in row_vals],
        [col_label(v) for v in col_vals],
        title=title,
    )
