"""Terminal heatmaps: render speedup grids the way the paper's figures do.

No plotting dependencies are available offline, so figures render as
character-shaded grids.  :func:`render_speedup_grid` centers the palette at
1.0x (parity): ``-`` shades mark slowdowns, ``+``-family shades speedups,
with the numeric value printed in each cell.

:func:`sweep_heatmap` is the orchestrated front door: it builds the
(density x size) grid as :class:`~repro.exec.spec.RunSpec` values, runs
them through :class:`~repro.bench.config.SweepConfig` (so ``--workers``
and the result cache apply), and renders the speedup grid directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.utils.sizes import format_size, parse_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.bench.config import SweepConfig

#: Shades from strong slowdown to strong speedup (log scale around 1.0x).
_SHADES = " .:-=+*#%@"


def shade_for_speedup(value: float, max_abs_log: float = 3.5) -> str:
    """Map a speedup ratio to a shade character (log2-scaled, 1.0 centered)."""
    if value <= 0 or not np.isfinite(value):
        return "?"
    level = np.log2(value)  # 0 at parity
    normalized = (np.clip(level, -max_abs_log, max_abs_log) + max_abs_log) / (
        2 * max_abs_log
    )
    index = int(round(normalized * (len(_SHADES) - 1)))
    return _SHADES[index]


def render_heatmap(
    values: np.ndarray | Sequence[Sequence[float]],
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: str | None = None,
    cell_format: str = "{:6.2f}",
) -> str:
    """Shaded grid with numeric cells; rows x columns follow ``values``."""
    values = np.asarray(values, dtype=float)
    if values.shape != (len(row_labels), len(col_labels)):
        raise ValueError(
            f"values shape {values.shape} does not match labels "
            f"({len(row_labels)}, {len(col_labels)})"
        )
    row_width = max((len(r) for r in row_labels), default=0)
    cell_width = max(
        max((len(c) for c in col_labels), default=0),
        len(cell_format.format(1.0)) + 2,
    )
    lines = []
    if title:
        lines.append(title)
    header = " " * row_width + " " + "".join(c.rjust(cell_width) for c in col_labels)
    lines.append(header)
    for label, row in zip(row_labels, values):
        cells = []
        for value in row:
            shade = shade_for_speedup(float(value))
            cells.append(f"{shade}{cell_format.format(value)}{shade}".rjust(cell_width))
        lines.append(label.rjust(row_width) + " " + "".join(cells))
    lines.append(
        f"shades: '{_SHADES[0]}' << 1x  ...  '{shade_for_speedup(1.0)}' ~ 1x  ...  "
        f"'{_SHADES[-1]}' >> 1x"
    )
    return "\n".join(lines)


def render_speedup_grid(
    rows: Sequence[dict],
    row_key: str,
    col_key: str,
    value_key: str,
    title: str | None = None,
    col_label=str,
    row_label=str,
) -> str:
    """Pivot flat records (like the figure drivers emit) into a heatmap."""
    row_vals = sorted({r[row_key] for r in rows})
    col_vals = sorted({r[col_key] for r in rows})
    grid = np.full((len(row_vals), len(col_vals)), np.nan)
    for rec in rows:
        i = row_vals.index(rec[row_key])
        j = col_vals.index(rec[col_key])
        grid[i, j] = rec[value_key]
    if np.isnan(grid).any():
        raise ValueError("records do not cover the full row x column grid")
    return render_heatmap(
        grid,
        [row_label(v) for v in row_vals],
        [col_label(v) for v in col_vals],
        title=title,
    )


def sweep_heatmap(
    config: "SweepConfig | None" = None,
    *,
    ranks: int = 64,
    ranks_per_socket: int = 8,
    densities: Sequence[float] = (0.1, 0.3, 0.5),
    sizes: Sequence[str] = ("1KB", "64KB"),
    baseline: str = "naive",
    contender: str = "distance_halving",
    seed: int = 23,
    title: str | None = None,
) -> str:
    """Run a (density x size) speedup grid via the orchestrator and render it.

    ``baseline`` and ``contender`` are registered algorithm names —
    unknown names fail here with a one-line error instead of deep inside a
    worker.
    """
    from repro.bench.config import SweepConfig
    from repro.collectives.base import algorithm_info
    from repro.exec.spec import MachineSpec, RunSpec, TopologySpec

    for role, name in (("baseline", baseline), ("contender", contender)):
        try:
            algorithm_info(name)
        except KeyError as exc:
            raise ValueError(f"{role}: {exc.args[0]}") from None
    cfg = config or SweepConfig()
    machine = MachineSpec.for_ranks(ranks, ranks_per_socket)
    keyed: list[tuple[tuple, "RunSpec"]] = []
    for density in densities:
        topology = TopologySpec("random", ranks, density=density, seed=seed)
        for size in sizes:
            for algorithm in (baseline, contender):
                keyed.append((
                    (density, parse_size(size), algorithm),
                    RunSpec(algorithm, topology, machine, size),
                ))
    sweep = cfg.run([spec for _, spec in keyed]).raise_errors()
    runs = dict(zip((key for key, _ in keyed), sweep.runs))
    rows = [
        {
            "density": density,
            "msg_bytes": parse_size(size),
            "speedup": (
                runs[(density, parse_size(size), baseline)].simulated_time
                / runs[(density, parse_size(size), contender)].simulated_time
            ),
        }
        for density in densities
        for size in sizes
    ]
    return render_speedup_grid(
        rows,
        row_key="density",
        col_key="msg_bytes",
        value_key="speedup",
        title=title or f"{contender} speedup over {baseline} (n={ranks})",
        col_label=format_size,
        row_label=lambda d: f"d={d}",
    )
