"""OSU-style wall-clock micro-harness for the simulator core.

Every figure reproduction funnels through ``Engine.run`` / ``Fabric.transmit``;
this module measures how fast that hot path executes in *wall-clock* terms so
simulator-core optimizations (and regressions) are visible across PRs.

The harness times :func:`~repro.collectives.runner.run_allgather` for all
three allgather algorithms over a size/topology grid drawn from the Fig. 5
configuration (same seed, same Erdos-Renyi topologies, same machine shape)
and reports median-of-k wall seconds plus simulated messages per wall second.

Correctness is asserted, not assumed:

* every repeat of a case must produce a bit-identical ``simulated_time``
  (the engine is deterministic by contract);
* a ``trace=True`` run must produce the same ``simulated_time`` and message
  count as ``trace=False`` (tracing must never perturb timing);
* when the archived Fig. 5 rows (``results_medium/fig5_speedup_scaling.json``)
  cover a case, the measured ``simulated_time`` must equal the archived value
  bit-for-bit — the optimized fast path must not change simulation results;
* when a recorded baseline (``benchmarks/baseline_sim_core.json``) is
  present, current ``simulated_time`` values must be bit-identical to the
  baseline's, and the report includes the wall-time speedup against it.

Output is written to ``BENCH_sim_core.json`` (override with ``out_path``).
Run via ``python -m repro bench --wallclock [--smoke]``.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.bench.config import BenchScale, bench_machine, get_scale
from repro.bench.reporting import format_table, geometric_mean
from repro.collectives.base import algorithm_info, get_algorithm, list_algorithms
from repro.collectives.runner import RunOptions, run_allgather
from repro.sim.plancache import plan_cache_stats
from repro.topology.random_graphs import erdos_renyi_topology
from repro.utils.sizes import format_size, parse_size

#: All bench-enrolled allgather algorithms, timed per case.
ALGORITHMS = tuple(info.name for info in list_algorithms(requires={"bench"}))
#: Topology seed — matches the Fig. 5 driver so archived rows are comparable.
FIG5_SEED = 23
#: Fixed Common Neighbor K (Fig. 5 sweeps K; the registry's bench pin
#: fixes it here for speed).
CN_K = dict(algorithm_info("common_neighbor").bench_kwargs)["k"]
#: Grid subset of the Fig. 5 configuration used for the full harness run.
FULL_DENSITIES = (0.1, 0.3)
FULL_SIZES = ("8", "8KB", "512KB")
#: Valid per-case timing modes (see :class:`WallclockCase.sim_mode`).
SIM_MODES = ("compare", "des", "auto")
#: Paper-scale communicator sizes (Fig. 5 x-axis), with the socket widths
#: that tile them into 2-socket nodes (2048 is the Moore-graph size).
PAPER_RANKS = ((2160, 18), (2048, 16), (1080, 18), (540, 18))

_REPO_ROOT = Path(__file__).resolve().parents[3]
#: Recorded pre-optimization wall/sim numbers (committed; same-host medians).
DEFAULT_BASELINE = _REPO_ROOT / "benchmarks" / "baseline_sim_core.json"
#: Archived Fig. 5 medium rows from the seed engine — the golden sim times.
DEFAULT_GOLDEN = _REPO_ROOT / "results_medium" / "fig5_speedup_scaling.json"


@dataclass(frozen=True)
class WallclockCase:
    """One (algorithm, communicator, density, size) cell of the grid.

    ``sim_mode`` selects what gets timed: ``"compare"`` times the DES and
    the hybrid fast path back to back (asserting bit-identical simulation
    results), ``"des"``/``"auto"`` time a single path.  Paper-scale cases
    use ``"auto"`` — a 2160-rank DES run is minutes of wall clock, which is
    exactly what the hybrid path exists to avoid.
    """

    algorithm: str
    ranks: int
    ranks_per_socket: int
    density: float
    msg_bytes: int
    sim_mode: str = "compare"

    def __post_init__(self) -> None:
        if self.sim_mode not in SIM_MODES:
            raise ValueError(
                f"sim_mode must be one of {SIM_MODES}, got {self.sim_mode!r}"
            )

    @property
    def key(self) -> tuple:
        return (self.algorithm, self.ranks, self.density, self.msg_bytes)

    def label(self) -> str:
        return (
            f"{self.algorithm} n={self.ranks} d={self.density} "
            f"m={format_size(self.msg_bytes)}"
        )


@dataclass
class CaseResult:
    """Timing + invariants for one case over ``repeats`` runs.

    ``wall_seconds`` holds the primary path's walls (the DES for
    ``"compare"``/``"des"`` cases, the hybrid path for ``"auto"`` cases);
    ``wall_seconds_auto`` holds the hybrid walls of a ``"compare"`` case.
    ``sim_path`` records which fast-path tier the hybrid run took
    (``"fastpath"`` exact replay or ``"analytic"`` closed form).
    """

    case: WallclockCase
    simulated_time: float
    messages_sent: int
    wall_seconds: list[float] = field(default_factory=list)
    wall_seconds_auto: list[float] | None = None
    sim_path: str | None = None
    profile: list[dict[str, Any]] | None = None

    @property
    def wall_median(self) -> float:
        return statistics.median(self.wall_seconds)

    @property
    def wall_median_auto(self) -> float | None:
        if not self.wall_seconds_auto:
            return None
        return statistics.median(self.wall_seconds_auto)

    @property
    def speedup_auto(self) -> float | None:
        """Hybrid-path speedup over the DES for ``"compare"`` cases."""
        auto = self.wall_median_auto
        if auto is None or auto <= 0:
            return None
        return self.wall_median / auto

    @property
    def sim_messages_per_sec(self) -> float:
        """Simulated messages moved per wall second — the throughput metric."""
        med = self.wall_median
        return self.messages_sent / med if med > 0 else float("inf")

    def to_record(self) -> dict[str, Any]:
        record = {
            "algorithm": self.case.algorithm,
            "ranks": self.case.ranks,
            "density": self.case.density,
            "msg_bytes": self.case.msg_bytes,
            "sim_mode": self.case.sim_mode,
            "simulated_time": self.simulated_time,
            "messages_sent": self.messages_sent,
            "wall_median": self.wall_median,
            "wall_seconds": self.wall_seconds,
            "sim_messages_per_sec": self.sim_messages_per_sec,
        }
        if self.sim_path is not None:
            record["sim_path"] = self.sim_path
        if self.wall_seconds_auto:
            record["wall_seconds_auto"] = self.wall_seconds_auto
            record["wall_median_auto"] = self.wall_median_auto
            record["speedup_auto"] = self.speedup_auto
        if self.profile is not None:
            record["profile"] = self.profile
        return record


def build_cases(scale: BenchScale, smoke: bool = False,
                sim_mode: str = "compare") -> list[WallclockCase]:
    """The harness grid: a Fig. 5-shaped subset at the given scale.

    ``smoke`` shrinks to a two-node machine and one (density, size) cell so
    the harness itself can run inside the tier-1 test suite in well under a
    second per algorithm.  ``sim_mode`` is stamped on every case (see
    :class:`WallclockCase`).
    """
    if smoke:
        ranks = 4 * scale.ranks_per_socket  # two nodes x two sockets
        grid = [(ranks, 0.3, "1KB")]
    else:
        grid = [
            (scale.ranks, d, s) for d in FULL_DENSITIES for s in FULL_SIZES
        ]
    return [
        WallclockCase(alg, ranks, scale.ranks_per_socket, density,
                      parse_size(size), sim_mode=sim_mode)
        for (ranks, density, size) in grid
        for alg in ALGORITHMS
    ]


def paper_scale_cases(repeats_density: float = 0.3,
                      size: str = "8KB") -> list[WallclockCase]:
    """Hybrid-path cases at the paper's Fig. 5 communicator sizes.

    These run ``sim_mode="auto"`` only: the point is that the hybrid path
    makes the 540-2160-rank sweep wall-clock tolerable, and a DES
    comparison at 2160 ranks would take minutes per cell.  Sim-time
    correctness at these scales is covered by the hybrid/DES equivalence
    property suite at smaller sizes plus the golden medium-grid check.
    """
    return [
        WallclockCase(alg, ranks, rps, repeats_density, parse_size(size),
                      sim_mode="auto")
        for (ranks, rps) in PAPER_RANKS
        for alg in ALGORITHMS
    ]


#: Rows kept per case when profiling (`--profile`): the top N by cumulative
#: time, which is where an interpreter-vs-executor cost claim lives.
PROFILE_TOP_N = 15


def _profile_rows(pr: cProfile.Profile, top_n: int = PROFILE_TOP_N) -> list[dict]:
    """The top-N functions of a finished profile, as JSON-friendly rows.

    Rows are sorted by cumulative time; file paths are trimmed to their
    ``repro``-relative tail so payloads are host-independent and diffable.
    """
    stats = pstats.Stats(pr)
    rows = []
    for (filename, line, name), (_cc, ncalls, tottime, cumtime, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        parts = filename.replace("\\", "/").split("/")
        if "repro" in parts:
            filename = "/".join(parts[parts.index("repro"):])
        elif len(parts) > 2:
            filename = "/".join(parts[-2:])
        rows.append({
            "function": f"{filename}:{line}({name})" if line else f"{filename}({name})",
            "ncalls": ncalls,
            "tottime": tottime,
            "cumtime": cumtime,
        })
    rows.sort(key=lambda r: r["cumtime"], reverse=True)
    return rows[:top_n]


def _run_case(case: WallclockCase, repeats: int, check_trace: bool,
              profile: bool = False) -> CaseResult:
    machine = bench_machine(case.ranks, case.ranks_per_socket)
    topology = erdos_renyi_topology(case.ranks, case.density, seed=FIG5_SEED)
    kwargs = dict(algorithm_info(case.algorithm).bench_kwargs)
    algorithm = get_algorithm(case.algorithm, **kwargs)
    algorithm.setup(topology, machine)  # pay pattern creation once, outside timing

    primary = "auto" if case.sim_mode == "auto" else "des"
    options = RunOptions(sim_mode=primary)
    result: CaseResult | None = None
    for _ in range(repeats):
        run = run_allgather(algorithm, topology, machine, case.msg_bytes,
                            options=options)
        if result is None:
            result = CaseResult(case, run.simulated_time, run.messages_sent)
            if primary == "auto":
                result.sim_path = run.sim_path
        elif run.simulated_time != result.simulated_time:
            raise RuntimeError(
                f"non-deterministic simulated_time for {case.label()}: "
                f"{run.simulated_time!r} != {result.simulated_time!r}"
            )
        result.wall_seconds.append(run.wall_time)

    if case.sim_mode == "compare":
        # Time the hybrid path against the DES walls just measured, and
        # assert the two paths agree bit-for-bit — the harness is also the
        # accuracy gate for sim_mode="auto" on the real bench grid.
        auto_options = RunOptions(sim_mode="auto")
        result.wall_seconds_auto = []
        for _ in range(repeats):
            run = run_allgather(algorithm, topology, machine, case.msg_bytes,
                                options=auto_options)
            if result.sim_path is None:
                result.sim_path = run.sim_path
            if (
                run.simulated_time != result.simulated_time
                or run.messages_sent != result.messages_sent
            ):
                raise RuntimeError(
                    f"hybrid path diverged from the DES for {case.label()}: "
                    f"auto ({run.simulated_time!r}, {run.messages_sent}) vs "
                    f"des ({result.simulated_time!r}, {result.messages_sent})"
                )
            result.wall_seconds_auto.append(run.wall_time)

    if profile:
        # One extra run under cProfile, never one of the timed repeats.
        # Profile the hybrid path when the case exercises it (that is where
        # an interpreter-vs-executor cost claim lives), the DES otherwise.
        prof_options = (RunOptions(sim_mode="auto")
                        if case.sim_mode in ("compare", "auto") else options)
        pr = cProfile.Profile()
        pr.enable()
        run_allgather(algorithm, topology, machine, case.msg_bytes,
                      options=prof_options)
        pr.disable()
        result.profile = _profile_rows(pr)

    if check_trace:
        traced = run_allgather(
            algorithm, topology, machine, case.msg_bytes,
            options=RunOptions(trace=True),
        )
        if (
            traced.simulated_time != result.simulated_time
            or traced.messages_sent != result.messages_sent
        ):
            raise RuntimeError(
                f"tracing perturbed the simulation for {case.label()}: "
                f"traced ({traced.simulated_time!r}, {traced.messages_sent}) vs "
                f"plain ({result.simulated_time!r}, {result.messages_sent})"
            )
    return result


def _load_reference(path: Path, what: str) -> dict[str, Any]:
    """Read a reference JSON payload; corrupt files are operator errors.

    A *missing* reference is fine (the check is skipped by the caller), but
    an unreadable or syntactically invalid file must fail with one clear
    message instead of a JSON traceback — the CLI turns this into a
    non-zero exit.
    """
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"corrupt or unreadable {what} file {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(
            f"corrupt {what} file {path}: expected a JSON object, "
            f"got {type(payload).__name__}"
        )
    return payload


def _check_golden(results: list[CaseResult], golden_path: Path) -> dict[str, Any] | None:
    """Assert bit-identical sim times against the archived Fig. 5 rows."""
    if not golden_path.is_file():
        return None
    payload = _load_reference(golden_path, "golden Fig. 5")
    by_cell: dict[tuple, dict] = {
        (row["ranks"], row["density"], row["msg_size"]): row
        for row in payload.get("rows", [])
    }
    column = {"naive": "naive_time", "distance_halving": "dh_time"}
    checked = 0
    mismatches = []
    for res in results:
        case = res.case
        col = column.get(case.algorithm)
        row = by_cell.get((case.ranks, case.density, case.msg_bytes))
        if col is None or row is None:
            continue  # CN uses a pinned K here; best-K archived rows differ
        checked += 1
        if res.simulated_time != row[col]:
            mismatches.append(
                f"{case.label()}: got {res.simulated_time!r}, "
                f"archived {row[col]!r}"
            )
    if mismatches:
        raise RuntimeError(
            "simulated_time diverged from the archived Fig. 5 results "
            f"({golden_path}):\n  " + "\n  ".join(mismatches)
        )
    return {"path": str(golden_path), "checked_rows": checked, "identical": True}


def _check_baseline(
    results: list[CaseResult], baseline_path: Path
) -> dict[str, Any] | None:
    """Assert sim-time equivalence with the recorded baseline; report speedup."""
    if not baseline_path.is_file():
        return None
    payload = _load_reference(baseline_path, "baseline")
    by_key = {
        (r["algorithm"], r["ranks"], r["density"], r["msg_bytes"]): r
        for r in payload.get("cases", [])
    }
    mismatches, speedups = [], []
    base_total = cur_total = 0.0
    checked = 0
    for res in results:
        base = by_key.get(res.case.key)
        if base is None:
            continue
        checked += 1
        if res.simulated_time != base["simulated_time"]:
            mismatches.append(
                f"{res.case.label()}: got {res.simulated_time!r}, "
                f"baseline {base['simulated_time']!r}"
            )
        base_total += base["wall_median"]
        cur_total += res.wall_median
        if res.wall_median > 0:
            speedups.append(base["wall_median"] / res.wall_median)
    if mismatches:
        raise RuntimeError(
            f"simulated_time diverged from the baseline ({baseline_path}):\n  "
            + "\n  ".join(mismatches)
        )
    if checked == 0:
        return None
    return {
        "path": str(baseline_path),
        "checked_cases": checked,
        "sim_time_identical": True,
        "baseline_total_wall": base_total,
        "current_total_wall": cur_total,
        "speedup_total": base_total / cur_total if cur_total > 0 else float("inf"),
        "speedup_geomean": geometric_mean(speedups) if speedups else float("nan"),
    }


def wallclock_bench(
    scale: BenchScale | None = None,
    repeats: int = 3,
    smoke: bool = False,
    out_path: str | Path | None = "BENCH_sim_core.json",
    baseline_path: str | Path | None = None,
    golden_path: str | Path | None = None,
    record_baseline: bool = False,
    verbose: bool = False,
    sim_mode: str = "compare",
    paper_scales: bool = False,
    profile: bool = False,
) -> dict[str, Any]:
    """Run the wall-clock harness; returns (and writes) the report payload.

    ``record_baseline=True`` writes the measurements to ``baseline_path``
    (default ``benchmarks/baseline_sim_core.json``) instead of comparing
    against it — run this once *before* an optimization lands, on the same
    host that will evaluate it.

    ``sim_mode`` selects the per-case timing mode for the grid cases
    (``"compare"`` times DES and hybrid back to back; ``"des"``/``"auto"``
    time one path).  ``paper_scales=True`` appends hybrid-only cases at the
    paper's 540/1080/2048/2160-rank communicator sizes.

    ``profile=True`` adds one cProfile'd (untimed) hybrid run per case and
    attaches the top-:data:`PROFILE_TOP_N`-by-cumulative-time table to each
    case record (``"profile"``) — the reproducible form of any claim about
    where simulator-core wall time goes.

    The payload always carries a ``"plan_cache"`` block: the process-wide
    compiled-plan cache counters (see :mod:`repro.sim.plancache`) after the
    run, which is how cross-run plan reuse on the grid is made visible.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if sim_mode not in SIM_MODES:
        raise ValueError(f"sim_mode must be one of {SIM_MODES}, got {sim_mode!r}")
    scale = scale or get_scale()
    baseline_path = Path(baseline_path) if baseline_path else DEFAULT_BASELINE
    golden_path = Path(golden_path) if golden_path else DEFAULT_GOLDEN

    cases = build_cases(scale, smoke=smoke, sim_mode=sim_mode)
    if paper_scales:
        cases.extend(paper_scale_cases())
    results: list[CaseResult] = []
    for i, case in enumerate(cases):
        # Trace invariance is cheap at smoke size (check every case); at full
        # size one case suffices — the property suite covers the rest.
        check_trace = smoke or i == 0
        results.append(_run_case(case, repeats, check_trace, profile=profile))
        if verbose:
            res = results[-1]
            auto = (f"  auto={res.wall_median_auto * 1e3:8.2f} ms "
                    f"({res.speedup_auto:.2f}x)"
                    if res.wall_median_auto is not None else "")
            print(
                f"  {case.label():<48} wall={res.wall_median * 1e3:8.2f} ms  "
                f"{res.sim_messages_per_sec / 1e3:8.1f} kmsg/s{auto}"
            )

    payload: dict[str, Any] = {
        "experiment": "sim_core_wallclock",
        "scale": scale.name,
        "smoke": smoke,
        "repeats": repeats,
        "seed": FIG5_SEED,
        "cn_k": CN_K,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "sim_mode": sim_mode,
        "total_wall_median": sum(r.wall_median for r in results),
        "total_messages": sum(r.messages_sent for r in results),
        "cases": [r.to_record() for r in results],
        # Process-wide compiled-plan cache counters after the grid: repeats
        # and schedule-shape-sharing cells all land here as hits.
        "plan_cache": plan_cache_stats(),
    }
    compared = [r for r in results if r.wall_median_auto is not None]
    if compared:
        des_total = sum(r.wall_median for r in compared)
        auto_total = sum(r.wall_median_auto for r in compared)
        payload["hybrid"] = {
            "compared_cases": len(compared),
            "des_total_wall": des_total,
            "auto_total_wall": auto_total,
            "speedup_auto_total": (des_total / auto_total
                                   if auto_total > 0 else float("inf")),
            "speedup_auto_geomean": geometric_mean(
                [r.speedup_auto for r in compared if r.speedup_auto]
            ),
            "sim_time_identical": True,  # asserted per repeat in _run_case
        }

    if record_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(payload, indent=2))
        if verbose:
            print(f"baseline recorded -> {baseline_path}")
        return payload

    golden = _check_golden(results, golden_path) if not smoke else None
    if golden:
        payload["golden_fig5"] = golden
    baseline = _check_baseline(results, baseline_path)
    if baseline:
        payload["baseline"] = baseline

    if out_path is not None:
        Path(out_path).write_text(json.dumps(payload, indent=2))

    if verbose:
        rows = [
            (r.case.algorithm, r.case.ranks, r.case.density,
             format_size(r.case.msg_bytes), r.wall_median * 1e3,
             r.sim_messages_per_sec / 1e3)
            for r in results
        ]
        print()
        print(format_table(
            ["algorithm", "ranks", "density", "msg", "wall (ms)", "kmsg/s"],
            rows,
            title=f"sim-core wallclock ({scale.name}{', smoke' if smoke else ''})",
        ))
        if golden:
            print(f"golden Fig.5 check : {golden['checked_rows']} rows bit-identical")
        hybrid = payload.get("hybrid")
        if hybrid:
            print(
                f"hybrid speedup     : {hybrid['speedup_auto_total']:.2f}x total "
                f"({hybrid['speedup_auto_geomean']:.2f}x geomean) over "
                f"{hybrid['compared_cases']} compared cases, sim times bit-identical"
            )
        if baseline:
            print(
                f"baseline speedup   : {baseline['speedup_total']:.2f}x total "
                f"({baseline['speedup_geomean']:.2f}x geomean) over "
                f"{baseline['checked_cases']} cases, sim times bit-identical"
            )
        pc = payload["plan_cache"]
        print(
            f"plan cache         : {pc['hits']} hits / {pc['misses']} misses "
            f"(hit rate {pc['hit_rate']:.2f}), {pc['size']} entries, "
            f"{pc['evictions']} evictions"
        )
        if profile:
            for r in results:
                if not r.profile:
                    continue
                print()
                print(format_table(
                    ["ncalls", "tottime (s)", "cumtime (s)", "function"],
                    [(row["ncalls"], f"{row['tottime']:.4f}",
                      f"{row['cumtime']:.4f}", row["function"])
                     for row in r.profile],
                    title=f"profile: {r.case.label()}",
                ))
    return payload
