"""Plain-text tables and JSON result archival for the benchmark drivers."""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Any, Iterable, Sequence

#: Where benchmark drivers archive their rows (JSON per experiment).
RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    floatfmt: str = "{:.3g}",
) -> str:
    """Fixed-width ASCII table (the paper-figure analogue in a terminal)."""
    str_rows = []
    for row in rows:
        str_rows.append(
            [floatfmt.format(x) if isinstance(x, float) else str(x) for x in row]
        )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def save_results(experiment: str, payload: dict) -> Path:
    """Archive an experiment's rows (plus metadata) as JSON under results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = dict(payload)
    payload.setdefault("experiment", experiment)
    payload.setdefault("timestamp", time.strftime("%Y-%m-%dT%H:%M:%S"))
    path = RESULTS_DIR / f"{experiment}.json"
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def geometric_mean(values: Iterable[float]) -> float:
    """Geomean, the right average for speedup ratios."""
    vals = list(values)
    if not vals:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric_mean requires positive values")
    return float(math.exp(sum(math.log(v) for v in vals) / len(vals)))
