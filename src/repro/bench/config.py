"""Benchmark scales and machine construction.

The paper's experiments use 540-2160 ranks on the Niagara cluster.  A pure
Python discrete-event simulation at 2160 ranks and density 0.7 moves ~3M
messages per allgather, which is minutes per configuration — so benchmark
runs default to a scaled-down machine with the same structure (2 sockets
per node, Dragonfly+ groups) and the algorithmic comparison is scale-stable
(checked against the analytic model at full paper scale in Fig. 2).

Select a scale with the ``REPRO_BENCH_SCALE`` environment variable:
``small`` (default, 128 ranks), ``medium`` (256), ``large`` (512), or
``paper`` (2160 — expect long runtimes).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.cluster.machine import Machine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.cache import ResultCache
    from repro.exec.orchestrator import SweepResult
    from repro.exec.spec import RunSpec


@dataclass(frozen=True)
class BenchScale:
    """One benchmark scale: the base rank count and grid resolutions."""

    name: str
    ranks: int                 #: base communicator size (largest of Fig. 5's three)
    ranks_per_socket: int
    densities: tuple[float, ...]
    sizes: tuple[str, ...]
    moore_ranks: int
    repeats: int = 1


_SCALES = {
    "small": BenchScale(
        name="small",
        ranks=128,
        ranks_per_socket=8,
        densities=(0.05, 0.1, 0.2, 0.3, 0.5, 0.7),
        sizes=("8", "512", "4KB", "64KB", "512KB", "4MB"),
        moore_ranks=128,
    ),
    "medium": BenchScale(
        name="medium",
        ranks=256,
        ranks_per_socket=8,
        densities=(0.05, 0.1, 0.2, 0.3, 0.5, 0.7),
        sizes=("8", "128", "1KB", "8KB", "64KB", "512KB", "4MB"),
        moore_ranks=256,
    ),
    "large": BenchScale(
        name="large",
        ranks=512,
        ranks_per_socket=16,
        densities=(0.05, 0.1, 0.2, 0.3, 0.5, 0.7),
        sizes=("8", "128", "1KB", "8KB", "64KB", "512KB", "4MB"),
        moore_ranks=512,
    ),
    "paper": BenchScale(
        name="paper",
        ranks=2160,
        ranks_per_socket=18,
        densities=(0.05, 0.1, 0.2, 0.3, 0.5, 0.7),
        sizes=("8", "32", "512", "4KB", "64KB", "512KB", "4MB"),
        moore_ranks=2048,
    ),
}

ENV_VAR = "REPRO_BENCH_SCALE"


def get_scale(name: str | None = None) -> BenchScale:
    """Resolve a scale by name, falling back to ``$REPRO_BENCH_SCALE`` / small."""
    if name is None:
        name = os.environ.get(ENV_VAR, "small")
    try:
        return _SCALES[name]
    except KeyError:
        raise KeyError(f"unknown bench scale {name!r}; available: {sorted(_SCALES)}") from None


def bench_machine(n_ranks: int, ranks_per_socket: int = 8) -> Machine:
    """Niagara-like machine with exactly ``n_ranks`` (2 sockets per node)."""
    per_node = 2 * ranks_per_socket
    if n_ranks % per_node:
        raise ValueError(
            f"n_ranks={n_ranks} does not fill {per_node}-rank nodes; "
            "pick a multiple"
        )
    return Machine.niagara_like(nodes=n_ranks // per_node, ranks_per_socket=ranks_per_socket)


@dataclass
class SweepConfig:
    """Shared execution knobs for every bench driver.

    This replaces the per-module grab bag of ``scale=`` / ``seed=`` /
    ``out_path=`` keywords: one config object carries the scale, the
    topology seed override, the output path, and — through
    :mod:`repro.exec` — the process-pool width and the result cache.  Every
    driver accepts ``config=`` and routes its simulations through
    :meth:`run`, so ``repro bench --workers 4 --cache-dir ...`` means the
    same thing for every figure.

    The library default is cacheless and serial (``use_cache=False``,
    ``workers=1``) so programmatic calls and the test suite stay
    side-effect-free; the CLI turns the cache on by default.
    """

    scale: BenchScale | None = None
    seed: int | None = None
    out: str | Path | None = None
    workers: int = 1
    cache_dir: str | Path | None = None
    use_cache: bool = False
    smoke: bool = False
    repeats: int = 3
    sim_mode: str = "des"
    _cache: "ResultCache | None" = field(default=None, repr=False, compare=False)

    def resolve_scale(self, override: BenchScale | None = None) -> BenchScale:
        """Explicit driver argument > config > ``$REPRO_BENCH_SCALE``."""
        return override or self.scale or get_scale()

    def resolve_seed(self, default: int) -> int:
        return self.seed if self.seed is not None else default

    def run_options(self):
        """The :class:`~repro.collectives.runner.RunOptions` for this
        config's ``sim_mode`` (shared default object when ``"des"``, so
        spec digests — and therefore cached results — are unchanged)."""
        from repro.collectives.runner import DEFAULT_OPTIONS, RunOptions

        if self.sim_mode == "des":
            return DEFAULT_OPTIONS
        return RunOptions(sim_mode=self.sim_mode)

    def cache(self) -> "ResultCache | None":
        """The shared :class:`ResultCache` (one instance, aggregated stats)."""
        if not self.use_cache:
            return None
        if self._cache is None:
            from repro.exec.cache import ResultCache

            self._cache = ResultCache(self.cache_dir)
        return self._cache

    def run(self, specs: "list[RunSpec]") -> "SweepResult":
        """Execute a spec sweep under this config's workers/cache."""
        from repro.exec.orchestrator import execute

        return execute(specs, workers=self.workers, cache=self.cache())
