"""Benchmark scales and machine construction.

The paper's experiments use 540-2160 ranks on the Niagara cluster.  A pure
Python discrete-event simulation at 2160 ranks and density 0.7 moves ~3M
messages per allgather, which is minutes per configuration — so benchmark
runs default to a scaled-down machine with the same structure (2 sockets
per node, Dragonfly+ groups) and the algorithmic comparison is scale-stable
(checked against the analytic model at full paper scale in Fig. 2).

Select a scale with the ``REPRO_BENCH_SCALE`` environment variable:
``small`` (default, 128 ranks), ``medium`` (256), ``large`` (512), or
``paper`` (2160 — expect long runtimes).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.cluster.machine import Machine


@dataclass(frozen=True)
class BenchScale:
    """One benchmark scale: the base rank count and grid resolutions."""

    name: str
    ranks: int                 #: base communicator size (largest of Fig. 5's three)
    ranks_per_socket: int
    densities: tuple[float, ...]
    sizes: tuple[str, ...]
    moore_ranks: int
    repeats: int = 1


_SCALES = {
    "small": BenchScale(
        name="small",
        ranks=128,
        ranks_per_socket=8,
        densities=(0.05, 0.1, 0.2, 0.3, 0.5, 0.7),
        sizes=("8", "512", "4KB", "64KB", "512KB", "4MB"),
        moore_ranks=128,
    ),
    "medium": BenchScale(
        name="medium",
        ranks=256,
        ranks_per_socket=8,
        densities=(0.05, 0.1, 0.2, 0.3, 0.5, 0.7),
        sizes=("8", "128", "1KB", "8KB", "64KB", "512KB", "4MB"),
        moore_ranks=256,
    ),
    "large": BenchScale(
        name="large",
        ranks=512,
        ranks_per_socket=16,
        densities=(0.05, 0.1, 0.2, 0.3, 0.5, 0.7),
        sizes=("8", "128", "1KB", "8KB", "64KB", "512KB", "4MB"),
        moore_ranks=512,
    ),
    "paper": BenchScale(
        name="paper",
        ranks=2160,
        ranks_per_socket=18,
        densities=(0.05, 0.1, 0.2, 0.3, 0.5, 0.7),
        sizes=("8", "32", "512", "4KB", "64KB", "512KB", "4MB"),
        moore_ranks=2048,
    ),
}

ENV_VAR = "REPRO_BENCH_SCALE"


def get_scale(name: str | None = None) -> BenchScale:
    """Resolve a scale by name, falling back to ``$REPRO_BENCH_SCALE`` / small."""
    if name is None:
        name = os.environ.get(ENV_VAR, "small")
    try:
        return _SCALES[name]
    except KeyError:
        raise KeyError(f"unknown bench scale {name!r}; available: {sorted(_SCALES)}") from None


def bench_machine(n_ranks: int, ranks_per_socket: int = 8) -> Machine:
    """Niagara-like machine with exactly ``n_ranks`` (2 sockets per node)."""
    per_node = 2 * ranks_per_socket
    if n_ranks % per_node:
        raise ValueError(
            f"n_ranks={n_ranks} does not fill {per_node}-rank nodes; "
            "pick a multiple"
        )
    return Machine.niagara_like(nodes=n_ranks // per_node, ranks_per_socket=ranks_per_socket)
