"""OSU-style iterated latency micro-benchmark.

The paper's micro-benchmarks time repeated collective calls and report
statistics (its Fig. 6 error bars come from repetition under system noise
and changing placements).  :func:`latency_benchmark` mirrors that: it runs
``iterations`` simulated collectives after ``warmup`` discarded ones,
varying the noise seed per iteration (and optionally the node placement),
and reports min/avg/max/std — a distribution only when the machine has
``jitter > 0`` or placements vary; on a noiseless fixed machine every
iteration is identical by design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import Machine
from repro.collectives.base import NeighborhoodAllgatherAlgorithm, get_algorithm
from repro.collectives.runner import RunOptions, run_allgather
from repro.topology.graph import DistGraphTopology


@dataclass(frozen=True)
class LatencyStats:
    """Statistics over iterated collective calls (simulated seconds)."""

    algorithm: str
    msg_size: int
    iterations: int
    minimum: float
    average: float
    maximum: float
    std: float

    @property
    def cv(self) -> float:
        """Coefficient of variation — the stability metric of Fig. 6."""
        return self.std / self.average if self.average else 0.0


def latency_benchmark(
    algorithm: str | NeighborhoodAllgatherAlgorithm,
    topology: DistGraphTopology,
    machine: Machine,
    msg_size: int | str,
    iterations: int = 10,
    warmup: int = 2,
    vary_placement: bool = False,
    seed: int = 0,
    **algorithm_kwargs,
) -> LatencyStats:
    """Iterated latency measurement with per-iteration noise seeds.

    ``vary_placement=True`` additionally re-draws the node assignment each
    iteration (the scheduler lottery), like repeating a batch job.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm, **algorithm_kwargs)
    elif algorithm_kwargs:
        raise ValueError("algorithm_kwargs only apply when algorithm is a name")

    times: list[float] = []
    msg_bytes = 0
    for i in range(warmup + iterations):
        run_machine = (
            machine.random_placement(seed=seed * 1_000_003 + i) if vary_placement else machine
        )
        run = run_allgather(
            algorithm, topology, run_machine, msg_size,
            options=RunOptions(noise_seed=seed * 7919 + i),
        )
        msg_bytes = run.msg_size
        if i >= warmup:
            times.append(run.simulated_time)

    arr = np.asarray(times)
    return LatencyStats(
        algorithm=algorithm.name,
        msg_size=msg_bytes,
        iterations=iterations,
        minimum=float(arr.min()),
        average=float(arr.mean()),
        maximum=float(arr.max()),
        std=float(arr.std()),
    )
