"""Per-algorithm resilience study: slowdown under injected faults.

The paper's central claim — Distance Halving wins because it sends *fewer,
better-placed* messages — implies a robustness corollary: under link
jitter, stragglers, and message loss it should degrade more gracefully
than the naive point-to-point algorithm.  This harness tests exactly that:
every allgather algorithm runs over the same topology grid under each
named fault profile (:func:`repro.sim.faults.resilience_profiles`), and
the report gives slowdown-versus-clean per (algorithm, profile) cell.

Correctness is asserted, not assumed: every completed run is checked with
:func:`~repro.collectives.runner.verify_allgather` (fallback runs too —
graceful degradation must still deliver every block), and a run that
cannot complete (watchdog or deadlock) is *recorded* as a failure row
rather than crashing the sweep — failing loudly is itself a resilience
outcome worth reporting.

Determinism: fault randomness is seeded per profile, so two consecutive
invocations produce identical JSON except for the wall-clock fields
(``timestamp``, ``wall_*``).

Output is written to ``BENCH_resilience.json`` (override with
``out_path``).  Run via ``python -m repro bench --resilience [--smoke]``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.bench.config import BenchScale, SweepConfig, get_scale
from repro.bench.reporting import format_table, geometric_mean
from repro.collectives.base import SETUP_FREE_FALLBACK, algorithm_info, list_algorithms
from repro.collectives.runner import RunOptions
from repro.exec.spec import MachineSpec, RunSpec, TopologySpec
from repro.sim.faults import (
    CRASH_PROFILE_MODES,
    PROFILE_NAMES,
    resilience_profiles,
)
from repro.utils.sizes import format_size, parse_size

#: All bench-enrolled allgather algorithms, in registration (= report) order.
ALGORITHMS = tuple(info.name for info in list_algorithms(requires={"bench"}))
#: Topology seed — matches the wallclock harness / Fig. 5 driver.
FIG5_SEED = 23
#: Fixed Common Neighbor K (the registry's bench pin, shared with the
#: wallclock harness).
CN_K = dict(algorithm_info("common_neighbor").bench_kwargs)["k"]
#: Fault-plan seed for the whole study (per-profile plans share it).
FAULT_SEED = 7
#: Grid for the full (non-smoke) study.
FULL_DENSITIES = (0.1, 0.3)
FULL_SIZES = ("1KB", "64KB")
#: Simulated-time watchdog: generous vs the microsecond-scale runs, so a
#: pathological plan fails loudly instead of grinding the sweep.
MAX_SIM_TIME = 5.0
#: Event watchdog: no profile should need more than ~40 events/message.
MAX_EVENTS_PER_MESSAGE = 200


@dataclass(frozen=True)
class ResilienceCase:
    """One (algorithm, density, size, profile) cell of the study."""

    algorithm: str
    ranks: int
    ranks_per_socket: int
    density: float
    msg_bytes: int
    profile: str

    def label(self) -> str:
        return (
            f"{self.algorithm} n={self.ranks} d={self.density} "
            f"m={format_size(self.msg_bytes)} [{self.profile}]"
        )


def build_grid(scale: BenchScale, smoke: bool = False) -> list[tuple[int, float, int]]:
    """(ranks, density, msg_bytes) cells; smoke shrinks to one tiny cell."""
    if smoke:
        ranks = 4 * scale.ranks_per_socket  # two nodes x two sockets
        return [(ranks, 0.3, parse_size("1KB"))]
    return [
        (scale.ranks, d, parse_size(s))
        for d in FULL_DENSITIES
        for s in FULL_SIZES
    ]


def _case_spec(case: ResilienceCase, plan) -> RunSpec:
    """The cell as a :class:`RunSpec` (verification runs in-worker)."""
    kwargs = dict(algorithm_info(case.algorithm).bench_kwargs)
    options = RunOptions(
        fault_plan=plan,
        fallback=SETUP_FREE_FALLBACK if plan is not None else None,
        max_sim_time=MAX_SIM_TIME,
        max_events=MAX_EVENTS_PER_MESSAGE * case.ranks * case.ranks,
        verify=True,
        # Crash profiles study the two ULFM recovery paths: ``crash``
        # degrades to setup-free naive, ``crash_recover`` shrinks and
        # re-plans the same algorithm over the survivors.
        on_failure=CRASH_PROFILE_MODES.get(case.profile, "abort"),
    )
    return RunSpec(
        case.algorithm,
        TopologySpec("random", case.ranks, density=case.density, seed=FIG5_SEED),
        MachineSpec.for_ranks(case.ranks, case.ranks_per_socket),
        case.msg_bytes,
        algorithm_kwargs=kwargs,
        options=options,
    )


def build_study(
    scale: BenchScale, smoke: bool = False, fault_seed: int = FAULT_SEED
) -> list[tuple[ResilienceCase, RunSpec]]:
    """The whole study as (case, spec) pairs, in report order.

    Pure and cheap (no simulation): per grid cell, per algorithm, the
    clean run first then every fault profile.  Each spec carries its
    algorithm's registry ``bench_kwargs`` (via :func:`_case_spec`), so
    the kwargs-threading audit test can assert the contract on the exact
    specs the sweep will execute.
    """
    study: list[tuple[ResilienceCase, RunSpec]] = []
    for ranks, density, msg_bytes in build_grid(scale, smoke=smoke):
        profiles = resilience_profiles(ranks, seed=fault_seed)
        for algorithm in ALGORITHMS:
            for profile in ("clean", *(p for p in PROFILE_NAMES if p != "clean")):
                case = ResilienceCase(
                    algorithm, ranks, scale.ranks_per_socket, density,
                    msg_bytes, profile,
                )
                spec = _case_spec(
                    case, None if profile == "clean" else profiles[profile]
                )
                study.append((case, spec))
    return study


#: Orchestrator error prefixes that are resilience *outcomes*, not bugs.
_EXPECTED_FAILURES = (
    ("SimTimeoutError", "timeout"),
    ("DeadlockError", "deadlock"),
    ("RankFailedError", "rank_failed"),
    ("RetriesExhaustedError", "retries_exhausted"),
)


def _cell_record(
    case: ResilienceCase, outcome, clean_time: float | None
) -> dict[str, Any]:
    """Fold one orchestrator outcome into a report row.

    Watchdog/deadlock failures become failure rows; any other error
    (including an in-worker verification failure) raises — those are bugs,
    not resilience outcomes.
    """
    record: dict[str, Any] = {
        "algorithm": case.algorithm,
        "ranks": case.ranks,
        "density": case.density,
        "msg_bytes": case.msg_bytes,
        "profile": case.profile,
    }
    if outcome.error is not None:
        for kind, status in _EXPECTED_FAILURES:
            prefix = f"{kind}: "
            if outcome.error.startswith(prefix):
                record.update(status=status, error=outcome.error[len(prefix):][:300])
                return record
        raise RuntimeError(
            f"resilience cell {case.label()} failed unexpectedly: {outcome.error}"
        )
    run = outcome.run
    record.update(
        status="completed",
        simulated_time=run.simulated_time,
        messages_sent=run.messages_sent,
        wall_time=run.wall_time,
        fallback_used=run.fallback_used,
        executed_algorithm=run.algorithm,
        fault_stats=run.fault_stats,
    )
    if case.profile in CRASH_PROFILE_MODES:
        # Crash cells report what survived: goodput is the delivered
        # fraction of the communicator, recovery the ULFM round record.
        record["missing_ranks"] = list(run.missing_ranks)
        record["goodput"] = 1.0 - len(run.missing_ranks) / case.ranks
        record["recovery"] = run.recovery
    if clean_time is not None and clean_time > 0:
        record["slowdown_vs_clean"] = run.simulated_time / clean_time
    return record


def resilience_bench(
    scale: BenchScale | None = None,
    smoke: bool = False,
    out_path: str | Path | None = "BENCH_resilience.json",
    fault_seed: int = FAULT_SEED,
    verbose: bool = False,
    config: SweepConfig | None = None,
) -> dict[str, Any]:
    """Run the resilience study; returns (and writes) the report payload."""
    cfg = config or SweepConfig()
    scale = cfg.resolve_scale(scale)
    pairs = build_study(scale, smoke=smoke, fault_seed=fault_seed)
    specs = [spec for _, spec in pairs]

    wall_start = time.perf_counter()
    sweep = cfg.run(specs)

    cases: list[dict[str, Any]] = []
    #: profile -> algorithm -> list of slowdowns (completed cells only)
    slowdowns: dict[str, dict[str, list[float]]] = {
        p: {a: [] for a in ALGORITHMS} for p in PROFILE_NAMES if p != "clean"
    }
    clean_time: float | None = None
    for (case, spec), outcome in zip(pairs, sweep.outcomes):
        record = _cell_record(
            case, outcome, None if case.profile == "clean" else clean_time
        )
        # The kwargs the cell actually ran with — auditable against the
        # registry's bench pins (tests/bench/test_resilience_kwargs.py).
        record["algorithm_kwargs"] = dict(spec.algorithm_kwargs)
        cases.append(record)
        if case.profile == "clean":
            clean_time = record.get("simulated_time")
        elif "slowdown_vs_clean" in record:
            slowdowns[case.profile][case.algorithm].append(
                record["slowdown_vs_clean"]
            )
        if verbose:
            _print_cell(case, record)

    summary = {
        profile: {
            algorithm: (geometric_mean(vals) if vals else None)
            for algorithm, vals in per_alg.items()
        }
        for profile, per_alg in slowdowns.items()
    }
    payload: dict[str, Any] = {
        "experiment": "resilience",
        "scale": scale.name,
        "smoke": smoke,
        "topology_seed": FIG5_SEED,
        "fault_seed": fault_seed,
        "cn_k": CN_K,
        "bench_kwargs": {
            name: dict(algorithm_info(name).bench_kwargs) for name in ALGORITHMS
        },
        "profiles": sorted(p for p in PROFILE_NAMES if p != "clean"),
        "algorithms": list(ALGORITHMS),
        "slowdown_geomean": summary,
        "cases": cases,
        # Wall-clock fields (excluded from the determinism contract).
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "wall_total": time.perf_counter() - wall_start,
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(payload, indent=2))

    if verbose:
        rows = [
            (profile,
             *(f"{summary[profile][a]:.2f}x" if summary[profile][a] else "-"
               for a in ALGORITHMS))
            for profile in sorted(summary)
        ]
        print()
        print(format_table(
            ["profile", *ALGORITHMS],
            rows,
            title=(
                "resilience: slowdown vs clean, geomean "
                f"({scale.name}{', smoke' if smoke else ''})"
            ),
        ))
        if out_path is not None:
            print(f"report -> {out_path}")
    return payload


def _print_cell(case: ResilienceCase, record: dict[str, Any]) -> None:
    if record["status"] != "completed":
        print(f"  {case.label():<56} {record['status'].upper()}")
        return
    slow = record.get("slowdown_vs_clean")
    extra = f"  x{slow:.2f} vs clean" if slow is not None else ""
    fb = "  (fallback->naive)" if record["fallback_used"] else ""
    print(
        f"  {case.label():<56} sim={record['simulated_time'] * 1e6:9.1f} us"
        f"{extra}{fb}"
    )
