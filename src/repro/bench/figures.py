"""Per-figure experiment drivers: one function per paper figure/table.

Every driver returns a payload dict with structured ``rows`` (and prints an
ASCII table when ``verbose``), archives JSON under ``results/``, and is
wrapped by a pytest-benchmark target in ``benchmarks/``.  EXPERIMENTS.md
records each driver's output against the paper's reported numbers.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.bench.config import BenchScale, SweepConfig, bench_machine, get_scale
from repro.bench.reporting import format_table, geometric_mean, save_results
from repro.bench.sweep import DEFAULT_CN_KS, sweep_latency
from repro.cluster.calibration import calibrate
from repro.collectives.base import (
    SETUP_FREE_FALLBACK,
    algorithm_info,
    get_algorithm,
    list_algorithms,
)
from repro.exec.spec import MachineSpec, RunSpec, TopologySpec
from repro.model.comparison import FIG2_DENSITIES, model_grid
from repro.model.equations import ModelParams, dh_total_time, naive_total_time
from repro.spmm.kernel import run_spmm
from repro.spmm.matrices import TABLE_II, synthetic_matrix
from repro.topology.moore import moore_neighbor_count
from repro.topology.random_graphs import erdos_renyi_topology
from repro.utils.sizes import format_size, parse_size

#: Moore neighborhood configurations benchmarked in Fig. 6 (r, d).
MOORE_CONFIGS = ((1, 2), (2, 2), (3, 2), (1, 3), (2, 3))
#: Fig. 6 message sizes: small / medium / large per the paper.
MOORE_SIZES = ("4KB", "256KB", "4MB")


def _emit(title: str, headers, rows, payload: dict, verbose: bool) -> dict:
    if verbose:
        print()
        print(format_table(headers, rows, title=title))
    save_results(payload["experiment"], payload)
    return payload


def _run_grid(
    cfg: SweepConfig, keyed_specs: list[tuple[tuple, RunSpec]], verbose: bool
) -> dict:
    """Execute ``[(key, spec), ...]`` through the config's orchestrator.

    Returns ``{key: AllgatherRun}``; any failed spec aborts the figure
    (grids want every cell).  Execution statistics are printed, never
    embedded in the payload — archived figure JSON must stay bit-identical
    across worker counts and cache states.
    """
    sweep = cfg.run([spec for _, spec in keyed_specs]).raise_errors()
    if verbose:
        stats = sweep.stats
        cache = stats.get("cache")
        cache_note = (
            f", cache {cache['hits']} hits / {cache['misses']} misses"
            if cache else ""
        )
        print(
            f"[exec] {stats['total']} runs: {stats['from_cache']} from cache, "
            f"{stats['computed']} computed, workers={stats['workers']}"
            f"{cache_note}"
        )
    return dict(zip((key for key, _ in keyed_specs), sweep.runs))


def bench_variants() -> list[tuple[str, dict, str]]:
    """``(algorithm, kwargs, label)`` per bench-enrolled variant.

    Registry-derived: tuning grids are expanded into one variant per value
    (``cn`` -> ``cn2``/``cn4``/``cn8``), so a newly registered bench
    algorithm joins every figure grid automatically.
    """
    variants: list[tuple[str, dict, str]] = []
    for info in list_algorithms(requires={"bench"}):
        if info.tuning:
            for param, values in info.tuning:
                for value in values:
                    variants.append((info.name, {param: value}, f"{info.label}{value}"))
        else:
            variants.append((info.name, {}, info.label))
    return variants


def _baseline_label() -> str:
    """Label of the speedup denominator (the setup-free fallback)."""
    return algorithm_info(SETUP_FREE_FALLBACK).label


def _best_tuned(runs: dict, base_key: tuple, info):
    """Best cell of a tuned family: ``(run, best_value)`` (first minimum
    wins, matching the paper's "we report the best results" sweep order)."""
    param, values = info.tuning[0]
    candidates = [runs[(*base_key, f"{info.label}{v}")] for v in values]
    winner = min(candidates, key=lambda run: run.simulated_time)
    return winner, winner.setup_stats.extras.get(param)


def _speedup_columns(runs: dict, base_key: tuple) -> tuple[dict, dict]:
    """Per-algorithm record columns for one grid cell.

    ``{label}_time`` for every bench algorithm, ``{label}_speedup`` over
    the baseline for every non-baseline one, and ``{label}_best_{param}``
    for tuned families — all registry-derived, so records grow a column
    set per registered backend (``naive_time``/``dh_speedup``/
    ``cn_best_k``/...).  Returns ``(columns, {label: speedup})``.
    """
    base_label = _baseline_label()
    base = runs[(*base_key, base_label)]
    cols: dict[str, Any] = {f"{base_label}_time": base.simulated_time}
    speedups: dict[str, float] = {}
    for info in list_algorithms(requires={"bench"}):
        if info.name == SETUP_FREE_FALLBACK:
            continue
        if info.tuning:
            run, best_value = _best_tuned(runs, base_key, info)
            cols[f"{info.label}_best_{info.tuning[0][0]}"] = best_value
        else:
            run = runs[(*base_key, info.label)]
        cols[f"{info.label}_time"] = run.simulated_time
        speedup = base.simulated_time / run.simulated_time
        cols[f"{info.label}_speedup"] = speedup
        speedups[info.label] = speedup
    return cols, speedups


def _speedup_headers() -> tuple[list[str], list[tuple[str, str]]]:
    """Table headers for the generic speedup columns: ``(labels, extras)``
    where ``labels`` orders the non-baseline speedup columns and ``extras``
    pairs a header with its record key for the best-value columns of tuned
    families (``("cn k", "cn_best_k")``)."""
    labels = [info.label for info in list_algorithms(requires={"bench"})
              if info.name != SETUP_FREE_FALLBACK]
    extras = [(f"{info.label} {info.tuning[0][0]}",
               f"{info.label}_best_{info.tuning[0][0]}")
              for info in list_algorithms(requires={"bench"}) if info.tuning]
    return labels, extras


# ---------------------------------------------------------------------------
# Fig. 2 — analytic model comparison at paper scale
# ---------------------------------------------------------------------------


def fig2_model(
    scale: BenchScale | None = None, verbose: bool = True,
    config: SweepConfig | None = None,
) -> dict:
    """Fig. 2: model-predicted DH vs naive over density x message size.

    Always evaluated at the paper's machine scale (2000 cores, 50 nodes,
    L=20) — the model is closed-form, so scale costs nothing.  alpha/beta
    come from a simulated ping-pong fit, as the paper fit them from Niagara
    ping-pongs.
    """
    cfg = config or SweepConfig()
    scale = cfg.resolve_scale(scale)
    machine = bench_machine(scale.ranks, scale.ranks_per_socket)
    fit = calibrate(machine)
    params = ModelParams(
        n=2000, sockets=2, ranks_per_socket=20, alpha=fit.alpha, beta=fit.beta
    )
    grid = model_grid(params)
    rows = [
        (r["density"], r["msg_label"], r["naive_time"], r["dh_time"], r["speedup"])
        for r in grid.rows()
    ]
    payload = {
        "experiment": "fig2_model",
        "alpha": fit.alpha,
        "beta": fit.beta,
        "params": {"n": params.n, "S": params.sockets, "L": params.ranks_per_socket},
        "rows": grid.rows(),
        "crossovers": {
            str(d): grid.crossover_size(d) for d in grid.densities
        },
    }
    return _emit(
        "Fig. 2 — performance model: naive vs Distance Halving (paper scale)",
        ["density", "msg", "t_naive (s)", "t_DH (s)", "speedup"],
        rows,
        payload,
        verbose,
    )


# ---------------------------------------------------------------------------
# Fig. 4 — measured latency, Random Sparse Graphs, DH vs naive (+ model)
# ---------------------------------------------------------------------------


def fig4_latency(
    scale: BenchScale | None = None, verbose: bool = True, seed: int = 11,
    config: SweepConfig | None = None,
) -> dict:
    """Fig. 4: simulated latency of DH vs naive across densities and sizes.

    Adds the analytic model's predicted speedup per cell, which is the
    model-validation claim the paper makes about this figure.
    """
    cfg = config or SweepConfig()
    scale = cfg.resolve_scale(scale)
    seed = cfg.resolve_seed(seed)
    machine_spec = MachineSpec.for_ranks(scale.ranks, scale.ranks_per_socket)
    machine = machine_spec.build()
    fit = calibrate(machine)
    params = ModelParams.from_machine(machine, alpha=fit.alpha, beta=fit.beta)

    keyed_specs = []
    for density in scale.densities:
        topo_spec = TopologySpec("random", scale.ranks, density=density, seed=seed)
        for alg in ("naive", "distance_halving"):
            for size in scale.sizes:
                keyed_specs.append(
                    ((density, alg, size),
                     RunSpec(alg, topo_spec, machine_spec, size))
                )
    runs = _run_grid(cfg, keyed_specs, verbose)

    rows: list[tuple] = []
    records: list[dict[str, Any]] = []
    for density in scale.densities:
        for size in scale.sizes:
            nrun = runs[(density, "naive", size)]
            drun = runs[(density, "distance_halving", size)]
            m = nrun.msg_size
            model_speedup = float(
                naive_total_time(params, density, m) / dh_total_time(params, density, m)
            )
            measured = nrun.simulated_time / drun.simulated_time
            rows.append(
                (density, format_size(m), nrun.simulated_time, drun.simulated_time,
                 measured, model_speedup)
            )
            records.append(
                {
                    "density": density,
                    "msg_size": m,
                    "naive_time": nrun.simulated_time,
                    "dh_time": drun.simulated_time,
                    "measured_speedup": measured,
                    "model_speedup": model_speedup,
                }
            )
    payload = {
        "experiment": "fig4_latency",
        "scale": scale.name,
        "ranks": scale.ranks,
        "rows": records,
    }
    return _emit(
        f"Fig. 4 — latency, Random Sparse Graphs ({scale.ranks} ranks)",
        ["density", "msg", "t_naive (s)", "t_DH (s)", "speedup", "model"],
        rows,
        payload,
        verbose,
    )


# ---------------------------------------------------------------------------
# Fig. 5 — speedup scaling over three communicator sizes
# ---------------------------------------------------------------------------


def fig5_speedup_scaling(
    scale: BenchScale | None = None, verbose: bool = True, seed: int = 23,
    config: SweepConfig | None = None,
) -> dict:
    """Fig. 5: DH and best-K Common Neighbor speedups over naive, at three
    communicator sizes (paper: 2160/1080/540), densities 0.05-0.7, sizes
    8B-4MB.  Also emits the paper's per-density average-speedup summary and
    the §VII-A agent-success-rate statistic.
    """
    cfg = config or SweepConfig()
    scale = cfg.resolve_scale(scale)
    seed = cfg.resolve_seed(seed)
    sizes = scale.sizes
    rank_counts = [scale.ranks, scale.ranks // 2, scale.ranks // 4]
    per_node = 2 * scale.ranks_per_socket
    rank_counts = [max(per_node, (r // per_node) * per_node) for r in rank_counts]
    rps_for = {r: scale.ranks_per_socket for r in rank_counts}
    if scale.name == "paper" and scale.moore_ranks not in rank_counts:
        # The paper's fourth communicator size: the 2048-rank Moore graph
        # population, which tiles 32-rank nodes (16 ranks per socket).
        rank_counts.insert(1, scale.moore_ranks)
        rps_for[scale.moore_ranks] = 16

    options = cfg.run_options()
    variants = bench_variants()
    keyed_specs = []
    for n_ranks in rank_counts:
        machine_spec = MachineSpec.for_ranks(n_ranks, rps_for[n_ranks])
        for density in scale.densities:
            topo_spec = TopologySpec("random", n_ranks, density=density, seed=seed)
            for size in sizes:
                for alg, kwargs, label in variants:
                    keyed_specs.append(
                        ((n_ranks, density, size, label),
                         RunSpec(alg, topo_spec, machine_spec, size,
                                 algorithm_kwargs=kwargs, options=options))
                    )
    runs = _run_grid(cfg, keyed_specs, verbose)

    labels, extra_headers = _speedup_headers()
    rows: list[tuple] = []
    records: list[dict[str, Any]] = []
    summary: list[tuple] = []
    summary_records: list[dict[str, Any]] = []
    for n_ranks in rank_counts:
        for density in scale.densities:
            first_dh = runs[(n_ranks, density, sizes[0], "dh")]
            success_rate = first_dh.setup_stats.extras.get(
                "agent_success_rate", float("nan")
            )
            speedup_lists: dict[str, list[float]] = {lbl: [] for lbl in labels}
            for size in sizes:
                cols, speedups = _speedup_columns(runs, (n_ranks, density, size))
                for lbl, s in speedups.items():
                    speedup_lists[lbl].append(s)
                msg_size = runs[(n_ranks, density, size, _baseline_label())].msg_size
                rows.append(
                    (n_ranks, density, format_size(msg_size),
                     *(cols[f"{lbl}_speedup"] for lbl in labels),
                     *(cols[key] for _, key in extra_headers))
                )
                records.append(
                    {
                        "ranks": n_ranks,
                        "density": density,
                        "msg_size": msg_size,
                        **cols,
                        "agent_success_rate": success_rate,
                    }
                )
            avg = {lbl: geometric_mean(vals) for lbl, vals in speedup_lists.items()}
            summary.append(
                (n_ranks, density, *(avg[lbl] for lbl in labels), success_rate)
            )
            summary_records.append(
                {
                    "ranks": n_ranks,
                    "density": density,
                    **{f"{lbl}_avg_speedup": avg[lbl] for lbl in labels},
                    "agent_success_rate": success_rate,
                }
            )
    payload = {
        "experiment": "fig5_speedup_scaling",
        "scale": scale.name,
        "rank_counts": rank_counts,
        "cn_ks": list(DEFAULT_CN_KS),
        "rows": records,
        "summary": summary_records,
    }
    out = _emit(
        f"Fig. 5 — speedups over naive (scales {rank_counts})",
        ["ranks", "density", "msg"]
        + [f"{lbl} speedup" for lbl in labels]
        + [header for header, _ in extra_headers],
        rows,
        payload,
        verbose,
    )
    if verbose:
        print()
        print(
            format_table(
                ["ranks", "density"] + [f"{lbl} avg" for lbl in labels]
                + ["agent success"],
                summary,
                title="Fig. 5 summary — average speedup over naive per density",
            )
        )
    return out


# ---------------------------------------------------------------------------
# Fig. 6 — Moore neighborhoods
# ---------------------------------------------------------------------------


def fig6_moore(
    scale: BenchScale | None = None, verbose: bool = True,
    config: SweepConfig | None = None,
) -> dict:
    """Fig. 6: DH and best-K CN speedups over naive for Moore neighborhoods
    at small (4KB), medium (256KB) and large (4MB) message sizes."""
    cfg = config or SweepConfig()
    scale = cfg.resolve_scale(scale)
    n = scale.moore_ranks
    machine_spec = MachineSpec.for_ranks(n, scale.ranks_per_socket)

    variants = bench_variants()
    keyed_specs = []
    for r, d in MOORE_CONFIGS:
        topo_spec = TopologySpec("moore", n, radius=r, dims=d)
        for size in MOORE_SIZES:
            for alg, kwargs, label in variants:
                keyed_specs.append(
                    (((r, d), size, label),
                     RunSpec(alg, topo_spec, machine_spec, size,
                             algorithm_kwargs=kwargs))
                )
    runs = _run_grid(cfg, keyed_specs, verbose)

    labels, _ = _speedup_headers()
    rows: list[tuple] = []
    records: list[dict[str, Any]] = []
    for r, d in MOORE_CONFIGS:
        for size in MOORE_SIZES:
            cols, _speedups = _speedup_columns(runs, ((r, d), size))
            msg_size = runs[((r, d), size, _baseline_label())].msg_size
            rows.append(
                (f"r={r},d={d}", moore_neighbor_count(r, d),
                 format_size(msg_size),
                 *(cols[f"{lbl}_speedup"] for lbl in labels))
            )
            records.append(
                {
                    "r": r,
                    "d": d,
                    "neighbors": moore_neighbor_count(r, d),
                    "msg_size": msg_size,
                    **cols,
                }
            )
    payload = {
        "experiment": "fig6_moore",
        "scale": scale.name,
        "ranks": n,
        "rows": records,
    }
    return _emit(
        f"Fig. 6 — Moore neighborhood speedups over naive ({n} ranks)",
        ["neighborhood", "nbrs", "msg"]
        + [f"{lbl} speedup" for lbl in labels],
        rows,
        payload,
        verbose,
    )


def fig6_variance_study(
    scale: BenchScale | None = None,
    verbose: bool = True,
    placements: int = 8,
    msg_size: str = "512",
    moore_r: int = 2,
    config: SweepConfig | None = None,
) -> dict:
    """The Fig. 6 stability claim: "The experiments were repeated multiple
    times, and each time different nodes are assigned to the job ... the
    default algorithm is sensitive to the distance of the nodes ... our
    algorithm is considerably more stable."

    Runs the same Moore workload under ``placements`` random node
    assignments (the scheduler lottery) and reports each algorithm's
    latency mean and coefficient of variation across placements.

    Reproduction note (recorded in EXPERIMENTS.md): the stability claim
    holds on our machine model in the latency-bound regime (small
    messages — hence the 512B default); at bandwidth-bound sizes the two
    algorithms' placement variance is comparable.
    """
    cfg = config or SweepConfig()
    scale = cfg.resolve_scale(scale)
    n = scale.moore_ranks
    topo_spec = TopologySpec("moore", n, radius=moore_r, dims=2)

    algorithms = ("naive", "distance_halving")
    keyed_specs = []
    for trial in range(placements):
        machine_spec = MachineSpec.for_ranks(
            n, scale.ranks_per_socket, placement_seed=1000 + trial
        )
        for alg in algorithms:
            keyed_specs.append(
                ((trial, alg), RunSpec(alg, topo_spec, machine_spec, msg_size))
            )
    runs = _run_grid(cfg, keyed_specs, verbose)

    samples: dict[str, list[float]] = {alg: [] for alg in algorithms}
    for trial in range(placements):
        for alg in algorithms:
            samples[alg].append(runs[(trial, alg)].simulated_time)

    rows, records = [], []
    for alg, times in samples.items():
        arr = np.asarray(times)
        mean, std = float(arr.mean()), float(arr.std())
        cv = std / mean
        rows.append((alg, mean, std, cv, float(arr.min()), float(arr.max())))
        records.append(
            {"algorithm": alg, "mean": mean, "std": std, "cv": cv,
             "min": float(arr.min()), "max": float(arr.max()),
             "samples": [float(t) for t in arr]}
        )
    payload = {
        "experiment": "fig6_variance_study",
        "scale": scale.name,
        "ranks": n,
        "placements": placements,
        "msg_size": parse_size(msg_size),
        "moore": {"r": moore_r, "d": 2},
        "rows": records,
    }
    return _emit(
        f"Fig. 6 variance — latency across {placements} node placements "
        f"(Moore r={moore_r}, {msg_size})",
        ["algorithm", "mean (s)", "std (s)", "CV", "min", "max"],
        rows,
        payload,
        verbose,
    )


# ---------------------------------------------------------------------------
# Fig. 7 — SpMM kernel
# ---------------------------------------------------------------------------


def fig7_spmm(
    scale: BenchScale | None = None, verbose: bool = True, y_cols: int = 8,
    seed: int = 5, config: SweepConfig | None = None,
) -> dict:
    """Fig. 7: SpMM speedups over naive for the seven Table II matrices.

    Serial by design: the SpMM kernel couples compute and communication
    phases through live sparse buffers, so its runs are not cacheable
    :class:`RunSpec` simulations.
    """
    cfg = config or SweepConfig()
    scale = cfg.resolve_scale(scale)
    seed = cfg.resolve_seed(seed)
    machine = bench_machine(scale.ranks, scale.ranks_per_socket)

    rows: list[tuple] = []
    records: list[dict[str, Any]] = []
    for spec in TABLE_II:
        matrix = synthetic_matrix(spec.name, seed=seed)
        results = {}
        for alg in ("naive", "distance_halving"):
            results[alg] = run_spmm(matrix, y_cols, machine, alg, seed=seed)
        cn_best = None
        for k in DEFAULT_CN_KS:
            res = run_spmm(matrix, y_cols, machine, "common_neighbor", seed=seed, k=k)
            if cn_best is None or res.total_time < cn_best.total_time:
                cn_best = res
        naive_t = results["naive"].total_time
        s_dh = naive_t / results["distance_halving"].total_time
        s_cn = naive_t / cn_best.total_time
        rows.append((spec.name, spec.n, spec.nnz, s_dh, s_cn))
        records.append(
            {
                "matrix": spec.name,
                "n": spec.n,
                "nnz": spec.nnz,
                "ranks": results["naive"].n_ranks,
                "naive_time": naive_t,
                "dh_time": results["distance_halving"].total_time,
                "cn_time": cn_best.total_time,
                "dh_speedup": s_dh,
                "cn_speedup": s_cn,
            }
        )
    payload = {
        "experiment": "fig7_spmm",
        "scale": scale.name,
        "y_cols": y_cols,
        "rows": records,
    }
    return _emit(
        f"Fig. 7 — SpMM speedups over naive ({scale.ranks} ranks)",
        ["matrix", "n", "nnz", "DH speedup", "CN speedup"],
        rows,
        payload,
        verbose,
    )


# ---------------------------------------------------------------------------
# Fig. 8 — pattern-creation overhead
# ---------------------------------------------------------------------------


def fig8_overhead(
    scale: BenchScale | None = None, verbose: bool = True, seed: int = 31,
    config: SweepConfig | None = None,
) -> dict:
    """Fig. 8: pattern-creation cost of DH (message-level protocol) vs the
    Common Neighbor setup, across densities.

    Serial by design: it measures ``setup()`` in isolation (no collective
    runs), which the RunSpec/result-cache pipeline does not model.
    """
    cfg = config or SweepConfig()
    scale = cfg.resolve_scale(scale)
    seed = cfg.resolve_seed(seed)
    machine = bench_machine(scale.ranks, scale.ranks_per_socket)

    rows: list[tuple] = []
    records: list[dict[str, Any]] = []
    for density in scale.densities:
        topology = erdos_renyi_topology(scale.ranks, density, seed=seed)
        dh = get_algorithm("distance_halving", selection="protocol")
        dh_stats = dh.setup(topology, machine)
        cn = get_algorithm("common_neighbor", k=4)
        cn_stats = cn.setup(topology, machine)
        ratio = dh_stats.simulated_time / max(cn_stats.simulated_time, 1e-12)
        rows.append(
            (density, dh_stats.protocol_messages, cn_stats.protocol_messages,
             dh_stats.simulated_time, cn_stats.simulated_time, ratio)
        )
        records.append(
            {
                "density": density,
                "dh_setup_messages": dh_stats.protocol_messages,
                "dh_negotiation_messages": dh_stats.extras["negotiation_messages"],
                "dh_notification_messages": dh_stats.extras["notification_messages"],
                "dh_descriptor_messages": dh_stats.extras["descriptor_messages"],
                "dh_matrix_a_messages": dh_stats.extras["matrix_a_messages"],
                "cn_setup_messages": cn_stats.protocol_messages,
                "dh_setup_time": dh_stats.simulated_time,
                "cn_setup_time": cn_stats.simulated_time,
                "dh_over_cn": ratio,
                "dh_wall_time": dh_stats.wall_time,
                "cn_wall_time": cn_stats.wall_time,
            }
        )
    payload = {
        "experiment": "fig8_overhead",
        "scale": scale.name,
        "ranks": scale.ranks,
        "rows": records,
    }
    return _emit(
        f"Fig. 8 — pattern-creation overhead, DH vs CN ({scale.ranks} ranks)",
        ["density", "DH msgs", "CN msgs", "DH time (s)", "CN time (s)", "DH/CN"],
        rows,
        payload,
        verbose,
    )


# ---------------------------------------------------------------------------
# Extension — neighborhood alltoall (the paper's Section VIII future work)
# ---------------------------------------------------------------------------


def ext_alltoall(
    scale: BenchScale | None = None, verbose: bool = True, seed: int = 47,
    config: SweepConfig | None = None,
) -> dict:
    """Future-work extension: distance-halving neighborhood alltoall.

    Compares the DH alltoall against the naive per-edge default over the
    density grid at small and medium message sizes.  Expected shape: large
    wins in the latency-bound regime (message-count reduction carries
    over), parity-to-loss when bandwidth-bound (distinct blocks cannot be
    combined, so forwarding re-pays their bytes per hop).
    """
    from repro.collectives.alltoall import run_alltoall, verify_alltoall

    cfg = config or SweepConfig()
    scale = cfg.resolve_scale(scale)
    seed = cfg.resolve_seed(seed)
    machine = bench_machine(scale.ranks, scale.ranks_per_socket)
    sizes = ("64", "4KB")

    rows, records = [], []
    for density in scale.densities:
        topology = erdos_renyi_topology(scale.ranks, density, seed=seed)
        for size in sizes:
            naive = run_alltoall("naive_alltoall", topology, machine, size)
            dh = run_alltoall("distance_halving_alltoall", topology, machine, size)
            cn = min(
                (
                    run_alltoall("common_neighbor_alltoall", topology, machine, size, k=k)
                    for k in DEFAULT_CN_KS
                ),
                key=lambda r: r.simulated_time,
            )
            verify_alltoall(topology, naive)
            verify_alltoall(topology, dh)
            verify_alltoall(topology, cn)
            speedup = naive.simulated_time / dh.simulated_time
            cn_speedup = naive.simulated_time / cn.simulated_time
            rows.append(
                (density, format_size(parse_size(size)), naive.messages_sent,
                 dh.messages_sent, speedup, cn_speedup)
            )
            records.append(
                {
                    "density": density,
                    "msg_size": parse_size(size),
                    "naive_time": naive.simulated_time,
                    "dh_time": dh.simulated_time,
                    "cn_time": cn.simulated_time,
                    "naive_messages": naive.messages_sent,
                    "dh_messages": dh.messages_sent,
                    "naive_bytes": naive.bytes_sent,
                    "dh_bytes": dh.bytes_sent,
                    "speedup": speedup,
                    "cn_speedup": cn_speedup,
                }
            )
    payload = {
        "experiment": "ext_alltoall",
        "scale": scale.name,
        "ranks": scale.ranks,
        "rows": records,
    }
    return _emit(
        f"Extension — neighborhood alltoall ({scale.ranks} ranks)",
        ["density", "msg", "naive msgs", "DH msgs", "DH speedup", "CN speedup"],
        rows,
        payload,
        verbose,
    )


def ext_network_sensitivity(
    scale: BenchScale | None = None, verbose: bool = True, seed: int = 53,
    density: float = 0.3, config: SweepConfig | None = None,
) -> dict:
    """Section IV's generality claim: the distant-rank bottleneck "extends
    beyond the mentioned topologies", so DH should win on Dragonfly+,
    tapered fat trees, AND tori.  Same workload, three networks.
    """
    from dataclasses import replace

    from repro.cluster.hockney import NIAGARA_LIKE
    from repro.cluster.network import DragonflyPlus, FatTree, Torus
    from repro.cluster.machine import Machine
    from repro.cluster.spec import ClusterSpec

    cfg = config or SweepConfig()
    scale = cfg.resolve_scale(scale)
    seed = cfg.resolve_seed(seed)
    spec = ClusterSpec(
        nodes=scale.ranks // (2 * scale.ranks_per_socket),
        sockets_per_node=2,
        ranks_per_socket=scale.ranks_per_socket,
    )
    nodes = spec.nodes
    networks = [
        ("dragonfly+", DragonflyPlus(nodes_per_group=max(2, nodes // 4))),
        ("fat-tree", FatTree(nodes_per_leaf=max(2, nodes // 4), taper=0.5)),
        ("torus", Torus(dims=_torus_dims(nodes))),
    ]
    topology = erdos_renyi_topology(scale.ranks, density, seed=seed)
    sizes = ("64", "64KB")

    rows, records = [], []
    for name, network in networks:
        machine = Machine(spec=spec, network=network, params=NIAGARA_LIKE)
        naive = sweep_latency("naive", topology, machine, sizes)
        dh = sweep_latency("distance_halving", topology, machine, sizes)
        for nrec, drec in zip(naive, dh):
            speedup = nrec.simulated_time / drec.simulated_time
            rows.append((name, nrec.msg_label, nrec.simulated_time,
                         drec.simulated_time, speedup))
            records.append(
                {
                    "network": name,
                    "msg_size": nrec.msg_size,
                    "naive_time": nrec.simulated_time,
                    "dh_time": drec.simulated_time,
                    "speedup": speedup,
                }
            )
    payload = {
        "experiment": "ext_network_sensitivity",
        "scale": scale.name,
        "density": density,
        "ranks": scale.ranks,
        "rows": records,
    }
    return _emit(
        f"Extension — network sensitivity at density {density} ({scale.ranks} ranks)",
        ["network", "msg", "t_naive (s)", "t_DH (s)", "DH speedup"],
        rows,
        payload,
        verbose,
    )


def _torus_dims(nodes: int) -> tuple[int, ...]:
    """Near-square 2D factorization of the node count."""
    from repro.topology.moore import dims_create

    return dims_create(nodes, 2)


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md Section 5)
# ---------------------------------------------------------------------------


def ablation_agent_policy(
    scale: BenchScale | None = None, verbose: bool = True, seed: int = 17,
    msg_size: str = "512", trials: int = 3,
    config: SweepConfig | None = None,
) -> dict:
    """Load-aware agent choice vs random agent choice (design decision 1).

    Measured finding (recorded in EXPERIMENTS.md): load-awareness pays on
    the *sparse and imbalanced* patterns the paper motivates it with
    (scale-free hubs, low-density graphs) and converges with — sometimes
    loses to — random matching on dense uniform graphs, where any maximal
    matching offloads nearly everything.  Each workload is averaged
    (geometric mean) over ``trials`` seeds because single-instance ratios
    are matching-lottery noisy.
    """
    cfg = config or SweepConfig()
    scale = cfg.resolve_scale(scale)
    seed = cfg.resolve_seed(seed)
    machine_spec = MachineSpec.for_ranks(scale.ranks, scale.ranks_per_socket)

    def workload_makers():
        for density in scale.densities:
            yield (
                f"ER d={density}",
                density,
                lambda s, d=density: TopologySpec(
                    "random", scale.ranks, density=d, seed=s
                ),
            )
        # Imbalanced workload — where the paper motivates the load-aware choice.
        yield (
            "scale-free",
            None,
            lambda s: TopologySpec(
                "scale_free", scale.ranks, edges_per_rank=6, seed=s
            ),
        )

    workloads = list(workload_makers())
    policies = (("aware", {}), ("random", {"selection": "random"}))
    keyed_specs = []
    for label, _, make in workloads:
        for trial in range(trials):
            topo_spec = make(seed + trial)
            for policy, kwargs in policies:
                keyed_specs.append(
                    ((label, trial, policy),
                     RunSpec("distance_halving", topo_spec, machine_spec,
                             msg_size, algorithm_kwargs=kwargs))
                )
    runs = _run_grid(cfg, keyed_specs, verbose)

    rows, records = [], []
    for label, density, _ in workloads:
        ratios, aware_times, random_times = [], [], []
        for trial in range(trials):
            t_aware = runs[(label, trial, "aware")].simulated_time
            t_random = runs[(label, trial, "random")].simulated_time
            ratios.append(t_random / t_aware)
            aware_times.append(t_aware)
            random_times.append(t_random)
        ratio = geometric_mean(ratios)
        t_aware = sum(aware_times) / trials
        t_random = sum(random_times) / trials
        rows.append((label, t_aware, t_random, ratio))
        records.append(
            {
                "workload": label,
                "density": density,
                "load_aware_time": t_aware,
                "random_time": t_random,
                "random_over_aware": ratio,
                "trial_ratios": ratios,
            }
        )
    payload = {
        "experiment": "ablation_agent_policy",
        "scale": scale.name,
        "msg_size": parse_size(msg_size),
        "rows": records,
    }
    return _emit(
        f"Ablation — load-aware vs random agent selection ({msg_size} messages)",
        ["workload", "t load-aware (s)", "t random (s)", "random/aware"],
        rows,
        payload,
        verbose,
    )


def ablation_stop_granularity(
    scale: BenchScale | None = None, verbose: bool = True, seed: int = 17,
    msg_size: str = "4KB", config: SweepConfig | None = None,
) -> dict:
    """Stop halving at the socket (paper) vs halving to single ranks."""
    cfg = config or SweepConfig()
    scale = cfg.resolve_scale(scale)
    seed = cfg.resolve_seed(seed)
    machine_spec = MachineSpec.for_ranks(scale.ranks, scale.ranks_per_socket)

    keyed_specs = []
    for density in scale.densities:
        topo_spec = TopologySpec("random", scale.ranks, density=density, seed=seed)
        for variant, kwargs in (("socket", {}), ("single", {"stop_ranks": 1})):
            keyed_specs.append(
                ((density, variant),
                 RunSpec("distance_halving", topo_spec, machine_spec, msg_size,
                         algorithm_kwargs=kwargs))
            )
    runs = _run_grid(cfg, keyed_specs, verbose)

    rows, records = [], []
    for density in scale.densities:
        t_socket = runs[(density, "socket")].simulated_time
        t_single = runs[(density, "single")].simulated_time
        rows.append((density, t_socket, t_single, t_single / t_socket))
        records.append(
            {
                "density": density,
                "stop_at_socket_time": t_socket,
                "stop_at_rank_time": t_single,
                "single_over_socket": t_single / t_socket,
            }
        )
    payload = {
        "experiment": "ablation_stop_granularity",
        "scale": scale.name,
        "msg_size": parse_size(msg_size),
        "rows": records,
    }
    return _emit(
        f"Ablation — halving stop granularity: socket (L) vs single rank ({msg_size})",
        ["density", "t stop@L (s)", "t stop@1 (s)", "single/socket"],
        rows,
        payload,
        verbose,
    )
