"""Sweep helpers: run algorithms across message sizes, pick best-K CN.

A sweep reuses each algorithm instance across message sizes so pattern
creation is paid once per (algorithm, topology), exactly as an application
would amortize ``MPI_Dist_graph_create_adjacent``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import Machine
from repro.collectives.base import NeighborhoodAllgatherAlgorithm, get_algorithm
from repro.collectives.runner import run_allgather
from repro.topology.graph import DistGraphTopology
from repro.utils.sizes import format_size, parse_size

#: K values tried for the Common Neighbor baseline (paper: "various values
#: of K ... we report the best results").
DEFAULT_CN_KS = (2, 4, 8)


@dataclass
class SweepRecord:
    """One (algorithm, message size) measurement."""

    algorithm: str
    msg_size: int
    simulated_time: float
    messages: int
    detail: dict

    @property
    def msg_label(self) -> str:
        return format_size(self.msg_size)


def sweep_latency(
    algorithm: str | NeighborhoodAllgatherAlgorithm,
    topology: DistGraphTopology,
    machine: Machine,
    sizes: tuple[int | str, ...],
    **algorithm_kwargs,
) -> list[SweepRecord]:
    """Latency of one algorithm across message sizes (setup amortized)."""
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm, **algorithm_kwargs)
    records = []
    for size in sizes:
        run = run_allgather(algorithm, topology, machine, size)
        records.append(
            SweepRecord(
                algorithm=run.algorithm,
                msg_size=run.msg_size,
                simulated_time=run.simulated_time,
                messages=run.messages_sent,
                detail=dict(run.setup_stats.extras),
            )
        )
    return records


def best_common_neighbor(
    topology: DistGraphTopology,
    machine: Machine,
    sizes: tuple[int | str, ...],
    ks: tuple[int, ...] = DEFAULT_CN_KS,
) -> list[SweepRecord]:
    """Per-size best Common Neighbor result over the K grid.

    Mirrors the paper's methodology: "We launched the Common Neighbor
    algorithm with various values of K.  We report the best results."
    """
    per_k = {k: sweep_latency("common_neighbor", topology, machine, sizes, k=k) for k in ks}
    best: list[SweepRecord] = []
    for i, size in enumerate(sizes):
        candidates = [per_k[k][i] for k in ks]
        winner = min(candidates, key=lambda rec: rec.simulated_time)
        winner.detail["best_k"] = winner.detail.get("k")
        best.append(winner)
    return best


def speedup_over(
    baseline: list[SweepRecord], contender: list[SweepRecord]
) -> list[tuple[int, float]]:
    """(msg_size, baseline_time / contender_time) per size, order-aligned."""
    if len(baseline) != len(contender):
        raise ValueError("sweeps have different lengths")
    out = []
    for b, c in zip(baseline, contender):
        if b.msg_size != c.msg_size:
            raise ValueError(f"size mismatch: {b.msg_size} vs {c.msg_size}")
        out.append((b.msg_size, b.simulated_time / c.simulated_time))
    return out
