"""Sweep helpers: run algorithms across message sizes, pick best-K CN.

A sweep reuses each algorithm instance across message sizes so pattern
creation is paid once per (algorithm, topology), exactly as an application
would amortize ``MPI_Dist_graph_create_adjacent``.

:func:`smoke_sweep` is the orchestrated counterpart: a tiny fixed grid of
:class:`~repro.exec.spec.RunSpec` executed through
:class:`~repro.bench.config.SweepConfig`, reporting execution statistics
(cache hit rate, worker count).  CI runs it twice and asserts the second
pass is answered from cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.bench.config import SweepConfig
from repro.cluster.machine import Machine
from repro.collectives.base import (
    NeighborhoodAllgatherAlgorithm,
    algorithm_info,
    get_algorithm,
    list_algorithms,
)
from repro.collectives.runner import run_allgather
from repro.exec.spec import MachineSpec, RunSpec, TopologySpec
from repro.topology.graph import DistGraphTopology
from repro.utils.sizes import format_size, parse_size

#: K values tried for the Common Neighbor baseline (paper: "various values
#: of K ... we report the best results").  Sourced from the registry's
#: tuning declaration so the registration site is the single authority.
DEFAULT_CN_KS = algorithm_info("common_neighbor").tuning_values("k")


@dataclass
class SweepRecord:
    """One (algorithm, message size) measurement."""

    algorithm: str
    msg_size: int
    simulated_time: float
    messages: int
    detail: dict

    @property
    def msg_label(self) -> str:
        return format_size(self.msg_size)


def sweep_latency(
    algorithm: str | NeighborhoodAllgatherAlgorithm,
    topology: DistGraphTopology,
    machine: Machine,
    sizes: tuple[int | str, ...],
    **algorithm_kwargs,
) -> list[SweepRecord]:
    """Latency of one algorithm across message sizes (setup amortized)."""
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm, **algorithm_kwargs)
    records = []
    for size in sizes:
        run = run_allgather(algorithm, topology, machine, size)
        records.append(
            SweepRecord(
                algorithm=run.algorithm,
                msg_size=run.msg_size,
                simulated_time=run.simulated_time,
                messages=run.messages_sent,
                detail=dict(run.setup_stats.extras),
            )
        )
    return records


def best_common_neighbor(
    topology: DistGraphTopology,
    machine: Machine,
    sizes: tuple[int | str, ...],
    ks: tuple[int, ...] = DEFAULT_CN_KS,
) -> list[SweepRecord]:
    """Per-size best Common Neighbor result over the K grid.

    Mirrors the paper's methodology: "We launched the Common Neighbor
    algorithm with various values of K.  We report the best results."
    """
    per_k = {k: sweep_latency("common_neighbor", topology, machine, sizes, k=k) for k in ks}
    best: list[SweepRecord] = []
    for i, size in enumerate(sizes):
        candidates = [per_k[k][i] for k in ks]
        winner = min(candidates, key=lambda rec: rec.simulated_time)
        winner.detail["best_k"] = winner.detail.get("k")
        best.append(winner)
    return best


#: The smoke grid: every bench-enrolled algorithm (with its registry bench
#: kwargs), two densities, two sizes.
SMOKE_ALGORITHMS = tuple(
    (info.name, info.bench_kwargs) for info in list_algorithms(requires={"bench"})
)


def smoke_sweep(
    config: SweepConfig | None = None,
    *,
    ranks: int = 16,
    ranks_per_socket: int = 4,
    densities: tuple[float, ...] = (0.1, 0.5),
    sizes: tuple[str, ...] = ("64", "16KB"),
    seed: int = 23,
) -> dict[str, Any]:
    """Tiny orchestrated sweep; returns records plus execution stats.

    The grid is fixed and fully deterministic, so consecutive invocations
    against a shared cache should answer ~every spec from cache — the
    report's ``execution.cache.hit_rate`` is what CI asserts on.
    """
    cfg = config or SweepConfig()
    machine = MachineSpec.for_ranks(ranks, ranks_per_socket)
    keyed: list[tuple[tuple, RunSpec]] = []
    for density in densities:
        topology = TopologySpec("random", ranks, density=density, seed=seed)
        for size in sizes:
            for name, kwargs in SMOKE_ALGORITHMS:
                keyed.append((
                    (name, density, parse_size(size)),
                    RunSpec(name, topology, machine, size,
                            algorithm_kwargs=kwargs),
                ))
    sweep = cfg.run([spec for _, spec in keyed]).raise_errors()
    records = [
        {
            "algorithm": name,
            "density": density,
            "msg_bytes": msg_bytes,
            "simulated_time": run.simulated_time,
            "messages": run.messages_sent,
        }
        for ((name, density, msg_bytes), _), run in zip(keyed, sweep.runs)
    ]
    return {
        "experiment": "smoke_sweep",
        "ranks": ranks,
        "seed": seed,
        "records": records,
        "execution": sweep.stats,
    }


def paper_smoke_sweep(
    config: SweepConfig | None = None,
    *,
    ranks: int = 2160,
    ranks_per_socket: int = 18,
    densities: tuple[float, ...] = (0.1, 0.3),
    sizes: tuple[str, ...] = ("8KB",),
    seed: int = 23,
) -> dict[str, Any]:
    """Reduced Fig. 5 slice at full paper scale, hybrid (auto) mode.

    Same shape as :func:`smoke_sweep` but at the paper's 2160-rank Niagara
    footprint, forced through ``sim_mode="auto"`` so every stage is either
    costed analytically or replayed on the compiled fast path — a pure-DES
    pass at this scale would take minutes per spec.  The grid is fixed, so
    a warm cache answers the whole slice; CI gates on both the cold pass's
    wall clock and the warm pass's hit rate.
    """
    cfg = config or SweepConfig()
    from repro.collectives.runner import RunOptions

    options = RunOptions(sim_mode="auto")
    machine = MachineSpec.for_ranks(ranks, ranks_per_socket)
    keyed: list[tuple[tuple, RunSpec]] = []
    for density in densities:
        topology = TopologySpec("random", ranks, density=density, seed=seed)
        for size in sizes:
            for name, kwargs in SMOKE_ALGORITHMS:
                keyed.append((
                    (name, density, parse_size(size)),
                    RunSpec(name, topology, machine, size,
                            algorithm_kwargs=kwargs, options=options),
                ))
    sweep = cfg.run([spec for _, spec in keyed]).raise_errors()
    records = [
        {
            "algorithm": name,
            "density": density,
            "msg_bytes": msg_bytes,
            "simulated_time": run.simulated_time,
            "messages": run.messages_sent,
            "sim_path": run.sim_path,
        }
        for ((name, density, msg_bytes), _), run in zip(keyed, sweep.runs)
    ]
    return {
        "experiment": "paper_smoke_sweep",
        "ranks": ranks,
        "seed": seed,
        "sim_mode": "auto",
        "records": records,
        "execution": sweep.stats,
    }


def speedup_over(
    baseline: list[SweepRecord], contender: list[SweepRecord]
) -> list[tuple[int, float]]:
    """(msg_size, baseline_time / contender_time) per size, order-aligned."""
    if len(baseline) != len(contender):
        raise ValueError("sweeps have different lengths")
    out = []
    for b, c in zip(baseline, contender):
        if b.msg_size != c.msg_size:
            raise ValueError(f"size mismatch: {b.msg_size} vs {c.msg_size}")
        out.append((b.msg_size, b.simulated_time / c.simulated_time))
    return out
