"""The paper's analytic performance model (Section V, Eqs. 1-8).

Hockney-based expectations for the naive and Distance Halving algorithms on
Erdős–Rényi virtual topologies, used to regenerate Fig. 2 and the message
count example of Section V-A, and validated against the simulator.
"""

from repro.model.equations import (
    ModelParams,
    dh_total_time,
    expected_intra_messages,
    expected_intra_message_size,
    expected_off_socket_messages,
    naive_messages,
    naive_total_time,
)
from repro.model.comparison import ModelComparison, model_grid
from repro.model.crossover import (
    analytic_ranking,
    crossover_density,
    crossover_size,
    predicted_times,
)
from repro.model.validation import ModelValidation, validate_model

__all__ = [
    "analytic_ranking",
    "crossover_density",
    "crossover_size",
    "predicted_times",
    "ModelValidation",
    "validate_model",
    "ModelParams",
    "expected_off_socket_messages",
    "expected_intra_messages",
    "expected_intra_message_size",
    "naive_messages",
    "naive_total_time",
    "dh_total_time",
    "ModelComparison",
    "model_grid",
]
