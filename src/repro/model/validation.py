"""Model-vs-simulation validation (the paper's Fig. 4 claim, quantified).

The paper states its measurements "confirm the validity of our performance
model" while acknowledging absolute differences.  :func:`validate_model`
makes that statement precise: it measures both algorithms on the simulator
over a (density x size) grid, evaluates Eqs. (5)/(8) on the same grid, and
reports

* the Spearman rank correlation between predicted and measured speedups
  (does the model order the cells correctly?),
* sign agreement (does the model pick the right winner per cell?), and
* the mean absolute log-ratio error (how far off are the magnitudes?).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats as sps

from repro.cluster.calibration import calibrate
from repro.cluster.machine import Machine
from repro.collectives.base import get_algorithm
from repro.collectives.runner import run_allgather
from repro.model.equations import ModelParams, dh_total_time, naive_total_time
from repro.topology.random_graphs import erdos_renyi_topology
from repro.utils.sizes import parse_size


@dataclass
class ModelValidation:
    """Agreement metrics between model and simulation over a grid."""

    cells: int
    spearman: float          #: rank correlation of speedups (1.0 = same order)
    sign_agreement: float    #: fraction of cells where both pick the same winner
    mean_abs_log_error: float  #: mean |ln(predicted/measured)| of the speedup
    records: list[dict] = field(repr=False, default_factory=list)


def validate_model(
    machine: Machine,
    densities: tuple[float, ...] = (0.05, 0.2, 0.5),
    sizes: tuple[int | str, ...] = ("64", "4KB", "256KB"),
    seed: int = 13,
    params: ModelParams | None = None,
) -> ModelValidation:
    """Run the grid on the simulator and score the model against it."""
    if params is None:
        fit = calibrate(machine)
        params = ModelParams.from_machine(machine, alpha=fit.alpha, beta=fit.beta)

    records: list[dict] = []
    predicted, measured = [], []
    for density in densities:
        topology = erdos_renyi_topology(machine.spec.n_ranks, density, seed=seed)
        naive_alg = get_algorithm("naive")
        dh_alg = get_algorithm("distance_halving")
        for size in sizes:
            nbytes = parse_size(size)
            t_naive = run_allgather(naive_alg, topology, machine, nbytes).simulated_time
            t_dh = run_allgather(dh_alg, topology, machine, nbytes).simulated_time
            meas = t_naive / t_dh
            pred = float(
                naive_total_time(params, density, nbytes)
                / dh_total_time(params, density, nbytes)
            )
            predicted.append(pred)
            measured.append(meas)
            records.append(
                {
                    "density": density,
                    "msg_size": nbytes,
                    "measured_speedup": meas,
                    "predicted_speedup": pred,
                    "log_error": float(np.log(pred / meas)),
                }
            )

    predicted_arr = np.asarray(predicted)
    measured_arr = np.asarray(measured)
    if len(predicted) > 1:
        spearman = float(sps.spearmanr(predicted_arr, measured_arr).statistic)
    else:
        spearman = 1.0
    sign_agreement = float(
        np.mean((predicted_arr > 1.0) == (measured_arr > 1.0))
    )
    male = float(np.mean(np.abs(np.log(predicted_arr / measured_arr))))
    return ModelValidation(
        cells=len(records),
        spearman=spearman,
        sign_agreement=sign_agreement,
        mean_abs_log_error=male,
        records=records,
    )
