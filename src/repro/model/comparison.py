"""Model-vs-model and model-vs-simulation comparison grids (Fig. 2).

:func:`model_grid` evaluates both algorithms' expected times over a
(density x message size) grid at the paper's machine scale and reports the
predicted speedup — the content of Fig. 2.  The benchmarks print it as rows;
EXPERIMENTS.md records it against the paper's plotted trends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.equations import ModelParams, dh_total_time, naive_total_time
from repro.utils.sizes import format_size, parse_size

#: The paper's Fig. 2 axes (densities and message sizes).
FIG2_DENSITIES = (0.05, 0.1, 0.2, 0.3, 0.5, 0.7)
FIG2_SIZES = tuple(8 * 4**i for i in range(10))  # 8B ... ~2MB, then 4MB
FIG2_SIZES = FIG2_SIZES + (4 * 1024 * 1024,)


@dataclass
class ModelComparison:
    """Grid of model predictions: times and speedups per (density, size)."""

    params: ModelParams
    densities: tuple[float, ...]
    sizes: tuple[int, ...]
    naive_time: np.ndarray  #: shape (len(densities), len(sizes))
    dh_time: np.ndarray     #: same shape

    @property
    def speedup(self) -> np.ndarray:
        """Predicted naive/DH time ratio (> 1 where DH wins)."""
        return self.naive_time / self.dh_time

    def crossover_size(self, density: float) -> int | None:
        """Largest benchmarked size where DH still wins for ``density``.

        Returns ``None`` if DH never wins at this density.
        """
        i = self.densities.index(density)
        winning = np.flatnonzero(self.speedup[i] > 1.0)
        return self.sizes[int(winning[-1])] if winning.size else None

    def rows(self) -> list[dict]:
        """Flat records for reporting: one per (density, size)."""
        out = []
        for i, d in enumerate(self.densities):
            for j, s in enumerate(self.sizes):
                out.append(
                    {
                        "density": d,
                        "msg_size": s,
                        "msg_label": format_size(s),
                        "naive_time": float(self.naive_time[i, j]),
                        "dh_time": float(self.dh_time[i, j]),
                        "speedup": float(self.speedup[i, j]),
                    }
                )
        return out


def model_grid(
    params: ModelParams,
    densities: tuple[float, ...] = FIG2_DENSITIES,
    sizes: tuple[int | str, ...] = FIG2_SIZES,
) -> ModelComparison:
    """Evaluate Eqs. (5) and (8) over a density x size grid."""
    sizes_b = tuple(parse_size(s) for s in sizes)
    d = np.asarray(densities, dtype=float)[:, None]
    m = np.asarray(sizes_b, dtype=float)[None, :]
    return ModelComparison(
        params=params,
        densities=tuple(densities),
        sizes=sizes_b,
        naive_time=naive_total_time(params, d, m),
        dh_time=dh_total_time(params, d, m),
    )
