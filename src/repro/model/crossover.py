"""Hockney-model crossovers: the analytic prior for algorithm selection.

The paper's Eqs. (5) and (8) price the naive and Distance Halving
algorithms on an Erdős–Rényi workload; their ratio flips as density,
scale, and message size move.  :func:`analytic_ranking` turns that into a
full candidate ordering (the two modeled algorithms by predicted time,
the remaining registry candidates after them in registration order) and
:func:`crossover_density` locates the density where the prediction flips
— both feed :mod:`repro.select` as the *prior* that empirical sweep
results refine.
"""

from __future__ import annotations

import math

from repro.model.equations import ModelParams, dh_total_time, naive_total_time

#: The two algorithms Eqs. (1)-(8) actually model.
MODELED = ("naive", "distance_halving")


def model_params_for(
    n: int,
    sockets: int,
    ranks_per_socket: int,
    alpha: float,
    beta: float,
) -> ModelParams:
    """A :class:`ModelParams` tolerant of degenerate selector inputs.

    Selection features come from arbitrary live workloads, so ``n`` may be
    smaller than a socket (a 2-rank communicator on an 8-rank-per-socket
    machine): clamp ``L`` to ``n`` — the halving recursion stops at the
    communicator then, which is exactly what the pattern builder does.
    """
    return ModelParams(
        n=max(n, 1),
        sockets=max(sockets, 1),
        ranks_per_socket=max(1, min(ranks_per_socket, n)),
        alpha=alpha,
        beta=beta,
    )


def predicted_times(
    params: ModelParams, delta: float, msg_bytes: float
) -> dict[str, float]:
    """Eq. (5) / Eq. (8) predictions for one (density, size) point."""
    return {
        "naive": float(naive_total_time(params, delta, msg_bytes)),
        "distance_halving": float(dh_total_time(params, delta, msg_bytes)),
    }


def analytic_ranking(
    params: ModelParams,
    delta: float,
    msg_bytes: float,
    candidates: tuple[str, ...] = MODELED,
) -> tuple[str, ...]:
    """Candidates best-first under the model.

    The modeled pair is ordered by predicted time; any other candidate
    (Common Neighbor, Bruck — algorithms the closed-form model does not
    cover) keeps its relative ``candidates`` order and follows the modeled
    pair.  Deterministic: ties break toward the ``candidates`` order.
    """
    times = predicted_times(params, delta, msg_bytes)
    modeled = [name for name in candidates if name in times]
    rest = [name for name in candidates if name not in times]
    modeled.sort(key=lambda name: (times[name], candidates.index(name)))
    return tuple(modeled + rest)


def crossover_density(
    params: ModelParams, msg_bytes: float, tolerance: float = 1e-4
) -> float | None:
    """Smallest density where DH is predicted to beat naive, or ``None``.

    Bisects ``delta`` in (0, 1]; the paper's Fig. 2 shows the speedup
    region is a single connected band in density for fixed ``m``, so a
    sign change between the probe points brackets the crossover.
    """
    def advantage(delta: float) -> float:
        t = predicted_times(params, delta, msg_bytes)
        return t["naive"] - t["distance_halving"]

    lo, hi = tolerance, 1.0
    if advantage(hi) <= 0 and advantage(lo) <= 0:
        return None  # naive predicted best everywhere
    if advantage(lo) > 0:
        return lo  # DH already ahead at vanishing density
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if advantage(mid) > 0:
            hi = mid
        else:
            lo = mid
    return hi


def crossover_size(
    params: ModelParams, delta: float, max_bytes: int = 1 << 24
) -> int | None:
    """Smallest message size where DH is predicted to beat naive.

    Returns ``None`` when naive is predicted best across the whole range.
    The advantage is monotone in ``m`` for fixed density (bandwidth terms
    scale linearly with opposite coefficients), so binary search applies.
    """
    def dh_ahead(m: float) -> bool:
        t = predicted_times(params, delta, m)
        return t["distance_halving"] < t["naive"]

    if dh_ahead(0.0):
        return 0
    if not dh_ahead(float(max_bytes)):
        return None
    lo, hi = 0, max_bytes
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if dh_ahead(float(mid)):
            hi = mid
        else:
            lo = mid
    return hi


def halving_viable(n: int, ranks_per_socket: int) -> bool:
    """Does the halving recursion have at least one off-socket level?"""
    if n <= ranks_per_socket:
        return False
    return math.ceil(math.log2(n / max(1, ranks_per_socket))) + 1 >= 1
