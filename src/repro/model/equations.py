"""Equations (1)-(8) of the paper, vectorized over message size and density.

Notation (Table I / Section V):

* ``n`` — communicator size, ``S`` — sockets per node, ``L`` — ranks per
  socket, ``delta`` — Erdős–Rényi edge probability, ``m`` — message bytes.
* ``alpha``/``beta`` — Hockney latency (s) and bandwidth (bytes/s), fitted
  from ping-pong (see :mod:`repro.cluster.calibration`).
* ``steps = ceil(log2(n / L)) + 1`` — the paper's halving step count.

All equation functions accept scalars or numpy arrays for ``delta`` and
``m`` and broadcast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ModelParams:
    """Machine constants of the model."""

    n: int          #: communicator size
    sockets: int    #: S, sockets per node
    ranks_per_socket: int  #: L
    alpha: float    #: Hockney latency (s)
    beta: float     #: Hockney bandwidth (bytes/s)

    def __post_init__(self) -> None:
        check_positive("n", self.n)
        check_positive("sockets", self.sockets)
        check_positive("ranks_per_socket", self.ranks_per_socket)
        check_positive("alpha", self.alpha)
        check_positive("beta", self.beta)
        if self.n < self.ranks_per_socket:
            raise ValueError(
                f"n={self.n} smaller than ranks_per_socket={self.ranks_per_socket}"
            )

    @property
    def halving_steps(self) -> int:
        """``ceil(log2(n/L)) + 1`` — the paper's step count."""
        return math.ceil(math.log2(self.n / self.ranks_per_socket)) + 1

    @classmethod
    def from_machine(cls, machine, alpha: float | None = None, beta: float | None = None):
        """Derive from a :class:`~repro.cluster.Machine` (+ optional fit)."""
        from repro.cluster.calibration import calibrate

        if alpha is None or beta is None:
            fit = calibrate(machine)
            alpha = fit.alpha if alpha is None else alpha
            beta = fit.beta if beta is None else beta
        return cls(
            n=machine.spec.n_ranks,
            sockets=machine.spec.sockets_per_node,
            ranks_per_socket=machine.spec.ranks_per_socket,
            alpha=alpha,
            beta=beta,
        )


def expected_off_socket_messages(params: ModelParams, delta) -> np.ndarray:
    """Eq. (1): ``E[n_off] = min(ceil(log2(n/L)) + 1, delta * (n - L))``."""
    delta = np.asarray(delta, dtype=float)
    steps = params.halving_steps
    return np.minimum(steps, delta * (params.n - params.ranks_per_socket))


def expected_intra_messages(params: ModelParams, delta) -> np.ndarray:
    """Eq. (2): ``E[n_in] = (1 - (1 - delta)^(steps + 1)) * L``.

    The exponent is ``ceil(log2(n/L)) + 2`` in the paper's notation, i.e.
    one more than the step count.
    """
    delta = np.asarray(delta, dtype=float)
    exponent = params.halving_steps + 1
    return (1.0 - (1.0 - delta) ** exponent) * params.ranks_per_socket


def expected_intra_message_size(params: ModelParams, delta, m) -> np.ndarray:
    """Eq. (3): ``E[m_in] = delta * E[n_in] * m``."""
    delta = np.asarray(delta, dtype=float)
    m = np.asarray(m, dtype=float)
    return delta * expected_intra_messages(params, delta) * m


def naive_messages(params: ModelParams, delta) -> np.ndarray:
    """Messages per rank under the naive algorithm: ``delta * n``."""
    return np.asarray(delta, dtype=float) * params.n


def naive_rank_time(params: ModelParams, delta, m) -> np.ndarray:
    """Eq. (4): ``E[t_r(naive)] = 2 * delta * n * (alpha + m / beta)``."""
    delta = np.asarray(delta, dtype=float)
    m = np.asarray(m, dtype=float)
    return 2.0 * delta * params.n * (params.alpha + m / params.beta)


def naive_total_time(params: ModelParams, delta, m) -> np.ndarray:
    """Eq. (5): ``E[t(naive)] = S * L * E[t_r(naive)]``."""
    return params.sockets * params.ranks_per_socket * naive_rank_time(params, delta, m)


def dh_off_socket_time(params: ModelParams, delta, m) -> np.ndarray:
    """Eq. (6): geometric series of doubling messages.

    ``E[t_off] = E[n_off] * alpha + (2^(E[n_off] + 1) - 1) * m / beta``.
    """
    n_off = expected_off_socket_messages(params, delta)
    m = np.asarray(m, dtype=float)
    return n_off * params.alpha + (np.exp2(n_off + 1.0) - 1.0) * m / params.beta


def dh_intra_socket_time(params: ModelParams, delta, m) -> np.ndarray:
    """Eq. (7): ``E[t_in] = E[n_in] * (alpha + E[m_in] / beta)``."""
    n_in = expected_intra_messages(params, delta)
    m_in = expected_intra_message_size(params, delta, m)
    return n_in * (params.alpha + m_in / params.beta)


def dh_total_time(params: ModelParams, delta, m) -> np.ndarray:
    """Eq. (8): ``E[t(DH)] = 2 * S * L * (E[t_off] + E[t_in])``."""
    return (
        2.0
        * params.sockets
        * params.ranks_per_socket
        * (dh_off_socket_time(params, delta, m) + dh_intra_socket_time(params, delta, m))
    )


def dh_messages(params: ModelParams, delta) -> np.ndarray:
    """Average messages per rank under DH: off-socket + intra-socket.

    Section V-A's worked example: n=2000, L=20, delta=0.3 gives ~23
    messages (7 off-socket + 16 intra-socket) vs 600 naive.
    """
    return expected_off_socket_messages(params, delta) + expected_intra_messages(params, delta)
