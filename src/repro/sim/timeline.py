"""Timeline analysis and Chrome-trace export for simulation runs.

Traces collected by :class:`~repro.sim.tracing.TraceCollector` can be:

* summarized per *phase* (:func:`phase_breakdown` — DH tags its halving
  steps with the level index and the final phase with ``FINAL_TAG``, so the
  breakdown shows where each algorithm's time and bytes go), and
* exported to the Chrome / Perfetto ``chrome://tracing`` JSON format
  (:func:`chrome_trace` / :func:`save_chrome_trace`): one row per rank,
  one slice per message injection, plus flow arrows from sender to
  receiver arrival.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Iterable

from repro.sim.tracing import MessageRecord

#: Tag of the Distance Halving final (intra-socket) phase.
_FINAL_TAG = 1 << 20

_US = 1e6  # chrome tracing uses microseconds


def phase_name(tag: int) -> str:
    """Human-readable phase for a message tag."""
    if tag == _FINAL_TAG:
        return "final"
    if tag < 100:
        return f"step {tag}"
    return f"tag {tag}"


def phase_breakdown(records: Iterable[MessageRecord]) -> dict[str, dict[str, float]]:
    """Per-phase message/byte/time-span aggregates.

    ``span`` is the wall-clock extent of the phase (first post to last
    arrival) in simulated seconds.
    """
    stats: dict[str, dict[str, float]] = defaultdict(
        lambda: {"messages": 0, "bytes": 0, "start": float("inf"), "end": 0.0}
    )
    for rec in records:
        bucket = stats[phase_name(rec.tag)]
        bucket["messages"] += 1
        bucket["bytes"] += rec.nbytes
        bucket["start"] = min(bucket["start"], rec.post_time)
        if rec.arrival != float("inf"):  # lost messages never arrive
            bucket["end"] = max(bucket["end"], rec.arrival)
    return {
        name: {
            "messages": int(b["messages"]),
            "bytes": int(b["bytes"]),
            "span": b["end"] - b["start"],
            "start": b["start"],
            "end": b["end"],
        }
        for name, b in sorted(stats.items())
    }


def chrome_trace(
    records: Iterable[MessageRecord],
    finish_times: dict[int, float] | None = None,
    flows: bool = True,
) -> dict:
    """Build a ``chrome://tracing`` / Perfetto-compatible trace dict.

    Rows (tids) are ranks; each message becomes a duration slice on the
    sender's row covering its injection (post to send-complete) and,
    optionally, a flow arrow landing at the receiver's arrival instant.
    """
    events: list[dict] = []
    for flow_id, rec in enumerate(records):
        name = f"{phase_name(rec.tag)} -> {rec.dst} ({rec.nbytes}B)"
        dur = max(rec.send_complete - rec.post_time, 1e-9)
        events.append(
            {
                "name": name,
                "cat": rec.link_class.name,
                "ph": "X",
                "pid": 0,
                "tid": rec.src,
                "ts": rec.post_time * _US,
                "dur": dur * _US,
                "args": {"bytes": rec.nbytes, "tag": rec.tag, "dst": rec.dst},
            }
        )
        if flows and rec.arrival != float("inf"):
            # Lost messages (fault injection) never arrive: no flow arrow.
            events.append(
                {
                    "name": "msg",
                    "cat": "flow",
                    "ph": "s",
                    "id": flow_id,
                    "pid": 0,
                    "tid": rec.src,
                    "ts": rec.send_complete * _US,
                }
            )
            events.append(
                {
                    "name": "msg",
                    "cat": "flow",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "pid": 0,
                    "tid": rec.dst,
                    "ts": rec.arrival * _US,
                }
            )
    if finish_times:
        for rank, t in sorted(finish_times.items()):
            events.append(
                {
                    "name": "finish",
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": rank,
                    "ts": t * _US,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"source": "repro discrete-event MPI simulator"},
    }


def save_chrome_trace(
    path: str | Path,
    records: Iterable[MessageRecord],
    finish_times: dict[int, float] | None = None,
) -> Path:
    """Write the chrome trace JSON; open it at ``chrome://tracing``."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(records, finish_times)))
    return path
