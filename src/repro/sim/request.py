"""Non-blocking operation handles, MPI ``MPI_Request``-style.

A request becomes *determined* once its completion time is known: sends at
post time (the fabric schedules them greedily), receives when the matching
message is known.  ``payload``/``source``/``nbytes`` are filled on receives
when matched.
"""

from __future__ import annotations

import enum
from typing import Any


class RequestKind(enum.Enum):
    SEND = "send"
    RECV = "recv"


class Request:
    """Handle for one isend/irecv."""

    __slots__ = (
        "kind",
        "owner",
        "tag",
        "peer",
        "post_time",
        "completion_time",
        "payload",
        "source",
        "nbytes",
        "attempts",
        "lost",
        "_waiter",
    )

    def __init__(self, kind: RequestKind, owner: int, peer: int | None, tag: int, post_time: float):
        self.kind = kind
        self.owner = owner          #: rank that posted the request
        self.peer = peer            #: destination (send) / source filter (recv; None = ANY)
        self.tag = tag
        self.post_time = post_time
        self.completion_time: float | None = None
        self.payload: Any = None    #: delivered payload (recv only)
        self.source: int | None = None   #: actual source (recv only)
        self.nbytes: int | None = None   #: actual size (recv only)
        self.attempts: int = 1      #: transmissions under a fault plan (send only)
        self.lost: bool = False     #: send permanently lost (retry budget exhausted)
        self._waiter = None         #: WaitState currently blocked on this request

    @property
    def determined(self) -> bool:
        return self.completion_time is not None

    def complete(self, time: float) -> None:
        """Guarded completion for external callers.

        The engine itself assigns ``completion_time`` directly on requests
        it just created or matched (the guard is redundant there and the
        call sits on the per-message hot path).
        """
        if self.completion_time is not None:
            raise RuntimeError(f"request completed twice: {self!r}")
        self.completion_time = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"t={self.completion_time:.3e}" if self.determined else "pending"
        return f"Request({self.kind.value}, owner={self.owner}, peer={self.peer}, tag={self.tag}, {state})"
