"""Discrete-event MPI simulator.

Rank programs are Python generators that post non-blocking operations on a
:class:`SimCommunicator` and ``yield`` wait conditions; the :class:`Engine`
advances virtual time deterministically.  Message timing is computed by the
:class:`Fabric` from the :class:`~repro.cluster.Machine`'s Hockney costs,
with cut-through pipelining over serialized resources (per-rank ports,
per-node NICs, shared global links) so congestion emerges naturally.

The semantics intentionally mirror the paper's modelling assumptions:
single-port ranks, eager delivery, and serialized node injection.

Faults: a seeded :class:`FaultPlan` (see :mod:`repro.sim.faults`) injects
link degradation, stragglers, and message loss with timeout/backoff
retransmission; watchdog budgets (``max_sim_time``/``max_events``) raise
:class:`SimTimeoutError` when a perturbed run cannot complete.
"""

from repro.sim.communicator import ANY_SOURCE, SimCommunicator
from repro.sim.engine import DeadlockError, Engine, SimTimeoutError
from repro.sim.fabric import Fabric, MessageTiming
from repro.sim.faults import (
    FaultInjector,
    FaultPlan,
    LinkFault,
    MessageLoss,
    RetryPolicy,
    Straggler,
    get_profile,
    resilience_profiles,
)
from repro.sim.fastpath import ANALYTIC_RTOL, FastRunOutcome, execute_schedule
from repro.sim.plancache import PlanCache, machine_digest, plan_cache_stats, reset_plan_cache
from repro.sim.request import Request
from repro.sim.schedule import (
    Schedule,
    StageReport,
    analyze_contention,
    contention_free,
    spawn_wake_order,
    static_matching,
    structural_digest,
)
from repro.sim.timeline import chrome_trace, phase_breakdown, save_chrome_trace
from repro.sim.tracing import MessageRecord, TraceCollector

__all__ = [
    "chrome_trace",
    "phase_breakdown",
    "save_chrome_trace",
    "ANY_SOURCE",
    "SimCommunicator",
    "Engine",
    "DeadlockError",
    "SimTimeoutError",
    "Fabric",
    "MessageTiming",
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "MessageLoss",
    "RetryPolicy",
    "Straggler",
    "get_profile",
    "resilience_profiles",
    "Request",
    "MessageRecord",
    "TraceCollector",
    "ANALYTIC_RTOL",
    "FastRunOutcome",
    "execute_schedule",
    "Schedule",
    "StageReport",
    "spawn_wake_order",
    "static_matching",
    "structural_digest",
    "PlanCache",
    "machine_digest",
    "plan_cache_stats",
    "reset_plan_cache",
    "analyze_contention",
    "contention_free",
]
