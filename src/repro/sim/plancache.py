"""Cross-run compiled-plan cache for the hybrid fast path.

:mod:`repro.sim.fastpath` compiles a :class:`~repro.sim.schedule.Schedule`
into priced opcode segments and (when eligible) batched executor plans.
Compilation walks every op and prices every message cohort — cheap next to
a DES run, but pure overhead when a sweep revisits the same schedule shape
on the same machine, which Fig. 5-style grids do constantly (every repeat,
every algorithm/size cell sharing a topology, every warm bench pass).

This module provides the process-wide memo for those products: a bounded
LRU keyed on *structure*, not identity —

``(schedule structural digest, machine digest, plan flavor)``

* the schedule half is :func:`repro.sim.schedule.structural_digest`
  (rank count + full op streams: the compiler's exact input), so two
  ``Schedule`` objects describing the same communication pattern — e.g.
  rebuilt by a fresh algorithm instance for the same topology cell — share
  one compilation (the isomorphic-neighborhood reuse from Träff et al.);
* the machine half is :func:`machine_digest`, a recursive structural
  fingerprint of the :class:`~repro.cluster.machine.Machine` (cluster
  shape, every Hockney constant, the network topology's constructor state
  including placement permutations) — everything that can influence a
  priced plan;
* the flavor names the product (``"segments"``, ``"batch"``, ``"multi"``)
  plus any compile mode bits.

Cached values hold only plain numbers, tuples, and numpy arrays — never a
``Machine`` or ``Schedule`` reference — so retention cannot leak simulation
state.  ``None`` results (an ineligible schedule) are cached too: deciding
ineligibility costs a full compile walk.

Stats (hits/misses/evictions) are process-global and surfaced through
``repro.exec`` sweep reports and the wallclock harness payload; see
:func:`plan_cache_stats`.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Any

#: Default LRU capacity.  Plans for paper-scale schedules are megabytes, so
#: the bound stays modest — but it must hold a whole bench grid: the small
#: compare grid alone creates ~66 distinct (schedule, machine, flavor)
#: triples, and evicting mid-grid forfeits the warm-repeat hits the cache
#: exists for.
DEFAULT_MAX_ENTRIES = 128

_MISS = object()

# Machine fingerprints, memoized per live Machine object.  Machine is a
# frozen dataclass (attributes cannot be added), so the memo lives here,
# keyed by id() with a weakref guard against id reuse — the same idiom as
# fabric._COSTS_BY_MACHINE.
_MACHINE_DIGESTS: dict[int, tuple[weakref.ref, str]] = {}


def _network_fingerprint(net: Any) -> str:
    """Recursive structural fingerprint of a NetworkTopology.

    ``describe()`` is cosmetic and omits constructor state (e.g.
    DragonflyPlus's ``links_per_pair``), so the fingerprint walks the
    instance's own attributes: scalars by repr, sequences element-wise,
    nested topologies (``PermutedNodes.base``) recursively.
    """
    parts = []
    for name, value in sorted(vars(net).items()):
        if hasattr(value, "shared_link_keys"):  # nested NetworkTopology
            parts.append(f"{name}=({_network_fingerprint(value)})")
        elif isinstance(value, (tuple, list)):
            parts.append(f"{name}=[{','.join(repr(v) for v in value)}]")
        else:
            parts.append(f"{name}={value!r}")
    return f"{type(net).__name__}{{{';'.join(parts)}}}"


def _machine_fingerprint(machine: Any) -> str:
    spec = machine.spec
    params = machine.params
    links = ";".join(
        f"{cls.name}={cost.alpha!r},{cost.beta!r}"
        for cls, cost in sorted(params.links.items(), key=lambda kv: kv[0].name)
    )
    return "|".join((
        f"spec:{spec.nodes},{spec.sockets_per_node},{spec.ranks_per_socket}",
        f"links:{links}",
        f"host:{params.memcpy_beta!r},{params.call_overhead!r},"
        f"{params.per_hop_alpha!r},{params.nic_message_overhead!r},"
        f"{params.link_message_overhead!r},{params.jitter!r},"
        f"{params.adaptive_routing!r}",
        f"net:{_network_fingerprint(machine.network)}",
    ))


def machine_digest(machine: Any) -> str:
    """Structural digest of a Machine — the cache key's machine half.

    Covers every input the fast-path compiler reads: the cluster shape,
    all Hockney link/host constants, routing mode, jitter, and the full
    network topology state (recursively, so a placement permutation or a
    non-default ``links_per_pair`` yields a distinct digest).  Memoized
    per live object; two structurally identical machines share a digest
    and therefore share cached plans.
    """
    key = id(machine)
    entry = _MACHINE_DIGESTS.get(key)
    if entry is not None and entry[0]() is machine:
        return entry[1]
    digest = _machine_fingerprint(machine)
    _MACHINE_DIGESTS[key] = (weakref.ref(machine), digest)
    if len(_MACHINE_DIGESTS) > 256:  # drop entries whose machine was collected
        dead = [k for k, (ref, _) in _MACHINE_DIGESTS.items() if ref() is None]
        for k in dead:
            del _MACHINE_DIGESTS[k]
    return digest


class PlanCache:
    """Bounded LRU over ``(schedule digest, machine digest, flavor)`` keys."""

    __slots__ = ("max_entries", "_entries", "hits", "misses", "evictions")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> Any:
        """Cached value for ``key``, or the module-private miss sentinel."""
        entries = self._entries
        value = entries.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
        else:
            entries.move_to_end(key)
            self.hits += 1
        return value

    def put(self, key: tuple, value: Any) -> None:
        entries = self._entries
        entries[key] = value
        entries.move_to_end(key)
        while len(entries) > self.max_entries:
            entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, Any]:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "max_entries": self.max_entries,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


#: The process-wide instance used by :mod:`repro.sim.fastpath`.
PLAN_CACHE = PlanCache()


def plan_cache_stats() -> dict[str, Any]:
    """Snapshot of the process-wide plan cache counters (JSON-friendly)."""
    return PLAN_CACHE.stats()


def reset_plan_cache(max_entries: int | None = None) -> None:
    """Empty the process-wide cache (and optionally resize it)."""
    if max_entries is not None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        PLAN_CACHE.max_entries = max_entries
    PLAN_CACHE.clear()
