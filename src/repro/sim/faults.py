"""Seeded, deterministic fault injection for the simulator.

The paper's robustness corollary — Distance Halving sends *fewer,
better-placed* messages, so it should degrade more gracefully than the
naive algorithm under link jitter, stragglers, and message loss — is only
testable if failures can be injected *reproducibly*.  This module provides
the spec layer for that: a :class:`FaultPlan` is immutable data describing
what goes wrong and when, and a :class:`FaultInjector` is the per-run
runtime companion holding the resolved RNG stream and mutable counters.

Determinism contract
--------------------
All fault randomness flows through :func:`repro.utils.rng.resolve_rng`
seeded by ``FaultPlan.seed``, and draws happen in engine event order (one
draw per transmission attempt of a message that a loss spec covers).  The
engine's event order is itself deterministic and unaffected by tracing, so
the same ``(seed, FaultPlan)`` pair yields bit-identical simulated times
and identical drop/retry counters across runs and across ``trace=True`` /
``trace=False``.

A plan whose specs are all no-ops (unit factors, zero probabilities, unit
compute factors, zero delays) is a *strict* no-op: the fault-aware transmit
path multiplies nothing and draws nothing, so simulated times are
bit-identical to a run with no plan at all (pinned by the golden-grid
regression test).

Failure semantics
-----------------
* :class:`LinkFault` — multiplicative latency (``alpha_factor``, also
  applied to the per-hop surcharge) and bandwidth (``beta_factor``)
  degradation for one link class (or all) over a simulated-time window.
* :class:`Straggler` — one rank launches ``startup_delay`` seconds late
  and its yielded compute/memcpy durations are scaled by
  ``compute_factor``.
* :class:`MessageLoss` — each covered transmission attempt is dropped with
  the given probability.  Drops are detected by the sender via an ack
  timeout and retransmitted under the plan's :class:`RetryPolicy`; every
  attempt (including dropped ones) claims the full resource pipeline, so
  retransmission costs are charged in simulated time.  A message whose
  retry budget is exhausted is *lost*: it never arrives, and the run fails
  loudly (``DeadlockError`` once the event heap drains, or
  ``SimTimeoutError`` if a watchdog budget trips first).
* :class:`RankCrash` — fail-stop death of one rank at a simulated time.
  The engine kills the rank's generator at its first event at or after the
  crash time, drops its in-flight sends whose arrival postdates the crash,
  and never delivers anything from it again.  When the surviving ranks
  stall waiting on a dead peer, a :class:`FailureDetector` (heartbeat
  interval + suspicion timeout, both charged in simulated time) converts
  the would-be deadlock into a structured
  :class:`~repro.sim.engine.RankFailedError`; without a detector the run
  fails with ``DeadlockError`` as before.
* Setup feasibility — pattern setup (the ``MPI_Dist_graph_create_adjacent``
  negotiation) is priced analytically, before simulated time 0, so loss
  windows do not apply to it; only the plan's *peak* loss probability
  does.  :meth:`FaultPlan.setup_survivable` declares a setup infeasible
  when the expected number of permanently lost control messages reaches 1;
  :func:`~repro.collectives.runner.run_allgather` can then gracefully
  degrade to a setup-free algorithm
  (``fallback=repro.collectives.base.SETUP_FREE_FALLBACK``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.cluster.spec import LinkClass
from repro.utils.rng import resolve_rng


def _check_window(start: float, end: float) -> None:
    if start < 0:
        raise ValueError(f"window start must be >= 0, got {start}")
    if end < start:
        raise ValueError(f"window end {end} precedes start {start}")


@dataclass(frozen=True)
class LinkFault:
    """Latency/bandwidth degradation for one link class over a time window.

    ``link_class=None`` covers every class.  ``alpha_factor`` multiplies the
    per-message startup latency (and the routing hop surcharge);
    ``beta_factor`` scales bandwidth (0.5 = links run at half speed).
    """

    link_class: LinkClass | None = None
    alpha_factor: float = 1.0
    beta_factor: float = 1.0
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.alpha_factor <= 0:
            raise ValueError(f"alpha_factor must be > 0, got {self.alpha_factor}")
        if self.beta_factor <= 0:
            raise ValueError(f"beta_factor must be > 0, got {self.beta_factor}")
        _check_window(self.start, self.end)

    @property
    def is_noop(self) -> bool:
        return self.alpha_factor == 1.0 and self.beta_factor == 1.0

    def covers(self, link_class: LinkClass, time: float) -> bool:
        return (self.link_class is None or self.link_class is link_class) and \
            self.start <= time < self.end


@dataclass(frozen=True)
class Straggler:
    """One rank that starts late and/or computes slowly."""

    rank: int
    compute_factor: float = 1.0
    startup_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.compute_factor <= 0:
            raise ValueError(f"compute_factor must be > 0, got {self.compute_factor}")
        if self.startup_delay < 0:
            raise ValueError(f"startup_delay must be >= 0, got {self.startup_delay}")

    @property
    def is_noop(self) -> bool:
        return self.compute_factor == 1.0 and self.startup_delay == 0.0


@dataclass(frozen=True)
class MessageLoss:
    """Probabilistic drop of transmission attempts over a time window."""

    probability: float
    link_class: LinkClass | None = None
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        _check_window(self.start, self.end)

    @property
    def is_noop(self) -> bool:
        return self.probability == 0.0

    def covers(self, link_class: LinkClass, time: float) -> bool:
        return (self.link_class is None or self.link_class is link_class) and \
            self.start <= time < self.end


@dataclass(frozen=True)
class RankCrash:
    """Fail-stop death of one rank at a simulated time.

    The rank executes normally until ``time``; its first engine event at or
    after that instant kills it instead of resuming it.  A crash time past
    the rank's natural finish is a no-op for that rank.
    """

    rank: int
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if not self.time >= 0.0:
            raise ValueError(f"crash time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class FailureDetector:
    """Timeout-based failure detection, charged in simulated time.

    Survivors notice a dead peer after missing heartbeats: detection
    completes ``heartbeat_interval + suspicion_timeout`` seconds after the
    crash (or after the survivors stall, whichever is later).  The engine
    raises :class:`~repro.sim.engine.RankFailedError` at that instant
    instead of deadlocking.
    """

    heartbeat_interval: float = 100e-6
    suspicion_timeout: float = 400e-6

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}")
        if self.suspicion_timeout <= 0:
            raise ValueError(
                f"suspicion_timeout must be > 0, got {self.suspicion_timeout}")

    @property
    def detection_lag(self) -> float:
        """Sim-time between a crash (or stall) and its notification."""
        return self.heartbeat_interval + self.suspicion_timeout


@dataclass(frozen=True)
class RetryPolicy:
    """Ack-timeout + exponential-backoff retransmission.

    Attempt ``k`` (1-based) that is dropped is retransmitted
    ``timeout * backoff**(k-1)`` seconds after its send completed; after
    ``max_retries`` retransmissions the message is declared lost.
    """

    timeout: float = 100e-6
    backoff: float = 2.0
    max_retries: int = 5

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def delay_after(self, attempt: int) -> float:
        """Backoff delay charged after dropped attempt ``attempt`` (1-based)."""
        return self.timeout * self.backoff ** (attempt - 1)


@dataclass(frozen=True)
class FaultPlan:
    """A composable, immutable description of everything that goes wrong.

    Construct directly or via :func:`resilience_profiles`; pass to
    :func:`~repro.collectives.runner.run_allgather` (``fault_plan=``) or
    :class:`~repro.sim.engine.Engine` (``faults=``).
    """

    link_faults: tuple[LinkFault, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    losses: tuple[MessageLoss, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 0
    crashes: tuple[RankCrash, ...] = ()
    #: Installed by default so crash plans fail loudly instead of hanging;
    #: irrelevant (and never consulted) when ``crashes`` is empty.  Set to
    #: ``None`` to model a system with no failure detection (crashes then
    #: surface as ``DeadlockError``).
    detector: FailureDetector | None = field(default_factory=FailureDetector)

    def __post_init__(self) -> None:
        seen = set()
        for s in self.stragglers:
            if s.rank in seen:
                raise ValueError(f"duplicate straggler spec for rank {s.rank}")
            seen.add(s.rank)
        seen = set()
        for c in self.crashes:
            if c.rank in seen:
                raise ValueError(f"duplicate crash spec for rank {c.rank}")
            seen.add(c.rank)

    def is_noop(self) -> bool:
        """True when the plan perturbs nothing (strict no-op guarantee)."""
        return (
            not self.crashes
            and all(f.is_noop for f in self.link_faults)
            and all(s.is_noop for s in self.stragglers)
            and all(l.is_noop for l in self.losses)
        )

    def peak_loss_probability(self) -> float:
        """Worst per-attempt drop probability across all loss specs."""
        return max((l.probability for l in self.losses), default=0.0)

    def setup_survivable(self, control_messages: int) -> bool:
        """Can a ``control_messages``-message setup negotiation complete?

        Setup runs before simulated time 0 and is priced analytically, so
        windows do not apply; the plan's peak loss probability does.  A
        message survives unless all ``max_retries + 1`` attempts drop, so
        the expected number of permanently lost control messages is
        ``N * p**(max_retries+1)``; once that reaches 1 the multi-round
        negotiation is declared unable to converge.
        """
        if control_messages <= 0:
            return True
        p = self.peak_loss_probability()
        if p == 0.0:
            return True
        return control_messages * p ** (self.retry.max_retries + 1) < 1.0

    def describe(self) -> str:
        parts = []
        if self.link_faults:
            parts.append(f"{len(self.link_faults)} link fault(s)")
        if self.stragglers:
            parts.append(f"{len(self.stragglers)} straggler(s)")
        if self.losses:
            parts.append(f"loss p<={self.peak_loss_probability():g}")
        if self.crashes:
            parts.append(f"{len(self.crashes)} crash(es)")
        return "clean" if not parts else ", ".join(parts)

    def shrink(self, survivors: "Sequence[int]", offset: float) -> "FaultPlan":
        """The plan seen by a recovery round over the compacted survivors.

        ``survivors`` are original rank ids in ascending order; survivor
        ``survivors[i]`` becomes rank ``i`` of the shrunk communicator.
        ``offset`` is the simulated time already elapsed (crash detection
        included): time windows shift left by it, specs whose windows land
        entirely in the past are dropped, and pending crashes of surviving
        ranks fire at ``max(0, time - offset)``.  Startup delays were paid
        in the original round and do not recur; compute factors persist
        (slow hardware stays slow).  Retry policy, seed, and detector carry
        over unchanged.
        """
        remap = {orig: new for new, orig in enumerate(survivors)}
        alive = set(survivors)

        def shift_window(spec):
            start = max(0.0, spec.start - offset)
            end = spec.end if spec.end == math.inf else spec.end - offset
            if end <= 0.0 and not (spec.start == spec.end == 0.0):
                return None  # window entirely in the past
            return start, max(end, start)

        link_faults = []
        for f in self.link_faults:
            win = shift_window(f)
            if win is not None:
                link_faults.append(
                    LinkFault(link_class=f.link_class, alpha_factor=f.alpha_factor,
                              beta_factor=f.beta_factor, start=win[0], end=win[1]))
        losses = []
        for l in self.losses:
            win = shift_window(l)
            if win is not None:
                losses.append(
                    MessageLoss(probability=l.probability, link_class=l.link_class,
                                start=win[0], end=win[1]))
        stragglers = tuple(
            Straggler(rank=remap[s.rank], compute_factor=s.compute_factor)
            for s in self.stragglers
            if s.rank in alive and s.compute_factor != 1.0
        )
        crashes = tuple(
            RankCrash(rank=remap[c.rank], time=max(0.0, c.time - offset))
            for c in self.crashes
            if c.rank in alive
        )
        return FaultPlan(
            link_faults=tuple(link_faults),
            stragglers=stragglers,
            losses=tuple(losses),
            retry=self.retry,
            seed=self.seed,
            crashes=crashes,
            detector=self.detector,
        )

    # ------------------------------------------------------------- (de)serde
    def to_dict(self) -> dict:
        """Canonical JSON-safe form (used by :mod:`repro.exec` spec digests).

        ``math.inf`` windows serialize as the string ``"inf"`` so the output
        round-trips through strict JSON encoders.  ``crashes`` and
        ``detector`` are emitted only when they differ from their defaults,
        so digests computed before fail-stop faults existed (and the cached
        results they address) remain valid.
        """
        def window(x: float) -> float | str:
            return "inf" if x == math.inf else x

        out = {
            "link_faults": [
                {
                    "link_class": f.link_class.name if f.link_class else None,
                    "alpha_factor": f.alpha_factor,
                    "beta_factor": f.beta_factor,
                    "start": f.start,
                    "end": window(f.end),
                }
                for f in self.link_faults
            ],
            "stragglers": [
                {
                    "rank": s.rank,
                    "compute_factor": s.compute_factor,
                    "startup_delay": s.startup_delay,
                }
                for s in self.stragglers
            ],
            "losses": [
                {
                    "probability": l.probability,
                    "link_class": l.link_class.name if l.link_class else None,
                    "start": l.start,
                    "end": window(l.end),
                }
                for l in self.losses
            ],
            "retry": {
                "timeout": self.retry.timeout,
                "backoff": self.retry.backoff,
                "max_retries": self.retry.max_retries,
            },
            "seed": self.seed,
        }
        if self.crashes:
            out["crashes"] = [
                {"rank": c.rank, "time": c.time} for c in self.crashes
            ]
        if self.detector != FailureDetector():
            out["detector"] = (
                None if self.detector is None else {
                    "heartbeat_interval": self.detector.heartbeat_interval,
                    "suspicion_timeout": self.detector.suspicion_timeout,
                }
            )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        def window(x) -> float:
            return math.inf if x == "inf" else float(x)

        def link(name) -> LinkClass | None:
            return LinkClass[name] if name is not None else None

        return cls(
            link_faults=tuple(
                LinkFault(
                    link_class=link(f["link_class"]),
                    alpha_factor=f["alpha_factor"],
                    beta_factor=f["beta_factor"],
                    start=f["start"],
                    end=window(f["end"]),
                )
                for f in data.get("link_faults", ())
            ),
            stragglers=tuple(
                Straggler(**s) for s in data.get("stragglers", ())
            ),
            losses=tuple(
                MessageLoss(
                    probability=l["probability"],
                    link_class=link(l["link_class"]),
                    start=l["start"],
                    end=window(l["end"]),
                )
                for l in data.get("losses", ())
            ),
            retry=RetryPolicy(**data["retry"]) if "retry" in data else RetryPolicy(),
            seed=data.get("seed", 0),
            crashes=tuple(
                RankCrash(**c) for c in data.get("crashes", ())
            ),
            detector=(
                FailureDetector()
                if "detector" not in data
                else None
                if data["detector"] is None
                else FailureDetector(**data["detector"])
            ),
        )


class FaultInjector:
    """Per-run runtime state for one :class:`FaultPlan`.

    Holds the resolved RNG stream and the mutable counters; one injector
    must never be shared across engine runs (counters and the RNG stream
    are run-local state).
    """

    __slots__ = (
        "plan",
        "rng",
        "retry",
        "detector",
        "crash_times",
        "drops",
        "retransmissions",
        "messages_lost",
        "rank_crashes",
        "crash_dropped",
        "_link_faults",
        "_losses",
        "_compute_factor",
        "_startup_delay",
    )

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = resolve_rng(plan.seed)
        self.retry = plan.retry
        self.detector = plan.detector
        #: rank -> fail-stop instant, consulted by the engine at every resume
        self.crash_times = {c.rank: c.time for c in plan.crashes}
        # Counters (read by AllgatherRun.fault_stats and the benches).
        self.drops = 0             #: dropped transmission attempts
        self.retransmissions = 0   #: extra attempts beyond the first
        self.messages_lost = 0     #: messages whose retry budget ran out
        self.rank_crashes = 0      #: ranks actually killed (crash time reached)
        self.crash_dropped = 0     #: in-flight sends dropped by a sender crash
        # Pre-filter no-op specs so the strict-no-op guarantee costs nothing
        # per message and a zero-probability loss spec never touches the RNG.
        self._link_faults = tuple(f for f in plan.link_faults if not f.is_noop)
        self._losses = tuple(l for l in plan.losses if not l.is_noop)
        self._compute_factor = {
            s.rank: s.compute_factor for s in plan.stragglers if s.compute_factor != 1.0
        }
        self._startup_delay = {
            s.rank: s.startup_delay for s in plan.stragglers if s.startup_delay > 0.0
        }

    # ----------------------------------------------------------------- fabric
    def perturb(
        self,
        link_class: LinkClass,
        time: float,
        alpha: float,
        hop_extra: float,
        inv_beta: float,
        link_inv_beta: float,
    ) -> tuple[float, float, float, float]:
        """Apply active link degradations to one attempt's cost inputs.

        Returns the inputs unchanged (bit-identical floats) when no
        non-trivial fault covers ``(link_class, time)``.
        """
        for f in self._link_faults:
            if f.covers(link_class, time):
                af = f.alpha_factor
                if af != 1.0:
                    alpha *= af
                    hop_extra *= af
                bf = f.beta_factor
                if bf != 1.0:
                    inv_beta /= bf
                    link_inv_beta /= bf
        return alpha, hop_extra, inv_beta, link_inv_beta

    def should_drop(self, link_class: LinkClass, time: float) -> bool:
        """One drop decision for one transmission attempt.

        Independent loss specs compose: the attempt survives only if it
        survives every covering spec.  Exactly one RNG draw is made per
        attempt that at least one spec covers — attempts nothing covers
        leave the stream untouched.
        """
        survive = 1.0
        for l in self._losses:
            if l.covers(link_class, time):
                survive *= 1.0 - l.probability
        if survive == 1.0:
            return False
        return float(self.rng.random()) >= survive

    # ----------------------------------------------------------------- engine
    def compute_factor(self, rank: int) -> float:
        return self._compute_factor.get(rank, 1.0)

    def startup_delay(self, rank: int) -> float:
        return self._startup_delay.get(rank, 0.0)

    @property
    def has_stragglers(self) -> bool:
        return bool(self._compute_factor or self._startup_delay)

    def stats(self) -> dict[str, int]:
        """Counter snapshot for run reports."""
        out = {
            "drops": self.drops,
            "retransmissions": self.retransmissions,
            "messages_lost": self.messages_lost,
        }
        # Crash counters appear only under crash plans so fault_stats of
        # pre-existing (crash-free) runs — and their golden pins — are
        # byte-identical to before fail-stop faults existed.
        if self.crash_times:
            out["rank_crashes"] = self.rank_crashes
            out["crash_dropped"] = self.crash_dropped
        return out


#: Profile names offered by the CLI and the resilience bench, in report order.
PROFILE_NAMES = (
    "clean", "jitter", "straggler", "lossy", "setup_loss",
    "crash", "crash_recover",
)

#: Recovery policy the bench/CLI pair with each crash profile: ``crash``
#: exercises the setup-free degrade path, ``crash_recover`` the full
#: communicator-shrink replan.  Non-crash profiles are absent (callers fall
#: back to the ``"abort"`` default).
CRASH_PROFILE_MODES = {"crash": "degrade", "crash_recover": "shrink"}


def resilience_profiles(n_ranks: int, seed: int = 0) -> dict[str, FaultPlan | None]:
    """The named fault profiles of the per-algorithm resilience study.

    ``clean`` maps to ``None`` (no injector installed at all — the true
    baseline).  The others are scaled to ``n_ranks`` where they need a
    concrete rank (stragglers) and are deterministic given ``seed``.
    """
    if n_ranks <= 0:
        raise ValueError(f"n_ranks must be > 0, got {n_ranks}")
    straggler_ranks = sorted({n_ranks // 3, (2 * n_ranks) // 3})
    # Crash ranks/times are deterministic in n_ranks alone; the times are
    # chosen inside the makespan of the bench's small cells so the crashes
    # actually fire (a crash past the natural finish is a no-op).
    crash_ranks = sorted({n_ranks // 4, (3 * n_ranks) // 4})
    crash_specs = tuple(
        RankCrash(rank=r, time=4e-6 * (i + 1))
        for i, r in enumerate(crash_ranks)
    )
    return {
        # Degraded fabric: all classes mildly slower, the global links
        # heavily so for the first 500us (a transient congestion burst).
        "jitter": FaultPlan(
            link_faults=(
                LinkFault(alpha_factor=2.0, beta_factor=0.8),
                LinkFault(
                    link_class=LinkClass.INTER_GROUP,
                    alpha_factor=4.0,
                    beta_factor=0.4,
                    end=500e-6,
                ),
            ),
            seed=seed,
        ),
        # Two late, slow ranks — the paper's load-imbalance story under
        # a compute-side perturbation.
        "straggler": FaultPlan(
            stragglers=tuple(
                Straggler(rank=r, compute_factor=8.0, startup_delay=150e-6)
                for r in straggler_ranks
            ),
            seed=seed,
        ),
        # 5% attempt loss everywhere; the retry budget makes permanent
        # loss astronomically unlikely (p^7 per message), so runs complete
        # and the cost shows up as retransmissions + backoff.
        "lossy": FaultPlan(
            losses=(MessageLoss(probability=0.05),),
            retry=RetryPolicy(timeout=50e-6, backoff=2.0, max_retries=6),
            seed=seed,
        ),
        # Control-plane blackout during pattern negotiation only: the loss
        # window is empty at runtime (start == end == 0) but the peak
        # probability marks any setup needing control messages infeasible,
        # driving the graceful-degradation fallback to the setup-free
        # naive algorithm.
        "setup_loss": FaultPlan(
            losses=(MessageLoss(probability=0.9, start=0.0, end=0.0),),
            retry=RetryPolicy(timeout=50e-6, backoff=2.0, max_retries=1),
            seed=seed,
        ),
        # Fail-stop: two ranks die mid-collective (one early, one later).
        # The two profiles share the same crash plan; they differ only in
        # the recovery policy paired with them (CRASH_PROFILE_MODES):
        # ``crash`` measures the degrade-to-naive path, ``crash_recover``
        # the communicator-shrink replan.
        "crash": FaultPlan(crashes=crash_specs, seed=seed),
        "crash_recover": FaultPlan(crashes=crash_specs, seed=seed),
    }


def get_profile(name: str, n_ranks: int, seed: int = 0) -> FaultPlan | None:
    """Resolve one named profile (``"clean"`` returns ``None``)."""
    if name == "clean":
        return None
    profiles = resilience_profiles(n_ranks, seed=seed)
    try:
        return profiles[name]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {name!r}; available: {', '.join(PROFILE_NAMES)}"
        ) from None
