"""Serialized resources: the unit of contention in the simulator.

A :class:`SerialResource` serves one transfer at a time.  Claims are made in
simulation-time order (the engine processes events monotonically), so a
greedy ``next_free`` timestamp is sufficient and O(1) per claim — this is
what keeps paper-scale runs (thousands of ranks, millions of messages)
feasible in pure Python.
"""

from __future__ import annotations

from typing import Hashable


class SerialResource:
    """A single-server FIFO resource identified by ``key``.

    ``claim(earliest, duration)`` reserves the resource for ``duration``
    starting no earlier than ``earliest`` and no earlier than the end of the
    previous claim, and returns ``(start, end)``.

    Invariant: ``busy_time`` is total true occupancy.  Callers that extend a
    reservation in place (the fabric's cut-through adjustment, which holds a
    stage until upstream data has streamed through) must credit the
    extension to ``busy_time`` alongside ``next_free`` — pushing only
    ``next_free`` makes :meth:`ResourcePool.utilization` under-report.
    """

    __slots__ = ("key", "next_free", "busy_time", "claims")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self.next_free = 0.0
        self.busy_time = 0.0
        self.claims = 0

    def claim(self, earliest: float, duration: float) -> tuple[float, float]:
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        start = earliest if earliest > self.next_free else self.next_free
        end = start + duration
        self.next_free = end
        self.busy_time += duration
        self.claims += 1
        return start, end

    def peek(self, earliest: float) -> float:
        """Earliest possible start time without claiming."""
        return earliest if earliest > self.next_free else self.next_free

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SerialResource({self.key!r}, next_free={self.next_free:.3e})"


class ResourcePool:
    """Lazily materialized map of resource key -> :class:`SerialResource`."""

    __slots__ = ("_resources",)

    def __init__(self) -> None:
        self._resources: dict[Hashable, SerialResource] = {}

    def get(self, key: Hashable) -> SerialResource:
        res = self._resources.get(key)
        if res is None:
            res = SerialResource(key)
            self._resources[key] = res
        return res

    def __len__(self) -> int:
        return len(self._resources)

    def items(self):
        return self._resources.items()

    def utilization(self, horizon: float) -> dict[Hashable, float]:
        """Busy fraction of each materialized resource over ``[0, horizon]``."""
        if horizon <= 0:
            return {key: 0.0 for key in self._resources}
        return {key: res.busy_time / horizon for key, res in self._resources.items()}
