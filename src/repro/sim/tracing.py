"""Optional message tracing and aggregate statistics.

Attach a :class:`TraceCollector` to an :class:`~repro.sim.engine.Engine` to
record every message's (src, dst, size, class, timing).  The benchmarks use
the per-class aggregates to report, e.g., how many bytes crossed global
links under each algorithm — the quantity the paper's design minimizes.

The collector also tracks *delivery* separately from *sending*: a message
sent into a lossy fabric whose retry budget runs out arrives at ``inf`` and
counts as sent-but-lost.  The per-class (sent, delivered, lost, attempts)
aggregates are the conservation laws the :mod:`repro.verify` fuzzer checks
on every run — under no fault plan, sent == delivered per class and every
message takes exactly one attempt.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.cluster.spec import LinkClass
from repro.sim.fabric import MessageTiming


@dataclass(frozen=True, slots=True)
class MessageRecord:
    src: int
    dst: int
    nbytes: int
    tag: int
    link_class: LinkClass
    post_time: float
    send_complete: float
    arrival: float           #: ``inf`` for a message lost under a fault plan
    attempts: int = 1        #: transmissions including retries (fault plans)


class TraceCollector:
    """Accumulates message records and per-class aggregates."""

    def __init__(self, keep_records: bool = True, max_records: int = 1_000_000):
        self.keep_records = keep_records
        self.max_records = max_records
        self.records: list[MessageRecord] = []
        self.count_by_class: Counter[LinkClass] = Counter()
        self.bytes_by_class: Counter[LinkClass] = Counter()
        self.delivered_count_by_class: Counter[LinkClass] = Counter()
        self.delivered_bytes_by_class: Counter[LinkClass] = Counter()
        self.lost_by_class: Counter[LinkClass] = Counter()
        self.attempts_by_class: Counter[LinkClass] = Counter()
        self.sends_by_rank: Counter[int] = Counter()
        self.recvs_by_rank: Counter[int] = Counter()

    def record(
        self,
        src: int,
        dst: int,
        nbytes: int,
        tag: int,
        timing: MessageTiming,
        post_time: float = 0.0,
    ) -> None:
        cls = timing.link_class
        self.count_by_class[cls] += 1
        self.bytes_by_class[cls] += nbytes
        self.attempts_by_class[cls] += timing.attempts
        if timing.arrival == math.inf:
            self.lost_by_class[cls] += 1
        else:
            self.delivered_count_by_class[cls] += 1
            self.delivered_bytes_by_class[cls] += nbytes
        self.sends_by_rank[src] += 1
        self.recvs_by_rank[dst] += 1
        if self.keep_records and len(self.records) < self.max_records:
            self.records.append(
                MessageRecord(src, dst, nbytes, tag, cls,
                              post_time, timing.send_complete, timing.arrival,
                              timing.attempts)
            )

    # ---------------------------------------------------------------- queries
    @property
    def total_messages(self) -> int:
        return sum(self.count_by_class.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_class.values())

    @property
    def total_delivered_messages(self) -> int:
        return sum(self.delivered_count_by_class.values())

    @property
    def total_lost_messages(self) -> int:
        """Messages sent but never delivered (retry budget exhausted)."""
        return sum(self.lost_by_class.values())

    @property
    def total_attempts(self) -> int:
        """Transmission attempts including retries (== messages when clean)."""
        return sum(self.attempts_by_class.values())

    def off_socket_messages(self) -> int:
        """Messages that left a socket (the paper's ``n_off`` aggregate)."""
        return sum(
            count
            for cls, count in self.count_by_class.items()
            if cls not in (LinkClass.SELF, LinkClass.INTRA_SOCKET)
        )

    def max_sends_per_rank(self) -> int:
        return max(self.sends_by_rank.values(), default=0)

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-class conservation aggregates for reports and invariants.

        The dict is pure JSON data, so it survives :meth:`AllgatherRun.slim`
        and the result cache (as ``AllgatherRun.trace_summary``); the
        :mod:`repro.verify` conservation checks run on exactly this shape.
        """
        return {
            cls.name: {
                "messages": self.count_by_class.get(cls, 0),
                "bytes": self.bytes_by_class.get(cls, 0),
                "delivered_messages": self.delivered_count_by_class.get(cls, 0),
                "delivered_bytes": self.delivered_bytes_by_class.get(cls, 0),
                "lost_messages": self.lost_by_class.get(cls, 0),
                "attempts": self.attempts_by_class.get(cls, 0),
            }
            for cls in LinkClass
        }
