"""Rank-facing MPI-like API: the :class:`SimCommunicator`.

Programs receive one of these and use it like mpi4py's ``Comm``: post
non-blocking operations (``isend``/``irecv``), then ``yield`` a wait
condition (``wait``/``waitall``), mix in local work (``compute``/``memcpy``)
and synchronize (``barrier``).  Every posted call charges the configured
per-call CPU overhead to the rank's local clock, so posting 1500 receives
is not free — one of the naive algorithm's real costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.sim.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

#: Wildcard source for :meth:`SimCommunicator.irecv`, like ``MPI_ANY_SOURCE``.
ANY_SOURCE: int = -1


class SimCommunicator:
    """Per-rank handle into the engine; mirrors a tiny slice of ``MPI_Comm``."""

    __slots__ = ("engine", "rank", "_rank_now", "_call_overhead", "_memcpy_beta")

    def __init__(self, engine: "Engine", rank: int):
        self.engine = engine
        self.rank = rank
        # Hot-path caches: every isend/irecv charges the per-call overhead,
        # so resolve the constants (and the clock list) once per rank
        # instead of chasing engine.machine.params on each post.
        self._rank_now = engine.rank_now
        self._call_overhead = engine.machine.params.call_overhead
        self._memcpy_beta = engine.machine.params.memcpy_beta

    # ------------------------------------------------------------------ intro
    @property
    def size(self) -> int:
        """Communicator size (``MPI_Comm_size``)."""
        return self.engine.n_ranks

    @property
    def now(self) -> float:
        """This rank's local virtual clock."""
        return self.engine.rank_now[self.rank]

    # ------------------------------------------------------------ nonblocking
    def isend(self, dst: int, nbytes: int, tag: int = 0, payload: Any = None) -> Request:
        """Post a non-blocking send of ``nbytes`` (+ optional payload object)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        # Per-call CPU overhead, charged inline (one method call per posted
        # operation adds up over million-message sweeps).
        self._rank_now[self.rank] += self._call_overhead
        return self.engine.post_send(self.rank, dst, nbytes, tag, payload)

    def irecv(self, src: int = ANY_SOURCE, tag: int = 0) -> Request:
        """Post a non-blocking receive from ``src`` (default any source)."""
        self._rank_now[self.rank] += self._call_overhead
        source = None if src == ANY_SOURCE else src
        if source is not None and not 0 <= source < self.size:
            raise ValueError(f"source rank {source} out of range [0, {self.size})")
        return self.engine.post_recv(self.rank, source, tag)

    # -------------------------------------------------------------- conditions
    def wait(self, request: Request):
        """Condition: block until ``request`` completes."""
        return self.engine.waitall_condition((request,))

    def waitall(self, requests: Iterable[Request]):
        """Condition: block until every request completes."""
        return self.engine.waitall_condition(requests)

    def compute(self, seconds: float):
        """Condition: model ``seconds`` of local computation."""
        return self.engine.compute_condition(seconds)

    def memcpy(self, nbytes: int):
        """Condition: model a local memory copy of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.engine.compute_condition(self.engine.machine.params.memcpy_time(nbytes))

    def barrier(self):
        """Condition: synchronize with all live ranks."""
        return self.engine.barrier_condition()

    # ------------------------------------------------------------------ sugar
    def charge_memcpy(self, nbytes: int) -> None:
        """Advance the local clock by a memcpy without yielding.

        Useful inside tight loops where yielding per copy would be wasteful;
        the time still lands on this rank's critical path.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self._rank_now[self.rank] += nbytes / self._memcpy_beta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimCommunicator(rank={self.rank}/{self.size})"
