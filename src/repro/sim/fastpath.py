"""Engine-free schedule execution: the hybrid fast path.

:func:`execute_schedule` replays a static :class:`~repro.sim.schedule.Schedule`
with exactly the discrete-event engine's semantics — same event heap ordering
``(time, seq, rank)``, same sequence-number allocation, same FIFO matching,
same resource-claim arithmetic (shared with :class:`~repro.sim.fabric.Fabric`
via :func:`~repro.sim.fabric._resolve_machine_costs`) — but without generator
resumes, :class:`~repro.sim.request.Request` objects, or per-message method
dispatch.  The result is bit-identical to the engine for every pristine run
(no faults, no jitter, no tracing): ``sim_mode="auto"`` is a pure speedup.

Two ideas make it fast:

* **Vectorized transmit-cost math.**  Message cohorts share their pricing: a
  stage's messages differ only in endpoints and byte counts, so compilation
  gathers the distinct ``(socket-pair plan, nbytes)`` combinations across the
  whole schedule and prices them in one numpy pass (``m/beta``, ``alpha +
  m/beta``, NIC/link costs — elementwise IEEE ops identical to the scalar
  fabric arithmetic).  The replay loop then runs over *pre-priced* opcode
  tuples: no float arithmetic beyond the claim recurrences themselves.
* **Scalar claim recurrences, on purpose.**  A resource's claim sequence
  ``end_i = max(post_i, end_{i-1}) + dur_i`` is *not* reformulated as a
  cumulative sum: floating-point addition is non-associative, and any
  prefix-sum regrouping would break bit-identity with the engine.  Claims
  stay in event order over plain float state.

Three executor tiers share those ideas, dispatched by eligibility:
single-stage schedules run the fully batched :class:`_BatchPlan` sweep;
every other fully matched schedule (multi-stage CN/DH/Bruck, budgeted
runs) runs the heap-driven :class:`_MultiStagePlan` executor, which keeps
the engine's event structure and makes segment interiors static; the
scalar opcode interpreter (:func:`_interpret`) remains as the reference
tier for analytic costing and unmatched-receive deadlocks.  All compiled
products are memoized across runs in the structural plan cache
(:mod:`repro.sim.plancache`).

``model_contention=False`` gives the closed-form Hockney costing
(``sim_mode="analytic"``): every message is priced as if it were alone —
``arrival = post + max(stage durations) + hop_extra`` — which is exact when
no resource queue ever binds (see :func:`repro.sim.schedule.contention_free`)
and a lower bound otherwise (claims only ever delay stages).

Watchdog budgets (``max_sim_time``/``max_events``) are honored with the
engine's exact boundary semantics: an event with timestamp equal to
``max_sim_time`` is processed (strictly-greater trips the budget), and
processing exactly ``max_events`` events is allowed (the attempt to process
one more trips it).  Event counting is identical — one event per heap pop —
so a budgeted run trips on the same event in both paths.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.engine import DeadlockError, SimTimeoutError
from repro.sim.fabric import _machine_cost_table, _resolve_machine_costs
from repro.sim.plancache import _MISS, PLAN_CACHE, machine_digest
from repro.sim.schedule import spawn_wake_order, static_matching, structural_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine
    from repro.sim.schedule import Schedule

# Compiled opcodes (first tuple element).  ``key`` is the prebuilt match
# key ``(src, tag)`` — precomputing it saves one tuple allocation per
# message in the replay loop.  Charges compile to *bare floats*
# (their memcpy duration) rather than tuples: they are the most frequent op
# in combining schedules and a ``type(op) is float`` check is the cheapest
# dispatch CPython offers.
_SEND_SELF = 1   #: (1, dst, key, nbytes, dur)
_SEND_LOCAL = 2  #: (2, dst, key, nbytes, port_dur, hop_extra)
_SEND_NODE = 3   #: (3, dst, key, nbytes, port_dur, nic_dur, hop_extra, nsrc, ndst)
_SEND_GROUP = 4  #: (4, dst, key, nbytes, port_dur, nic_dur, link_dur, hop_extra,
                 #:  nsrc, ndst, lane_groups, fixed_lanes)
_RECV = 5        #: (5, (src, tag))
_SEND_FREE = 7   #: (7, dst, key, nbytes, port_dur, free_extra) — analytic mode

#: Tolerance contract for the analytic (closed-form) path on contention-free
#: schedules: ``|analytic - des| / des <= ANALYTIC_RTOL``.  The closed form
#: is a *lower bound* on the DES time (resource claims can only delay), and
#: for single-stage contention-free schedules it is bit-identical.  Across
#: stages the per-stage analyzer cannot exclude a straggler's claim binding
#: an early next-stage message; the calibration grid (every contention-free
#: cell the scenario generators produce, checked in
#: tests/sim/test_hybrid.py) measures a gap of exactly 0.0, and the 1%
#: headroom here bounds the residual the analysis cannot rule out.
ANALYTIC_RTOL = 1e-2


class FastRunOutcome:
    """What :func:`execute_schedule` returns (mirrors the engine's outputs)."""

    __slots__ = (
        "simulated_time",
        "finish_times",
        "messages_sent",
        "bytes_sent",
        "events_processed",
    )

    def __init__(self, simulated_time, finish_times, messages_sent,
                 bytes_sent, events_processed):
        self.simulated_time = simulated_time
        self.finish_times = finish_times
        self.messages_sent = messages_sent
        self.bytes_sent = bytes_sent
        self.events_processed = events_processed


def _compile(schedule: "Schedule", machine: "Machine", model_contention: bool):
    """Price every op and split each rank's list into wait-delimited segments.

    Returns ``(segments, n_lanes)``; ``segments[r]`` is ``None`` or a list of
    ``(ops_tuple, ends_with_wait)``.  All float constants are computed here —
    vectorized over the distinct ``(socket plan, nbytes)`` cohorts — so the
    replay loop's only arithmetic is claim max/add chains.
    """
    params = machine.params
    spec = machine.spec
    rps = spec.ranks_per_socket
    n_sockets = spec.n_sockets
    adaptive = params.adaptive_routing
    memcpy_beta = params.memcpy_beta
    nic_overhead = params.nic_message_overhead
    link_overhead = params.link_message_overhead
    costs = _machine_cost_table(machine)

    # Pass 1: distinct pricing cohorts across the whole schedule.
    distinct_send: dict[tuple[int, int], tuple] = {}
    distinct_charge: set[int] = set()
    for rank, ops in enumerate(schedule.ops):
        if not ops:
            continue
        src_base = (rank // rps) * n_sockets
        for op in ops:
            kind = op[0]
            if kind == "send":
                dst, nbytes = op[1], op[2]
                if dst == rank:
                    distinct_charge.add(nbytes)  # self-send = memcpy pricing
                    continue
                key = src_base + dst // rps
                entry = costs.get(key)
                if entry is None:
                    entry = _resolve_machine_costs(machine, adaptive, rank, dst)
                    costs[key] = entry
                distinct_send.setdefault((key, nbytes), entry)
            elif kind == "charge":
                distinct_charge.add(op[1])

    # Pass 2: one numpy sweep prices every cohort.  Elementwise float64 ops
    # are IEEE-identical to the fabric's scalar expressions, so the replay
    # inherits bit-exact per-message costs.
    charge_vals = sorted(distinct_charge)
    charge_price = dict(zip(
        charge_vals,
        (np.asarray(charge_vals, dtype=np.float64) / memcpy_beta).tolist(),
    ))
    pairs = list(distinct_send.items())
    price: dict[tuple[int, int], tuple] = {}
    if pairs:
        nb = np.asarray([pk[1] for pk, _ in pairs], dtype=np.float64)
        alpha = np.asarray([entry[1] for _, entry in pairs])
        inv_beta = np.asarray([entry[3] for _, entry in pairs])
        link_inv_beta = np.asarray([entry[4] for _, entry in pairs])
        dur = nb * inv_beta
        port_dur = (alpha + dur).tolist()
        nic_dur = (nic_overhead + dur).tolist()
        link_dur = (link_overhead + nb * link_inv_beta).tolist()
        for i, (pk, entry) in enumerate(pairs):
            price[pk] = (entry, port_dur[i], nic_dur[i], link_dur[i])

    # Lane keys -> dense indices into the replay's float state.
    lane_index: dict = {}

    def _lane(k):
        i = lane_index.get(k)
        if i is None:
            lane_index[k] = i = len(lane_index)
        return i

    lanes_by_key: dict[int, tuple] = {}  # socket key -> (groups, fixed)

    # Pass 3: emit priced opcode segments.
    segments: list[list[tuple] | None] = []
    for rank, ops in enumerate(schedule.ops):
        if ops is None:
            segments.append(None)
            continue
        src_base = (rank // rps) * n_sockets
        segs: list[tuple] = []
        cur: list[tuple] = []
        for op in ops:
            kind = op[0]
            if kind == "wait":
                segs.append((tuple(cur), True))
                cur = []
            elif kind == "charge":
                cur.append(charge_price[op[1]])
            elif kind == "recv":
                cur.append((_RECV, (op[1], op[2])))
            else:  # send
                dst, nbytes, tag = op[1], op[2], op[3]
                key = (rank, tag)
                if dst == rank:
                    cur.append((_SEND_SELF, dst, key, nbytes, charge_price[nbytes]))
                    continue
                skey = src_base + dst // rps
                entry, pd, nd, ld = price[(skey, nbytes)]
                hop_extra, nsrc, ndst = entry[2], entry[5], entry[6]
                group_keys, fixed_keys = entry[7], entry[8]
                has_lanes = group_keys is not None or bool(fixed_keys)
                if not model_contention:
                    if nsrc < 0:
                        extra = pd
                    elif has_lanes:
                        extra = max(pd, nd, ld)
                    else:
                        extra = pd if pd > nd else nd
                    cur.append((_SEND_FREE, dst, key, nbytes, pd, extra + hop_extra))
                elif nsrc < 0:
                    cur.append((_SEND_LOCAL, dst, key, nbytes, pd, hop_extra))
                elif not has_lanes:
                    cur.append((_SEND_NODE, dst, key, nbytes, pd, nd,
                                hop_extra, nsrc, ndst))
                else:
                    lanes = lanes_by_key.get(skey)
                    if lanes is None:
                        if group_keys is not None:
                            lanes = (tuple(tuple(_lane(k) for k in g)
                                           for g in group_keys), ())
                        else:
                            lanes = (None, tuple(_lane(k) for k in fixed_keys))
                        lanes_by_key[skey] = lanes
                    cur.append((_SEND_GROUP, dst, key, nbytes, pd, nd, ld,
                                hop_extra, nsrc, ndst, lanes[0], lanes[1]))
        if cur or not segs:
            segs.append((tuple(cur), False))
        segments.append(segs)
    return segments, len(lane_index)


def compiled_for(schedule: "Schedule", machine: "Machine", model_contention: bool):
    """Memoized :func:`_compile` via the structural plan cache.

    The key is ``(schedule structural digest, machine digest, flavor)`` —
    see :mod:`repro.sim.plancache` — so compilation is shared across runs,
    across alternating machines (the old single-entry memo evicted on every
    switch), and across distinct ``Schedule`` objects describing the same
    pattern (a rebuilt sweep cell replays a cached plan).
    """
    key = (structural_digest(schedule), machine_digest(machine),
           "segments", model_contention)
    entry = PLAN_CACHE.get(key)
    if entry is _MISS:
        entry = _compile(schedule, machine, model_contention)
        PLAN_CACHE.put(key, entry)
    return entry


class _BatchPlan:
    """Precompiled cohort tables for the single-stage batched executor.

    Eligible schedules (every rank: ops with at most one ``wait``, as the
    final op) have a *statically known* global claim order: all ranks run
    their one posting segment at t=0 in spawn order, and nothing a wake
    event does can affect a claim.  That turns the event-driven replay
    into per-resource wavefront recurrences over message cohorts — the
    numpy-batched stage processing of the hybrid design:

    * posts are compile-time constants (per-rank ``np.add.accumulate``
      over the op deltas — sequential adds, bit-identical to the scalar
      clock) gathered once;
    * per run, each resource family is swept in one tight loop in global
      message order (send ports, NIC-tx, adaptive lanes, NIC-rx, recv
      ports) — the same ``end = max(post, next_free) + dur`` scalar
      recurrences as the engine, minus all opcode dispatch;
    * matching is static (k-th posted receive of a ``(src, tag)`` key
      pairs with the k-th arrival — FIFO on both sides), so completions
      and per-rank waitall folds reduce to ``np.maximum`` /
      ``np.maximum.reduceat`` (max is order-free, hence bit-exact).

    Watchdog budgets force the heap-driven multi-stage executor instead:
    budget trip points are mid-run engine states that a single batched
    sweep does not reproduce, but per-pop budget checks do.
    """

    __slots__ = (
        "n_live", "n_wakes", "messages", "bytes_total", "now_final",
        "has_wait", "live", "post", "pdur", "ndur", "ldur", "hop", "dsts",
        "lane_spec", "ends0", "phase1", "phase2", "phase3", "phase4",
        "phase5", "kinds", "recv_match", "recv_posts", "recv_dsts",
        "recv_offsets", "send_ranks", "send_offsets", "n_lanes",
    )


def _compile_batch(schedule: "Schedule", machine: "Machine"):
    """Build a :class:`_BatchPlan`, or ``None`` when the schedule does not
    qualify (multi-stage, or a receive with no matching send — the latter
    deadlocks, which the interpreter reports exactly)."""
    segments, n_lanes = compiled_for(schedule, machine, True)
    call_overhead = machine.params.call_overhead
    spec = machine.spec
    node_of = spec.node_of

    n = schedule.n_ranks
    now_final = [0.0] * n
    has_wait = [False] * n
    live = [False] * n
    # Global per-message tables, in execution (= claim) order.
    post: list[float] = []
    pdur: list[float] = []
    ndur: list[float] = []
    ldur: list[float] = []
    hop: list[float] = []
    dsts: list[int] = []
    kinds: list[int] = []       # 0 self, 1 local, 2 node, 3 group
    nsrcs: list[int] = []
    ndsts: list[int] = []
    lane_spec: list[tuple] = []  # kind 3 only: (lane_groups, fixed_lanes)
    ends0: list[float] = []
    msg_src: list[int] = []
    bytes_total = 0
    by_key: dict[tuple, deque] = {}  # (dst, src, tag) -> send index FIFO
    rank_recvs: list[tuple] = []     # (rank, [keys in op order], [posts])

    for rank in range(n):
        segs = segments[rank]
        if segs is None:
            continue
        live[rank] = True
        if len(segs) > 1:
            return None
        ops, ends_with_wait = segs[0]
        has_wait[rank] = ends_with_wait
        if not ops:
            continue
        deltas: list[float] = []
        send_at: list[tuple[int, int]] = []  # (delta idx, message idx)
        recv_keys: list[tuple] = []
        recv_at: list[int] = []
        for op in ops:
            if op.__class__ is float:
                deltas.append(op)
                continue
            code = op[0]
            deltas.append(call_overhead)
            if code == _RECV:
                recv_keys.append(op[1])
                recv_at.append(len(deltas) - 1)
                continue
            mi = len(post)
            send_at.append((len(deltas) - 1, mi))
            dst = op[1]
            dsts.append(dst)
            msg_src.append(rank)
            bytes_total += op[3]
            k = (dst,) + op[2]
            q = by_key.get(k)
            if q is None:
                by_key[k] = q = deque()
            q.append(mi)
            if code == _SEND_SELF:
                kinds.append(0)
                pdur.append(op[4])
                ndur.append(0.0)
                ldur.append(0.0)
                hop.append(0.0)
                nsrcs.append(-1)
                ndsts.append(-1)
                lane_spec.append(())
            elif code == _SEND_LOCAL:
                kinds.append(1)
                pdur.append(op[4])
                ndur.append(0.0)
                ldur.append(0.0)
                hop.append(op[5])
                nsrcs.append(-1)
                ndsts.append(-1)
                lane_spec.append(())
            elif code == _SEND_NODE:
                kinds.append(2)
                pdur.append(op[4])
                ndur.append(op[5])
                ldur.append(0.0)
                hop.append(op[6])
                nsrcs.append(op[7])
                ndsts.append(op[8])
                lane_spec.append(())
            else:  # _SEND_GROUP
                kinds.append(3)
                pdur.append(op[4])
                ndur.append(op[5])
                ldur.append(op[6])
                hop.append(op[7])
                nsrcs.append(op[8])
                ndsts.append(op[9])
                lane_spec.append((op[10], op[11]))
            post.append(0.0)
            ends0.append(0.0)
        accl = np.add.accumulate(
            np.asarray(deltas, dtype=np.float64)
        ).tolist()
        now_final[rank] = accl[-1]
        for di, mi in send_at:
            p = accl[di]
            post[mi] = p
            if kinds[mi] == 0:  # self-send completes at post + memcpy
                ends0[mi] = p + pdur[mi]
        if recv_keys:
            rank_recvs.append((rank, recv_keys, [accl[d] for d in recv_at]))

    # Static matching: k-th posted receive of a (src, tag) key pairs with
    # the k-th message of that key (arrival order equals global post order
    # for a shared key: every shared resource serializes them in order).
    recv_match: list[int] = []
    recv_posts: list[float] = []
    recv_dsts: list[int] = []
    recv_offsets: list[int] = []
    for rank, keys, posts in rank_recvs:
        recv_offsets.append(len(recv_match))
        recv_dsts.append(rank)
        for key, p in zip(keys, posts):
            q = by_key.get((rank,) + key)
            if not q:
                return None  # unmatched receive: interpreter reports deadlock
            recv_match.append(q.popleft())
            recv_posts.append(p)

    # Per-resource sweep orders (global message order within each group).
    phase1: list[list[int]] = []   # send ports, per src rank
    phase2: list[list[int]] = []   # NIC tx, per src node
    phase3: list[int] = []         # shared-link lanes, global order
    phase4: list[list[int]] = []   # NIC rx, per dst node
    phase5: list[list[int]] = []   # recv ports, per dst rank
    p1: dict[int, list[int]] = {}
    p2: dict[int, list[int]] = {}
    p4: dict[int, list[int]] = {}
    p5: dict[int, list[int]] = {}
    for i, kind in enumerate(kinds):
        if kind == 0:
            continue
        p1.setdefault(msg_src[i], []).append(i)
        p5.setdefault(dsts[i], []).append(i)
        if kind >= 2:
            p2.setdefault(nsrcs[i], []).append(i)
            p4.setdefault(ndsts[i], []).append(i)
            if kind == 3:
                phase3.append(i)
    phase1 = list(p1.values())
    phase2 = list(p2.values())
    phase4 = list(p4.values())
    phase5 = list(p5.values())

    # Send-completion folds per rank: sends are contiguous per rank in
    # global order, so a reduceat over (offset, rank) pairs suffices.
    send_ranks: list[int] = []
    send_offsets: list[int] = []
    prev_rank = -1
    for i, r in enumerate(msg_src):
        if r != prev_rank:
            send_ranks.append(r)
            send_offsets.append(i)
            prev_rank = r

    plan = _BatchPlan()
    plan.n_live = sum(live)
    plan.n_wakes = sum(1 for r in range(n) if live[r] and has_wait[r])
    plan.messages = len(post)
    plan.bytes_total = bytes_total
    plan.now_final = now_final
    plan.has_wait = has_wait
    plan.live = live
    plan.post = post
    plan.pdur = pdur
    plan.ndur = ndur
    plan.ldur = ldur
    plan.hop = hop
    plan.dsts = dsts
    plan.kinds = kinds
    plan.lane_spec = lane_spec
    plan.ends0 = ends0
    plan.phase1 = phase1
    plan.phase2 = phase2
    plan.phase3 = phase3
    plan.phase4 = phase4
    plan.phase5 = phase5
    plan.recv_match = np.asarray(recv_match, dtype=np.intp)
    plan.recv_posts = np.asarray(recv_posts, dtype=np.float64)
    plan.recv_dsts = recv_dsts
    plan.recv_offsets = np.asarray(recv_offsets, dtype=np.intp)
    plan.send_ranks = send_ranks
    plan.send_offsets = np.asarray(send_offsets, dtype=np.intp)
    plan.n_lanes = n_lanes
    return plan


def batch_plan_for(schedule: "Schedule", machine: "Machine"):
    """Memoized :func:`_compile_batch` via the structural plan cache.

    ``None`` (schedule not single-stage eligible) is cached too: deciding
    ineligibility costs a full compile walk.
    """
    key = (structural_digest(schedule), machine_digest(machine), "batch")
    plan = PLAN_CACHE.get(key)
    if plan is _MISS:
        plan = _compile_batch(schedule, machine)
        PLAN_CACHE.put(key, plan)
    return plan


def _execute_batch(plan: _BatchPlan) -> FastRunOutcome:
    """One run of a single-stage batched plan (see :class:`_BatchPlan`)."""
    post = plan.post
    pdur = plan.pdur
    ndur = plan.ndur
    ldur = plan.ldur
    hop = plan.hop
    kinds = plan.kinds
    lane_spec = plan.lane_spec
    m = plan.messages
    starts = [0.0] * m
    prevs = [0.0] * m
    pipes = [0.0] * m
    ends = list(plan.ends0)
    arrival = list(plan.ends0)  # self-send arrivals preset; rest overwritten
    lane_next = [0.0] * plan.n_lanes

    # Send ports (per source rank, in post order).
    for idxs in plan.phase1:
        nf = 0.0
        for i in idxs:
            p = post[i]
            s = p if p > nf else nf
            e = s + pdur[i]
            starts[i] = s
            prevs[i] = s
            pipes[i] = e
            ends[i] = e
            nf = e
    # NIC tx (per source node, global order).
    for idxs in plan.phase2:
        nf = 0.0
        for i in idxs:
            prev = starts[i]
            s = prev if prev > nf else nf
            e = s + ndur[i]
            pe = pipes[i]
            if e < pe:
                e = pe
            nf = e
            prevs[i] = s
            pipes[i] = e
    # Shared-link lanes (adaptive choice is load-dependent: global order).
    for i in plan.phase3:
        groups, fixed = lane_spec[i]
        prev = prevs[i]
        pe = pipes[i]
        ld = ldur[i]
        if groups is None:
            lanes = fixed
        elif len(groups) == 1:
            group = groups[0]
            if len(group) == 2:
                a = group[0]
                b = group[1]
                lanes = ((a if lane_next[a] <= lane_next[b] else b),)
            else:
                lanes = (min(group, key=lane_next.__getitem__),)
        else:
            lanes = [min(g, key=lane_next.__getitem__) for g in groups]
        for ln in lanes:
            nf = lane_next[ln]
            s = prev if prev > nf else nf
            e = s + ld
            if e < pe:
                e = pe
            lane_next[ln] = e
            prev = s
            pe = e
        prevs[i] = prev
        pipes[i] = pe
    # NIC rx (per destination node, global order).
    for idxs in plan.phase4:
        nf = 0.0
        for i in idxs:
            prev = prevs[i]
            s = prev if prev > nf else nf
            e = s + ndur[i]
            pe = pipes[i]
            if e < pe:
                e = pe
            nf = e
            prevs[i] = s
            pipes[i] = e
    # Recv ports (per destination rank, global order) + arrival stamps.
    for idxs in plan.phase5:
        nf = 0.0
        for i in idxs:
            prev = prevs[i]
            s = prev if prev > nf else nf
            e = s + pdur[i]
            pe = pipes[i]
            if e < pe:
                e = pe
            nf = e
            arrival[i] = e + hop[i]

    # Waitall folds: completions = max(arrival, post) per matched receive;
    # per-rank maxima via reduceat (max is order-free: bit-exact).  Only
    # ranks that wait fold request completions into their finish time; a
    # rank without a wait finishes at its local clock.
    finish = list(plan.now_final)
    has_wait = plan.has_wait
    if m:
        ends_arr = np.asarray(ends)
        send_max = np.maximum.reduceat(ends_arr, plan.send_offsets).tolist()
        for r, v in zip(plan.send_ranks, send_max):
            if has_wait[r] and v > finish[r]:
                finish[r] = v
    if len(plan.recv_match):
        comp = np.maximum(
            np.asarray(arrival)[plan.recv_match], plan.recv_posts
        )
        recv_max = np.maximum.reduceat(comp, plan.recv_offsets).tolist()
        for r, v in zip(plan.recv_dsts, recv_max):
            if has_wait[r] and v > finish[r]:
                finish[r] = v

    live = plan.live
    finished = {
        r: (finish[r] if live[r] else 0.0) for r in range(len(live))
    }
    simulated = max(finished.values(), default=0.0)
    return FastRunOutcome(
        simulated, finished, m, plan.bytes_total,
        plan.n_live + plan.n_wakes,
    )


#: Below this many ops a segment's clock is evolved by a scalar Python loop:
#: one ``np.add.accumulate`` call costs more than ~two dozen float adds, and
#: both forms are bit-identical (accumulate is a strict left-to-right fold).
_VEC_MIN_OPS = 24


class _MultiStagePlan:
    """Precompiled tables for the heap-driven multi-stage executor.

    The single-stage :class:`_BatchPlan` works because its global claim
    order is static.  Multi-stage schedules interleave segments of
    different ranks in heap ``(time, seq, rank)`` order, which is a
    runtime quantity — so this plan keeps the engine's *event structure*
    (one heap pop per spawn and per waitall wake, identical seq
    allocation) and makes everything inside an event static instead:

    * per wait-delimited segment, the op deltas collapse to one clock
      evolution — ``np.add.accumulate`` over ``[now, d1, d2, ...]`` for
      fat segments, a scalar loop for thin ones (both are the engine's
      sequential adds, bit for bit), with the first segment's prefix sums
      precomputed at compile time (its ``now`` is always 0.0);
    * every send carries its pre-priced durations and pre-resolved
      receive slot (:func:`repro.sim.schedule.static_matching` — FIFO
      matching is a compile-time function of the schedule), so delivery
      is an array poke instead of dict/deque rendezvous bookkeeping;
    * inter-stage state — per-rank clocks, per-port/NIC/lane ``next_free``
      claims that bind into later stages, pending waitall counts — lives
      in flat arrays threaded across events.

    Claim arithmetic is copied verbatim from the scalar interpreter
    (non-associative float adds stay in event order), so outcomes are
    bit-identical to the Engine, including watchdog-budget boundaries and
    deadlock reporting.
    """

    __slots__ = (
        "n_ranks", "rank_segs", "wake_order", "n_slots", "n_lanes",
        "n_nodes", "messages", "bytes_total",
    )


def _compile_multi(schedule: "Schedule", machine: "Machine"):
    """Build a :class:`_MultiStagePlan`, or ``None`` when a receive has no
    matching send (the run deadlocks; the scalar interpreter reports it
    with exact engine semantics)."""
    segments, n_lanes = compiled_for(schedule, machine, True)
    send_slots, n_slots, fully_matched = static_matching(schedule)
    if not fully_matched:
        return None
    call_overhead = machine.params.call_overhead

    n = schedule.n_ranks
    rank_segs: list[tuple | None] = []
    si = 0  # global send index — rank-major op order, = static_matching's
    ri = 0  # global receive slot — same enumeration
    messages = 0
    bytes_total = 0
    for rank in range(n):
        segs = segments[rank]
        if segs is None:
            rank_segs.append(None)
            continue
        compiled: list[tuple] = []
        first = True
        for ops, ends_with_wait in segs:
            deltas: list[float] = []
            sends: list[tuple] = []
            recvs: list[tuple] = []
            for op in ops:
                if op.__class__ is float:
                    deltas.append(op)
                    continue
                deltas.append(call_overhead)
                pos = len(deltas)  # accl index of the clock after this op
                code = op[0]
                if code == _RECV:
                    recvs.append((pos, ri))
                    ri += 1
                    continue
                sl = send_slots[si]
                si += 1
                messages += 1
                bytes_total += op[3]
                if code == _SEND_SELF:
                    sends.append((0, pos, sl, op[4]))
                elif code == _SEND_LOCAL:
                    sends.append((1, pos, sl, op[1], op[4], op[5]))
                elif code == _SEND_NODE:
                    sends.append((2, pos, sl, op[1], op[4], op[5], op[6],
                                  op[7], op[8]))
                else:  # _SEND_GROUP — pre-classify the lane choice shape
                    groups, fixed = op[10], op[11]
                    if groups is None:
                        lmode, lspec = 0, fixed        # oblivious lane set
                    elif len(groups) == 1:
                        g = groups[0]
                        # adaptive: the 2-lane pair (Dragonfly+ default)
                        # gets its own inlined fast case at runtime
                        lmode, lspec = (1, g) if len(g) == 2 else (2, g)
                    else:
                        lmode, lspec = 3, groups       # per-hop choices
                    sends.append((3, pos, sl, op[1], op[4], op[5], op[6],
                                  op[7], op[8], op[9], lmode, lspec))
            accl0 = None
            if first:
                accl0 = np.add.accumulate(
                    np.asarray([0.0] + deltas, dtype=np.float64)
                ).tolist()
                first = False
            if len(deltas) >= _VEC_MIN_OPS:
                arr = np.empty(len(deltas) + 1, dtype=np.float64)
                arr[1:] = deltas
                compiled.append((True, arr, accl0, tuple(sends),
                                 tuple(recvs), ends_with_wait))
            else:
                compiled.append((False, tuple(deltas), accl0, tuple(sends),
                                 tuple(recvs), ends_with_wait))
        rank_segs.append(tuple(compiled))

    plan = _MultiStagePlan()
    plan.n_ranks = n
    plan.rank_segs = rank_segs
    plan.wake_order = spawn_wake_order(schedule)
    plan.n_slots = n_slots
    plan.n_lanes = n_lanes
    plan.n_nodes = machine.spec.nodes
    plan.messages = messages
    plan.bytes_total = bytes_total
    return plan


def multi_plan_for(schedule: "Schedule", machine: "Machine"):
    """Memoized :func:`_compile_multi` via the structural plan cache."""
    key = (structural_digest(schedule), machine_digest(machine), "multi")
    plan = PLAN_CACHE.get(key)
    if plan is _MISS:
        plan = _compile_multi(schedule, machine)
        PLAN_CACHE.put(key, plan)
    return plan


def _execute_multi(
    plan: _MultiStagePlan,
    max_sim_time: float | None,
    max_events: int | None,
) -> FastRunOutcome:
    """One run of a multi-stage plan (see :class:`_MultiStagePlan`).

    The heap discipline — pushes, pops, sequence numbers, budget checks —
    is the scalar interpreter's, verbatim; segment interiors use the
    precompiled tables.  Receive slots run a small state machine replacing
    the posted/unexpected dict rendezvous: 0 unposted, 1 posted (owner
    still running its segment), 2 delivered before post, 3 consumed,
    4 blocked in a waitall, 5 determined while the owner was running
    (same-rank delivery).  Sends and receives are processed in two passes
    per segment: deliveries to *other* ranks happen only in the send pass
    (their relative order is preserved, so seq allocation is identical)
    and same-rank deliveries commute through the state machine — every
    completion is ``max(arrival, post clock)`` folded through order-free
    maxima, so the split is bit-exact against the engine's op-interleaved
    processing.
    """
    n = plan.n_ranks
    rank_segs = plan.rank_segs
    rank_now = [0.0] * n
    send_next = [0.0] * n
    recv_next = [0.0] * n
    nic_tx_next = [0.0] * plan.n_nodes
    nic_rx_next = [0.0] * plan.n_nodes
    lane_next = [0.0] * plan.n_lanes
    n_slots = plan.n_slots
    state = bytearray(n_slots)
    post_rt = [0.0] * n_slots
    aval = [0.0] * n_slots
    wait_remaining = [0] * n
    wait_latest = [0.0] * n
    seg_idx = [0] * n
    finished: dict[int, float] = {}

    heap: list[tuple[float, int, int]] = []
    seq = 0
    for rank in plan.wake_order:
        seq += 1
        heap.append((0.0, seq, rank))
    if len(plan.wake_order) < n:
        for rank in range(n):
            if rank_segs[rank] is None:
                finished[rank] = 0.0

    heappush = heapq.heappush
    heappop = heapq.heappop
    accumulate = np.add.accumulate

    def _blocked_detail() -> str:
        parts = []
        for r in range(n):
            if r in finished or rank_segs[r] is None:
                continue
            rem = wait_remaining[r]
            detail = f"waitall({rem} pending)" if rem else "runnable"
            parts.append(f"rank {r} ({detail})")
        return ", ".join(parts) if parts else "none"

    max_time = float("inf") if max_sim_time is None else max_sim_time
    events = 0
    while heap:
        time, _, rank = heappop(heap)
        if time > max_time:
            raise SimTimeoutError(
                f"simulated-time budget exceeded: next event at "
                f"{time:.6e}s > max_sim_time={max_time:.6e}s "
                f"after {events} event(s); processes: {_blocked_detail()}",
                budget="sim_time", events_processed=events, limit=max_time,
            )
        events += 1
        if max_events is not None and events > max_events:
            raise SimTimeoutError(
                f"event budget exceeded: processed {events - 1} events "
                f"(max_events={max_events}); processes: {_blocked_detail()}",
                budget="events", events_processed=events - 1, limit=max_events,
            )
        now = rank_now[rank]
        if time > now:
            now = time
        segs = rank_segs[rank]
        i = seg_idx[rank]
        nseg = len(segs)
        while True:
            if i == nseg:
                rank_now[rank] = now
                finished[rank] = now
                break
            vec, deltas, accl0, sends, recvs, ends_wait = segs[i]
            i += 1
            if accl0 is not None and now == 0.0:
                accl = accl0
            elif vec:
                deltas[0] = now
                accl = accumulate(deltas).tolist()
            else:
                accl = [now]
                c = now
                for d in deltas:
                    c += d
                    accl.append(c)
            now = accl[-1]
            lat = 0.0
            for pos, sl in recvs:
                if state[sl]:  # == 2: delivered before post (unexpected)
                    a = aval[sl]
                    t = accl[pos]
                    c2 = a if a > t else t
                    if c2 > lat:
                        lat = c2
                    state[sl] = 3
                else:
                    post_rt[sl] = accl[pos]
                    state[sl] = 1
            for sd in sends:
                kind = sd[0]
                if kind == 2:  # cross-node: port -> NIC tx -> NIC rx -> port
                    _, pos, sl, dst, port_dur, nic_dur, hop_x, nsrc, ndst = sd
                    p = accl[pos]
                    nf = send_next[rank]
                    start = p if p > nf else nf
                    end = start + port_dur
                    send_next[rank] = end
                    if end > lat:
                        lat = end
                    pe = end
                    nf = nic_tx_next[nsrc]
                    s = start if start > nf else nf
                    e = s + nic_dur
                    if e < pe:
                        e = pe
                    nic_tx_next[nsrc] = e
                    prev = s
                    pe = e
                    nf = nic_rx_next[ndst]
                    s = prev if prev > nf else nf
                    e = s + nic_dur
                    if e < pe:
                        e = pe
                    nic_rx_next[ndst] = e
                    prev = s
                    pe = e
                    nf = recv_next[dst]
                    s = prev if prev > nf else nf
                    e = s + port_dur
                    if e < pe:
                        e = pe
                    recv_next[dst] = e
                    arrival = e + hop_x
                elif kind == 3:  # cross-group: + adaptive shared-link lanes
                    (_, pos, sl, dst, port_dur, nic_dur, link_dur, hop_x,
                     nsrc, ndst, lmode, lspec) = sd
                    p = accl[pos]
                    nf = send_next[rank]
                    start = p if p > nf else nf
                    end = start + port_dur
                    send_next[rank] = end
                    if end > lat:
                        lat = end
                    pe = end
                    nf = nic_tx_next[nsrc]
                    s = start if start > nf else nf
                    e = s + nic_dur
                    if e < pe:
                        e = pe
                    nic_tx_next[nsrc] = e
                    prev = s
                    pe = e
                    if lmode == 1:
                        # Adaptive 2-lane pair: least-loaded lane, first
                        # minimal on ties (same tie-break as Fabric.transmit),
                        # claim inlined.
                        a, b = lspec
                        ln = a if lane_next[a] <= lane_next[b] else b
                        nf = lane_next[ln]
                        s = prev if prev > nf else nf
                        e = s + link_dur
                        if e < pe:
                            e = pe
                        lane_next[ln] = e
                        prev = s
                        pe = e
                    else:
                        if lmode == 0:
                            lanes = lspec
                        elif lmode == 2:
                            lanes = (min(lspec, key=lane_next.__getitem__),)
                        else:
                            lanes = [min(g, key=lane_next.__getitem__)
                                     for g in lspec]
                        for ln in lanes:
                            nf = lane_next[ln]
                            s = prev if prev > nf else nf
                            e = s + link_dur
                            if e < pe:
                                e = pe
                            lane_next[ln] = e
                            prev = s
                            pe = e
                    nf = nic_rx_next[ndst]
                    s = prev if prev > nf else nf
                    e = s + nic_dur
                    if e < pe:
                        e = pe
                    nic_rx_next[ndst] = e
                    prev = s
                    pe = e
                    nf = recv_next[dst]
                    s = prev if prev > nf else nf
                    e = s + port_dur
                    if e < pe:
                        e = pe
                    recv_next[dst] = e
                    arrival = e + hop_x
                elif kind == 1:  # same-node: send port -> recv port
                    _, pos, sl, dst, port_dur, hop_x = sd
                    p = accl[pos]
                    nf = send_next[rank]
                    start = p if p > nf else nf
                    end = start + port_dur
                    send_next[rank] = end
                    if end > lat:
                        lat = end
                    nf = recv_next[dst]
                    s = start if start > nf else nf
                    e = s + port_dur
                    if e < end:
                        e = end
                    recv_next[dst] = e
                    arrival = e + hop_x
                else:  # kind == 0: self-send completes at post + memcpy
                    _, pos, sl, dur = sd
                    dst = rank
                    arrival = accl[pos] + dur
                    if arrival > lat:
                        lat = arrival
                if sl >= 0:
                    st = state[sl]
                    if st == 0:
                        aval[sl] = arrival
                        state[sl] = 2
                    elif st == 4:  # owner blocked in its waitall
                        pr = post_rt[sl]
                        c2 = arrival if arrival > pr else pr
                        if c2 > wait_latest[dst]:
                            wait_latest[dst] = c2
                        rem = wait_remaining[dst] - 1
                        wait_remaining[dst] = rem
                        state[sl] = 3
                        if not rem:
                            seq += 1
                            heappush(heap, (wait_latest[dst], seq, dst))
                    else:  # st == 1: posted by this rank, still running
                        pr = post_rt[sl]
                        aval[sl] = arrival if arrival > pr else pr
                        state[sl] = 5
            if ends_wait:
                latest = now if now > lat else lat
                remaining = 0
                for pos, sl in recvs:
                    st = state[sl]
                    if st == 5:  # determined while running: fold and consume
                        c2 = aval[sl]
                        if c2 > latest:
                            latest = c2
                        state[sl] = 3
                    elif st == 1:
                        state[sl] = 4
                        remaining += 1
                seg_idx[rank] = i
                rank_now[rank] = now
                if remaining:
                    wait_remaining[rank] = remaining
                    wait_latest[rank] = latest
                else:
                    # Engine parity: an all-determined waitall still costs
                    # one scheduled wake (and one sequence number).
                    seq += 1
                    heappush(heap, (latest, seq, rank))
                break

    if len(finished) != n:
        raise DeadlockError(
            f"simulation deadlocked; blocked processes: {_blocked_detail()}"
        )
    simulated = max(finished.values(), default=0.0)
    return FastRunOutcome(
        simulated, finished, plan.messages, plan.bytes_total, events,
    )


def execute_schedule(
    schedule: "Schedule",
    machine: "Machine",
    *,
    max_sim_time: float | None = None,
    max_events: int | None = None,
    model_contention: bool = True,
) -> FastRunOutcome:
    """Replay ``schedule`` on ``machine``; engine-equivalent outcome.

    Bit-identical to :class:`~repro.sim.engine.Engine` with
    ``model_contention=True``; the closed-form Hockney costing with
    ``False`` (see module docstring).  Raises the engine's own
    :class:`SimTimeoutError`/:class:`DeadlockError` with matching boundary
    semantics and deterministic blocked-rank detail.
    """
    if machine.params.jitter > 0:
        raise ValueError("fast path requires a jitter-free machine (use the engine)")
    if max_sim_time is not None and max_sim_time <= 0:
        raise ValueError(f"max_sim_time must be > 0, got {max_sim_time}")
    if max_events is not None and max_events <= 0:
        raise ValueError(f"max_events must be > 0, got {max_events}")

    if model_contention:
        if max_sim_time is None and max_events is None:
            # Single-stage schedules take the fully batched cohort path.
            plan = batch_plan_for(schedule, machine)
            if plan is not None:
                return _execute_batch(plan)
        # Everything else that is fully matched — multi-stage schedules,
        # and watchdog-budgeted runs of any stage count — takes the
        # heap-driven multi-stage executor.  The scalar interpreter
        # remains for analytic costing and unmatched-receive deadlocks.
        mplan = multi_plan_for(schedule, machine)
        if mplan is not None:
            return _execute_multi(mplan, max_sim_time, max_events)
    return _interpret(schedule, machine, max_sim_time, max_events,
                      model_contention)


def _interpret(
    schedule: "Schedule",
    machine: "Machine",
    max_sim_time: float | None,
    max_events: int | None,
    model_contention: bool,
) -> FastRunOutcome:
    """The scalar opcode interpreter — the fast path's reference tier.

    Handles what the batched executors do not: analytic costing
    (``model_contention=False``) and schedules with unmatched receives
    (deadlock reporting with exact engine semantics).  It is also the
    oracle the executor equivalence tests compare against, so it accepts
    every schedule.
    """
    segments, n_lanes = compiled_for(schedule, machine, model_contention)
    n = schedule.n_ranks
    call_overhead = machine.params.call_overhead
    n_nodes = machine.spec.nodes

    rank_now = [0.0] * n
    send_next = [0.0] * n
    recv_next = [0.0] * n
    nic_tx_next = [0.0] * n_nodes
    nic_rx_next = [0.0] * n_nodes
    lane_next = [0.0] * n_lanes
    # Matching state: per-dst dicts keyed by (src, tag).  A pending receive
    # is a mutable record [post_time, completion, owner_is_waiting].
    posted: list[dict] = [dict() for _ in range(n)]
    unexpected: list[dict] = [dict() for _ in range(n)]
    wait_remaining = [0] * n
    wait_latest = [0.0] * n
    seg_idx = [0] * n
    finished: dict[int, float] = {}
    messages = 0
    bytes_total = 0

    heap: list[tuple[float, int, int]] = []
    seq = 0
    # Spawn order and sequence allocation mirror Engine.spawn_all exactly:
    # one event (and one seq) per rank with a non-None program, rank order.
    for rank in range(n):
        if segments[rank] is None:
            finished[rank] = 0.0
        else:
            seq += 1
            heap.append((0.0, seq, rank))

    heappush = heapq.heappush
    heappop = heapq.heappop

    def _deliver(dst: int, key: tuple[int, int], arrival: float) -> None:
        nonlocal seq
        table = posted[dst]
        q = table.get(key)
        if q:
            rec = q.popleft()
            if not q:
                del table[key]
            p = rec[0]
            completion = arrival if arrival > p else p
            if rec[2]:  # owner blocked in a waitall on this receive
                if completion > wait_latest[dst]:
                    wait_latest[dst] = completion
                r = wait_remaining[dst] - 1
                wait_remaining[dst] = r
                if not r:
                    seq += 1
                    heappush(heap, (wait_latest[dst], seq, dst))
            else:
                rec[1] = completion
        else:
            tu = unexpected[dst]
            uq = tu.get(key)
            if uq is None:
                tu[key] = uq = deque()
            uq.append(arrival)

    def _blocked_detail() -> str:
        parts = []
        for r in range(n):
            if r in finished or segments[r] is None:
                continue
            rem = wait_remaining[r]
            state = f"waitall({rem} pending)" if rem else "runnable"
            parts.append(f"rank {r} ({state})")
        return ", ".join(parts) if parts else "none"

    max_time = float("inf") if max_sim_time is None else max_sim_time
    events = 0
    while heap:
        time, _, rank = heappop(heap)
        if time > max_time:
            raise SimTimeoutError(
                f"simulated-time budget exceeded: next event at "
                f"{time:.6e}s > max_sim_time={max_time:.6e}s "
                f"after {events} event(s); processes: {_blocked_detail()}",
                budget="sim_time", events_processed=events, limit=max_time,
            )
        events += 1
        if max_events is not None and events > max_events:
            raise SimTimeoutError(
                f"event budget exceeded: processed {events - 1} events "
                f"(max_events={max_events}); processes: {_blocked_detail()}",
                budget="events", events_processed=events - 1, limit=max_events,
            )
        now = rank_now[rank]
        if time > now:
            now = time
        segs = segments[rank]
        i = seg_idx[rank]
        nseg = len(segs)
        while True:
            if i == nseg:
                rank_now[rank] = now
                finished[rank] = now
                break
            ops, has_wait = segs[i]
            i += 1
            # Online waitall folding: ``lat`` accumulates the max over
            # determined completions as they happen (max is order-free, so
            # this is bit-identical to the engine's fold-at-wait);
            # ``pend`` collects only still-pending receive records.
            lat = 0.0
            pend: list = []
            unexpected_r = unexpected[rank]
            posted_r = posted[rank]
            for op in ops:
                if op.__class__ is float:  # charge (memcpy)
                    now += op
                    continue
                code = op[0]
                if code == _RECV:
                    now += call_overhead
                    key = op[1]
                    uq = unexpected_r.get(key)
                    if uq:
                        arrival = uq.popleft()
                        if not uq:
                            del unexpected_r[key]
                        c = arrival if arrival > now else now
                        if c > lat:
                            lat = c
                    else:
                        rec = [now, None, False]
                        pq = posted_r.get(key)
                        if pq is None:
                            posted_r[key] = pq = deque()
                        pq.append(rec)
                        pend.append(rec)
                elif code == _SEND_NODE:
                    now += call_overhead
                    dst = op[1]
                    port_dur = op[4]
                    nic_dur = op[5]
                    nf = send_next[rank]
                    start = now if now > nf else nf
                    end = start + port_dur
                    send_next[rank] = end
                    if end > lat:
                        lat = end
                    pe = end
                    nf = nic_tx_next[op[7]]
                    s = start if start > nf else nf
                    e = s + nic_dur
                    if e < pe:
                        e = pe
                    nic_tx_next[op[7]] = e
                    prev = s
                    pe = e
                    nf = nic_rx_next[op[8]]
                    s = prev if prev > nf else nf
                    e = s + nic_dur
                    if e < pe:
                        e = pe
                    nic_rx_next[op[8]] = e
                    prev = s
                    pe = e
                    nf = recv_next[dst]
                    s = prev if prev > nf else nf
                    e = s + port_dur
                    if e < pe:
                        e = pe
                    recv_next[dst] = e
                    messages += 1
                    bytes_total += op[3]
                    _deliver(dst, op[2], e + op[6])
                elif code == _SEND_GROUP:
                    now += call_overhead
                    dst = op[1]
                    port_dur = op[4]
                    nic_dur = op[5]
                    link_dur = op[6]
                    nf = send_next[rank]
                    start = now if now > nf else nf
                    end = start + port_dur
                    send_next[rank] = end
                    if end > lat:
                        lat = end
                    pe = end
                    nf = nic_tx_next[op[8]]
                    s = start if start > nf else nf
                    e = s + nic_dur
                    if e < pe:
                        e = pe
                    nic_tx_next[op[8]] = e
                    prev = s
                    pe = e
                    groups = op[10]
                    if groups is None:
                        lanes = op[11]
                    elif len(groups) == 1:
                        # Adaptive: least-loaded lane, first minimal on ties
                        # (same tie-break as Fabric.transmit).
                        group = groups[0]
                        if len(group) == 2:
                            a = group[0]
                            b = group[1]
                            lanes = ((a if lane_next[a] <= lane_next[b] else b),)
                        else:
                            lanes = (min(group, key=lane_next.__getitem__),)
                    else:
                        lanes = [min(g, key=lane_next.__getitem__) for g in groups]
                    for ln in lanes:
                        nf = lane_next[ln]
                        s = prev if prev > nf else nf
                        e = s + link_dur
                        if e < pe:
                            e = pe
                        lane_next[ln] = e
                        prev = s
                        pe = e
                    nf = nic_rx_next[op[9]]
                    s = prev if prev > nf else nf
                    e = s + nic_dur
                    if e < pe:
                        e = pe
                    nic_rx_next[op[9]] = e
                    prev = s
                    pe = e
                    nf = recv_next[dst]
                    s = prev if prev > nf else nf
                    e = s + port_dur
                    if e < pe:
                        e = pe
                    recv_next[dst] = e
                    messages += 1
                    bytes_total += op[3]
                    _deliver(dst, op[2], e + op[7])
                elif code == _SEND_LOCAL:
                    now += call_overhead
                    dst = op[1]
                    port_dur = op[4]
                    nf = send_next[rank]
                    start = now if now > nf else nf
                    end = start + port_dur
                    send_next[rank] = end
                    if end > lat:
                        lat = end
                    nf = recv_next[dst]
                    s = start if start > nf else nf
                    e = s + port_dur
                    if e < end:
                        e = end
                    recv_next[dst] = e
                    messages += 1
                    bytes_total += op[3]
                    _deliver(dst, op[2], e + op[5])
                elif code == _SEND_SELF:
                    now += call_overhead
                    done = now + op[4]
                    if done > lat:
                        lat = done
                    messages += 1
                    bytes_total += op[3]
                    _deliver(op[1], op[2], done)
                else:  # _SEND_FREE: analytic, contention ignored
                    now += call_overhead
                    done = now + op[4]
                    if done > lat:
                        lat = done
                    messages += 1
                    bytes_total += op[3]
                    _deliver(op[1], op[2], now + op[5])
            if has_wait:
                latest = now if now > lat else lat
                remaining = 0
                for rec in pend:
                    c = rec[1]
                    if c is None:
                        rec[2] = True
                        remaining += 1
                    elif c > latest:
                        latest = c
                seg_idx[rank] = i
                rank_now[rank] = now
                if remaining:
                    wait_remaining[rank] = remaining
                    wait_latest[rank] = latest
                else:
                    # Engine parity: an all-determined waitall still costs
                    # one scheduled wake (and one sequence number).
                    seq += 1
                    heappush(heap, (latest, seq, rank))
                break

    if len(finished) != n:
        raise DeadlockError(
            f"simulation deadlocked; blocked processes: {_blocked_detail()}"
        )
    simulated = max(finished.values(), default=0.0)
    return FastRunOutcome(simulated, finished, messages, bytes_total, events)
