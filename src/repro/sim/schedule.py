"""Static communication schedules: the hybrid fast path's input.

A :class:`Schedule` is a rank-by-rank, stage-by-stage transcript of every
operation a collective's simulator programs would perform — memcpy charges,
non-blocking sends/receives, and waitall boundaries — derived purely from an
algorithm's setup-time plan (the shared stage plans), never from running the
generators.  Because the three allgather algorithms are data-driven (their
programs interpret a plan built in ``setup()``), the schedule carries exactly
the information the discrete-event engine would discover lazily, which lets
:mod:`repro.sim.fastpath` replay the run without generator resumes, request
objects, or matching-table bookkeeping while staying bit-identical.

Ops are plain tuples (the fast path compiles them to priced opcodes):

* ``("charge", nbytes)`` — advance the local clock by a memcpy.
* ``("send", dst, nbytes, tag)`` — post a non-blocking send.
* ``("recv", src, tag)`` — post a non-blocking receive.
* ``("wait",)`` — waitall over every request posted since the last wait.

Op order must mirror the generator's call order exactly (post order is what
determines resource-claim order and therefore timing).  A rank whose program
would return ``None`` (nothing to do) gets ``None`` instead of an op list —
the engine never spawns such ranks, and event sequence parity depends on
reproducing that.

The module also hosts the per-stage contention analyzer
(:func:`analyze_contention`): stage ``k`` is the cohort of every rank's
``k``-th wait-delimited segment, and a stage is *contention-free* when no
endpoint port, node NIC, or shared link is claimed by more than one message
in it.  Contention-free stages are the regime where the closed-form Hockney
costing (``sim_mode="analytic"``) is exact; the analyzer's report is the
tolerance contract's measurable half (see docs/ARCHITECTURE.md).
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.spec import LinkClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine


@dataclass
class Schedule:
    """Per-rank op lists plus the result-buffer contents they imply.

    ``ops[r]`` is rank ``r``'s operation list (``None`` when the rank's
    program would be ``None`` — no events, no engine sequence number);
    ``deliveries[r]`` lists the source ranks whose block lands in rank
    ``r``'s receive buffer (``results[r][src] = payloads[src]``), which is
    plan-determined and therefore needs no payload objects in flight.
    """

    n_ranks: int
    ops: list[list[tuple] | None]
    deliveries: list[list[int]]

    def __post_init__(self) -> None:
        if len(self.ops) != self.n_ranks or len(self.deliveries) != self.n_ranks:
            raise ValueError(
                f"schedule arity mismatch: {self.n_ranks} ranks, "
                f"{len(self.ops)} op lists, {len(self.deliveries)} delivery lists"
            )

    def total_sends(self) -> int:
        return sum(
            1 for ops in self.ops if ops for op in ops if op[0] == "send"
        )


def structural_digest(schedule: Schedule) -> str:
    """Content digest of a schedule's op structure (cached on the object).

    Two schedules with equal digests compile to identical fast-path plans on
    the same machine: the digest covers the rank count and every rank's op
    stream (kinds, endpoints, byte counts, tags, ``None`` ranks) — exactly
    the compiler's inputs.  ``deliveries`` is excluded on purpose: it names
    result-buffer contents, which no plan depends on.  This is the
    schedule half of the compiled-plan cache key (the machine half is
    :func:`repro.sim.plancache.machine_digest`), realizing the
    isomorphic-neighborhood observation: sweep cells whose schedules are
    structurally identical share one compilation.
    """
    digest = getattr(schedule, "_structural_digest", None)
    if digest is None:
        h = hashlib.blake2b(digest_size=16)
        h.update(str(schedule.n_ranks).encode())
        for ops in schedule.ops:
            h.update(b"|N" if ops is None else repr(ops).encode())
        digest = schedule._structural_digest = h.hexdigest()
    return digest


def spawn_wake_order(schedule: Schedule) -> tuple[int, ...]:
    """The engine's deterministic stage-0 wake order, derived statically.

    ``Engine.spawn_all`` walks ranks in order and schedules one t=0 event
    (with the next sequence number) per rank whose program is not ``None``;
    the heap therefore pops stage 0 in exactly this rank order.  Every
    later wake order follows from the seq discipline — each waitall wake is
    pushed with a monotonically increasing sequence number at the moment
    its last pending receive is determined — which the fast path's
    executors reproduce (see :mod:`repro.sim.fastpath`).
    """
    return tuple(
        rank for rank, ops in enumerate(schedule.ops) if ops is not None
    )


def static_matching(schedule: Schedule):
    """Cross-stage FIFO send/receive matching, resolved at compile time.

    Engine matching is FIFO per ``(dst, src, tag)`` key on both sides:
    posted receives and delivered sends each form a per-key queue, so the
    k-th posted receive of a key always pairs with the k-th delivered send
    of that key regardless of how posts and deliveries interleave.  Both
    per-key orders are static — a key's sends all originate from one rank
    and ranks execute their segments in program order — so the pairing is
    a compile-time function of the schedule alone, valid across stage
    boundaries.

    Returns ``(send_slots, n_slots, fully_matched)``: receives are numbered
    ("slots") in rank-major program order, ``send_slots[i]`` is the slot
    matched by the i-th send in the same enumeration order (``-1`` when no
    receive ever matches it — the engine parks such messages in the
    unexpected table forever, with no timing effect), and ``fully_matched``
    is False when some receive has no matching send (the run deadlocks;
    the scalar interpreter reports it exactly).
    """
    recv_q: dict[tuple, deque] = {}
    n_slots = 0
    for rank, ops in enumerate(schedule.ops):
        if not ops:
            continue
        for op in ops:
            if op[0] == "recv":
                key = (rank, op[1], op[2])
                q = recv_q.get(key)
                if q is None:
                    recv_q[key] = q = deque()
                q.append(n_slots)
                n_slots += 1
    send_slots: list[int] = []
    for rank, ops in enumerate(schedule.ops):
        if not ops:
            continue
        for op in ops:
            if op[0] == "send":
                q = recv_q.get((op[1], rank, op[3]))
                send_slots.append(q.popleft() if q else -1)
    fully_matched = not any(recv_q.values())
    return send_slots, n_slots, fully_matched


@dataclass
class StageReport:
    """Contention classification of one stage (see module docstring).

    ``max_claims`` maps resource family -> the largest number of messages
    claiming one resource of that family during the stage; the stage is
    contention-free iff every maximum is <= 1.
    """

    stage: int
    messages: int
    max_claims: dict[str, int] = field(default_factory=dict)

    @property
    def contention_free(self) -> bool:
        return all(v <= 1 for v in self.max_claims.values())


def _stage_messages(schedule: Schedule) -> list[list[tuple[int, int, int]]]:
    """Per stage: ``(src, dst, nbytes)`` of every send posted in it.

    Stage ``k`` collects the sends between rank ``r``'s ``k-1``-th and
    ``k``-th waits, for every rank — the cohort that is in flight together.
    """
    stages: list[list[tuple[int, int, int]]] = []
    for rank, ops in enumerate(schedule.ops):
        if not ops:
            continue
        stage = 0
        for op in ops:
            kind = op[0]
            if kind == "wait":
                stage += 1
            elif kind == "send":
                while len(stages) <= stage:
                    stages.append([])
                stages[stage].append((rank, op[1], op[2]))
    return stages


def analyze_contention(schedule: Schedule, machine: "Machine") -> list[StageReport]:
    """Classify every stage of ``schedule`` on ``machine``.

    Claim multiplicities are exact for endpoint ports and node NICs
    (messages map to them statically); for shared inter-group links the
    analyzer counts messages per bottleneck *group* — adaptive lane choice
    can only spread load within a group, so a group total of <= 1 is a
    sound (and tight) contention-free criterion.
    """
    spec = machine.spec
    node_of = spec.node_of
    reports: list[StageReport] = []
    for stage, msgs in enumerate(_stage_messages(schedule)):
        report = StageReport(stage=stage, messages=len(msgs))
        if not msgs:
            report.max_claims = {}
            reports.append(report)
            continue
        send_ports: list[int] = []
        recv_ports: list[int] = []
        nic_tx: list[int] = []
        nic_rx: list[int] = []
        link_groups: dict = {}
        for src, dst, _nbytes in msgs:
            if src == dst:
                continue  # local memcpy: no shared resource
            send_ports.append(src)
            recv_ports.append(dst)
            cls = machine.link_class(src, dst)
            if cls in (LinkClass.INTER_NODE, LinkClass.INTER_GROUP):
                ns, nd = node_of(src), node_of(dst)
                nic_tx.append(ns)
                nic_rx.append(nd)
                if cls is LinkClass.INTER_GROUP:
                    for key in machine.network.shared_link_keys(ns, nd):
                        link_groups[key] = link_groups.get(key, 0) + 1

        def _max_count(values: list[int]) -> int:
            if not values:
                return 0
            return int(np.bincount(np.asarray(values, dtype=np.intp)).max())

        report.max_claims = {
            "send_ports": _max_count(send_ports),
            "recv_ports": _max_count(recv_ports),
            "nic_tx": _max_count(nic_tx),
            "nic_rx": _max_count(nic_rx),
            "links": max(link_groups.values(), default=0),
        }
        reports.append(report)
    return reports


def contention_free(schedule: Schedule, machine: "Machine") -> bool:
    """True when every stage of ``schedule`` is contention-free.

    This is the regime where the closed-form Hockney costing holds within
    the calibrated tolerance: within a stage no resource queue ever binds.
    For a *single-stage* schedule that makes the analytic path bit-identical
    to the engine; across stages a straggler's claim can still delay an
    early next-stage message, which is exactly the residual the tolerance
    contract bounds (see docs/ARCHITECTURE.md).

    Memoized per ``(schedule, machine)`` identity — the analyzer walks
    every send, and auto-mode runs consult it on every invocation.  The
    memo is *keyed* by machine (holding a strong reference, so an ``is``
    check can never alias a recycled object id): alternating machines over
    one schedule each keep their verdict instead of evicting each other.
    """
    cache = getattr(schedule, "_cf_cache", None)
    if cache is None:
        cache = schedule._cf_cache = {}
    entry = cache.get(id(machine))
    if entry is not None and entry[0] is machine:
        return entry[1]
    verdict = all(r.contention_free for r in analyze_contention(schedule, machine))
    cache[id(machine)] = (machine, verdict)
    return verdict
