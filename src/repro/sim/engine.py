"""The discrete-event engine: processes, matching, waits, barriers.

Each rank runs a *program*: a generator that posts operations through its
:class:`~repro.sim.communicator.SimCommunicator` and yields wait conditions.
The engine is fully deterministic — events are ordered by ``(time, seq)``
where ``seq`` is allocation order — and detects deadlock (all processes
blocked with an empty event heap).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Callable, Generator, Iterable

from repro.cluster.machine import Machine
from repro.cluster.spec import LinkClass
from repro.sim.fabric import Fabric
from repro.sim.request import Request, RequestKind
from repro.sim.tracing import TraceCollector


class DeadlockError(RuntimeError):
    """Raised when the event heap empties while processes are still blocked."""


class _WaitAll:
    """Condition: resume when every request in ``requests`` has completed."""

    __slots__ = ("requests",)

    def __init__(self, requests: Iterable[Request]):
        self.requests = tuple(requests)


class _Compute:
    """Condition: resume after ``duration`` seconds of local work."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"compute duration must be >= 0, got {duration}")
        self.duration = duration


class _Barrier:
    """Condition: resume when all ranks have entered the barrier."""

    __slots__ = ()


class _WaitState:
    """Bookkeeping for one blocked process."""

    __slots__ = ("rank", "start", "remaining", "latest")

    def __init__(self, rank: int, start: float):
        self.rank = rank
        self.start = start
        self.remaining = 0
        self.latest = start


class _Unexpected:
    """A delivered message with no matching posted receive yet."""

    __slots__ = ("src", "tag", "nbytes", "payload", "arrival", "consumed")

    def __init__(self, src: int, tag: int, nbytes: int, payload, arrival: float):
        self.src = src
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.arrival = arrival
        self.consumed = False


class Engine:
    """Deterministic discrete-event simulator over ``n_ranks`` processes."""

    def __init__(
        self,
        n_ranks: int,
        machine: Machine,
        trace: TraceCollector | None = None,
        noise_seed: int = 0,
    ):
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be > 0, got {n_ranks}")
        if n_ranks > machine.spec.n_ranks:
            raise ValueError(
                f"n_ranks={n_ranks} exceeds machine capacity {machine.spec.n_ranks}"
            )
        self.n_ranks = n_ranks
        self.machine = machine
        self.fabric = Fabric(machine, noise_seed=noise_seed)
        self.trace = trace

        self.now = 0.0
        self.rank_now = [0.0] * n_ranks
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0
        self._programs: dict[int, Generator] = {}
        self._finished: dict[int, float] = {}
        self._blocked: dict[int, str] = {}

        # Per-destination matching state.
        self._posted: list[dict[tuple[int, int], deque[Request]]] = [dict() for _ in range(n_ranks)]
        self._posted_any: list[dict[int, deque[Request]]] = [dict() for _ in range(n_ranks)]
        self._unexpected: list[dict[tuple[int, int], deque[_Unexpected]]] = [
            dict() for _ in range(n_ranks)
        ]
        self._unexpected_any: list[dict[int, deque[_Unexpected]]] = [dict() for _ in range(n_ranks)]

        # Barrier state.
        self._barrier_waiting: list[int] = []
        self._barrier_latest = 0.0

        # Aggregate statistics.
        self.messages_sent = 0
        self.bytes_sent = 0

        from repro.sim.communicator import SimCommunicator  # late: avoids cycle

        self.comms = [SimCommunicator(self, rank) for rank in range(n_ranks)]

    # ------------------------------------------------------------------ setup
    def spawn(self, rank: int, program: Callable[..., Generator]) -> None:
        """Install ``program(comm)`` as the process for ``rank``."""
        if rank in self._programs or rank in self._finished:
            raise ValueError(f"rank {rank} already has a program")
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        gen = program(self.comms[rank])
        if gen is None:
            # Program did all its (zero-cost) work synchronously.
            self._finished[rank] = 0.0
            return
        self._programs[rank] = gen
        self._schedule(0.0, rank)

    def spawn_all(self, program_factory: Callable[[int], Callable]) -> None:
        """Spawn ``program_factory(rank)`` for every rank."""
        for rank in range(self.n_ranks):
            self.spawn(rank, program_factory(rank))

    # ------------------------------------------------------------------- time
    def _schedule(self, time: float, rank: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, rank))

    def run(self) -> float:
        """Run to completion; returns the makespan (max finish time)."""
        while self._heap:
            time, _, rank = heapq.heappop(self._heap)
            self.now = time
            self._resume(rank, time)
        if self._programs:
            detail = ", ".join(
                f"rank {r} ({self._blocked.get(r, 'runnable')})" for r in sorted(self._programs)
            )
            raise DeadlockError(f"simulation deadlocked; blocked processes: {detail}")
        return self.makespan()

    def makespan(self) -> float:
        return max(self._finished.values(), default=0.0)

    def finish_time(self, rank: int) -> float:
        return self._finished[rank]

    def finish_times(self) -> dict[int, float]:
        return dict(self._finished)

    # ---------------------------------------------------------------- resume
    def _resume(self, rank: int, time: float) -> None:
        gen = self._programs.get(rank)
        if gen is None:  # stale event (e.g. barrier resumed earlier); ignore
            return
        self.rank_now[rank] = max(self.rank_now[rank], time)
        try:
            condition = next(gen)
        except StopIteration:
            del self._programs[rank]
            self._blocked.pop(rank, None)
            self._finished[rank] = self.rank_now[rank]
            return
        self._handle_condition(rank, condition)

    def _handle_condition(self, rank: int, condition) -> None:
        now = self.rank_now[rank]
        if isinstance(condition, _Compute):
            self._blocked[rank] = "compute"
            self._schedule(now + condition.duration, rank)
        elif isinstance(condition, _WaitAll):
            self._begin_wait(rank, condition.requests)
        elif isinstance(condition, _Barrier):
            self._enter_barrier(rank)
        else:
            raise TypeError(
                f"rank {rank} yielded {condition!r}; programs must yield wait conditions "
                "from SimCommunicator (waitall/wait/compute/memcpy/barrier)"
            )

    def _begin_wait(self, rank: int, requests: tuple[Request, ...]) -> None:
        state = _WaitState(rank, self.rank_now[rank])
        for req in requests:
            if req.owner != rank:
                raise ValueError(f"rank {rank} waiting on request owned by rank {req.owner}")
            if req.determined:
                if req.completion_time > state.latest:
                    state.latest = req.completion_time
            else:
                if req._waiter is not None:
                    raise RuntimeError("request already has a waiter")
                req._waiter = state
                state.remaining += 1
        if state.remaining == 0:
            self._schedule(state.latest, rank)
        else:
            self._blocked[rank] = f"waitall({state.remaining} pending)"
            state.rank = rank

    def _request_determined(self, req: Request) -> None:
        """A pending request just completed; unblock its waiter if any."""
        state = req._waiter
        if state is None:
            return
        req._waiter = None
        if req.completion_time > state.latest:
            state.latest = req.completion_time
        state.remaining -= 1
        if state.remaining == 0:
            self._blocked.pop(state.rank, None)
            self._schedule(state.latest, state.rank)

    def _enter_barrier(self, rank: int) -> None:
        self._blocked[rank] = "barrier"
        self._barrier_waiting.append(rank)
        if self.rank_now[rank] > self._barrier_latest:
            self._barrier_latest = self.rank_now[rank]
        live = len(self._programs)
        if len(self._barrier_waiting) == live:
            # Dissemination-barrier cost model: ceil(log2 n) network latencies.
            alpha = self.machine.params.cost(LinkClass.INTER_NODE).alpha
            cost = math.ceil(math.log2(max(2, live))) * alpha
            release = self._barrier_latest + cost
            for r in self._barrier_waiting:
                self._blocked.pop(r, None)
                self._schedule(release, r)
            self._barrier_waiting = []
            self._barrier_latest = 0.0

    # -------------------------------------------------------------- messaging
    def post_send(self, src: int, dst: int, nbytes: int, tag: int, payload) -> Request:
        """Schedule a message; returns the (already determined) send request."""
        if not 0 <= dst < self.n_ranks:
            raise ValueError(f"destination rank {dst} out of range [0, {self.n_ranks})")
        post_time = self.rank_now[src]
        timing = self.fabric.transmit(src, dst, nbytes, post_time)
        req = Request(RequestKind.SEND, src, dst, tag, post_time)
        req.complete(timing.send_complete)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if self.trace is not None:
            self.trace.record(src, dst, nbytes, tag, timing, post_time)
        self._deliver(src, dst, tag, nbytes, payload, timing.arrival)
        return req

    def post_recv(self, dst: int, src: int | None, tag: int) -> Request:
        """Post a receive; ``src=None`` matches any source (MPI_ANY_SOURCE)."""
        now = self.rank_now[dst]
        req = Request(RequestKind.RECV, dst, src, tag, now)
        msg = self._match_unexpected(dst, src, tag)
        if msg is not None:
            self._complete_recv(req, msg.src, msg.nbytes, msg.payload, msg.arrival)
        elif src is None:
            self._posted_any[dst].setdefault(tag, deque()).append(req)
        else:
            self._posted[dst].setdefault((src, tag), deque()).append(req)
        return req

    def _match_unexpected(self, dst: int, src: int | None, tag: int) -> _Unexpected | None:
        if src is None:
            queue = self._unexpected_any[dst].get(tag)
        else:
            queue = self._unexpected[dst].get((src, tag))
        while queue:
            msg = queue.popleft()
            if not msg.consumed:
                msg.consumed = True
                return msg
        return None

    def _complete_recv(self, req: Request, src: int, nbytes: int, payload, arrival: float) -> None:
        req.source = src
        req.nbytes = nbytes
        req.payload = payload
        req.complete(arrival if arrival > req.post_time else req.post_time)
        self._request_determined(req)

    def _deliver(self, src: int, dst: int, tag: int, nbytes: int, payload, arrival: float) -> None:
        posted = self._posted[dst].get((src, tag))
        if posted:
            req = posted.popleft()
            self._complete_recv(req, src, nbytes, payload, arrival)
            return
        posted_any = self._posted_any[dst].get(tag)
        if posted_any:
            req = posted_any.popleft()
            self._complete_recv(req, src, nbytes, payload, arrival)
            return
        msg = _Unexpected(src, tag, nbytes, payload, arrival)
        self._unexpected[dst].setdefault((src, tag), deque()).append(msg)
        self._unexpected_any[dst].setdefault(tag, deque()).append(msg)

    # ------------------------------------------------------------- conditions
    @staticmethod
    def waitall_condition(requests: Iterable[Request]) -> _WaitAll:
        return _WaitAll(requests)

    @staticmethod
    def compute_condition(duration: float) -> _Compute:
        return _Compute(duration)

    @staticmethod
    def barrier_condition() -> _Barrier:
        return _Barrier()
