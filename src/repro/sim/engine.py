"""The discrete-event engine: processes, matching, waits, barriers.

Each rank runs a *program*: a generator that posts operations through its
:class:`~repro.sim.communicator.SimCommunicator` and yields wait conditions.
The engine is fully deterministic — events are ordered by ``(time, seq)``
where ``seq`` is allocation order — and detects deadlock (all processes
blocked with an empty event heap).

Hot-path notes: matching tables hold plain deques keyed per destination and
are pruned as soon as a queue drains (long sweeps must not accumulate empty
deques or consumed-message tombstones); unexpected messages live in one
``(src, tag)`` table with a delivery stamp, and ANY_SOURCE receives match
the minimum stamp over queue heads instead of maintaining a second queue
per tag.  Blocked-state diagnostics are built lazily (only when a deadlock
is actually reported), and request completion assigns ``completion_time``
directly for engine-owned requests instead of going through the guarded
:meth:`~repro.sim.request.Request.complete`.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Callable, Generator, Iterable

from repro.cluster.machine import Machine
from repro.cluster.spec import LinkClass
from repro.sim.fabric import Fabric, MessageTiming
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.request import Request, RequestKind
from repro.sim.tracing import TraceCollector

# Hot-path constants: enum member lookup is a descriptor call per access.
_SEND = RequestKind.SEND
_RECV = RequestKind.RECV

_INF = math.inf


class DeadlockError(RuntimeError):
    """Raised when the event heap empties while processes are still blocked."""


class RetriesExhaustedError(RuntimeError):
    """A message exhausted its :class:`~repro.sim.faults.MessageLoss` retry
    budget: every transmission attempt was dropped and the sender gave up
    after its final ack timeout.

    Previously this surfaced only later — and anonymously — as a
    ``DeadlockError`` once the starved receiver drained the event heap.  The
    structured fields name the failing transfer directly:

    * ``rank`` — the sending rank;
    * ``peer`` — the destination rank that will never receive the message;
    * ``attempts`` — transmissions made (first try + retransmissions);
    * ``last_timeout`` — the ack-timeout (seconds) that expired last.
    """

    def __init__(self, message: str, *, rank: int | None = None,
                 peer: int | None = None, attempts: int | None = None,
                 last_timeout: float | None = None):
        super().__init__(message)
        self.rank = rank
        self.peer = peer
        self.attempts = attempts
        self.last_timeout = last_timeout


class RankFailedError(RuntimeError):
    """Fail-stop failure notification: crashed ranks left survivors stalled.

    Raised only when the fault plan installs a
    :class:`~repro.sim.faults.FailureDetector`; without one a crash that
    starves survivors surfaces as :class:`DeadlockError`, exactly like a
    real system with no failure detection.  Detection cost is charged in
    simulated time: ``detection_time`` is
    ``max(stall time, last crash) + heartbeat_interval + suspicion_timeout``
    and the engine clock is advanced to it before raising.

    * ``failed_ranks`` — crashed ranks, ascending (engine-local ids);
    * ``detection_time`` — simulated time at which survivors learned of
      the failure;
    * ``survivors`` — all non-crashed ranks, ascending.
    """

    def __init__(self, message: str, *, failed_ranks: tuple[int, ...],
                 detection_time: float, survivors: tuple[int, ...]):
        super().__init__(message)
        self.failed_ranks = failed_ranks
        self.detection_time = detection_time
        self.survivors = survivors


class SimTimeoutError(RuntimeError):
    """Raised when a watchdog budget (``max_sim_time``/``max_events``) trips.

    Budget boundaries are *inclusive*: an event whose timestamp equals
    ``max_sim_time`` is still processed (only a strictly-later event trips
    the time budget), and processing exactly ``max_events`` events is
    allowed (the attempt to process one more trips the event budget).

    Besides the human-readable message — which always names the tripped
    budget, the number of events processed so far, and the per-rank blocked
    state in deterministic rank order — the exception carries structured
    fields so callers can dispatch without parsing strings:

    * ``budget`` — ``"sim_time"`` or ``"events"`` (which limit tripped);
    * ``events_processed`` — events fully processed before the trip;
    * ``limit`` — the configured budget value that was exceeded.
    """

    def __init__(self, message: str, *, budget: str | None = None,
                 events_processed: int | None = None,
                 limit: float | int | None = None):
        super().__init__(message)
        self.budget = budget
        self.events_processed = events_processed
        self.limit = limit


class _WaitAll:
    """Condition: resume when every request in ``requests`` has completed."""

    __slots__ = ("requests",)

    def __init__(self, requests: Iterable[Request]):
        self.requests = tuple(requests)


class _Compute:
    """Condition: resume after ``duration`` seconds of local work."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"compute duration must be >= 0, got {duration}")
        self.duration = duration


class _Barrier:
    """Condition: resume when all ranks have entered the barrier."""

    __slots__ = ()


class _WaitState:
    """Bookkeeping for one blocked process."""

    __slots__ = ("rank", "remaining", "latest")

    def __init__(self, rank: int, start: float):
        self.rank = rank
        self.remaining = 0
        self.latest = start


class _Unexpected:
    """A delivered message with no matching posted receive yet.

    ``seq`` is the engine-wide delivery stamp: ANY_SOURCE matching picks the
    lowest stamp among candidate queue heads, which reproduces arrival-order
    (FIFO, non-overtaking) matching without keeping a second per-tag queue.
    """

    __slots__ = ("src", "tag", "nbytes", "payload", "arrival", "seq")

    def __init__(self, src: int, tag: int, nbytes: int, payload, arrival: float, seq: int):
        self.src = src
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.arrival = arrival
        self.seq = seq


class Engine:
    """Deterministic discrete-event simulator over ``n_ranks`` processes."""

    def __init__(
        self,
        n_ranks: int,
        machine: Machine,
        trace: TraceCollector | None = None,
        noise_seed: int = 0,
        faults: FaultPlan | FaultInjector | None = None,
        max_sim_time: float | None = None,
        max_events: int | None = None,
    ):
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be > 0, got {n_ranks}")
        if n_ranks > machine.spec.n_ranks:
            raise ValueError(
                f"n_ranks={n_ranks} exceeds machine capacity {machine.spec.n_ranks}"
            )
        if max_sim_time is not None and max_sim_time <= 0:
            raise ValueError(f"max_sim_time must be > 0, got {max_sim_time}")
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be > 0, got {max_events}")
        self.n_ranks = n_ranks
        self.machine = machine
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        #: Fault injector for this run (None = pristine); exposes the
        #: drop/retransmission/loss counters after the run.
        self.faults = faults
        self.fabric = Fabric(machine, noise_seed=noise_seed, faults=faults)
        self.trace = trace
        # Watchdog budgets; checked in run() only when set (the pristine
        # event loop stays branch-free).
        self._max_sim_time = max_sim_time
        self._max_events = max_events
        self.events_processed = 0
        #: Messages whose retry budget ran out (never delivered).
        self.messages_lost = 0
        # Per-rank compute scaling (stragglers); None keeps _resume lean.
        self._compute_scale: list[float] | None = None
        if faults is not None and faults.has_stragglers:
            self._compute_scale = [faults.compute_factor(r) for r in range(n_ranks)]
        # Fail-stop state.  An empty crash table keeps _resume and post_send
        # branch-cheap for crash-free plans.
        self._crash_times: dict[int, float] = (
            dict(faults.crash_times) if faults is not None else {}
        )
        self._detector = faults.detector if faults is not None else None
        #: Ranks actually killed by a RankCrash fault during this run.
        self.crashed_ranks: set[int] = set()
        #: Ranks whose in-flight sends were crash-dropped.  A sender whose
        #: program completes before its crash time is never killed by an
        #: event, yet its undelivered bytes still die with it — to a
        #: starved receiver it is simply a dead peer (see _on_stall).
        self._crash_dropped_senders: set[int] = set()

        self.now = 0.0
        self.rank_now = [0.0] * n_ranks
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0
        self._programs: dict[int, Generator] = {}
        self._finished: dict[int, float] = {}
        #: rank -> "compute" | "barrier" | _WaitState; formatted lazily for
        #: deadlock reports only, never on the hot path.
        self._blocked: dict[int, object] = {}

        # Per-destination matching state.  Queues are created on demand and
        # deleted as soon as they drain.  Unexpected messages live in a
        # single (src, tag)-keyed table per destination; ANY_SOURCE receives
        # match by minimum delivery stamp (`_Unexpected.seq`) over the
        # candidate queue heads, so no message is ever double-booked and no
        # consumed tombstone can accumulate.
        self._posted: list[dict[tuple[int, int], deque[Request]]] = [dict() for _ in range(n_ranks)]
        self._posted_any: list[dict[int, deque[Request]]] = [dict() for _ in range(n_ranks)]
        self._unexpected: list[dict[tuple[int, int], deque[_Unexpected]]] = [
            dict() for _ in range(n_ranks)
        ]
        self._useq = 0

        # Barrier state.
        self._barrier_waiting: list[int] = []
        self._barrier_latest = 0.0

        # Aggregate statistics.
        self.messages_sent = 0
        self.bytes_sent = 0

        from repro.sim.communicator import SimCommunicator  # late: avoids cycle

        self.comms = [SimCommunicator(self, rank) for rank in range(n_ranks)]

    # ------------------------------------------------------------------ setup
    def spawn(self, rank: int, program: Callable[..., Generator]) -> None:
        """Install ``program(comm)`` as the process for ``rank``."""
        if rank in self._programs or rank in self._finished:
            raise ValueError(f"rank {rank} already has a program")
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        gen = program(self.comms[rank])
        if gen is None:
            # Program did all its (zero-cost) work synchronously.
            self._finished[rank] = 0.0
            return
        self._programs[rank] = gen
        # Straggler launch delay: the rank's first event fires late.
        start = 0.0 if self.faults is None else self.faults.startup_delay(rank)
        self._schedule(start, rank)

    def spawn_all(self, program_factory: Callable[[int], Callable]) -> None:
        """Spawn ``program_factory(rank)`` for every rank."""
        for rank in range(self.n_ranks):
            self.spawn(rank, program_factory(rank))

    # ------------------------------------------------------------------- time
    def _schedule(self, time: float, rank: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, rank))

    def run(self) -> float:
        """Run to completion; returns the makespan (max finish time).

        With a watchdog budget set, the loop checks each event against
        ``max_sim_time`` (event timestamp) and ``max_events`` (events
        processed) and raises :class:`SimTimeoutError` on the first breach.
        Boundaries are inclusive (see :class:`SimTimeoutError`): an event
        *at* ``max_sim_time`` is processed, and exactly ``max_events``
        events may be processed — the budget trips on event
        ``max_events + 1``.  ``events_processed`` is kept accurate on every
        exit path, budgeted or not.
        """
        heap = self._heap
        pop = heapq.heappop
        resume = self._resume
        max_time = self._max_sim_time
        max_events = self._max_events
        events = self.events_processed
        if max_time is None and max_events is None:
            try:
                while heap:
                    time, _, rank = pop(heap)
                    events += 1
                    self.now = time
                    resume(rank, time)
            finally:
                self.events_processed = events
        else:
            if max_time is None:
                max_time = math.inf
            while heap:
                time, _, rank = pop(heap)
                if time > max_time:
                    self.events_processed = events
                    raise SimTimeoutError(
                        f"simulated-time budget exceeded: next event at "
                        f"{time:.6e}s > max_sim_time={max_time:.6e}s "
                        f"after {events} event(s); "
                        f"processes: {self._blocked_detail()}",
                        budget="sim_time", events_processed=events,
                        limit=max_time,
                    )
                events += 1
                if max_events is not None and events > max_events:
                    self.events_processed = events - 1
                    raise SimTimeoutError(
                        f"event budget exceeded: processed {events - 1} events "
                        f"(max_events={max_events}); "
                        f"processes: {self._blocked_detail()}",
                        budget="events", events_processed=events - 1,
                        limit=max_events,
                    )
                self.now = time
                resume(rank, time)
            self.events_processed = events
        if self._programs:
            self._on_stall()
        return self.makespan()

    def _on_stall(self) -> None:
        """Event heap drained with live processes: detection or deadlock.

        A blocked rank with a pending crash time is doomed too — no event
        can ever resume it before simulated time runs past its crash — so
        it is killed here rather than left to masquerade as a survivor.  If
        killing the doomed unblocks the stall (everyone else had already
        finished), the run completes; otherwise a detector converts the
        stall into a structured :class:`RankFailedError`, and a plan
        without one deadlocks exactly as a system with no failure
        detection would.
        """
        if self._crash_times:
            for rank in [r for r in self._programs if r in self._crash_times]:
                self._kill(rank)
            if not self._programs:
                return
            # A sender whose program finished before its crash time but
            # whose in-flight bytes were crash-dropped is dead all the
            # same: its block never arrived and its heartbeats stopped, so
            # a starved receiver cannot tell "finished then died" from
            # "died mid-send".  Reclassify it as crashed so detection
            # (below) names it instead of reporting a bare deadlock.
            for rank in self._crash_dropped_senders:
                if rank not in self._programs and rank not in self.crashed_ranks:
                    self.crashed_ranks.add(rank)
                    self.faults.rank_crashes += 1
            if self.crashed_ranks and self._detector is not None:
                last_crash = max(self._crash_times[r] for r in self.crashed_ranks)
                detection = max(self.now, last_crash) + self._detector.detection_lag
                self.now = detection
                failed = tuple(sorted(self.crashed_ranks))
                survivors = tuple(
                    r for r in range(self.n_ranks) if r not in self.crashed_ranks
                )
                raise RankFailedError(
                    f"rank(s) {list(failed)} failed; detected at "
                    f"{detection:.6e}s; blocked survivors: {self._blocked_detail()}",
                    failed_ranks=failed, detection_time=detection,
                    survivors=survivors,
                )
        raise DeadlockError(
            f"simulation deadlocked; blocked processes: {self._blocked_detail()}"
        )

    def _kill(self, rank: int) -> None:
        """Fail-stop: tear down a crashed rank's process mid-run."""
        gen = self._programs.pop(rank, None)
        if gen is not None:
            gen.close()
        self._blocked.pop(rank, None)
        if rank not in self.crashed_ranks:
            self.crashed_ranks.add(rank)
            self.faults.rank_crashes += 1

    def _blocked_detail(self) -> str:
        """Lazily-formatted state of every unfinished process (error paths
        only — never built on the hot path)."""
        if not self._programs:
            return "none"
        return ", ".join(
            f"rank {r} ({self._blocked_reason(r)})" for r in sorted(self._programs)
        )

    def _blocked_reason(self, rank: int) -> str:
        state = self._blocked.get(rank)
        if state is None:
            return "runnable"
        if isinstance(state, _WaitState):
            return f"waitall({state.remaining} pending)"
        return str(state)

    def makespan(self) -> float:
        return max(self._finished.values(), default=0.0)

    def finish_time(self, rank: int) -> float:
        return self._finished[rank]

    def finish_times(self) -> dict[int, float]:
        return dict(self._finished)

    # ---------------------------------------------------------------- resume
    def _resume(self, rank: int, time: float) -> None:
        gen = self._programs.get(rank)
        if gen is None:  # stale event (e.g. barrier resumed earlier); ignore
            return
        if self._crash_times:
            crash_at = self._crash_times.get(rank)
            if crash_at is not None and time >= crash_at:
                # Fail-stop at event granularity: the rank's first event at
                # or after its crash time kills it instead of resuming it.
                # A rank that finishes before its crash time is never killed.
                self._kill(rank)
                return
        rank_now = self.rank_now
        if time > rank_now[rank]:
            rank_now[rank] = time
        try:
            condition = next(gen)
        except StopIteration:
            del self._programs[rank]
            self._blocked.pop(rank, None)
            self._finished[rank] = rank_now[rank]
            return
        cls = condition.__class__
        if cls is _WaitAll:
            self._begin_wait(rank, condition.requests)
        elif cls is _Compute:
            self._blocked[rank] = "compute"
            duration = condition.duration
            if self._compute_scale is not None:
                duration *= self._compute_scale[rank]
            self._schedule(rank_now[rank] + duration, rank)
        elif cls is _Barrier:
            self._enter_barrier(rank)
        else:
            self._handle_condition(rank, condition)

    def _handle_condition(self, rank: int, condition) -> None:
        # Slow path: accept subclasses of the condition types, reject junk.
        if isinstance(condition, _Compute):
            self._blocked[rank] = "compute"
            duration = condition.duration
            if self._compute_scale is not None:
                duration *= self._compute_scale[rank]
            self._schedule(self.rank_now[rank] + duration, rank)
        elif isinstance(condition, _WaitAll):
            self._begin_wait(rank, condition.requests)
        elif isinstance(condition, _Barrier):
            self._enter_barrier(rank)
        else:
            raise TypeError(
                f"rank {rank} yielded {condition!r}; programs must yield wait conditions "
                "from SimCommunicator (waitall/wait/compute/memcpy/barrier)"
            )

    def _begin_wait(self, rank: int, requests: tuple[Request, ...]) -> None:
        state = _WaitState(rank, self.rank_now[rank])
        latest = state.latest
        remaining = 0
        for req in requests:
            if req.owner != rank:
                raise ValueError(f"rank {rank} waiting on request owned by rank {req.owner}")
            t = req.completion_time
            if t is not None:
                if t > latest:
                    latest = t
            else:
                if req._waiter is not None:
                    raise RuntimeError("request already has a waiter")
                req._waiter = state
                remaining += 1
        state.latest = latest
        if remaining == 0:
            self._schedule(latest, rank)
        else:
            state.remaining = remaining
            self._blocked[rank] = state

    def _request_determined(self, req: Request) -> None:
        """A pending request just completed; unblock its waiter if any."""
        state = req._waiter
        if state is None:
            return
        req._waiter = None
        if req.completion_time > state.latest:
            state.latest = req.completion_time
        state.remaining -= 1
        if state.remaining == 0:
            self._blocked.pop(state.rank, None)
            self._schedule(state.latest, state.rank)

    def _enter_barrier(self, rank: int) -> None:
        """MPI-style barrier over the engine's processes.

        Every spawned process must reach the barrier.  A process that
        already finished can never enter it, so — exactly like real MPI —
        the collective can never complete: that is a deadlock, reported
        eagerly instead of silently releasing over a partial communicator.
        """
        if self._finished:
            gone = sorted(self._finished)
            raise DeadlockError(
                f"rank {rank} entered a barrier but rank(s) {gone} already "
                "finished and can never participate; a real MPI barrier over "
                "this communicator would deadlock"
            )
        self._blocked[rank] = "barrier"
        self._barrier_waiting.append(rank)
        if self.rank_now[rank] > self._barrier_latest:
            self._barrier_latest = self.rank_now[rank]
        live = len(self._programs)
        if len(self._barrier_waiting) == live:
            # Dissemination-barrier cost model: ceil(log2 n) network
            # latencies; a single process synchronizes with nobody and
            # pays no rounds.
            if live > 1:
                alpha = self.machine.params.cost(LinkClass.INTER_NODE).alpha
                cost = math.ceil(math.log2(live)) * alpha
            else:
                cost = 0.0
            release = self._barrier_latest + cost
            for r in self._barrier_waiting:
                self._blocked.pop(r, None)
                self._schedule(release, r)
            self._barrier_waiting = []
            self._barrier_latest = 0.0

    # -------------------------------------------------------------- messaging
    def post_send(self, src: int, dst: int, nbytes: int, tag: int, payload) -> Request:
        """Schedule a message; returns the (already determined) send request."""
        if not 0 <= dst < self.n_ranks:
            raise ValueError(f"destination rank {dst} out of range [0, {self.n_ranks})")
        post_time = self.rank_now[src]
        timing = self.fabric.transmit(src, dst, nbytes, post_time)
        crash_dropped = False
        if self._crash_times and timing.arrival != _INF:
            crash_at = self._crash_times.get(src)
            if crash_at is not None and timing.arrival > crash_at:
                # In-flight send from a rank that dies before delivery: the
                # data never lands.  Recorded in the trace as lost (inf
                # arrival) so conservation laws still balance.
                timing = MessageTiming(timing.send_complete, _INF,
                                       timing.link_class, timing.attempts)
                crash_dropped = True
        req = Request(_SEND, src, dst, tag, post_time)
        req.completion_time = timing.send_complete  # fresh request: no guard needed
        req.attempts = timing.attempts
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if self.trace is not None:
            self.trace.record(src, dst, nbytes, tag, timing, post_time)
        if timing.arrival != _INF:
            self._deliver(src, dst, tag, nbytes, payload, timing.arrival)
        elif crash_dropped:
            req.lost = True
            self.messages_lost += 1
            self.faults.crash_dropped += 1
            self._crash_dropped_senders.add(src)
        else:
            # Retry budget exhausted: the message is permanently lost.  The
            # sender's request still completes (it gave up after its last
            # timeout), but instead of letting the starved receiver drain
            # the heap into an anonymous DeadlockError the failure is
            # reported at its source, with the transfer named.
            req.lost = True
            self.messages_lost += 1
            retry = self.faults.retry
            raise RetriesExhaustedError(
                f"message {src} -> {dst} ({nbytes} B, tag {tag}) lost: all "
                f"{timing.attempts} transmission attempts dropped; last ack "
                f"timeout {retry.delay_after(timing.attempts):.3e}s expired "
                f"at t={timing.send_complete:.6e}s",
                rank=src, peer=dst, attempts=timing.attempts,
                last_timeout=retry.delay_after(timing.attempts),
            )
        return req

    def post_recv(self, dst: int, src: int | None, tag: int) -> Request:
        """Post a receive; ``src=None`` matches any source (MPI_ANY_SOURCE)."""
        now = self.rank_now[dst]
        req = Request(_RECV, dst, src, tag, now)
        msg = None
        table_u = self._unexpected[dst]
        if table_u:
            if src is None:
                msg = self._match_unexpected_any(dst, tag)
            else:
                key = (src, tag)
                queue = table_u.get(key)
                if queue is not None:
                    msg = queue.popleft()
                    if not queue:
                        del table_u[key]
        if msg is not None:
            self._complete_recv(req, msg.src, msg.nbytes, msg.payload, msg.arrival)
        elif src is None:
            table = self._posted_any[dst]
            queue = table.get(tag)
            if queue is None:
                table[tag] = queue = deque()
            queue.append(req)
        else:
            table = self._posted[dst]
            key = (src, tag)
            queue = table.get(key)
            if queue is None:
                table[key] = queue = deque()
            queue.append(req)
        return req

    def _match_unexpected_any(self, dst: int, tag: int) -> _Unexpected | None:
        """Earliest-delivered unexpected message carrying ``tag``, any source.

        Queue heads are each source's oldest pending message, so the global
        minimum delivery stamp over matching heads is exactly the message an
        arrival-ordered ANY queue would surface.
        """
        table = self._unexpected[dst]
        best_key = None
        best = None
        for key, queue in table.items():
            if key[1] == tag:
                head = queue[0]
                if best is None or head.seq < best.seq:
                    best = head
                    best_key = key
        if best is None:
            return None
        queue = table[best_key]
        queue.popleft()
        if not queue:
            del table[best_key]
        return best

    def _complete_recv(self, req: Request, src: int, nbytes: int, payload, arrival: float) -> None:
        req.source = src
        req.nbytes = nbytes
        req.payload = payload
        req.completion_time = arrival if arrival > req.post_time else req.post_time
        self._request_determined(req)

    def _deliver(self, src: int, dst: int, tag: int, nbytes: int, payload, arrival: float) -> None:
        table = self._posted[dst]
        key = (src, tag)
        posted = table.get(key)
        if posted:
            req = posted.popleft()
            if not posted:
                del table[key]
            self._complete_recv(req, src, nbytes, payload, arrival)
            return
        table_any = self._posted_any[dst]
        if table_any:
            posted_any = table_any.get(tag)
            if posted_any:
                req = posted_any.popleft()
                if not posted_any:
                    del table_any[tag]
                self._complete_recv(req, src, nbytes, payload, arrival)
                return
        self._useq = seq = self._useq + 1
        msg = _Unexpected(src, tag, nbytes, payload, arrival, seq)
        table_u = self._unexpected[dst]
        queue = table_u.get(key)
        if queue is None:
            table_u[key] = queue = deque()
        queue.append(msg)

    # ------------------------------------------------------------- conditions
    @staticmethod
    def waitall_condition(requests: Iterable[Request]) -> _WaitAll:
        return _WaitAll(requests)

    @staticmethod
    def compute_condition(duration: float) -> _Compute:
        return _Compute(duration)

    @staticmethod
    def barrier_condition() -> _Barrier:
        return _Barrier()
