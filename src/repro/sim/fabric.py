"""Message transit-time computation over the machine model.

A message from ``src`` to ``dst`` flows through a pipeline of serialized
resources:

    send port -> [node TX NIC] -> [shared bottleneck links...] -> [node RX NIC] -> recv port

Each stage is exclusively occupied for the message's serialization time on
that stage (cut-through: a stage may start as soon as the previous stage
started, but stages never finish before their upstream).  The message
arrives at the receiver at the pipeline's end plus the path startup latency.
Uncontended, this reduces exactly to Hockney's ``alpha + m/beta``; under
load, queueing at ports/NICs/global links produces the serialization and
congestion effects the paper's Section IV describes.

Hot-path design: everything about a message's pipeline except its byte count
and the adaptive lane choice is determined by the (socket, socket) pair, so
:class:`Fabric` caches one :class:`_StagePlan` per socket pair — resolved
resource objects, link class, alpha, inverse betas — and ``transmit`` runs a
branch-light, allocation-free claim sequence against it.  This is what keeps
paper-scale sweeps (millions of messages) feasible in pure Python.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.spec import LinkClass
from repro.sim.resources import ResourcePool, SerialResource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.faults import FaultInjector


@dataclass(slots=True)
class MessageTiming:
    """Timing of one message: when the sender's port frees, when data lands.

    ``arrival`` is ``math.inf`` for a message permanently lost under a fault
    plan (retry budget exhausted); ``attempts`` counts transmissions
    including the successful (or final dropped) one.
    """

    send_complete: float
    arrival: float
    link_class: LinkClass
    attempts: int = 1

    @property
    def lost(self) -> bool:
        return self.arrival == math.inf


def _next_free(res: SerialResource) -> float:
    """Adaptive-routing sort key (module-level: no per-call closure)."""
    return res.next_free


#: Machine-determined plan costs, shared across every Fabric built over the
#: same :class:`Machine` object.  Each ``run_allgather`` constructs a fresh
#: Engine/Fabric, but link classes, alphas, hop surcharges and link keys are
#: functions of the machine alone — resolving them once per machine instead
#: of once per run keeps repeated sweeps off the ``link_class``/``node_of``
#: slow path.  Entries map a socket-pair key to ``(link_class, alpha,
#: hop_extra, inv_beta, link_inv_beta, node_src, node_dst, group_keys,
#: fixed_keys)`` with ``node_src == -1`` marking intra-node paths.  Keyed by
#: ``id()`` with a weakref guard: a dead Machine's entry is dropped by the
#: callback, and the identity re-check protects against id reuse.
_COSTS_BY_MACHINE: dict[int, tuple[weakref.ref, dict[int, tuple]]] = {}


def _machine_cost_table(machine: Machine) -> dict[int, tuple]:
    key = id(machine)
    entry = _COSTS_BY_MACHINE.get(key)
    if entry is not None and entry[0]() is machine:
        return entry[1]
    table: dict[int, tuple] = {}

    def _drop(_ref, _key=key):
        _COSTS_BY_MACHINE.pop(_key, None)

    _COSTS_BY_MACHINE[key] = (weakref.ref(machine, _drop), table)
    return table


def _resolve_machine_costs(machine: Machine, adaptive: bool, src: int, dst: int) -> tuple:
    """Machine-determined half of a stage plan (no resource objects).

    Shared between :class:`Fabric` and the schedule fast path
    (:mod:`repro.sim.fastpath`): both must price a ``(src, dst)`` pair with
    byte-for-byte identical constants, so the resolution lives here once and
    the results are memoized per machine in :data:`_COSTS_BY_MACHINE`.
    """
    params = machine.params
    cls = machine.link_class(src, dst)
    cost = params.cost(cls)
    hop_extra = machine.hop_extra_alpha(src, dst)
    inv_beta = 1.0 / cost.beta

    node_src = node_dst = -1
    group_keys = None
    fixed_keys: tuple = ()
    link_inv_beta = 0.0
    if cls in (LinkClass.INTER_NODE, LinkClass.INTER_GROUP):
        spec = machine.spec
        node_src, node_dst = spec.node_of(src), spec.node_of(dst)
        if cls is LinkClass.INTER_GROUP:
            link_inv_beta = 1.0 / params.cost(LinkClass.INTER_GROUP).beta
            if adaptive:
                group_keys = tuple(
                    tuple(group)
                    for group in machine.network.link_choices(node_src, node_dst)
                )
            else:
                fixed_keys = tuple(
                    machine.network.shared_link_keys(node_src, node_dst)
                )
    return (cls, cost.alpha, hop_extra, inv_beta, link_inv_beta,
            node_src, node_dst, group_keys, fixed_keys)


class _StagePlan:
    """Everything fixed about a (socket, socket) pair's message pipeline.

    ``link_groups`` is non-None for adaptive routing (one tuple of
    interchangeable lane resources per bottleneck crossed); ``fixed_links``
    is the oblivious (hash-routed) lane set.  Both are empty/None for paths
    that cross no shared bottleneck.  ``nic_tx``/``nic_rx`` are None for
    intra-node classes.
    """

    __slots__ = (
        "link_class",
        "alpha",
        "hop_extra",
        "inv_beta",
        "nic_tx",
        "nic_rx",
        "fixed_links",
        "link_groups",
        "link_inv_beta",
    )

    def __init__(self, link_class, alpha, hop_extra, inv_beta, nic_tx, nic_rx,
                 fixed_links, link_groups, link_inv_beta):
        self.link_class = link_class
        self.alpha = alpha
        self.hop_extra = hop_extra
        self.inv_beta = inv_beta
        self.nic_tx = nic_tx
        self.nic_rx = nic_rx
        self.fixed_links = fixed_links
        self.link_groups = link_groups
        self.link_inv_beta = link_inv_beta


class Fabric:
    """Prices and schedules every message of a simulation run.

    ``noise_seed`` drives the optional latency jitter
    (:attr:`HockneyParameters.jitter`); with jitter 0 it is unused and the
    fabric is exactly deterministic.

    ``faults`` installs a :class:`~repro.sim.faults.FaultInjector`: every
    transmission is routed through :meth:`_transmit_faulty` (perturbed
    costs, probabilistic drop, timeout/backoff retransmission) instead of
    the pristine inline fast path.  With no injector the hot path is
    exactly the PR-1 optimized sequence.
    """

    def __init__(
        self,
        machine: Machine,
        noise_seed: int = 0,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.machine = machine
        params = machine.params
        self._jitter = params.jitter
        self._noise = np.random.default_rng(noise_seed) if self._jitter > 0 else None
        #: Fault injector (None = pristine fabric; the fast path is untouched).
        self._faults = faults
        self._send_ports = ResourcePool()
        self._recv_ports = ResourcePool()
        self._nic_tx = ResourcePool()
        self._nic_rx = ResourcePool()
        self._links = ResourcePool()

        spec = machine.spec
        self._ranks_per_socket = spec.ranks_per_socket
        self._sockets_per_node = spec.sockets_per_node
        self._n_sockets = spec.n_sockets
        self._memcpy_beta = params.memcpy_beta
        self._nic_overhead = params.nic_message_overhead
        self._link_overhead = params.link_message_overhead
        self._adaptive = params.adaptive_routing
        # Per-(socket, socket) pipeline plans, keyed by the flat socket-pair
        # index; rank-pair space can be huge, the socket pair fully
        # determines every per-message cost and resource except byte count.
        # Resource objects are per-Fabric; the cost half of each plan comes
        # from the machine-wide shared table.
        self._plans: dict[int, _StagePlan] = {}
        self._shared_costs = _machine_cost_table(machine)
        # Lazy per-rank port caches (list index beats dict hashing; the pool
        # stays authoritative so utilization() reports only touched ports).
        self._send_fast: list[SerialResource | None] = [None] * spec.n_ranks
        self._recv_fast: list[SerialResource | None] = [None] * spec.n_ranks

    # ----------------------------------------------------------------- plans
    def _build_plan(self, src: int, dst: int, key: int) -> _StagePlan:
        """Resolve the full pipeline for ``src``'s and ``dst``'s socket pair."""
        entry = self._shared_costs.get(key)
        if entry is None:
            entry = self._resolve_costs(src, dst)
            self._shared_costs[key] = entry
        (cls, alpha, hop_extra, inv_beta, link_inv_beta,
         node_src, node_dst, group_keys, fixed_keys) = entry

        nic_tx = nic_rx = None
        fixed_links: tuple[SerialResource, ...] = ()
        link_groups = None
        if node_src >= 0:
            nic_tx = self._nic_tx.get(node_src)
            nic_rx = self._nic_rx.get(node_dst)
            if group_keys is not None:
                link_groups = tuple(
                    tuple(self._links.get(k) for k in group) for group in group_keys
                )
            elif fixed_keys:
                fixed_links = tuple(self._links.get(k) for k in fixed_keys)
        return _StagePlan(cls, alpha, hop_extra, inv_beta,
                          nic_tx, nic_rx, fixed_links, link_groups, link_inv_beta)

    def _resolve_costs(self, src: int, dst: int) -> tuple:
        """Machine-determined half of a plan (no resource objects)."""
        return _resolve_machine_costs(self.machine, self._adaptive, src, dst)

    # --------------------------------------------------------------- schedule
    def transmit(self, src: int, dst: int, nbytes: int, post_time: float) -> MessageTiming:
        """Schedule a message; claims all resources and returns its timing.

        Endpoint ports serialize the full Hockney cost ``alpha + m/beta``
        per message — the paper's single-port assumption (each rank sends
        or receives one message at a time, paying startup per message).
        Node NICs serialize ``nic_message_overhead + m/beta`` (message-rate
        limit), producing the node-level serialization of the paper's
        Eq. (5); shared global links serialize bandwidth.

        Invariants (see docs/ARCHITECTURE.md): claims are made in event
        order, stages are claimed upstream-to-downstream, and a stage
        extended by upstream streaming (cut-through) credits the extension
        to its ``busy_time`` so utilization reflects true occupancy.
        """
        if src == dst:
            dur = nbytes / self._memcpy_beta
            done = post_time + dur
            return MessageTiming(done, done, LinkClass.SELF)

        rps = self._ranks_per_socket
        key = (src // rps) * self._n_sockets + (dst // rps)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._build_plan(src, dst, key)
            self._plans[key] = plan

        if self._faults is not None:
            return self._transmit_faulty(plan, src, dst, nbytes, post_time)

        alpha = plan.alpha
        hop_extra = plan.hop_extra
        if self._noise is not None:
            noise = 1.0 + self._jitter * float(self._noise.random())
            alpha *= noise
            hop_extra *= noise
        dur = nbytes * plan.inv_beta
        port_dur = alpha + dur

        # Stage 1: sender port.  The first stage can never be outrun by
        # upstream data, so no cut-through adjustment is needed here.
        res = self._send_fast[src]
        if res is None:
            self._send_fast[src] = res = self._send_ports.get(src)
        start = post_time if post_time > res.next_free else res.next_free
        end = start + port_dur
        res.next_free = end
        res.busy_time += port_dur
        res.claims += 1
        send_complete = end
        prev_start = start
        pipeline_end = end

        nic = plan.nic_tx
        if nic is not None:
            nic_dur = self._nic_overhead + dur
            # TX NIC.
            start = prev_start if prev_start > nic.next_free else nic.next_free
            end = start + nic_dur
            nic.busy_time += nic_dur
            nic.claims += 1
            if end < pipeline_end:
                nic.busy_time += pipeline_end - end
                end = pipeline_end
            nic.next_free = end
            prev_start = start
            pipeline_end = end
            # Shared bottleneck links (inter-group only).
            groups = plan.link_groups
            if groups is not None or plan.fixed_links:
                link_dur = self._link_overhead + nbytes * plan.link_inv_beta
                if groups is None:
                    lanes = plan.fixed_links
                elif len(groups) == 1:
                    # Adaptive (UGAL-like): least-loaded lane, first minimal
                    # on ties.  One bottleneck with two lanes is the common
                    # Dragonfly+ case; avoid min()'s key-fn calls there.
                    group = groups[0]
                    if len(group) == 2:
                        a = group[0]
                        b = group[1]
                        lanes = ((a if a.next_free <= b.next_free else b),)
                    else:
                        lanes = (min(group, key=_next_free),)
                else:
                    # Pick every lane before claiming any.
                    lanes = [min(group, key=_next_free) for group in groups]
                for res in lanes:
                    start = prev_start if prev_start > res.next_free else res.next_free
                    end = start + link_dur
                    res.busy_time += link_dur
                    res.claims += 1
                    if end < pipeline_end:
                        res.busy_time += pipeline_end - end
                        end = pipeline_end
                    res.next_free = end
                    prev_start = start
                    pipeline_end = end
            # RX NIC.
            nic = plan.nic_rx
            start = prev_start if prev_start > nic.next_free else nic.next_free
            end = start + nic_dur
            nic.busy_time += nic_dur
            nic.claims += 1
            if end < pipeline_end:
                nic.busy_time += pipeline_end - end
                end = pipeline_end
            nic.next_free = end
            prev_start = start
            pipeline_end = end

        # Final stage: receiver port.
        res = self._recv_fast[dst]
        if res is None:
            self._recv_fast[dst] = res = self._recv_ports.get(dst)
        start = prev_start if prev_start > res.next_free else res.next_free
        end = start + port_dur
        res.busy_time += port_dur
        res.claims += 1
        if end < pipeline_end:
            # A faster downstream stage cannot finish before upstream data
            # has fully streamed through; the port stays occupied while it
            # drains, so the extension counts as busy time.
            res.busy_time += pipeline_end - end
            end = pipeline_end
        res.next_free = end
        pipeline_end = end

        return MessageTiming(send_complete, pipeline_end + hop_extra, plan.link_class)

    # ----------------------------------------------------------------- faults
    def _transmit_faulty(
        self, plan: _StagePlan, src: int, dst: int, nbytes: int, post_time: float
    ) -> MessageTiming:
        """Fault-aware transmit: perturbed costs, drop + timeout/backoff retry.

        Each attempt claims the full resource pipeline (a dropped message
        still traveled — loss is detected at the endpoint via a missing
        ack), so retransmission costs are charged in simulated time.  When
        the retry budget runs out the message is lost: ``arrival`` is
        ``inf`` and the engine never delivers it.
        """
        faults = self._faults
        cls = plan.link_class
        retry = faults.retry
        attempt = 1
        t = post_time
        while True:
            alpha, hop_extra, inv_beta, link_inv_beta = faults.perturb(
                cls, t, plan.alpha, plan.hop_extra, plan.inv_beta, plan.link_inv_beta
            )
            if self._noise is not None:
                noise = 1.0 + self._jitter * float(self._noise.random())
                alpha *= noise
                hop_extra *= noise
            send_complete, pipeline_end = self._claim(
                plan, src, dst, nbytes, t, alpha, inv_beta, link_inv_beta
            )
            if not faults.should_drop(cls, t):
                if attempt > 1:
                    faults.retransmissions += attempt - 1
                return MessageTiming(
                    send_complete, pipeline_end + hop_extra, cls, attempt
                )
            faults.drops += 1
            if attempt > retry.max_retries:
                faults.messages_lost += 1
                return MessageTiming(send_complete, math.inf, cls, attempt)
            t = send_complete + retry.delay_after(attempt)
            attempt += 1

    def _claim(
        self,
        plan: _StagePlan,
        src: int,
        dst: int,
        nbytes: int,
        post_time: float,
        alpha: float,
        inv_beta: float,
        link_inv_beta: float,
    ) -> tuple[float, float]:
        """One pipeline claim pass with explicit (possibly perturbed) costs.

        Mirror of :meth:`transmit`'s inline claim sequence — keep the two in
        sync (the golden-grid no-op regression test pins their arithmetic
        equivalence; ``transmit`` stays inlined because the pristine path is
        the wall-clock hot path).
        """
        dur = nbytes * inv_beta
        port_dur = alpha + dur

        res = self._send_fast[src]
        if res is None:
            self._send_fast[src] = res = self._send_ports.get(src)
        start = post_time if post_time > res.next_free else res.next_free
        end = start + port_dur
        res.next_free = end
        res.busy_time += port_dur
        res.claims += 1
        send_complete = end
        prev_start = start
        pipeline_end = end

        nic = plan.nic_tx
        if nic is not None:
            nic_dur = self._nic_overhead + dur
            start = prev_start if prev_start > nic.next_free else nic.next_free
            end = start + nic_dur
            nic.busy_time += nic_dur
            nic.claims += 1
            if end < pipeline_end:
                nic.busy_time += pipeline_end - end
                end = pipeline_end
            nic.next_free = end
            prev_start = start
            pipeline_end = end
            groups = plan.link_groups
            if groups is not None or plan.fixed_links:
                link_dur = self._link_overhead + nbytes * link_inv_beta
                if groups is None:
                    lanes = plan.fixed_links
                elif len(groups) == 1:
                    group = groups[0]
                    if len(group) == 2:
                        a = group[0]
                        b = group[1]
                        lanes = ((a if a.next_free <= b.next_free else b),)
                    else:
                        lanes = (min(group, key=_next_free),)
                else:
                    lanes = [min(group, key=_next_free) for group in groups]
                for res in lanes:
                    start = prev_start if prev_start > res.next_free else res.next_free
                    end = start + link_dur
                    res.busy_time += link_dur
                    res.claims += 1
                    if end < pipeline_end:
                        res.busy_time += pipeline_end - end
                        end = pipeline_end
                    res.next_free = end
                    prev_start = start
                    pipeline_end = end
            nic = plan.nic_rx
            start = prev_start if prev_start > nic.next_free else nic.next_free
            end = start + nic_dur
            nic.busy_time += nic_dur
            nic.claims += 1
            if end < pipeline_end:
                nic.busy_time += pipeline_end - end
                end = pipeline_end
            nic.next_free = end
            prev_start = start
            pipeline_end = end

        res = self._recv_fast[dst]
        if res is None:
            self._recv_fast[dst] = res = self._recv_ports.get(dst)
        start = prev_start if prev_start > res.next_free else res.next_free
        end = start + port_dur
        res.busy_time += port_dur
        res.claims += 1
        if end < pipeline_end:
            res.busy_time += pipeline_end - end
            end = pipeline_end
        res.next_free = end
        pipeline_end = end

        return send_complete, pipeline_end

    # -------------------------------------------------------------- reporting
    def utilization(self, horizon: float) -> dict[str, dict]:
        """Busy fractions per resource family over ``[0, horizon]``."""
        return {
            "send_ports": self._send_ports.utilization(horizon),
            "recv_ports": self._recv_ports.utilization(horizon),
            "nic_tx": self._nic_tx.utilization(horizon),
            "nic_rx": self._nic_rx.utilization(horizon),
            "links": self._links.utilization(horizon),
        }
