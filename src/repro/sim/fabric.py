"""Message transit-time computation over the machine model.

A message from ``src`` to ``dst`` flows through a pipeline of serialized
resources:

    send port -> [node TX NIC] -> [shared bottleneck links...] -> [node RX NIC] -> recv port

Each stage is exclusively occupied for the message's serialization time on
that stage (cut-through: a stage may start as soon as the previous stage
started, but stages never finish before their upstream).  The message
arrives at the receiver at the pipeline's end plus the path startup latency.
Uncontended, this reduces exactly to Hockney's ``alpha + m/beta``; under
load, queueing at ports/NICs/global links produces the serialization and
congestion effects the paper's Section IV describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.spec import LinkClass
from repro.sim.resources import ResourcePool, SerialResource


@dataclass(frozen=True, slots=True)
class MessageTiming:
    """Timing of one message: when the sender's port frees, when data lands."""

    send_complete: float
    arrival: float
    link_class: LinkClass


class Fabric:
    """Prices and schedules every message of a simulation run.

    ``noise_seed`` drives the optional latency jitter
    (:attr:`HockneyParameters.jitter`); with jitter 0 it is unused and the
    fabric is exactly deterministic.
    """

    def __init__(self, machine: Machine, noise_seed: int = 0) -> None:
        self.machine = machine
        self._jitter = machine.params.jitter
        self._noise = np.random.default_rng(noise_seed) if self._jitter > 0 else None
        self._send_ports = ResourcePool()
        self._recv_ports = ResourcePool()
        self._nic_tx = ResourcePool()
        self._nic_rx = ResourcePool()
        self._links = ResourcePool()
        # Memoized per-pair costs; rank-pair space can be huge, so key by the
        # much smaller (socket, socket) pair which fully determines the cost.
        self._pair_cache: dict[tuple[int, int], tuple[LinkClass, float, float]] = {}

    # ----------------------------------------------------------------- lookup
    def _pair_costs(self, src: int, dst: int) -> tuple[LinkClass, float, float, float]:
        """(class, port occupancy alpha, hop surcharge, inverse beta), cached."""
        spec = self.machine.spec
        key = (spec.socket_of(src), spec.socket_of(dst))
        cached = self._pair_cache.get(key)
        if cached is None:
            cls = self.machine.link_class(src, dst)
            cost = self.machine.params.cost(cls)
            hop_extra = self.machine.hop_extra_alpha(src, dst)
            cached = (cls, cost.alpha, hop_extra, 1.0 / cost.beta)
            self._pair_cache[key] = cached
        return cached

    # --------------------------------------------------------------- schedule
    def transmit(self, src: int, dst: int, nbytes: int, post_time: float) -> MessageTiming:
        """Schedule a message; claims all resources and returns its timing.

        Endpoint ports serialize the full Hockney cost ``alpha + m/beta``
        per message — the paper's single-port assumption (each rank sends
        or receives one message at a time, paying startup per message).
        Node NICs serialize ``nic_message_overhead + m/beta`` (message-rate
        limit), producing the node-level serialization of the paper's
        Eq. (5); shared global links serialize bandwidth.
        """
        params = self.machine.params
        if src == dst:
            dur = params.memcpy_time(nbytes)
            return MessageTiming(post_time + dur, post_time + dur, LinkClass.SELF)

        cls, alpha, hop_extra, inv_beta = self._pair_costs(src, dst)
        if self._noise is not None:
            noise = 1.0 + self._jitter * float(self._noise.random())
            alpha *= noise
            hop_extra *= noise
        dur = nbytes * inv_beta
        port_dur = alpha + dur

        stages: list[tuple[SerialResource, float]] = [(self._send_ports.get(src), port_dur)]
        if cls in (LinkClass.INTER_NODE, LinkClass.INTER_GROUP):
            spec = self.machine.spec
            node_src, node_dst = spec.node_of(src), spec.node_of(dst)
            nic_dur = params.nic_message_overhead + dur
            stages.append((self._nic_tx.get(node_src), nic_dur))
            if cls is LinkClass.INTER_GROUP:
                link_inv_beta = 1.0 / params.cost(LinkClass.INTER_GROUP).beta
                link_dur = params.link_message_overhead + nbytes * link_inv_beta
                for key in self._route(node_src, node_dst):
                    stages.append((self._links.get(key), link_dur))
            stages.append((self._nic_rx.get(node_dst), nic_dur))
        stages.append((self._recv_ports.get(dst), port_dur))

        prev_start = post_time
        pipeline_end = post_time
        send_complete = post_time
        for i, (res, stage_dur) in enumerate(stages):
            start, end = res.claim(prev_start, stage_dur)
            if end < pipeline_end:
                # A faster downstream stage cannot finish before upstream data
                # has fully streamed through.
                res.next_free = pipeline_end
                end = pipeline_end
            prev_start = start
            pipeline_end = end
            if i == 0:
                send_complete = end
        return MessageTiming(send_complete, pipeline_end + hop_extra, cls)

    # ---------------------------------------------------------------- routing
    def _route(self, node_src: int, node_dst: int):
        """Pick the bottleneck lanes this message occupies.

        With adaptive routing (default, UGAL-like) each choice group yields
        its currently least-loaded lane; oblivious routing uses the
        network's hash-selected lanes.
        """
        if not self.machine.params.adaptive_routing:
            return self.machine.network.shared_link_keys(node_src, node_dst)
        chosen = []
        for group in self.machine.network.link_choices(node_src, node_dst):
            chosen.append(min(group, key=lambda key: self._links.get(key).next_free))
        return chosen

    # -------------------------------------------------------------- reporting
    def utilization(self, horizon: float) -> dict[str, dict]:
        """Busy fractions per resource family over ``[0, horizon]``."""
        return {
            "send_ports": self._send_ports.utilization(horizon),
            "recv_ports": self._recv_ports.utilization(horizon),
            "nic_tx": self._nic_tx.utilization(horizon),
            "nic_rx": self._nic_rx.utilization(horizon),
            "links": self._links.utilization(horizon),
        }
