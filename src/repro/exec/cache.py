"""Content-addressed result cache for simulated runs.

Every cache entry is keyed by the SHA-256 of its :class:`RunSpec`'s
canonical JSON plus a *code-version salt* — change the package version (or
the serialization format) and every old entry silently becomes a miss, so
a stale engine can never replay results the current code would not
produce.  Entries store the slim run (no payload buffers, no traces) plus
the spec it answers, and a read validates the stored spec against the
queried one: a hash collision, a truncated write, or hand-edited JSON is
detected, counted as *invalidated*, deleted, and recomputed.

The default location is ``~/.cache/repro`` (override with the
``REPRO_CACHE_DIR`` environment variable or ``cache_dir=`` / the CLI's
``--cache-dir``).  Writes are atomic (temp file + ``os.replace``), so a
crashed sweep leaves no half-written entries behind.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.collectives.runner import AllgatherRun
from repro.exec.serialize import FORMAT_VERSION, run_from_dict, run_to_dict
from repro.exec.spec import RunSpec

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


def code_salt() -> str:
    """Version salt mixed into every key (invalidate-on-upgrade)."""
    return f"repro-{repro.__version__}-fmt{FORMAT_VERSION}"


@dataclass
class CacheStats:
    """Counters for one cache's lifetime (reset with the instance)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Content-addressed store of slim :class:`AllgatherRun` results."""

    def __init__(self, cache_dir: str | Path | None = None,
                 salt: str | None = None):
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.salt = salt if salt is not None else code_salt()
        self.stats = CacheStats()

    # -------------------------------------------------------------- keying
    def key(self, spec: RunSpec) -> str:
        """Digest of the spec *and* the code-version salt."""
        import hashlib

        return hashlib.sha256(
            (spec.to_json() + "\0" + self.salt).encode()
        ).hexdigest()

    def path(self, spec: RunSpec) -> Path:
        key = self.key(spec)
        # Two-level fanout keeps directory listings sane on large sweeps.
        return self.cache_dir / key[:2] / f"{key}.json"

    # ------------------------------------------------------------- get/put
    def get(self, spec: RunSpec) -> AllgatherRun | None:
        """The cached run, or ``None`` (corrupt/stale entries self-delete)."""
        path = self.path(spec)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._invalidate(path)
            return None
        try:
            if payload["salt"] != self.salt or payload["spec"] != spec.canonical():
                raise ValueError("stored entry does not answer this spec")
            run = run_from_dict(payload["run"])
        except (KeyError, TypeError, ValueError):
            self._invalidate(path)
            return None
        self.stats.hits += 1
        return run

    def put(self, spec: RunSpec, run: AllgatherRun) -> Path:
        """Store (slim) ``run`` as the answer to ``spec``; atomic write."""
        path = self.path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "salt": self.salt,
            "spec": spec.canonical(),
            "run": run_to_dict(run.slim()),
        }
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------ plumbing
    def _invalidate(self, path: Path) -> None:
        self.stats.invalidated += 1
        self.stats.misses += 1
        try:
            path.unlink()
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every entry under the cache directory; returns the count."""
        removed = 0
        if not self.cache_dir.is_dir():
            return 0
        for entry in self.cache_dir.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))
