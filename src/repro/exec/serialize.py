"""JSON (de)serialization of slim :class:`AllgatherRun` results.

The cache and the cross-process result channel both move runs as plain
dicts: :func:`run_to_dict` serializes a *slim* run (see
:meth:`AllgatherRun.slim` — no payload buffers, no trace) and
:func:`run_from_dict` reconstructs it.  Floats round-trip exactly through
Python's ``json`` (shortest-repr encoding), so ``simulated_time`` and
``finish_times`` survive bit-for-bit — the property the orchestrator's
"parallel == serial == cached" contract rests on.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.collectives.base import SetupStats
from repro.collectives.runner import AllgatherRun

#: Serialization format version (bumped on layout changes; part of the
#: cache salt so stale entries are recomputed, never misread).
#: v2: slim runs carry ``trace_summary`` (per-class conservation aggregates).
#: v3: slim runs carry ``missing_ranks`` + ``recovery`` (fail-stop faults).
#: v4: slim runs carry ``selected_algorithm`` (adaptive ``"auto"`` picks).
FORMAT_VERSION = 4

#: Run fields excluded from the determinism contract (host-dependent).
WALL_CLOCK_FIELDS = ("wall_time",)


def _jsonable(value: Any) -> Any:
    """Recursively coerce numpy scalars/containers to plain JSON types."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def run_to_dict(run: AllgatherRun) -> dict:
    """Serialize a slim run; raises if the run still carries a trace."""
    if run.trace is not None:
        raise ValueError("serialize slim runs only: call run.slim() first")
    return {
        "format": FORMAT_VERSION,
        "algorithm": run.algorithm,
        "msg_size": run.msg_size,
        "simulated_time": run.simulated_time,
        # Sorted [rank, time] pairs: JSON objects would stringify the keys.
        "finish_times": [
            [rank, t] for rank, t in sorted(run.finish_times.items())
        ],
        "messages_sent": run.messages_sent,
        "bytes_sent": run.bytes_sent,
        "setup_stats": {
            "protocol_messages": run.setup_stats.protocol_messages,
            "simulated_time": run.setup_stats.simulated_time,
            "wall_time": run.setup_stats.wall_time,
            "extras": _jsonable(run.setup_stats.extras),
        },
        "wall_time": run.wall_time,
        "block_sizes": run.block_sizes,
        "utilization": _jsonable(run.utilization),
        "fault_stats": run.fault_stats,
        "requested_algorithm": run.requested_algorithm,
        "trace_summary": _jsonable(run.trace_summary),
        "sim_path": run.sim_path,
        "missing_ranks": list(run.missing_ranks),
        "recovery": _jsonable(run.recovery),
        "selected_algorithm": run.selected_algorithm,
    }


def run_from_dict(data: dict) -> AllgatherRun:
    """Inverse of :func:`run_to_dict` (results empty, trace ``None``)."""
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported run format {data.get('format')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    stats = data["setup_stats"]
    return AllgatherRun(
        algorithm=data["algorithm"],
        msg_size=data["msg_size"],
        simulated_time=data["simulated_time"],
        finish_times={int(rank): t for rank, t in data["finish_times"]},
        messages_sent=data["messages_sent"],
        bytes_sent=data["bytes_sent"],
        setup_stats=SetupStats(
            protocol_messages=stats["protocol_messages"],
            simulated_time=stats["simulated_time"],
            wall_time=stats["wall_time"],
            extras=dict(stats["extras"]),
        ),
        results=[],
        trace=None,
        wall_time=data["wall_time"],
        block_sizes=(
            list(data["block_sizes"]) if data["block_sizes"] is not None else None
        ),
        utilization=data["utilization"],
        fault_stats=data["fault_stats"],
        requested_algorithm=data["requested_algorithm"],
        trace_summary=data["trace_summary"],
        # Absent in pre-hybrid payloads (every run was the engine then).
        sim_path=data.get("sim_path", "des"),
        missing_ranks=tuple(data.get("missing_ranks", ())),
        recovery=data.get("recovery"),
        selected_algorithm=data.get("selected_algorithm"),
    )
