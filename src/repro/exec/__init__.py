"""Execution subsystem: declarative run specs, result cache, orchestrator.

``repro.exec`` is the layer between "I want these simulations" and "here
are their results": describe each run as a :class:`RunSpec`, hand the
sweep to :func:`execute`, and get deterministic, cacheable, parallelizable
results back in order.  See ``docs/ARCHITECTURE.md`` ("Execution &
caching") for the design.
"""

from repro.collectives.runner import DEFAULT_OPTIONS, RunOptions
from repro.exec.cache import (
    CACHE_DIR_ENV,
    CacheStats,
    ResultCache,
    code_salt,
    default_cache_dir,
)
from repro.exec.orchestrator import (
    SpecOutcome,
    SweepResult,
    default_workers,
    execute,
)
from repro.exec.serialize import (
    FORMAT_VERSION,
    WALL_CLOCK_FIELDS,
    run_from_dict,
    run_to_dict,
)
from repro.exec.spec import TOPOLOGY_KINDS, MachineSpec, RunSpec, TopologySpec

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_OPTIONS",
    "FORMAT_VERSION",
    "TOPOLOGY_KINDS",
    "WALL_CLOCK_FIELDS",
    "CacheStats",
    "MachineSpec",
    "ResultCache",
    "RunOptions",
    "RunSpec",
    "SpecOutcome",
    "SweepResult",
    "TopologySpec",
    "code_salt",
    "default_cache_dir",
    "default_workers",
    "execute",
    "run_from_dict",
    "run_to_dict",
]
