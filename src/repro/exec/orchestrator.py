"""Parallel sweep orchestrator: fan RunSpecs over a process pool.

:func:`execute` is the one entry point every bench driver funnels
through.  It takes an ordered list of :class:`RunSpec`, answers as many as
possible from the :class:`~repro.exec.cache.ResultCache`, fans the rest
out over ``multiprocessing`` workers, and returns results *in spec order*
regardless of completion order — so a parallel sweep emits a report
byte-identical (modulo wall-clock fields) to a serial one.

Guarantees:

* **Determinism** — each spec materializes its own topology/machine from
  seeds and runs on the deterministic engine, so ``workers=1`` and
  ``workers=N`` produce bit-identical ``simulated_time`` per spec.
* **Failure tolerance** — a spec that raises (watchdog, deadlock, failed
  verification, bad parameters) becomes an error outcome; the sweep
  continues and the caller decides whether errors are fatal
  (:meth:`SweepResult.raise_errors`) or data (the resilience study).
  A worker process that *dies* mid-spec (OOM kill, segfault, chaos
  injection) is distinguished from a spec that raises: every spec
  stranded by the broken pool is re-run on a fresh single-worker pool
  to identify the culprit, and only a spec that kills its worker on
  every attempt (:data:`MAX_ATTEMPTS`) is quarantined with a
  ``WorkerCrashed`` error.
* **Resumability** — completed specs are stored in the cache and appended
  to an optional JSONL manifest as they finish; re-running an interrupted
  sweep replays the finished prefix from cache at file-read speed.

Workers receive pickled specs and return plain dicts (slim runs), never
live simulator objects; the parent process reconstructs
:class:`AllgatherRun` values through the same serializer the cache uses,
so the three result paths (computed serially, computed in a worker,
read from cache) are literally the same bytes.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.collectives.runner import AllgatherRun
from repro.exec.cache import ResultCache
from repro.exec.serialize import run_from_dict, run_to_dict
from repro.exec.spec import RunSpec
from repro.sim.plancache import plan_cache_stats

#: Outcome sources, in the order a resumed sweep prefers them.
SOURCES = ("cache", "computed", "error")

#: Times a spec is attempted when its worker process dies mid-run: the
#: shared-pool attempt plus up to two isolated retries.  A broken pool
#: cannot attribute the death (every outstanding future fails alike, and
#: a stranded spec may never have started), so each stranded spec gets
#: one retry *beyond* the first isolated death before being quarantined
#: with a ``WorkerCrashed`` error.
MAX_ATTEMPTS = 3

#: Base backoff (seconds) slept before re-running a crashed spec, scaled
#: by the attempt number already consumed.
RETRY_BACKOFF = 0.05

#: Environment variable naming the chaos-marker directory (see
#: :func:`_chaos_kill`); unset in normal operation.
CHAOS_ENV = "REPRO_CHAOS_DIR"


@dataclass
class SpecOutcome:
    """What happened to one spec of a sweep."""

    spec: RunSpec
    run: AllgatherRun | None
    error: str | None = None
    source: str = "computed"
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.run is not None


@dataclass
class SweepResult:
    """Ordered outcomes plus execution statistics for one sweep."""

    outcomes: list[SpecOutcome]
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def runs(self) -> list[AllgatherRun | None]:
        """Per-spec runs, in spec order (``None`` where a spec failed)."""
        return [o.run for o in self.outcomes]

    @property
    def errors(self) -> list[tuple[RunSpec, str]]:
        return [(o.spec, o.error) for o in self.outcomes if o.error is not None]

    def raise_errors(self) -> "SweepResult":
        """Fail loudly when any spec failed (figure grids want all cells)."""
        errors = self.errors
        if errors:
            detail = "\n  ".join(
                f"{spec.label()}: {error}" for spec, error in errors[:10]
            )
            more = f"\n  ... and {len(errors) - 10} more" if len(errors) > 10 else ""
            raise RuntimeError(
                f"{len(errors)}/{len(self.outcomes)} specs failed:\n  {detail}{more}"
            )
        return self


def _chaos_kill(spec: RunSpec) -> None:
    """Chaos-test hook: die mid-spec when a marker file asks for it.

    ``REPRO_CHAOS_DIR`` names a directory of markers keyed by spec digest
    prefix: ``kill-<d>`` kills the worker exactly once (the marker is
    atomically renamed before dying, so the retry survives) and
    ``poison-<d>`` kills it on *every* attempt (exercises quarantine).
    Only fires inside a pool worker — a serial in-process run ignores the
    markers, so chaos can never take down the orchestrating process.
    """
    chaos_dir = os.environ.get(CHAOS_ENV)
    if not chaos_dir:
        return
    import multiprocessing

    if multiprocessing.parent_process() is None:
        return  # never kill the orchestrating process itself
    short = spec.digest()[:12]
    root = Path(chaos_dir)
    if (root / f"poison-{short}").exists():
        os._exit(137)
    marker = root / f"kill-{short}"
    if marker.exists():
        try:
            marker.rename(root / f"killed-{short}")
        except OSError:
            return  # a concurrent attempt claimed the marker and died for it
        os._exit(137)


def _execute_spec(spec: RunSpec) -> tuple[dict | None, str | None]:
    """Run one spec; exceptions become ``TypeName: message`` strings."""
    try:
        _chaos_kill(spec)
        run = spec.run()
        return run_to_dict(run.slim()), None
    except BaseException as exc:  # noqa: BLE001 - sweeps must survive workers
        return None, f"{type(exc).__name__}: {exc}"


def _worker(item: tuple[int, RunSpec]) -> tuple[int, dict | None, str | None]:
    index, spec = item
    payload, error = _execute_spec(spec)
    return index, payload, error


def default_workers() -> int:
    """``os.process_cpu_count`` (or ``cpu_count``) with a floor of 1."""
    counter = getattr(os, "process_cpu_count", os.cpu_count)
    return max(1, counter() or 1)


class _Manifest:
    """Append-only JSONL progress record (resume bookkeeping)."""

    def __init__(self, path: str | Path | None):
        self.path = Path(path) if path is not None else None
        self.seen: set[str] = set()
        if self.path is not None and self.path.is_file():
            for line in self.path.read_text().splitlines():
                try:
                    self.seen.add(json.loads(line)["digest"])
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue  # torn tail line from an interrupted sweep
        self._handle = None

    def record(self, outcome: SpecOutcome, digest: str) -> None:
        if self.path is None:
            return
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        entry: dict[str, Any] = {
            "digest": digest,
            "label": outcome.spec.label(),
            "status": "ok" if outcome.ok else "error",
            "source": outcome.source,
            "attempts": outcome.attempts,
        }
        if outcome.ok:
            entry["simulated_time"] = outcome.run.simulated_time
        else:
            entry["error"] = outcome.error
        self._handle.write(json.dumps(entry) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def execute(
    specs: Sequence[RunSpec],
    workers: int = 1,
    cache: ResultCache | None = None,
    manifest_path: str | Path | None = None,
    progress: Callable[[int, int, SpecOutcome], None] | None = None,
) -> SweepResult:
    """Execute a sweep of specs; see the module docstring for guarantees.

    Parameters
    ----------
    specs:
        The sweep, in the order results should be returned.
    workers:
        Process-pool width; ``<= 1`` runs serially in-process (no pool, no
        pickling — but results still round-trip the serializer so the two
        modes are bit-identical).
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely and
        fresh results are stored as they complete.
    manifest_path:
        Optional JSONL progress file (appended as outcomes land).
    progress:
        Callback ``(done, total, outcome)`` streamed per completed spec.
    """
    specs = list(specs)
    total = len(specs)
    outcomes: list[SpecOutcome | None] = [None] * total
    manifest = _Manifest(manifest_path)
    digests = [spec.digest() for spec in specs] if (
        cache is not None or manifest.path is not None
    ) else [""] * total
    resumed = sum(1 for d in digests if d and d in manifest.seen)

    done = 0
    wall_start = time.perf_counter()

    def finish(index: int, outcome: SpecOutcome) -> None:
        nonlocal done
        outcomes[index] = outcome
        done += 1
        manifest.record(outcome, digests[index])
        if progress is not None:
            progress(done, total, outcome)

    # Phase 1 — answer what we can from the cache.
    pending: list[int] = []
    for i, spec in enumerate(specs):
        run = cache.get(spec) if cache is not None else None
        if run is not None:
            finish(i, SpecOutcome(spec, run, source="cache"))
        else:
            pending.append(i)

    # Phase 2 — compute the rest (pool or in-process).
    def land(
        index: int,
        payload: dict | None,
        error: str | None,
        attempts: int = 1,
    ) -> None:
        if error is not None:
            finish(index, SpecOutcome(specs[index], None, error=error,
                                      source="error", attempts=attempts))
            return
        run = run_from_dict(payload)
        if cache is not None:
            cache.put(specs[index], run)
        finish(index, SpecOutcome(specs[index], run, source="computed",
                                  attempts=attempts))

    if workers <= 1 or len(pending) <= 1:
        for i in pending:
            payload, error = _execute_spec(specs[i])
            land(i, payload, error)
    else:
        pool_size = min(workers, len(pending))
        crashed: list[int] = []
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = {
                pool.submit(_worker, (i, specs[i])): i for i in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                broken: list[int] = []
                for future in finished:
                    index = futures[future]
                    try:
                        _, payload, error = future.result()
                    except BaseException:  # noqa: BLE001 - dead worker
                        broken.append(index)
                        continue
                    land(index, payload, error)
                if broken:
                    # A dying worker breaks the whole pool: every
                    # outstanding future fails with BrokenProcessPool,
                    # which says nothing about *which* spec killed it.
                    # Stop draining and re-run the stragglers in
                    # isolation to find the culprit.
                    crashed = sorted(set(broken) | {futures[f] for f in remaining})
                    break
        for index in crashed:
            attempts = 1  # the shared-pool attempt that died
            payload = None
            error: str | None = "WorkerCrashed: worker died before returning"
            while attempts < MAX_ATTEMPTS:
                time.sleep(RETRY_BACKOFF * attempts)
                attempts += 1
                with ProcessPoolExecutor(max_workers=1) as solo:
                    try:
                        _, payload, error = solo.submit(
                            _worker, (index, specs[index])
                        ).result()
                        break
                    except BaseException as exc:  # noqa: BLE001
                        payload = None
                        error = (
                            f"WorkerCrashed: worker died on all {attempts} "
                            f"attempts (last: {type(exc).__name__})"
                        )
            land(index, payload, error, attempts=attempts)

    manifest.close()
    failed = sum(1 for o in outcomes if o is not None and not o.ok)
    stats: dict[str, Any] = {
        "total": total,
        "from_cache": sum(1 for o in outcomes if o.source == "cache"),
        "computed": sum(1 for o in outcomes if o.source == "computed"),
        "failed": failed,
        "retried": sum(1 for o in outcomes if o is not None and o.attempts > 1),
        "workers": max(1, workers),
        "resumed_manifest_entries": resumed,
        "wall_seconds": time.perf_counter() - wall_start,
    }
    if cache is not None:
        stats["cache"] = cache.stats.as_dict()
        stats["cache_dir"] = str(cache.cache_dir)
    # Compiled-plan cache counters for *this process* (see
    # repro.sim.plancache).  With workers > 1 the sweep simulates in child
    # processes, so these count only inline work — the single-process path
    # (workers=1 or the wallclock harness) is where plan reuse shows up.
    stats["plan_cache"] = plan_cache_stats()
    return SweepResult(outcomes=list(outcomes), stats=stats)
