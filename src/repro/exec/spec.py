"""Declarative run specifications: everything one simulation needs, as data.

A :class:`RunSpec` fully describes one simulated neighborhood allgather —
topology generator + seed, machine shape, algorithm + constructor kwargs,
message size, and the :class:`~repro.collectives.runner.RunOptions`
(fault plan, watchdog budgets, trace level).  Because it is pure frozen
data it can be hashed, pickled to worker processes, serialized to
canonical JSON, and content-addressed for the result cache: the same
digest always denotes the same simulation, and the engine's determinism
contract guarantees the same ``simulated_time``.

The split mirrors the rest of the codebase: a *spec* is cheap immutable
data; :meth:`RunSpec.build` / :meth:`RunSpec.run` materialize the heavy
objects (topology, machine, algorithm pattern) on whichever process
executes the spec.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.collectives.runner import DEFAULT_OPTIONS, RunOptions
from repro.utils.sizes import format_size, parse_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine
    from repro.collectives.base import NeighborhoodAllgatherAlgorithm
    from repro.collectives.runner import AllgatherRun
    from repro.topology.graph import DistGraphTopology

#: Topology generators a spec can name (kind -> required builder).
TOPOLOGY_KINDS = ("random", "moore", "cartesian", "scale_free")


@dataclass(frozen=True)
class TopologySpec:
    """A virtual topology as generator name + parameters (not as a graph).

    Kinds and the fields they read:

    * ``"random"`` — Erdős–Rényi; ``n``, ``density``, ``seed``,
      ``self_loops`` (MPI permits ``u -> u`` edges; off by default).
    * ``"moore"`` — Moore neighborhood; ``n``, ``radius``, ``dims``.
    * ``"cartesian"`` — Von Neumann stencil; ``n``, ``dims``.
    * ``"scale_free"`` — preferential attachment; ``n``,
      ``edges_per_rank``, ``seed``.
    """

    kind: str
    n: int
    density: float | None = None
    seed: int = 0
    radius: int = 1
    dims: int = 2
    edges_per_rank: int = 4
    self_loops: bool = False

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; available: {TOPOLOGY_KINDS}"
            )
        if self.kind == "random" and self.density is None:
            raise ValueError("random topologies require a density")

    def canonical(self) -> dict:
        """Only the fields the kind actually consumes (stable digests).

        ``self_loops`` appears only when set, so pre-existing digests (and
        cached results) of loop-free specs are unchanged.
        """
        base: dict[str, Any] = {"kind": self.kind, "n": self.n}
        if self.kind == "random":
            base.update(density=self.density, seed=self.seed)
            if self.self_loops:
                base.update(self_loops=True)
        elif self.kind == "moore":
            base.update(radius=self.radius, dims=self.dims)
        elif self.kind == "cartesian":
            base.update(dims=self.dims)
        elif self.kind == "scale_free":
            base.update(edges_per_rank=self.edges_per_rank, seed=self.seed)
        return base

    @classmethod
    def from_dict(cls, data: dict) -> "TopologySpec":
        """Inverse of :meth:`canonical` (fields the kind ignores default)."""
        return cls(
            kind=data["kind"],
            n=data["n"],
            density=data.get("density"),
            seed=data.get("seed", 0),
            radius=data.get("radius", 1),
            dims=data.get("dims", 2),
            edges_per_rank=data.get("edges_per_rank", 4),
            self_loops=data.get("self_loops", False),
        )

    def build(self) -> "DistGraphTopology":
        """Materialize the graph (deterministic given the spec)."""
        if self.kind == "random":
            from repro.topology.random_graphs import erdos_renyi_topology

            return erdos_renyi_topology(self.n, self.density, seed=self.seed,
                                        allow_self_loops=self.self_loops)
        if self.kind == "moore":
            from repro.topology.moore import moore_topology

            return moore_topology(self.n, r=self.radius, d=self.dims)
        if self.kind == "cartesian":
            from repro.topology.cartesian import cartesian_topology

            return cartesian_topology(self.n, d=self.dims)
        from repro.topology.scale_free import scale_free_topology

        return scale_free_topology(self.n, edges_per_rank=self.edges_per_rank,
                                   seed=self.seed)


@dataclass(frozen=True)
class MachineSpec:
    """A Niagara-like machine as shape parameters (not as a Machine).

    ``placement_seed`` selects one draw of the scheduler lottery
    (:meth:`~repro.cluster.machine.Machine.random_placement`); ``None``
    keeps the canonical block placement.
    """

    nodes: int
    sockets_per_node: int = 2
    ranks_per_socket: int = 8
    placement_seed: int | None = None

    @property
    def n_ranks(self) -> int:
        return self.nodes * self.sockets_per_node * self.ranks_per_socket

    @classmethod
    def for_ranks(
        cls,
        n_ranks: int,
        ranks_per_socket: int = 8,
        sockets_per_node: int = 2,
        placement_seed: int | None = None,
    ) -> "MachineSpec":
        """Spec with exactly ``n_ranks`` (mirrors ``bench_machine``)."""
        per_node = sockets_per_node * ranks_per_socket
        if n_ranks % per_node:
            raise ValueError(
                f"n_ranks={n_ranks} does not fill {per_node}-rank nodes; "
                "pick a multiple"
            )
        return cls(
            nodes=n_ranks // per_node,
            sockets_per_node=sockets_per_node,
            ranks_per_socket=ranks_per_socket,
            placement_seed=placement_seed,
        )

    def canonical(self) -> dict:
        return {
            "nodes": self.nodes,
            "sockets_per_node": self.sockets_per_node,
            "ranks_per_socket": self.ranks_per_socket,
            "placement_seed": self.placement_seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineSpec":
        """Inverse of :meth:`canonical`."""
        return cls(
            nodes=data["nodes"],
            sockets_per_node=data.get("sockets_per_node", 2),
            ranks_per_socket=data.get("ranks_per_socket", 8),
            placement_seed=data.get("placement_seed"),
        )

    def build(self) -> "Machine":
        from repro.cluster.machine import Machine

        machine = Machine.niagara_like(
            nodes=self.nodes,
            sockets_per_node=self.sockets_per_node,
            ranks_per_socket=self.ranks_per_socket,
        )
        if self.placement_seed is not None:
            machine = machine.random_placement(seed=self.placement_seed)
        return machine


def _normalize_msg_size(msg_size) -> int | tuple[int, ...]:
    """Bytes as int (or tuple of ints for allgatherv block lists)."""
    if isinstance(msg_size, (list, tuple)):
        return tuple(parse_size(s) for s in msg_size)
    return parse_size(msg_size)


def _normalize_kwargs(kwargs) -> tuple[tuple[str, Any], ...]:
    """Sorted (key, value) pairs — hashable and canonically ordered."""
    if isinstance(kwargs, dict):
        items = kwargs.items()
    else:
        items = tuple(kwargs)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class RunSpec:
    """One fully described simulation (see module docstring).

    ``algorithm_kwargs`` accepts a dict at construction time and is
    normalized to sorted ``(key, value)`` pairs so equal specs hash and
    serialize identically regardless of keyword order.
    """

    algorithm: str
    topology: TopologySpec
    machine: MachineSpec
    msg_size: int | tuple[int, ...]
    algorithm_kwargs: tuple[tuple[str, Any], ...] = ()
    options: RunOptions = field(default=DEFAULT_OPTIONS)
    #: content version of the decision table ``algorithm="auto"`` resolves
    #: against — auto-filled from the active table at construction, so the
    #: table is part of the spec's content address (two specs under
    #: different tables are different simulations).  Always ``None`` (and
    #: omitted from the digest) for directly named algorithms.
    selector_table: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "msg_size", _normalize_msg_size(self.msg_size))
        object.__setattr__(
            self, "algorithm_kwargs", _normalize_kwargs(self.algorithm_kwargs)
        )
        if self.algorithm == "auto":
            if self.algorithm_kwargs:
                raise ValueError(
                    "algorithm='auto' takes no algorithm_kwargs: the "
                    "decision table supplies each candidate's constructor "
                    "arguments"
                )
            if self.selector_table is None:
                from repro.select.table import active_table_version

                object.__setattr__(
                    self, "selector_table", active_table_version()
                )
        elif self.selector_table is not None:
            raise ValueError(
                "selector_table is only meaningful with algorithm='auto'"
            )

    # ------------------------------------------------------------- identity
    def canonical(self) -> dict:
        """Fully resolved JSON-safe description; field order is stable.

        ``selector_table`` appears only for ``algorithm="auto"`` specs
        (same omit-the-default pattern as ``TopologySpec.self_loops``), so
        every pre-existing digest of a directly named algorithm is
        unchanged.
        """
        data = {
            "algorithm": self.algorithm,
            "algorithm_kwargs": [list(pair) for pair in self.algorithm_kwargs],
            "topology": self.topology.canonical(),
            "machine": self.machine.canonical(),
            "msg_size": (
                list(self.msg_size) if isinstance(self.msg_size, tuple)
                else self.msg_size
            ),
            "options": self.options.canonical(),
        }
        if self.selector_table is not None:
            data["selector_table"] = self.selector_table
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Inverse of :meth:`canonical` — what fuzzer repro files replay."""
        msg = data["msg_size"]
        return cls(
            algorithm=data["algorithm"],
            topology=TopologySpec.from_dict(data["topology"]),
            machine=MachineSpec.from_dict(data["machine"]),
            msg_size=tuple(msg) if isinstance(msg, list) else msg,
            algorithm_kwargs=tuple(
                (k, v) for k, v in data.get("algorithm_kwargs", ())
            ),
            options=RunOptions.from_dict(data.get("options", {})),
            selector_table=data.get("selector_table"),
        )

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, no whitespace."""
        return json.dumps(self.canonical(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON — the spec's content address."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def label(self) -> str:
        size = (
            "v" + format_size(max(self.msg_size, default=0))
            if isinstance(self.msg_size, tuple)
            else format_size(self.msg_size)
        )
        return (
            f"{self.algorithm} {self.topology.kind} n={self.topology.n} "
            f"m={size}"
        )

    # ------------------------------------------------------------ execution
    def build(self) -> "tuple[NeighborhoodAllgatherAlgorithm, DistGraphTopology, Machine]":
        """Materialize (algorithm instance, topology, machine)."""
        from repro.collectives.base import get_algorithm

        if self.algorithm == "auto":
            raise ValueError(
                "algorithm='auto' has no instance until selection runs: "
                "call RunSpec.run(), or resolve with repro.select.select()"
            )
        algorithm = get_algorithm(self.algorithm, **dict(self.algorithm_kwargs))
        return algorithm, self.topology.build(), self.machine.build()

    def run(self) -> "AllgatherRun":
        """Simulate this spec (deterministic; safe in worker processes)."""
        from repro.collectives.runner import run_allgather

        msg = list(self.msg_size) if isinstance(self.msg_size, tuple) else self.msg_size
        if self.algorithm == "auto":
            # The digest pins the table this spec was built under; resolving
            # against any other table would silently break the
            # content-address -> result contract, so fail loudly instead.
            from repro.select.table import active_table_version

            active = active_table_version()
            if active != self.selector_table:
                raise RuntimeError(
                    f"spec was built under decision table "
                    f"{self.selector_table!r} but the active table is "
                    f"{active!r}; point REPRO_SELECT_TABLE (or use_table) "
                    "at the spec's table to replay it"
                )
            return run_allgather("auto", self.topology.build(),
                                 self.machine.build(), msg,
                                 options=self.options)
        algorithm, topology, machine = self.build()
        return run_allgather(algorithm, topology, machine, msg,
                             options=self.options)
