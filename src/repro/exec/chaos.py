"""Chaos harness for the exec layer: prove the sweep machinery survives.

``repro chaos`` runs small real sweeps through :func:`repro.exec
.orchestrator.execute` while deliberately breaking the machinery
around them, and asserts the advertised guarantees actually hold:

* **Worker kills** — marker files (see ``orchestrator._chaos_kill``)
  make a worker ``os._exit(137)`` mid-spec.  The sweep must still
  return every result, the killed specs must show ``attempts >= 2``
  in the manifest (the death plus at least one isolated retry), and
  a ``poison-`` marker that kills *every* attempt must end up
  quarantined as a ``WorkerCrashed`` error instead of hanging the
  sweep.
* **Manifest truncation** — a resumed sweep must tolerate a torn tail
  line (interrupted write) without recomputing completed specs.
* **Cache corruption** — a garbage cache entry must be detected,
  invalidated, and recomputed bit-identically; every other entry
  still answers from cache.

All sweeps are deterministic (seeded specs on the deterministic
engine), so every assertion compares against values the same harness
computed moments earlier — no goldens to maintain.  A failed check
raises :class:`ChaosError` and leaves the scratch directory behind
for inspection; a clean pass deletes it.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.collectives.base import list_algorithms
from repro.exec.cache import ResultCache
from repro.exec.orchestrator import CHAOS_ENV, MAX_ATTEMPTS, execute
from repro.exec.spec import MachineSpec, RunSpec, TopologySpec

#: Algorithms exercised by every chaos sweep: the oracle set, same as the
#: differential fuzzer (chaos is about the exec layer, so any correct
#: backend mix works; the oracle set keeps failures cross-checkable).
ALGORITHMS = tuple(info.name for info in list_algorithms(requires={"oracle"}))

#: Message sizes per algorithm (small: chaos is about the exec layer,
#: not the simulation).
MSG_SIZES = (256, 1024)


class ChaosError(AssertionError):
    """A chaos invariant did not hold; the message names the check."""


@dataclass
class ChaosReport:
    """Every check a chaos run performed, with its outcome."""

    iterations: int
    kill_workers: bool
    checks: list[dict[str, Any]] = field(default_factory=list)
    artifacts_dir: str | None = None

    @property
    def ok(self) -> bool:
        return all(c["ok"] for c in self.checks)

    @property
    def failed(self) -> list[dict[str, Any]]:
        return [c for c in self.checks if not c["ok"]]

    def summary(self) -> str:
        passed = sum(1 for c in self.checks if c["ok"])
        status = "PASS" if self.ok else "FAIL"
        return (
            f"chaos: {status} — {passed}/{len(self.checks)} checks over "
            f"{self.iterations} iteration(s)"
        )


def _sweep_specs(iteration: int, seed: int) -> list[RunSpec]:
    """A small deterministic sweep, fresh topology per iteration."""
    topology = TopologySpec(
        kind="random", n=8, density=0.45, seed=seed * 1009 + iteration
    )
    machine = MachineSpec.for_ranks(8, ranks_per_socket=4)
    return [
        RunSpec(algorithm=alg, topology=topology, machine=machine,
                msg_size=size)
        for alg in ALGORITHMS
        for size in MSG_SIZES
    ]


@contextmanager
def _chaos_env(chaos_dir: Path) -> Iterator[None]:
    """Point workers at the marker directory for the duration."""
    previous = os.environ.get(CHAOS_ENV)
    os.environ[CHAOS_ENV] = str(chaos_dir)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(CHAOS_ENV, None)
        else:
            os.environ[CHAOS_ENV] = previous


def _read_manifest(path: Path) -> list[dict]:
    entries = []
    for line in path.read_text().splitlines():
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return entries


class _Checker:
    """Accumulates named checks; raises on the first failure."""

    def __init__(self, report: ChaosReport, iteration: int):
        self.report = report
        self.iteration = iteration

    def check(self, name: str, ok: bool, detail: str = "") -> None:
        self.report.checks.append(
            {"iteration": self.iteration, "name": name, "ok": bool(ok),
             "detail": detail}
        )
        if not ok:
            raise ChaosError(f"[iteration {self.iteration}] {name}: {detail}")


def run_chaos(
    iterations: int = 3,
    workers: int = 2,
    kill_workers: bool = False,
    seed: int = 0,
    root: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run the chaos battery; see the module docstring for the checks.

    Parameters
    ----------
    iterations:
        Full battery repetitions (fresh sweep, fresh scratch state each).
    workers:
        Pool width for the injected-failure sweeps (min 2 when killing —
        a serial run has no worker processes to kill).
    kill_workers:
        Enable the worker-kill and poison-quarantine phases.  Off by
        default because they spawn and destroy real processes.
    seed:
        Varies every sweep topology (chaos runs are still deterministic
        per seed).
    root:
        Scratch directory; a temp dir is created (and removed on a clean
        pass) when omitted.  On failure the directory is always kept and
        recorded in :attr:`ChaosReport.artifacts_dir`.
    """
    report = ChaosReport(iterations=iterations, kill_workers=kill_workers)
    own_root = root is None
    root = Path(root) if root is not None else Path(
        tempfile.mkdtemp(prefix="repro-chaos-")
    )
    report.artifacts_dir = str(root)
    say = progress if progress is not None else (lambda _msg: None)
    try:
        for iteration in range(iterations):
            _run_iteration(
                _Checker(report, iteration),
                _sweep_specs(iteration, seed),
                root / f"iter{iteration}",
                workers=max(2, workers) if kill_workers else workers,
                kill_workers=kill_workers,
                say=say,
            )
    except ChaosError as exc:
        exc.artifacts_dir = str(root)  # kept for inspection
        raise
    else:
        if own_root:
            shutil.rmtree(root, ignore_errors=True)
            report.artifacts_dir = None
    return report


def _run_iteration(
    checker: _Checker,
    specs: list[RunSpec],
    scratch: Path,
    workers: int,
    kill_workers: bool,
    say: Callable[[str], None],
) -> None:
    it = checker.iteration
    scratch.mkdir(parents=True, exist_ok=True)
    chaos_dir = scratch / "markers"
    chaos_dir.mkdir()
    cache = ResultCache(cache_dir=scratch / "cache")
    manifest = scratch / "manifest.jsonl"
    digests = [spec.digest() for spec in specs]
    victims = [0, len(specs) // 2] if kill_workers else []

    # Phase A — compute the sweep, killing some workers mid-spec.
    for v in victims:
        (chaos_dir / f"kill-{digests[v][:12]}").write_text("")
    say(f"[iter {it}] phase A: sweep of {len(specs)} specs"
        + (f", killing workers on {len(victims)}" if victims else ""))
    with _chaos_env(chaos_dir):
        first = execute(specs, workers=workers, cache=cache,
                        manifest_path=manifest)
    checker.check(
        "kill/all-specs-complete",
        all(o.ok for o in first.outcomes),
        "; ".join(e for _, e in first.errors) or "ok",
    )
    for v in victims:
        checker.check(
            "kill/marker-claimed",
            (chaos_dir / f"killed-{digests[v][:12]}").exists()
            and not (chaos_dir / f"kill-{digests[v][:12]}").exists(),
            f"spec {v} marker not atomically claimed",
        )
        checker.check(
            "kill/victim-retried",
            2 <= first.outcomes[v].attempts <= MAX_ATTEMPTS,
            f"spec {v} attempts={first.outcomes[v].attempts}, expected >= 2",
        )
    if victims:
        checker.check(
            "kill/retries-counted",
            first.stats["retried"] >= len(victims),
            f"stats retried={first.stats['retried']} < {len(victims)}",
        )
    baseline = {d: o.run.simulated_time
                for d, o in zip(digests, first.outcomes)}

    # Phase B — warm rerun: everything answered without recomputing.
    say(f"[iter {it}] phase B: warm resume")
    warm = execute(specs, workers=workers, cache=cache,
                   manifest_path=manifest)
    checker.check(
        "resume/zero-recompute",
        warm.stats["computed"] == 0
        and warm.stats["from_cache"] == len(specs),
        f"computed={warm.stats['computed']} from_cache={warm.stats['from_cache']}",
    )
    checker.check(
        "resume/manifest-replayed",
        warm.stats["resumed_manifest_entries"] == len(specs),
        f"resumed={warm.stats['resumed_manifest_entries']}",
    )
    checker.check(
        "resume/bit-identical",
        all(o.run.simulated_time == baseline[d]
            for d, o in zip(digests, warm.outcomes)),
        "cached simulated_time drifted from the computed value",
    )

    # Phase C — torn manifest tail: resume skips the torn line cleanly.
    say(f"[iter {it}] phase C: manifest truncation")
    raw = manifest.read_bytes()
    manifest.write_bytes(raw[: int(len(raw) * 0.6)])
    torn = execute(specs, workers=workers, cache=cache,
                   manifest_path=manifest)
    checker.check(
        "truncate/zero-recompute",
        torn.stats["computed"] == 0 and all(o.ok for o in torn.outcomes),
        f"computed={torn.stats['computed']}",
    )

    # Phase D — corrupt one cache entry: detected, recomputed identically.
    say(f"[iter {it}] phase D: cache corruption")
    corrupt_idx = len(specs) - 1
    cache.path(specs[corrupt_idx]).write_text('{"salt": "garbage', )
    fresh_cache = ResultCache(cache_dir=scratch / "cache")  # clean counters
    after = execute(specs, workers=workers, cache=fresh_cache,
                    manifest_path=manifest)
    checker.check(
        "corrupt/recompute-exactly-one",
        after.stats["computed"] == 1
        and after.stats["cache"]["invalidated"] >= 1,
        f"computed={after.stats['computed']} "
        f"invalidated={after.stats['cache']['invalidated']}",
    )
    checker.check(
        "corrupt/recompute-deterministic",
        after.outcomes[corrupt_idx].ok
        and after.outcomes[corrupt_idx].run.simulated_time
        == baseline[digests[corrupt_idx]],
        "recomputed run differs from the original",
    )

    # Phase E — poison spec: killed on every attempt, quarantined.
    if kill_workers:
        say(f"[iter {it}] phase E: poison quarantine")
        poison_idx = 1
        (chaos_dir / f"poison-{digests[poison_idx][:12]}").write_text("")
        poison_cache = ResultCache(cache_dir=scratch / "cache-poison")
        poison_manifest = scratch / "manifest-poison.jsonl"
        with _chaos_env(chaos_dir):
            poisoned = execute(specs, workers=workers, cache=poison_cache,
                               manifest_path=poison_manifest)
        bad = poisoned.outcomes[poison_idx]
        checker.check(
            "poison/quarantined",
            (not bad.ok) and (bad.error or "").startswith("WorkerCrashed")
            and bad.attempts == MAX_ATTEMPTS,
            f"error={bad.error!r} attempts={bad.attempts}",
        )
        checker.check(
            "poison/others-survive",
            all(o.ok for i, o in enumerate(poisoned.outcomes)
                if i != poison_idx),
            "; ".join(e for _, e in poisoned.errors),
        )
        entries = {e["digest"]: e for e in _read_manifest(poison_manifest)}
        entry = entries.get(digests[poison_idx], {})
        checker.check(
            "poison/manifest-attempts",
            entry.get("status") == "error"
            and entry.get("attempts") == MAX_ATTEMPTS,
            f"manifest entry: {entry}",
        )
