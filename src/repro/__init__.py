"""repro — reproduction of "A Topology- and Load-Aware Design for
Neighborhood Allgather" (Sharifian, Sojoodi, Afsahi — CLUSTER 2024).

Quick tour
----------

>>> from repro import Machine, erdos_renyi_topology, run_allgather
>>> machine = Machine.niagara_like(nodes=4, ranks_per_socket=4)
>>> topo = erdos_renyi_topology(machine.spec.n_ranks, density=0.3, seed=0)
>>> naive = run_allgather("naive", topo, machine, "4KB")
>>> dh = run_allgather("distance_halving", topo, machine, "4KB")
>>> naive.simulated_time > dh.simulated_time
True

Subpackages
-----------

``repro.cluster``
    Machine model: rank placement, Hockney link costs, network topologies
    (Dragonfly+, fat tree, torus) with shared-bottleneck contention.
``repro.sim``
    Deterministic discrete-event MPI simulator (generator-based rank
    programs, non-blocking semantics, tag matching, barrier).
``repro.topology``
    Virtual topologies: distributed graphs, Erdős–Rényi, Moore
    neighborhoods, Cartesian stencils, matrix-induced graphs.
``repro.collectives``
    The three algorithms — naive, Common Neighbor, Distance Halving — and
    the execution/verification harness.
``repro.model``
    The paper's analytic performance model (Eqs. 1-8).
``repro.spmm``
    Neighborhood-allgather SpMM kernel and Table II synthetic matrices.
``repro.exec``
    Declarative :class:`~repro.exec.RunSpec` descriptions, the
    content-addressed result cache, and the parallel sweep orchestrator.
``repro.bench``
    Drivers that regenerate every figure of the paper's evaluation.
"""

from repro.cluster import (
    ClusterSpec,
    DragonflyPlus,
    FatTree,
    HockneyParameters,
    LinkClass,
    LinkCost,
    Machine,
    SingleSwitch,
    Torus,
    calibrate,
)
from repro.collectives import (
    CommonNeighborAllgather,
    DistanceHalvingAllgather,
    NaiveAllgather,
    RunOptions,
    available_algorithms,
    get_algorithm,
    run_allgather,
    run_allgatherv,
    verify_allgather,
)
from repro.model import ModelParams, dh_total_time, model_grid, naive_total_time
from repro.spmm import TABLE_II, run_spmm, synthetic_matrix
from repro.topology import (
    DistGraphTopology,
    cartesian_topology,
    dims_create,
    erdos_renyi_topology,
    moore_topology,
    topology_from_sparse,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # cluster
    "ClusterSpec",
    "LinkClass",
    "LinkCost",
    "HockneyParameters",
    "Machine",
    "SingleSwitch",
    "DragonflyPlus",
    "FatTree",
    "Torus",
    "calibrate",
    # topology
    "DistGraphTopology",
    "erdos_renyi_topology",
    "moore_topology",
    "cartesian_topology",
    "dims_create",
    "topology_from_sparse",
    # collectives
    "NaiveAllgather",
    "CommonNeighborAllgather",
    "DistanceHalvingAllgather",
    "available_algorithms",
    "get_algorithm",
    "RunOptions",
    "run_allgather",
    "run_allgatherv",
    "verify_allgather",
    # model
    "ModelParams",
    "model_grid",
    "naive_total_time",
    "dh_total_time",
    # spmm
    "TABLE_II",
    "synthetic_matrix",
    "run_spmm",
]
