"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``info``
    Version, registered algorithms, benchmark scales.
``calibrate``
    Simulated ping-pong and the fitted Hockney (alpha, beta).
``compare``
    Run every oracle-capable allgather algorithm (or a ``--algorithms``
    subset) on one workload and print the comparison table (latency,
    speedup, message counts).
``model``
    Evaluate the paper's performance model (Fig. 2 grid) at paper scale.
``spmm``
    Run the SpMM kernel for one or all Table II matrices.
``bench``
    Regenerate one paper figure (or ``all``) at the selected scale; with
    ``--wallclock`` run the sim-core harness, with ``--resilience`` the
    per-algorithm fault-injection study, with ``--sweep-smoke`` the tiny
    orchestrated sweep (prints cache/worker statistics, for CI).  Figure
    sweeps run through the :mod:`repro.exec` orchestrator: ``--workers N``
    fans specs over a process pool and the content-addressed result cache
    (on by default; ``--no-cache`` / ``--cache-dir`` control it) answers
    previously-computed cells without re-simulating.  Parallel and cached
    reruns are bit-identical to serial cold runs.
``advise``
    Adaptive selection (:mod:`repro.select`).  ``--algorithm`` resolves
    ``algorithm="auto"`` for one described workload and prints the
    extracted features, the decision-table ranking, and the model's
    predicted crossovers; ``--distill`` rebuilds the decision table from
    the analytic prior plus the (cached) empirical grid; ``--regret``
    replays seeded fuzz scenarios under ``auto`` vs the oracle best and
    gates the geomean regret (exit 1 on a gate failure).
``fuzz``
    Differential conformance fuzzer (:mod:`repro.verify`): random
    scenarios through every oracle-capable algorithm with metamorphic
    invariants and trace conservation laws; failures are shrunk and
    written as replayable
    repro files (``--replay`` re-checks one).  ``--inject-bug`` is the
    mutation self-test proving the pipeline catches a planted defect.
    ``--profile crash`` draws fail-stop rank crashes and checks the
    shrink/degrade recovery oracles.
``chaos``
    Exec-layer chaos harness (:mod:`repro.exec.chaos`): real sweeps with
    injected worker kills (``--kill-workers``), manifest truncation, and
    cache corruption; asserts isolated retry, poison-spec quarantine, and
    manifest-based resume with zero recomputed specs.

Simulation failures (``DeadlockError``, ``SimTimeoutError``,
``RankFailedError``, ``RetriesExhaustedError``) exit non-zero with a
one-line diagnostic instead of a traceback; ``--max-sim-time`` /
``--max-events`` arm the engine watchdog.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.config import get_scale
from repro.bench.reporting import format_table
from repro.sim.engine import (
    DeadlockError,
    RankFailedError,
    RetriesExhaustedError,
    SimTimeoutError,
)
from repro.sim.faults import CRASH_PROFILE_MODES, PROFILE_NAMES
from repro.verify.generators import PROFILES as FUZZ_PROFILES
from repro.utils.sizes import format_size, parse_size

#: Figure name -> driver attribute in repro.bench.figures.
FIGURES = {
    "fig2": "fig2_model",
    "fig4": "fig4_latency",
    "fig5": "fig5_speedup_scaling",
    "fig6": "fig6_moore",
    "fig6-variance": "fig6_variance_study",
    "fig7": "fig7_spmm",
    "fig8": "fig8_overhead",
    "alltoall": "ext_alltoall",
    "ablation-agent": "ablation_agent_policy",
    "ablation-stop": "ablation_stop_granularity",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distance-halving neighborhood allgather (CLUSTER 2024) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version, algorithms, scales")

    cal = sub.add_parser("calibrate", help="simulated ping-pong + Hockney fit")
    _machine_args(cal)

    cmp_p = sub.add_parser("compare", help="compare algorithms on one workload")
    _machine_args(cmp_p)
    cmp_p.add_argument("--topology", choices=("random", "moore", "cartesian"),
                       default="random")
    cmp_p.add_argument("--density", type=float, default=0.3,
                       help="edge probability for random topologies")
    cmp_p.add_argument("--radius", type=int, default=1, help="Moore radius r")
    cmp_p.add_argument("--dims", type=int, default=2, help="grid dimensionality d")
    cmp_p.add_argument("--msg", default="4KB", help="message size (e.g. 64, 4KB, 1MB)")
    cmp_p.add_argument("--seed", type=int, default=0)
    cmp_p.add_argument("--collective", choices=("allgather", "alltoall"),
                       default="allgather")
    cmp_p.add_argument("--algorithms", default=None, metavar="NAME[,NAME...]",
                       help="comma-separated allgather algorithms to compare "
                            "(default: every oracle-capable registered "
                            "algorithm)")
    cmp_p.add_argument("--faults", choices=PROFILE_NAMES, default=None,
                       help="inject a named fault profile (allgather only); "
                            "degraded setups fall back to naive")
    cmp_p.add_argument("--max-sim-time", type=float, default=None,
                       help="watchdog: abort once simulated time exceeds this "
                            "many seconds")
    cmp_p.add_argument("--max-events", type=int, default=None,
                       help="watchdog: abort after this many engine events")

    model_p = sub.add_parser("model", help="performance-model grid (Fig. 2)")
    _machine_args(model_p)

    an_p = sub.add_parser("analyze", help="topology diagnostics + DH pattern preview")
    _machine_args(an_p)
    an_p.add_argument("--topology", choices=("random", "moore", "cartesian"),
                      default="random")
    an_p.add_argument("--density", type=float, default=0.3)
    an_p.add_argument("--radius", type=int, default=1)
    an_p.add_argument("--dims", type=int, default=2)
    an_p.add_argument("--seed", type=int, default=0)

    spmm_p = sub.add_parser("spmm", help="SpMM kernel on Table II matrices")
    _machine_args(spmm_p)
    spmm_p.add_argument("matrices", nargs="*", help="matrix names (default: all)")
    spmm_p.add_argument("--cols", type=int, default=8, help="columns of Y")

    bench_p = sub.add_parser("bench", help="regenerate a paper figure")
    bench_p.add_argument("figure", nargs="?", choices=sorted(FIGURES) + ["all"],
                         help="figure to regenerate (omit with --wallclock)")
    bench_p.add_argument("--scale", choices=("small", "medium", "large", "paper"),
                         default=None)
    bench_p.add_argument("--wallclock", action="store_true",
                         help="run the sim-core wall-clock harness instead of a figure")
    bench_p.add_argument("--resilience", action="store_true",
                         help="run the fault-injection resilience study instead "
                              "of a figure")
    bench_p.add_argument("--smoke", action="store_true",
                         help="tiny wallclock/resilience grid (for CI); implies "
                              "--repeats 1")
    bench_p.add_argument("--repeats", type=int, default=3,
                         help="wallclock median-of-k repeats (default 3)")
    bench_p.add_argument("--out", default=None,
                         help="report path (default BENCH_sim_core.json for "
                              "--wallclock, BENCH_resilience.json for --resilience)")
    bench_p.add_argument("--record-baseline", action="store_true",
                         help="record wallclock measurements as the new baseline")
    bench_p.add_argument("--sim-mode", choices=("compare", "des", "auto"),
                         default="compare",
                         help="wallclock timing mode: compare DES vs the "
                              "hybrid fast path (default), or time one path")
    bench_p.add_argument("--paper-scales", action="store_true",
                         help="append hybrid-only wallclock cases at the "
                              "paper's 540/1080/2048/2160-rank sizes")
    bench_p.add_argument("--seed", type=int, default=None,
                         help="override the driver's default topology seed")
    bench_p.add_argument("--workers", type=int, default=1,
                         help="process-pool width for orchestrated sweeps "
                              "(default 1 = serial; simulated times are "
                              "bit-identical either way)")
    bench_p.add_argument("--cache-dir", default=None,
                         help="result-cache directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro)")
    bench_p.add_argument("--no-cache", action="store_true",
                         help="disable the content-addressed result cache")
    bench_p.add_argument("--sweep-smoke", action="store_true",
                         help="run the tiny orchestrated smoke sweep and "
                              "print execution/cache statistics")
    bench_p.add_argument("--paper-smoke", action="store_true",
                         help="run the reduced 2160-rank Fig. 5 slice in "
                              "hybrid (auto) mode and print execution/cache "
                              "statistics")
    bench_p.add_argument("--min-cache-hit-rate", type=float, default=None,
                         help="with --sweep-smoke/--paper-smoke: exit 1 if "
                              "the cache hit rate falls below this fraction")
    bench_p.add_argument("--max-wall-seconds", type=float, default=None,
                         help="with --sweep-smoke/--paper-smoke: exit 1 if "
                              "the sweep's wall clock exceeds this budget")
    bench_p.add_argument("--profile", action="store_true",
                         help="with --wallclock: cProfile one hybrid run per "
                              "case and attach the top-N table to the report")
    bench_p.add_argument("--min-speedup", type=float, default=None,
                         help="with --wallclock: exit 1 if the hybrid-over-DES "
                              "geomean speedup falls below this factor")
    bench_p.add_argument("--min-plan-cache-hit-rate", type=float, default=None,
                         help="with --wallclock: exit 1 if the compiled-plan "
                              "cache hit rate falls below this fraction")

    adv_p = sub.add_parser(
        "advise", help="adaptive algorithm selection (repro.select)")
    mode = adv_p.add_mutually_exclusive_group(required=True)
    mode.add_argument("--algorithm", action="store_true",
                      help="resolve algorithm=\"auto\" for one workload and "
                           "explain the pick (features, ranking, crossovers)")
    mode.add_argument("--distill", action="store_true",
                      help="re-distill the decision table from the analytic "
                           "prior plus the (cached) empirical sweep grid")
    mode.add_argument("--regret", action="store_true",
                      help="replay seeded fuzz scenarios under auto vs the "
                           "oracle best; exit 1 if a gate fails")
    _machine_args(adv_p)
    adv_p.add_argument("--topology", choices=("random", "moore", "cartesian"),
                       default="random")
    adv_p.add_argument("--density", type=float, default=0.3)
    adv_p.add_argument("--radius", type=int, default=1)
    adv_p.add_argument("--dims", type=int, default=2)
    adv_p.add_argument("--seed", type=int, default=0,
                       help="topology seed (--algorithm) or scenario "
                            "campaign seed (--regret)")
    adv_p.add_argument("--msg", default="4KB",
                       help="message size for --algorithm (e.g. 64, 4KB)")
    adv_p.add_argument("--faults", choices=PROFILE_NAMES, default=None,
                       help="resolve under a named fault profile "
                            "(--algorithm); restricts the candidate walk "
                            "to survivable algorithms")
    adv_p.add_argument("--workers", type=int, default=1,
                       help="process-pool width for --distill")
    adv_p.add_argument("--cache-dir", default=None,
                       help="result-cache directory for --distill (shares "
                            "cells with the bench sweep cache)")
    adv_p.add_argument("--no-cache", action="store_true",
                       help="disable the result cache for --distill")
    adv_p.add_argument("--out", default=None,
                       help="output path (--distill: table JSON, default "
                            "selection_table.json; --regret: report JSON, "
                            "default none)")
    adv_p.add_argument("--table", default=None,
                       help="decision-table JSON to resolve against "
                            "(default: $REPRO_SELECT_TABLE or the packaged "
                            "table)")
    adv_p.add_argument("--scenarios", type=int, default=120,
                       help="scenario count for --regret (default 120)")
    adv_p.add_argument("--profile", choices=FUZZ_PROFILES, default="clean",
                       help="scenario profile for --regret")
    adv_p.add_argument("--max-regret", type=float, default=1.10,
                       help="geomean regret gate for --regret (default "
                            "1.10; pass inf to gate only on survivability)")

    fuzz_p = sub.add_parser(
        "fuzz", help="differential conformance fuzzer (repro.verify)")
    fuzz_p.add_argument("--seed", type=int, default=0,
                        help="campaign seed; iteration i replays as "
                             "(seed, i) regardless of earlier iterations")
    fuzz_p.add_argument("--iterations", type=int, default=200,
                        help="scenarios to try (default 200)")
    fuzz_p.add_argument("--time-budget", type=float, default=None,
                        help="wall-clock budget in seconds (checked between "
                             "iterations; for CI smoke jobs)")
    fuzz_p.add_argument("--profile", choices=FUZZ_PROFILES,
                        default="clean",
                        help="clean: no fault plans, full metamorphic "
                             "battery; faulty: every scenario gets a random "
                             "fault plan and loss-accounting checks; crash: "
                             "fail-stop rank crashes with shrink/degrade "
                             "recovery oracles")
    fuzz_p.add_argument("--out-dir", default="fuzz-failures",
                        help="where shrunk repro files and pytest snippets "
                             "are written on failure")
    fuzz_p.add_argument("--no-shrink", action="store_true",
                        help="write the original failing scenario without "
                             "minimizing it first")
    fuzz_p.add_argument("--replay", metavar="REPRO_JSON", default=None,
                        help="replay a repro file instead of fuzzing; exits "
                             "1 while it still reproduces")
    fuzz_p.add_argument("--inject-bug", choices=("payload-corruption",),
                        default=None,
                        help="mutation self-test: wire a deliberate defect "
                             "into every trial and demand the fuzzer catches "
                             "and shrinks it")

    chaos_p = sub.add_parser(
        "chaos", help="exec-layer chaos harness (repro.exec.chaos)")
    chaos_p.add_argument("--iterations", type=int, default=3,
                         help="full battery repetitions (default 3)")
    chaos_p.add_argument("--workers", type=int, default=2,
                         help="pool width for the injected-failure sweeps")
    chaos_p.add_argument("--kill-workers", action="store_true",
                         help="enable the worker-kill and poison-quarantine "
                              "phases (spawns and destroys real processes)")
    chaos_p.add_argument("--seed", type=int, default=0,
                         help="varies the sweep topologies (runs stay "
                              "deterministic per seed)")
    chaos_p.add_argument("--keep", metavar="DIR", default=None,
                         help="scratch directory to run in and keep "
                              "(default: temp dir, removed on a clean pass)")
    return parser


def _machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--ranks-per-socket", type=int, default=8, dest="rps")


def _machine(args):
    from repro.cluster import Machine

    return Machine.niagara_like(nodes=args.nodes, ranks_per_socket=args.rps)


def cmd_info(args) -> int:
    import repro
    from repro.bench.config import _SCALES
    from repro.collectives.alltoall import alltoall_algorithms
    from repro.collectives.base import list_algorithms

    print(f"repro {repro.__version__} — CLUSTER 2024 neighborhood-allgather reproduction")
    print("allgather algorithms:")
    for info in list_algorithms():
        caps = ", ".join(sorted(info.capabilities)) or "-"
        print(f"  {info.name:<20} [{caps}]")
    print(f"alltoall algorithms : {', '.join(alltoall_algorithms())}")
    print("bench scales        : " + ", ".join(
        f"{name} ({s.ranks} ranks)" for name, s in _SCALES.items()
    ))
    print(f"figures             : {', '.join(sorted(FIGURES))}")
    return 0


def cmd_calibrate(args) -> int:
    from repro.cluster.calibration import fit_hockney, simulated_ping_pong

    machine = _machine(args)
    print(f"machine: {machine.describe()}")
    samples = simulated_ping_pong(machine)
    rows = [(format_size(s), t * 1e6) for s, t in sorted(samples.items())]
    print(format_table(["size", "one-way (us)"], rows, title="simulated ping-pong"))
    fit = fit_hockney(samples)
    print(f"\nHockney fit: alpha = {fit.alpha * 1e6:.3f} us, "
          f"beta = {fit.beta / 1e9:.2f} GB/s")
    return 0


def _build_topology(args, n: int):
    from repro.topology import cartesian_topology, erdos_renyi_topology, moore_topology

    if args.topology == "random":
        return erdos_renyi_topology(n, args.density, seed=args.seed)
    if args.topology == "moore":
        return moore_topology(n, r=args.radius, d=args.dims)
    return cartesian_topology(n, d=args.dims)


def cmd_compare(args) -> int:
    machine = _machine(args)
    n = machine.spec.n_ranks
    topology = _build_topology(args, n)
    print(f"machine : {machine.describe()}")
    print(f"topology: {topology!r}")
    print(f"message : {format_size(parse_size(args.msg))} ({args.collective})\n")

    rows = []
    baseline = None
    if args.collective == "allgather":
        from repro.collectives import RunOptions, run_allgather, verify_allgather
        from repro.collectives.base import (
            SETUP_FREE_FALLBACK,
            algorithm_info,
            list_algorithms,
        )
        from repro.sim.faults import get_profile

        if args.algorithms:
            names = tuple(n_.strip() for n_ in args.algorithms.split(",") if n_.strip())
            for name in names:
                try:
                    algorithm_info(name)
                except KeyError as exc:
                    print(f"error: --algorithms: {exc.args[0]}", file=sys.stderr)
                    return 2
        else:
            names = tuple(
                info.name for info in list_algorithms(requires={"oracle"})
            )
        fault_plan = (
            get_profile(args.faults, n, seed=args.seed) if args.faults else None
        )
        # Crash profiles pair the plan with its recovery policy: ``crash``
        # degrades to the setup-free fallback, ``crash_recover`` shrinks
        # and re-plans.
        on_failure = CRASH_PROFILE_MODES.get(args.faults, "abort")
        if fault_plan is not None:
            mode = f", on_failure={on_failure}" if on_failure != "abort" else ""
            print(f"faults  : {args.faults} ({fault_plan.describe()}{mode})\n")
        options = RunOptions(
            fault_plan=fault_plan,
            fallback=SETUP_FREE_FALLBACK if fault_plan is not None else None,
            max_sim_time=args.max_sim_time,
            max_events=args.max_events,
            on_failure=on_failure,
        )
        for name in names:
            run = run_allgather(name, topology, machine, args.msg, options=options)
            verify_allgather(topology, run, allow_missing=run.missing_ranks)
            baseline = baseline or run.simulated_time
            label = name if not run.fallback_used else f"{name} (->{run.algorithm})"
            if run.missing_ranks:
                rounds = (run.recovery or {}).get("rounds", 0)
                label += (f" [lost {list(run.missing_ranks)}, "
                          f"{rounds} recovery round(s)]")
            rows.append(
                (label, f"{run.simulated_time * 1e6:.1f} us",
                 f"{baseline / run.simulated_time:.2f}x", run.messages_sent)
            )
    else:
        from repro.collectives.alltoall import run_alltoall, verify_alltoall

        for name in ("naive_alltoall", "distance_halving_alltoall"):
            run = run_alltoall(name, topology, machine, args.msg)
            verify_alltoall(topology, run)
            baseline = baseline or run.simulated_time
            rows.append(
                (name, f"{run.simulated_time * 1e6:.1f} us",
                 f"{baseline / run.simulated_time:.2f}x", run.messages_sent)
            )
    print(format_table(["algorithm", "latency", "speedup", "messages"], rows,
                       title="results verified identical across algorithms"))
    return 0


def cmd_model(args) -> int:
    from repro.bench.heatmap import render_speedup_grid
    from repro.cluster.calibration import calibrate
    from repro.model import ModelParams, model_grid

    machine = _machine(args)
    fit = calibrate(machine)
    params = ModelParams(n=2000, sockets=2, ranks_per_socket=20,
                         alpha=fit.alpha, beta=fit.beta)
    grid = model_grid(params)
    print(
        render_speedup_grid(
            grid.rows(),
            row_key="density",
            col_key="msg_size",
            value_key="speedup",
            title="Fig. 2 — model-predicted DH speedup over naive (paper scale)",
            col_label=lambda s: format_size(int(s)),
            row_label=lambda d: f"d={d}",
        )
    )
    return 0


def cmd_analyze(args) -> int:
    from repro.topology.analysis import analyze_topology, pattern_preview

    machine = _machine(args)
    topology = _build_topology(args, machine.spec.n_ranks)
    print(f"machine : {machine.describe()}")
    report = analyze_topology(topology, machine)
    for line in report.summary_lines():
        print(line)
    preview = pattern_preview(topology, machine)
    print(
        f"Distance Halving preview: {preview['levels']} levels, "
        f"agent success {preview['agent_success_rate']:.0%}, "
        f"{preview['dh_messages_per_call']} msgs/call vs "
        f"{preview['naive_messages_per_call']} naive "
        f"({preview['message_reduction']:.1f}x fewer), "
        f"peak buffer {preview['peak_buffer_blocks']} blocks"
    )
    return 0


def cmd_spmm(args) -> int:
    from repro.spmm import run_spmm, synthetic_matrix
    from repro.spmm.matrices import matrix_names

    machine = _machine(args)
    names = args.matrices or list(matrix_names())
    rows = []
    for name in names:
        matrix = synthetic_matrix(name, seed=1)
        naive = run_spmm(matrix, args.cols, machine, "naive", seed=1)
        dh = run_spmm(matrix, args.cols, machine, "distance_halving", seed=1)
        rows.append(
            (name, matrix.shape[0], matrix.nnz,
             f"{naive.total_time * 1e6:.0f} us",
             f"{naive.total_time / dh.total_time:.2f}x")
        )
    print(format_table(["matrix", "n", "nnz", "naive time", "DH speedup"], rows,
                       title="SpMM kernel (results verified against X @ Y)"))
    return 0


def cmd_bench(args) -> int:
    from repro.bench.config import SweepConfig

    scale = get_scale(args.scale)
    if sum(map(bool, (args.wallclock, args.resilience, args.sweep_smoke,
                      args.paper_smoke))) > 1:
        print("error: --wallclock, --resilience, --sweep-smoke and "
              "--paper-smoke are mutually exclusive", file=sys.stderr)
        return 2
    config = SweepConfig(
        scale=scale,
        seed=args.seed,
        out=args.out,
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        smoke=args.smoke,
        repeats=args.repeats,
        # "compare" is a wallclock-harness mode; figure sweeps run one path.
        sim_mode=args.sim_mode if args.sim_mode != "compare" else "des",
    )
    if args.sweep_smoke or args.paper_smoke:
        import time

        if args.paper_smoke:
            from repro.bench.sweep import paper_smoke_sweep as sweep_fn
        else:
            from repro.bench.sweep import smoke_sweep as sweep_fn

        start = time.perf_counter()
        report = sweep_fn(config)
        wall = time.perf_counter() - start
        ex = report["execution"]
        cache_stats = ex.get("cache")
        print(f"{report['experiment']}: {ex['total']} specs, "
              f"{ex['from_cache']} from cache, {ex['computed']} computed, "
              f"workers={ex['workers']}, wall={wall:.1f}s")
        if cache_stats is None:
            print("cache: disabled")
            hit_rate = 0.0
        else:
            hit_rate = cache_stats["hit_rate"]
            print(f"cache: {ex['cache_dir']} hits={cache_stats['hits']} "
                  f"misses={cache_stats['misses']} "
                  f"invalidated={cache_stats['invalidated']} "
                  f"hit_rate={hit_rate:.2f}")
        if (args.min_cache_hit_rate is not None
                and hit_rate < args.min_cache_hit_rate):
            print(f"error: cache hit rate {hit_rate:.2f} is below the "
                  f"required {args.min_cache_hit_rate:.2f}", file=sys.stderr)
            return 1
        if args.max_wall_seconds is not None and wall > args.max_wall_seconds:
            print(f"error: sweep wall clock {wall:.1f}s exceeded the "
                  f"{args.max_wall_seconds:.1f}s budget", file=sys.stderr)
            return 1
        return 0
    if args.wallclock:
        from repro.bench.wallclock import wallclock_bench

        if args.repeats < 1:
            print(f"error: --repeats must be >= 1, got {args.repeats}",
                  file=sys.stderr)
            return 2
        try:
            payload = wallclock_bench(
                scale=scale,
                repeats=1 if args.smoke else args.repeats,
                smoke=args.smoke,
                out_path=args.out or "BENCH_sim_core.json",
                record_baseline=args.record_baseline,
                verbose=True,
                sim_mode=args.sim_mode,
                paper_scales=args.paper_scales,
                profile=args.profile,
            )
        except (OSError, ValueError) as exc:
            # Unreadable/corrupt golden or baseline files (and bad knob
            # combinations) are operator errors, not bugs: one line, exit 1.
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.min_speedup is not None:
            geomean = payload.get("hybrid", {}).get("speedup_auto_geomean")
            if geomean is None:
                print("error: --min-speedup needs compared cases "
                      "(run with --sim-mode compare)", file=sys.stderr)
                return 2
            if geomean < args.min_speedup:
                print(f"error: hybrid geomean speedup {geomean:.2f}x is below "
                      f"the required {args.min_speedup:.2f}x", file=sys.stderr)
                return 1
        if args.min_plan_cache_hit_rate is not None:
            rate = payload["plan_cache"]["hit_rate"]
            if rate < args.min_plan_cache_hit_rate:
                print(f"error: plan-cache hit rate {rate:.2f} is below the "
                      f"required {args.min_plan_cache_hit_rate:.2f}",
                      file=sys.stderr)
                return 1
        return 0
    if args.resilience:
        from repro.bench.resilience import resilience_bench

        resilience_bench(
            scale=scale,
            smoke=args.smoke,
            out_path=args.out or "BENCH_resilience.json",
            verbose=True,
            config=config,
        )
        return 0
    if args.figure is None:
        print("error: a figure name is required unless --wallclock or "
              "--resilience is given", file=sys.stderr)
        return 2

    import repro.bench.figures as figures

    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        driver = getattr(figures, FIGURES[name])
        driver(scale, verbose=True, config=config)
    return 0


def cmd_advise(args) -> int:
    if args.distill:
        return _advise_distill(args)
    if args.regret:
        return _advise_regret(args)
    return _advise_algorithm(args)


def _advise_algorithm(args) -> int:
    from repro.collectives import RunOptions
    from repro.collectives.base import SETUP_FREE_FALLBACK
    from repro.cluster.calibration import calibrate
    from repro.model import crossover_density, crossover_size
    from repro.model.crossover import model_params_for
    from repro.select import DecisionTable, select
    from repro.sim.faults import get_profile

    machine = _machine(args)
    n = machine.spec.n_ranks
    topology = _build_topology(args, n)
    table = DecisionTable.load(args.table) if args.table else None

    options = None
    if args.faults:
        fault_plan = get_profile(args.faults, n, seed=args.seed)
        options = RunOptions(
            fault_plan=fault_plan,
            fallback=SETUP_FREE_FALLBACK,
            on_failure=CRASH_PROFILE_MODES.get(args.faults, "abort"),
        )
        print(f"faults   : {args.faults} ({fault_plan.describe()})")

    selection = select(topology, machine, args.msg, options, table=table)
    feats = selection.features
    print(f"machine  : {machine.describe()}")
    print(f"topology : {topology!r}")
    print(f"workload : {feats.describe()}")
    print(f"key      : {feats.key()} (source={selection.source}, "
          f"table={selection.table_version})")
    print(f"ranking  : {' > '.join(selection.ranking)}")
    if selection.rejected:
        print(f"rejected : {', '.join(selection.rejected)} "
              "(setup not survivable under the fault plan)")
    kwargs = dict(selection.kwargs)
    suffix = f" {kwargs}" if kwargs else ""
    print(f"advice   : {selection.algorithm}{suffix}")

    fit = calibrate(machine)
    params = model_params_for(
        n=n,
        sockets=machine.spec.nodes * machine.spec.sockets_per_node,
        ranks_per_socket=machine.spec.ranks_per_socket,
        alpha=fit.alpha,
        beta=fit.beta,
    )
    msg_bytes = feats.mean_bytes
    dens_x = crossover_density(params, msg_bytes)
    size_x = crossover_size(params, feats.density)
    dens_str = f"delta >= {dens_x:.3f}" if dens_x is not None else "never"
    size_str = (f"m >= {format_size(size_x)}" if size_x is not None
                else "never")
    print(f"model    : DH beats naive at {dens_str} "
          f"(m={format_size(int(msg_bytes))}); at {size_str} "
          f"(delta={feats.density:.3f})")
    return 0


def _advise_distill(args) -> int:
    from repro.bench.config import SweepConfig
    from repro.select import distill

    config = SweepConfig(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    table = distill(config)
    out = args.out or "selection_table.json"
    table.save(out)
    empirical = sum(
        1 for e in table.entries.values() if e.source == "empirical"
    )
    print(f"distilled table {table.version}: {len(table.entries)} keys, "
          f"{empirical} empirical, "
          f"{table.provenance['grid']['cells']} grid cells -> {out}")
    return 0


def _advise_regret(args) -> int:
    import json

    from repro.select import (
        DecisionTable,
        check_gates,
        generate_scenarios,
        regret_report,
    )

    table = DecisionTable.load(args.table) if args.table else None
    scenarios = generate_scenarios(args.seed, args.scenarios, args.profile)
    report = regret_report(scenarios, table)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(f"regret: {report['scenarios']} scenarios "
          f"(profile={args.profile}, seed={args.seed}, "
          f"table={report['table_version']})")
    print(f"  geomean={report['geomean_regret']:.4f} "
          f"max={report['max_regret']:.4f} "
          f"non_survivable_picks={report['non_survivable_picks']}")
    for record in report["worst"]:
        print(f"  worst: {record['label']} regret={record['regret']:.3f} "
              f"(picked {record['selected']}, best {record['best']})")
    failures = check_gates(report, max_geomean_regret=args.max_regret)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_fuzz(args) -> int:
    from repro.verify import fuzz, replay_file

    if args.replay is not None:
        try:
            violations = replay_file(args.replay)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # Missing file, corrupt JSON, or a repro payload without the
            # expected structure ("scenario" key, field types): one line on
            # stderr, non-zero exit, no traceback.
            detail = f"missing key {exc}" if isinstance(exc, KeyError) else exc
            print(f"error: cannot replay {args.replay}: {detail}", file=sys.stderr)
            return 1
        if not violations:
            print(f"replay {args.replay}: no violations (fixed)")
            return 0
        print(f"replay {args.replay}: {len(violations)} violation(s)")
        for v in violations:
            print(f"  - {v}")
        return 1

    every = max(1, args.iterations // 10)

    def progress(done: int, total: int) -> None:
        if done % every == 0 or done == total:
            print(f"  {done}/{total} iterations", flush=True)

    report = fuzz(
        seed=args.seed,
        iterations=args.iterations,
        time_budget=args.time_budget,
        profile=args.profile,
        inject_bug=args.inject_bug,
        shrink=not args.no_shrink,
        out_dir=args.out_dir,
        on_progress=progress,
    )
    print(report.summary())
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    from repro.exec.chaos import ChaosError, run_chaos

    try:
        report = run_chaos(
            iterations=args.iterations,
            workers=args.workers,
            kill_workers=args.kill_workers,
            seed=args.seed,
            root=args.keep,
            progress=lambda msg: print(msg, flush=True),
        )
    except ChaosError as exc:
        print(f"error: {exc}", file=sys.stderr)
        artifacts = getattr(exc, "artifacts_dir", None)
        if artifacts:
            print(f"artifacts kept in {artifacts}", file=sys.stderr)
        return 1
    print(report.summary())
    return 0 if report.ok else 1


_COMMANDS = {
    "info": cmd_info,
    "calibrate": cmd_calibrate,
    "compare": cmd_compare,
    "model": cmd_model,
    "analyze": cmd_analyze,
    "spmm": cmd_spmm,
    "bench": cmd_bench,
    "advise": cmd_advise,
    "fuzz": cmd_fuzz,
    "chaos": cmd_chaos,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (DeadlockError, SimTimeoutError, RankFailedError,
            RetriesExhaustedError) as exc:
        # Simulation-level failures are expected outcomes under fault plans
        # and watchdog budgets: one line on stderr, non-zero exit, no
        # traceback.
        kind = type(exc).__name__
        print(f"error: {kind}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
