"""Deterministic distillation of the decision table.

Two sources, merged in a fixed order:

1. **Analytic prior** — every bucket key is priced with the Hockney
   model (Eqs. 5/8) at the bucket's representative scale/density/size,
   with ``alpha``/``beta`` calibrated once against a reference machine's
   simulated ping-pong.  This covers the whole 432-key space, including
   paper-scale buckets no CI-sized sweep can execute.
2. **Empirical refinement** — a fixed grid of small-scale
   :class:`~repro.exec.RunSpec` (a superset of ``smoke_sweep``'s grid,
   so CI's warm sweep cache answers the shared cells) is executed
   through :class:`~repro.bench.config.SweepConfig`; each grid cell
   votes its candidates' normalized times into its feature key, and any
   key with at least one vote overrides the prior with the
   geomean-normalized empirical ranking.

Both stages are pure functions of (registry, grid, cache contents):
re-distilling against the same cache yields a bit-identical table with
the same content version.
"""

from __future__ import annotations

import math
from typing import Any

from repro.bench.config import SweepConfig
from repro.collectives.base import list_algorithms
from repro.model.crossover import analytic_ranking, model_params_for
from repro.select.features import (
    DENSITY_REPRESENTATIVE,
    MSG_REPRESENTATIVE,
    SCALE_REPRESENTATIVE,
    all_keys,
    extract_features,
    split_key,
)
from repro.select.table import DecisionTable, TableEntry

#: The capability query whose result becomes the table's candidate set.
#: The completeness pin (tests/select) asserts table.candidates matches
#: this exact query, so a fifth oracle backend forces a re-distillation.
TABLE_REQUIRES = frozenset({"oracle"})

#: Reference machine shape the prior's ping-pong calibration runs on
#: (two Niagara-like nodes — crosses the network, like the paper's).
CALIBRATION_SHAPE = dict(nodes=2, sockets_per_node=2, ranks_per_socket=4)

#: Empirical grid: machine shapes (nodes, sockets_per_node,
#: ranks_per_socket) spanning the xs/s/m scale buckets — including odd
#: shapes like 3x1x3 = 9 ranks, where structured stencils (3x3 Moore is
#: the *complete* graph) land in density buckets the even shapes never
#: reach — random densities spanning every non-empty density bucket, the
#: structured generators across the fuzzer's radius/dims/edges ranges,
#: and message sizes spanning every size bucket.  The (2, 2, 4) machine
#: at densities 0.1/0.5 and sizes 64/16384 is exactly ``smoke_sweep``'s
#: grid — those cells are warm in CI.
GRID_MACHINES = (
    (1, 1, 2), (1, 1, 3), (1, 1, 4), (1, 2, 2), (1, 2, 3), (1, 2, 4),
    (3, 1, 3), (2, 2, 4), (4, 2, 4),
)
GRID_DENSITIES = (0.05, 0.1, 0.3, 0.5, 0.6, 0.9)
GRID_MOORE = ((1, 1), (1, 2), (2, 2), (2, 3))   # (radius, dims)
GRID_CARTESIAN = (1, 2, 3)                      # dims
GRID_EDGES_PER_RANK = (1, 2, 4)                 # scale_free
GRID_SIZES = (0, 1, 64, 512, 4096, 16384, 65536)
#: Instance seeds for the seeded generators (random, scale_free): two
#: draws per density so a single unlucky instance cannot flip a bucket.
#: 23 first — it makes ``smoke_sweep``'s specs an exact grid subset.
GRID_SEEDS = (23, 24)
GRID_SEED = GRID_SEEDS[0]


def table_candidates() -> tuple[tuple[str, tuple[tuple[str, Any], ...]], ...]:
    """(name, bench_kwargs) for every selectable algorithm, registry order."""
    return tuple(
        (info.name, tuple(info.bench_kwargs))
        for info in list_algorithms(requires=TABLE_REQUIRES)
    )


def _reference_fit() -> tuple[float, float]:
    from repro.cluster.calibration import calibrate
    from repro.cluster.machine import Machine

    fit = calibrate(Machine.niagara_like(**CALIBRATION_SHAPE))
    return fit.alpha, fit.beta


def analytic_prior(
    candidates: tuple[str, ...], alpha: float, beta: float
) -> dict[str, TableEntry]:
    """Model-ranked entry for every key in the bucket vocabulary."""
    entries: dict[str, TableEntry] = {}
    for key in all_keys():
        scale, dens, _shape, msg = split_key(key)
        n = SCALE_REPRESENTATIVE[scale]
        rps = min(8, n)
        params = model_params_for(
            n=n,
            sockets=max(1, n // rps),
            ranks_per_socket=rps,
            alpha=alpha,
            beta=beta,
        )
        ranking = analytic_ranking(
            params,
            DENSITY_REPRESENTATIVE[dens],
            float(MSG_REPRESENTATIVE[msg]),
            candidates=candidates,
        )
        entries[key] = TableEntry(ranking=ranking, source="analytic")
    return entries


def distill_grid() -> "list[tuple[Any, Any, int]]":
    """The empirical grid cells as (TopologySpec, MachineSpec, msg_bytes)."""
    from repro.exec.spec import MachineSpec, TopologySpec

    cells = []
    for nodes, sockets, rps in GRID_MACHINES:
        machine = MachineSpec(nodes=nodes, sockets_per_node=sockets,
                              ranks_per_socket=rps)
        n = machine.n_ranks
        topologies = [
            TopologySpec("random", n, density=d, seed=s)
            for s in GRID_SEEDS
            for d in GRID_DENSITIES
        ]
        topologies.extend(
            TopologySpec("moore", n, radius=r, dims=d) for r, d in GRID_MOORE
        )
        topologies.extend(
            TopologySpec("cartesian", n, dims=d) for d in GRID_CARTESIAN
        )
        topologies.extend(
            TopologySpec("scale_free", n, edges_per_rank=e, seed=s)
            for s in GRID_SEEDS
            for e in GRID_EDGES_PER_RANK
        )
        for topo in topologies:
            for size in GRID_SIZES:
                cells.append((topo, machine, size))
    return cells


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def distill(config: SweepConfig | None = None) -> DecisionTable:
    """Run (or replay from cache) the grid and build the table."""
    from repro.exec.spec import RunSpec

    cfg = config or SweepConfig()
    candidates = table_candidates()
    names = tuple(name for name, _ in candidates)

    cells = distill_grid()
    specs = [
        RunSpec(name, topo, machine, size, algorithm_kwargs=kwargs)
        for topo, machine, size in cells
        for name, kwargs in candidates
    ]
    sweep = cfg.run(specs).raise_errors()
    times = {spec.digest(): run.simulated_time
             for spec, run in zip(specs, sweep.runs)}

    # Each cell votes min-normalized times into its feature key.
    votes: dict[str, dict[str, list[float]]] = {}
    cell_counts: dict[str, int] = {}
    spec_iter = iter(specs)
    for topo, machine, size in cells:
        cell_specs = {next(spec_iter).digest(): name for name, _ in candidates}
        cell_times = {name: times[digest] for digest, name in cell_specs.items()}
        best = min(cell_times.values())
        if best <= 0.0:
            continue  # degenerate cell (no traffic): uninformative
        key = extract_features(topo.build(), machine, size, None).key()
        bucket = votes.setdefault(key, {name: [] for name in names})
        for name in names:
            bucket[name].append(cell_times[name] / best)
        cell_counts[key] = cell_counts.get(key, 0) + 1

    alpha, beta = _reference_fit()
    entries = analytic_prior(names, alpha, beta)
    for key, per_name in votes.items():
        scored = sorted(
            names,
            key=lambda name: (_geomean(per_name[name]), names.index(name)),
        )
        entries[key] = TableEntry(
            ranking=tuple(scored),
            source="empirical",
            cells=cell_counts[key],
        )

    return DecisionTable(
        candidates=candidates,
        entries=entries,
        provenance={
            "requires": sorted(TABLE_REQUIRES),
            "distilled_from": sorted(times),
            "model": {"alpha": alpha, "beta": beta},
            "grid": {
                "cells": len(cells),
                "machines": [list(m) for m in GRID_MACHINES],
                "densities": list(GRID_DENSITIES),
                "sizes": list(GRID_SIZES),
                "seed": GRID_SEED,
            },
        },
    )
