"""Resolution of ``algorithm="auto"`` against the active decision table.

Selection is a two-stage filter:

1. **Capability filter** (registry-driven, satellite-pinned): the fault
   class of the workload decides which registry query supplies the
   candidate set — every fuzz-oracle algorithm normally, only the
   setup-free subset when the fault plan could starve a setup
   negotiation (``"risky"``).  A fifth registered backend enters the
   candidate set automatically; the decision table merely orders it last
   until re-distilled.
2. **Ranking walk** (table-driven): the workload's feature key looks up
   the table's best-first ranking; the first candidate that survives the
   workload's fault plan wins.  Survivability is checked against the
   candidate's *actual* setup cost — the algorithm is instantiated and
   set up during the walk, and the resulting instance is handed to the
   runner so the setup work is paid exactly once.

Everything here is deterministic: the table is content-versioned, the
registry order is fixed by import order, and setup statistics are pure
functions of (topology, machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.collectives.base import (
    NeighborhoodAllgatherAlgorithm,
    algorithm_info,
    get_algorithm,
    list_algorithms,
)
from repro.model.crossover import analytic_ranking, model_params_for
from repro.select.features import WorkloadFeatures, extract_features
from repro.select.table import DecisionTable, active_table

#: Capability queries per fault class.  ``"risky"`` means the plan could
#: starve a setup negotiation, so only setup-free candidates are safe to
#: even attempt; every other class selects among the full oracle set and
#: relies on the per-candidate survivability walk.
CANDIDATE_REQUIRES: dict[str, frozenset[str]] = {
    "clean": frozenset({"oracle"}),
    "perturbed": frozenset({"oracle"}),
    "crash": frozenset({"oracle"}),
    "risky": frozenset({"oracle", "setup_free"}),
}


def candidates_for(fault: str) -> tuple[str, ...]:
    """Registry candidate names for a fault class, registration order."""
    return tuple(info.name for info in list_algorithms(requires=CANDIDATE_REQUIRES[fault]))


@dataclass(frozen=True)
class Selection:
    """The outcome of one ``algorithm="auto"`` resolution.

    ``instance`` is ready to hand to the runner; when a fault plan forced
    a survivability walk it is already set up (the runner's ``setup()``
    call is memoized, so the cost is not paid twice).  ``ranking`` is the
    full order that was walked, ``rejected`` the prefix that failed the
    survivability check.
    """

    algorithm: str
    kwargs: tuple[tuple[str, Any], ...]
    instance: NeighborhoodAllgatherAlgorithm
    features: WorkloadFeatures
    table_version: str
    source: str
    ranking: tuple[str, ...]
    rejected: tuple[str, ...] = ()

    def describe(self) -> str:
        parts = [f"{self.algorithm} (source={self.source}, "
                 f"table={self.table_version})"]
        if self.rejected:
            parts.append(f"rejected non-survivable: {', '.join(self.rejected)}")
        return "; ".join(parts)


# Calibration is a simulated ping-pong (an engine run per probe size):
# memoize per machine shape + cost model so the analytic fallback prices
# a shape once per process.
_CALIBRATION_CACHE: dict[tuple, tuple[float, float]] = {}


def _calibrated(machine) -> tuple[float, float]:
    spec = machine.spec
    # HockneyParameters holds dicts (unhashable): its repr is a stable,
    # complete rendering of the cost model, good enough for a memo key.
    key = (spec.nodes, spec.sockets_per_node, spec.ranks_per_socket,
           repr(machine.params))
    if key not in _CALIBRATION_CACHE:
        from repro.cluster.calibration import calibrate

        fit = calibrate(machine)
        _CALIBRATION_CACHE[key] = (fit.alpha, fit.beta)
    return _CALIBRATION_CACHE[key]


def _analytic_order(
    features: WorkloadFeatures, machine, allowed: tuple[str, ...]
) -> tuple[str, ...]:
    """Analytic fallback ranking for a key the table does not cover."""
    alpha, beta = _calibrated(machine)
    params = model_params_for(
        n=features.n_ranks,
        sockets=features.sockets_per_node * max(
            1, features.n_ranks // (features.sockets_per_node * features.ranks_per_socket)
        ),
        ranks_per_socket=features.ranks_per_socket,
        alpha=alpha,
        beta=beta,
    )
    return analytic_ranking(
        params, features.density, features.mean_bytes, candidates=allowed
    )


def _merge_ranking(
    table_ranking: tuple[str, ...], allowed: tuple[str, ...]
) -> tuple[str, ...]:
    """Table order filtered to the allowed set, unseen candidates appended.

    The append keeps selection total over the registry: a backend
    registered after the table was distilled is still selectable (last),
    and the completeness test demands a re-distillation to rank it
    properly.
    """
    ranked = [name for name in table_ranking if name in allowed]
    ranked.extend(name for name in allowed if name not in ranked)
    return tuple(ranked)


def _kwargs_for(name: str, table: DecisionTable) -> tuple[tuple[str, Any], ...]:
    try:
        return tuple(table.kwargs_for(name).items())
    except KeyError:
        return tuple(algorithm_info(name).bench_kwargs)


def select(
    topology,
    machine,
    msg_size,
    options=None,
    table: DecisionTable | None = None,
) -> Selection:
    """Resolve ``algorithm="auto"`` for one workload.

    ``topology`` is a built topology, ``machine`` a
    :class:`~repro.cluster.machine.Machine`, ``msg_size`` anything the
    runner accepts, ``options`` the run's
    :class:`~repro.collectives.runner.RunOptions` (or ``None`` for a
    clean run).  ``table`` overrides the active table for this call.
    """
    if table is None:
        table = active_table()
    features = extract_features(topology, machine.spec, msg_size, options)
    allowed = candidates_for(features.fault)
    if not allowed:
        raise RuntimeError(
            f"no registered algorithm satisfies "
            f"{sorted(CANDIDATE_REQUIRES[features.fault])} for fault class "
            f"{features.fault!r}"
        )

    entry = table.lookup(features.key())
    if entry is not None:
        ranking = _merge_ranking(entry.ranking, allowed)
        source = entry.source
    else:
        ranking = _analytic_order(features, machine, allowed)
        source = "analytic-fallback"

    plan = options.fault_plan if options is not None else None
    rejected: list[str] = []
    if plan is not None and not plan.is_noop():
        # Survivability walk: set up each candidate in ranking order and
        # take the first whose real protocol-message count the plan
        # cannot starve.  The winning (already set-up) instance is
        # returned, so the runner's memoized setup() is free.
        for name in ranking:
            instance = get_algorithm(name, **dict(_kwargs_for(name, table)))
            stats = instance.setup(topology, machine)
            if plan.setup_survivable(stats.protocol_messages):
                return Selection(
                    algorithm=name,
                    kwargs=_kwargs_for(name, table),
                    instance=instance,
                    features=features,
                    table_version=table.version,
                    source=source,
                    ranking=ranking,
                    rejected=tuple(rejected),
                )
            rejected.append(name)
        raise RuntimeError(
            f"no candidate survives the fault plan's setup pressure "
            f"(walked {ranking}); fault class {features.fault!r}"
        )

    name = ranking[0]
    return Selection(
        algorithm=name,
        kwargs=_kwargs_for(name, table),
        instance=get_algorithm(name, **dict(_kwargs_for(name, table))),
        features=features,
        table_version=table.version,
        source=source,
        ranking=ranking,
    )
