"""The versioned, auditable decision-table artifact behind ``algorithm="auto"``.

A :class:`DecisionTable` maps every workload-feature key (see
:mod:`repro.select.features`) to a *ranking* of candidate algorithms,
best-first, plus the provenance of that ranking: which
:class:`~repro.exec.RunSpec` digests the empirical cells were distilled
from and which analytic model filled the rest.  The table is plain JSON —
loadable, diffable, and content-versioned (:attr:`DecisionTable.version`
is a digest of the canonical payload), so two tables distilled from the
same cache contents are bit-identical and share a version string.

Resolution order for the *active* table (what ``algorithm="auto"`` uses):

1. an in-process override installed with :func:`use_table`;
2. the path named by the ``REPRO_SELECT_TABLE`` environment variable
   (inherited by orchestrator worker processes, so parallel sweeps
   resolve identically to serial ones);
3. the packaged default (``default_table.json``, distilled by
   ``repro advise --distill`` and shipped with the source tree).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.select.features import all_keys, split_key

#: Table serialization format (bumped on layout changes).
TABLE_FORMAT = 1

#: Environment variable naming an alternative table file; read at every
#: resolution so worker processes spawned with it inherit the choice.
TABLE_ENV_VAR = "REPRO_SELECT_TABLE"

#: Entry sources: distilled from executed sweep cells, or filled by the
#: Hockney-model prior.
SOURCES = ("empirical", "analytic")


@dataclass(frozen=True)
class TableEntry:
    """One key's ranking and where it came from.

    ``ranking`` lists candidate algorithm names best-first; ``source``
    says whether executed sweep cells (``"empirical"``) or the analytic
    model (``"analytic"``) produced the order; ``cells`` counts the
    distinct (topology, machine, size) sweep cells that voted when
    empirical.
    """

    ranking: tuple[str, ...]
    source: str
    cells: int = 0

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"ranking": list(self.ranking),
                                "source": self.source}
        if self.cells:
            data["cells"] = self.cells
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TableEntry":
        source = data["source"]
        if source not in SOURCES:
            raise ValueError(f"unknown entry source {source!r}")
        return cls(
            ranking=tuple(data["ranking"]),
            source=source,
            cells=int(data.get("cells", 0)),
        )


@dataclass(frozen=True)
class DecisionTable:
    """The selector's transparent policy (see module docstring).

    ``candidates`` pairs every selectable algorithm name with the
    constructor kwargs selection instantiates it with (the registry's
    ``bench_kwargs`` at distillation time, so empirical cells and
    selected runs execute identical configurations).
    """

    candidates: tuple[tuple[str, tuple[tuple[str, Any], ...]], ...]
    entries: dict[str, TableEntry] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = self.candidate_names()
        for key, entry in self.entries.items():
            split_key(key)  # validates the bucket vocabulary
            unknown = set(entry.ranking) - set(names)
            if unknown:
                raise ValueError(
                    f"entry {key!r} ranks non-candidate algorithm(s) "
                    f"{sorted(unknown)}"
                )

    # ------------------------------------------------------------- identity
    def candidate_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.candidates)

    def kwargs_for(self, name: str) -> dict[str, Any]:
        for cand, kwargs in self.candidates:
            if cand == name:
                return dict(kwargs)
        raise KeyError(f"{name!r} is not a table candidate")

    def lookup(self, key: str) -> TableEntry | None:
        return self.entries.get(key)

    def is_complete(self) -> bool:
        """Does the table cover the entire bucket-key space?"""
        return set(self.entries) >= set(all_keys())

    @property
    def version(self) -> str:
        """Content digest of the canonical payload (short, stable)."""
        payload = json.dumps(self._canonical(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def _canonical(self) -> dict[str, Any]:
        return {
            "format": TABLE_FORMAT,
            "candidates": [[name, [list(pair) for pair in kwargs]]
                           for name, kwargs in self.candidates],
            "entries": {key: self.entries[key].to_dict()
                        for key in sorted(self.entries)},
            "provenance": self.provenance,
        }

    # ---------------------------------------------------------------- serde
    def to_dict(self) -> dict[str, Any]:
        data = self._canonical()
        data["version"] = self.version
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionTable":
        if data.get("format") != TABLE_FORMAT:
            raise ValueError(
                f"unsupported table format {data.get('format')!r} "
                f"(expected {TABLE_FORMAT})"
            )
        table = cls(
            candidates=tuple(
                (name, tuple((k, v) for k, v in kwargs))
                for name, kwargs in data["candidates"]
            ),
            entries={key: TableEntry.from_dict(entry)
                     for key, entry in data["entries"].items()},
            provenance=dict(data.get("provenance", {})),
        )
        recorded = data.get("version")
        if recorded is not None and recorded != table.version:
            raise ValueError(
                f"table version mismatch: file says {recorded!r} but the "
                f"payload hashes to {table.version!r} (corrupted or "
                "hand-edited artifact)"
            )
        return table

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "DecisionTable":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ----------------------------------------------------------------- diff
    def diff(self, other: "DecisionTable") -> dict[str, Any]:
        """Keys whose winner or ranking changed between two tables."""
        changed = {}
        for key in sorted(set(self.entries) | set(other.entries)):
            mine = self.entries.get(key)
            theirs = other.entries.get(key)
            if mine == theirs:
                continue
            changed[key] = {
                "before": mine.to_dict() if mine else None,
                "after": theirs.to_dict() if theirs else None,
            }
        return {
            "versions": [self.version, other.version],
            "changed": changed,
        }


# --------------------------------------------------------------------------
# active-table resolution
# --------------------------------------------------------------------------

_OVERRIDE: DecisionTable | None = None
_DEFAULT_CACHE: DecisionTable | None = None

#: The packaged default artifact (distilled via ``repro advise --distill``).
DEFAULT_TABLE_PATH = Path(__file__).with_name("default_table.json")


def default_table() -> DecisionTable:
    """The packaged table (memoized; the file is immutable per checkout)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = DecisionTable.load(DEFAULT_TABLE_PATH)
    return _DEFAULT_CACHE


def use_table(table: DecisionTable | None) -> None:
    """Install (or clear, with ``None``) an in-process table override."""
    global _OVERRIDE
    _OVERRIDE = table


def active_table() -> DecisionTable:
    """The table ``algorithm="auto"`` resolves against right now."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    env_path = os.environ.get(TABLE_ENV_VAR)
    if env_path:
        return DecisionTable.load(env_path)
    return default_table()


def active_table_version() -> str:
    return active_table().version
