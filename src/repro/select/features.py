"""Workload feature extraction for adaptive algorithm selection.

The decision table (:mod:`repro.select.table`) keys on a small, closed
vocabulary of workload *buckets* rather than raw parameters, so one
distilled cell generalizes to every workload that lands in the same
bucket.  Everything here is a pure function of the live objects a run
already has in hand — the built topology, the machine spec, the message
size, and the :class:`~repro.collectives.runner.RunOptions` — so the
same workload always extracts the same key no matter which process (or
cache state) resolves it.

The key dimensions follow the paper's own conditioning variables:

* *scale* — communicator size ``n`` (the paper's per-scale switching);
* *density* — directed edge probability ``delta`` (Fig. 2's x-axis);
* *degree shape* — a coarse topology-isomorphism-class proxy (regular
  grids vs Erdős–Rényi vs hub-dominated scale-free graphs behave
  differently under neighborhood offloading);
* *message size* — latency- vs bandwidth-dominated regimes;
* *fault class* — whether a fault plan perturbs the run, can starve a
  setup negotiation (``"risky"``), or fail-stops ranks (``"crash"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.faults import FaultPlan
from repro.utils.sizes import parse_size

#: Bucket vocabularies, in ascending order (closed sets: the distiller
#: enumerates their product, so the shipped table covers every key).
SCALE_BUCKETS = ("xs", "s", "m", "l", "xl", "paper")
DENSITY_BUCKETS = ("empty", "sparse", "low", "mid", "high", "full")
SHAPE_BUCKETS = ("regular", "mixed", "hub")
MSG_BUCKETS = ("zero", "lat", "mid", "bw")
FAULT_CLASSES = ("clean", "perturbed", "risky", "crash")

#: Upper bounds (inclusive) for the scale buckets, paired with
#: representative sizes the analytic prior evaluates a bucket at.
_SCALE_EDGES = ((8, "xs"), (16, "s"), (32, "m"), (128, "l"), (512, "xl"))
#: (upper bound, bucket) for density; "empty" is exactly zero.
_DENSITY_EDGES = ((0.08, "sparse"), (0.2, "low"), (0.45, "mid"), (0.75, "high"))
#: (upper bound in bytes, bucket) for message size; "zero" is exactly zero.
_MSG_EDGES = ((256, "lat"), (8192, "mid"))

#: Representative raw values per bucket, used when the analytic prior
#: must price a bucket without a concrete workload in hand.
SCALE_REPRESENTATIVE = {
    "xs": 8, "s": 16, "m": 32, "l": 128, "xl": 512, "paper": 2160,
}
DENSITY_REPRESENTATIVE = {
    "empty": 0.0, "sparse": 0.05, "low": 0.15, "mid": 0.3,
    "high": 0.6, "full": 0.9,
}
MSG_REPRESENTATIVE = {"zero": 0, "lat": 64, "mid": 4096, "bw": 65536}

#: Conservative upper bound on setup control messages, as a function of
#: communicator size, used to classify a fault plan as ``"risky"`` before
#: any algorithm has been set up.  Every shipped backend negotiates at
#: most O(n * degree) <= n^2 control messages; the factor 4 keeps the
#: classification conservative (over-classifying as risky only restricts
#: selection to setup-free candidates — it can never pick an unsafe one).
def setup_message_bound(n: int) -> int:
    return max(1, 4 * n * n)


def scale_bucket(n: int) -> str:
    for edge, bucket in _SCALE_EDGES:
        if n <= edge:
            return bucket
    return "paper"


def density_bucket(density: float) -> str:
    if density <= 0.0:
        return "empty"
    for edge, bucket in _DENSITY_EDGES:
        if density < edge:
            return bucket
    return "full" if density >= 0.75 else "high"


def msg_bucket(mean_bytes: float) -> str:
    if mean_bytes <= 0:
        return "zero"
    for edge, bucket in _MSG_EDGES:
        if mean_bytes <= edge:
            return bucket
    return "bw"


def fault_class(plan: FaultPlan | None, n: int) -> str:
    """Which selection regime a fault plan puts the workload in.

    ``"risky"`` means the plan's peak loss probability could starve a
    setup negotiation of :func:`setup_message_bound` control messages —
    the same ``N * p**(retries+1) >= 1`` rule as
    :meth:`~repro.sim.faults.FaultPlan.setup_survivable`, evaluated at a
    conservative bound since the concrete algorithm (and its protocol
    message count) has not been chosen yet.  Risky dominates crash:
    a plan that can kill setup constrains the candidate set regardless
    of what else it does.
    """
    if plan is None or plan.is_noop():
        return "clean"
    if not plan.setup_survivable(setup_message_bound(n)):
        return "risky"
    if plan.crashes:
        return "crash"
    return "perturbed"


def degree_shape(out_degrees: list[int], in_degrees: list[int]) -> str:
    """Coarse isomorphism-class proxy from the degree sequences.

    ``"regular"`` — every rank has the same in- and out-degree (Moore and
    Cartesian stencils, complete graphs); ``"hub"`` — the maximum degree
    is at least three times the mean (scale-free hubs dominate the
    makespan); ``"mixed"`` — everything else (typical Erdős–Rényi).
    """
    if not out_degrees:
        return "regular"
    if len(set(out_degrees)) == 1 and len(set(in_degrees)) == 1:
        return "regular"
    mean_out = sum(out_degrees) / len(out_degrees)
    if mean_out > 0 and max(out_degrees) >= 3.0 * mean_out:
        return "hub"
    return "mixed"


@dataclass(frozen=True)
class WorkloadFeatures:
    """Extracted features plus the raw values they were bucketed from."""

    n_ranks: int
    ranks_per_socket: int
    sockets_per_node: int
    density: float
    mean_bytes: float
    scale: str
    density_class: str
    shape: str
    msg_class: str
    fault: str

    def key(self) -> str:
        """The decision-table key (fault class is a selection-time rule,
        not a table dimension — see :mod:`repro.select.selector`)."""
        return "/".join((self.scale, self.density_class, self.shape,
                         self.msg_class))

    def describe(self) -> str:
        return (
            f"n={self.n_ranks} (scale={self.scale}) "
            f"delta={self.density:.3f} ({self.density_class}) "
            f"shape={self.shape} m~{self.mean_bytes:.0f}B "
            f"({self.msg_class}) fault={self.fault}"
        )


def all_keys() -> tuple[str, ...]:
    """Every possible table key, in vocabulary order (a closed set)."""
    return tuple(
        "/".join((s, d, sh, m))
        for s in SCALE_BUCKETS
        for d in DENSITY_BUCKETS
        for sh in SHAPE_BUCKETS
        for m in MSG_BUCKETS
    )


def split_key(key: str) -> tuple[str, str, str, str]:
    """Inverse of :meth:`WorkloadFeatures.key` (validates the vocabulary)."""
    parts = tuple(key.split("/"))
    if len(parts) != 4:
        raise ValueError(f"malformed table key {key!r}")
    scale, dens, shape, msg = parts
    if (scale not in SCALE_BUCKETS or dens not in DENSITY_BUCKETS
            or shape not in SHAPE_BUCKETS or msg not in MSG_BUCKETS):
        raise ValueError(f"table key {key!r} outside the bucket vocabulary")
    return parts


def extract_features(topology, machine_spec, msg_size, options) -> WorkloadFeatures:
    """Features of one live workload (pure; deterministic).

    ``topology`` is a built
    :class:`~repro.topology.graph.DistGraphTopology`; ``machine_spec`` a
    :class:`~repro.exec.spec.MachineSpec` or anything exposing
    ``ranks_per_socket`` / ``sockets_per_node``; ``msg_size`` any form
    :func:`~repro.collectives.runner.run_allgather` accepts (int, size
    string, or an allgatherv block list — bucketed by its mean block).
    """
    n = topology.n
    out_degrees = [len(topology.out_neighbors(r)) for r in range(n)]
    in_degrees = [len(topology.in_neighbors(r)) for r in range(n)]
    # Self-loops are local copies, not traffic: exclude them from density.
    loops = sum(1 for r in range(n) if topology.has_edge(r, r))
    edges = sum(out_degrees) - loops
    density = edges / (n * (n - 1)) if n > 1 else 0.0

    if isinstance(msg_size, (list, tuple)):
        sizes = [parse_size(s) for s in msg_size]
        mean_bytes = sum(sizes) / len(sizes) if sizes else 0.0
    else:
        mean_bytes = float(parse_size(msg_size))

    plan = options.fault_plan if options is not None else None
    return WorkloadFeatures(
        n_ranks=n,
        ranks_per_socket=machine_spec.ranks_per_socket,
        sockets_per_node=machine_spec.sockets_per_node,
        density=density,
        mean_bytes=mean_bytes,
        scale=scale_bucket(n),
        density_class=density_bucket(density),
        shape=degree_shape(out_degrees, in_degrees),
        msg_class=msg_bucket(mean_bytes),
        fault=fault_class(plan, n),
    )
