"""Adaptive algorithm selection (``algorithm="auto"``).

The paper's core claim is that the right neighborhood-allgather algorithm
is conditional on topology and load.  This package operationalizes that
claim: a transparent, versioned decision table (distilled from the
Hockney-model crossovers plus cached sweep results) maps workload
features to a candidate ranking, and a selector resolves
``algorithm="auto"`` against it — restricted to survivable candidates
when a fault plan is in play.  See docs/ARCHITECTURE.md §8.
"""

from repro.select.features import WorkloadFeatures, extract_features
from repro.select.selector import Selection, candidates_for, select
from repro.select.table import (
    DecisionTable,
    TableEntry,
    active_table,
    active_table_version,
    default_table,
    use_table,
)
from repro.select.distill import distill, table_candidates
from repro.select.regret import (
    check_gates,
    evaluate_scenario,
    generate_scenarios,
    regret_report,
)

__all__ = [
    "DecisionTable",
    "Selection",
    "TableEntry",
    "WorkloadFeatures",
    "active_table",
    "active_table_version",
    "candidates_for",
    "check_gates",
    "default_table",
    "distill",
    "evaluate_scenario",
    "extract_features",
    "generate_scenarios",
    "regret_report",
    "select",
    "table_candidates",
    "use_table",
]
