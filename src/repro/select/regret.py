"""Regret validation: how close does ``algorithm="auto"`` get to the oracle?

The harness replays seeded fuzz scenarios (:mod:`repro.verify.generators`)
three ways: once under ``algorithm="auto"`` (the production resolution
path, through :class:`~repro.exec.RunSpec`), and once per registered
candidate on the *same* scenario.  Per-scenario regret is
``t_auto / t_best`` — 1.0 means the selector picked the oracle best.

The acceptance gates (CI's ``selection-smoke`` job and the pinned
``BENCH_selection.json`` artifact both use :func:`check_gates`):

* geomean regret ≤ 1.10 on the clean profile;
* zero non-survivable picks under fault profiles — an ``auto`` run must
  never trip the graceful-degradation fallback (``fallback_used``) or
  die outright, because the selector's survivability walk is supposed to
  have rejected such candidates *before* the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any

from repro.exec.spec import RunSpec
from repro.select.table import DecisionTable, active_table, use_table
from repro.verify.generators import Scenario, ScenarioConfig, generate_scenario


def generate_scenarios(
    seed: int, count: int, profile: str = "clean"
) -> list[Scenario]:
    """``count`` regret scenarios — fuzz draws with tracing stripped.

    Tracing is the fuzzer's concern (conservation oracles); the regret
    harness only compares makespans, and trace-free runs are several
    times faster, so the whole ≥100-scenario gate fits a CI budget.
    """
    config = ScenarioConfig(profile=profile)
    scenarios = []
    for i in range(count):
        drawn = generate_scenario(seed, i, config)
        scenarios.append(
            drawn.with_(options=replace(drawn.options, trace=False))
        )
    return scenarios


@dataclass(frozen=True)
class ScenarioRegret:
    """One scenario's outcome under auto vs the full candidate field."""

    scenario: Scenario
    selected: str | None
    auto_time: float
    candidate_times: dict[str, float]
    best: str | None
    regret: float
    fallback_used: bool
    error: str | None = None

    @property
    def violation(self) -> bool:
        """A non-survivable pick: auto degraded mid-run or died."""
        return self.fallback_used or self.error is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "label": self.scenario.label(),
            "selected": self.selected,
            "auto_time": self.auto_time,
            "candidate_times": dict(sorted(self.candidate_times.items())),
            "best": self.best,
            "regret": self.regret,
            "fallback_used": self.fallback_used,
            "error": self.error,
        }


def evaluate_scenario(scenario: Scenario) -> ScenarioRegret:
    """Run one scenario under auto and every candidate of the active table."""
    table = active_table()

    candidate_times: dict[str, float] = {}
    for name, kwargs in table.candidates:
        spec = RunSpec(
            algorithm=name,
            topology=scenario.topology,
            machine=scenario.machine,
            msg_size=scenario.msg_size,
            algorithm_kwargs=kwargs,
            options=scenario.options,
        )
        try:
            candidate_times[name] = spec.run().simulated_time
        except Exception:
            candidate_times[name] = math.inf

    finite = {n: t for n, t in candidate_times.items() if math.isfinite(t)}
    best = min(finite, key=lambda n: finite[n]) if finite else None

    selected = None
    fallback_used = False
    error = None
    auto_time = math.inf
    try:
        run = scenario.spec_for("auto").run()
        selected = run.selected_algorithm
        fallback_used = run.fallback_used
        auto_time = run.simulated_time
    except Exception as exc:  # a dead auto run is itself a violation
        error = f"{type(exc).__name__}: {exc}"

    if best is None or not math.isfinite(auto_time):
        regret = math.inf
    elif finite[best] == 0.0:
        regret = 1.0 if auto_time == 0.0 else math.inf
    else:
        regret = auto_time / finite[best]

    return ScenarioRegret(
        scenario=scenario,
        selected=selected,
        auto_time=auto_time,
        candidate_times=candidate_times,
        best=best,
        regret=regret,
        fallback_used=fallback_used,
        error=error,
    )


def regret_report(
    scenarios: list[Scenario],
    table: DecisionTable | None = None,
) -> dict[str, Any]:
    """Evaluate every scenario, returning the JSON-safe regret report.

    ``table`` overrides the active table for the whole evaluation (the
    override is installed for the duration and restored afterwards, so
    the spec digests and the resolution agree on the table version).
    """
    if table is not None:
        use_table(table)
    try:
        resolved = active_table()
        results = [evaluate_scenario(s) for s in scenarios]
    finally:
        if table is not None:
            use_table(None)

    finite = [r.regret for r in results if math.isfinite(r.regret)]
    geomean = (
        math.exp(sum(math.log(x) for x in finite) / len(finite))
        if finite else math.inf
    )
    violations = [r for r in results if r.violation]
    worst = sorted(
        (r for r in results if math.isfinite(r.regret)),
        key=lambda r: r.regret,
        reverse=True,
    )
    return {
        "experiment": "selection_regret",
        "table_version": resolved.version,
        "scenarios": len(results),
        "profiles": sorted({s.profile for s in scenarios}),
        "geomean_regret": geomean,
        "max_regret": max(finite) if finite else math.inf,
        "non_survivable_picks": len(violations),
        "violations": [r.to_dict() for r in violations],
        "worst": [r.to_dict() for r in worst[:3]],
        "records": [r.to_dict() for r in results],
    }


def check_gates(
    report: dict[str, Any], max_geomean_regret: float = 1.10
) -> list[str]:
    """The acceptance gates, as a list of human-readable failures."""
    failures = []
    geomean = report["geomean_regret"]
    if not (geomean <= max_geomean_regret):
        failures.append(
            f"geomean regret {geomean:.4f} exceeds the "
            f"{max_geomean_regret:.2f} gate"
        )
    if report["non_survivable_picks"]:
        failures.append(
            f"{report['non_survivable_picks']} scenario(s) selected a "
            "non-survivable algorithm (fallback_used or dead run)"
        )
    return failures
