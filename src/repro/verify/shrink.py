"""Greedy scenario minimization for failing fuzz trials.

Given a failing :class:`~repro.verify.differential.TrialResult`, the
shrinker repeatedly tries simplifying transformations — fewer nodes, fewer
ranks per socket, sparser topology, smaller messages, fewer fault-plan
components — and keeps any candidate that still violates at least one
invariant from the original failure's signature.  The result is the small,
human-debuggable scenario that repro files and promoted regression tests
are written from.

The predicate deliberately matches on the *invariant name set*, not the
exact violation text: shrinking changes ranks and counts, so details drift
while the failure class stays put.  Shrink trials run with
``metamorphic=False`` (no extra derived simulations) — the signature
membership test doesn't need them unless the original failure was itself
metamorphic, in which case they stay on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.exec.spec import MachineSpec, TopologySpec
from repro.verify.differential import TrialResult, run_trial
from repro.verify.generators import Scenario

#: Invariants whose checks require the metamorphic battery to re-trigger.
_METAMORPHIC = frozenset(
    {"size_monotonicity", "relabel_conservation", "payload_independence"}
)

#: Hard ceiling on candidate evaluations per shrink (each is ~3 sims).
MAX_SHRINK_TRIALS = 80


@dataclass
class ShrinkOutcome:
    """The minimized scenario plus the trial that still fails on it."""

    scenario: Scenario
    result: TrialResult
    trials: int  #: candidate evaluations spent


def shrink_scenario(
    failing: TrialResult,
    *,
    corrupt: Callable[[dict], None] | None = None,
    max_trials: int = MAX_SHRINK_TRIALS,
) -> ShrinkOutcome:
    """Greedily minimize ``failing.scenario`` while it keeps failing."""
    signature = failing.signature()
    metamorphic = bool(signature & _METAMORPHIC)

    def still_fails(candidate: Scenario) -> TrialResult | None:
        result = run_trial(candidate, corrupt=corrupt, metamorphic=metamorphic)
        if result.signature() & signature:
            return result
        return None

    best, best_result = failing.scenario, failing
    trials = 0
    progress = True
    while progress and trials < max_trials:
        progress = False
        for candidate in _candidates(best):
            if trials >= max_trials:
                break
            trials += 1
            result = still_fails(candidate)
            if result is not None:
                best, best_result = candidate, result
                progress = True
                break  # restart candidate generation from the new best
    return ShrinkOutcome(scenario=best, result=best_result, trials=trials)


def _candidates(s: Scenario) -> Iterator[Scenario]:
    """Simplification moves, most aggressive first.

    Machine moves shrink the communicator (and the topology with it, since
    ``topology.n`` must equal the machine's rank count); topology moves
    sparsify; message moves shrink bytes; option moves strip fault-plan
    components and finally the whole plan.
    """
    m = s.machine
    # --- shrink the communicator --------------------------------------
    for machine in (
        MachineSpec(max(1, m.nodes // 2), m.sockets_per_node, m.ranks_per_socket),
        MachineSpec(m.nodes, m.sockets_per_node, max(1, m.ranks_per_socket // 2)),
        MachineSpec(m.nodes, 1, m.ranks_per_socket),
        MachineSpec(max(1, m.nodes - 1), m.sockets_per_node, m.ranks_per_socket),
        MachineSpec(m.nodes, m.sockets_per_node, max(1, m.ranks_per_socket - 1)),
    ):
        if machine != m and machine.n_ranks <= m.n_ranks:
            yield s.with_(
                machine=machine,
                topology=_resize_topology(s.topology, machine.n_ranks),
                msg_size=_resize_msg(s.msg_size, machine.n_ranks),
            )
    # --- sparsify the topology ----------------------------------------
    t = s.topology
    if t.kind == "random" and t.density:
        for density in (t.density / 2, 0.0):
            yield s.with_(topology=_replace_spec(t, density=density))
    if t.kind == "random" and t.self_loops:
        yield s.with_(topology=_replace_spec(t, self_loops=False))
    if t.kind == "moore" and t.radius > 1:
        yield s.with_(topology=_replace_spec(t, radius=1))
    if t.kind in ("moore", "cartesian") and t.dims > 1:
        yield s.with_(topology=_replace_spec(t, dims=1))
    if t.kind == "scale_free" and t.edges_per_rank > 1:
        yield s.with_(
            topology=_replace_spec(t, edges_per_rank=t.edges_per_rank // 2)
        )
    if t.kind != "random":
        # Structured kinds reduce to a sparse random graph when possible —
        # random is the kind with the simplest knobs left to shrink.
        yield s.with_(topology=TopologySpec("random", t.n, density=0.1, seed=0))
    # --- shrink the message -------------------------------------------
    if isinstance(s.msg_size, tuple):
        yield s.with_(msg_size=max(s.msg_size, default=0))
    elif s.msg_size > 0:
        for msg in (s.msg_size // 2, 1, 0):
            if msg < s.msg_size:
                yield s.with_(msg_size=msg)
    # --- strip fault-plan components ----------------------------------
    plan = s.options.fault_plan
    if plan is not None:
        from dataclasses import replace as dc_replace

        if plan.link_faults:
            yield s.with_(options=dc_replace(
                s.options, fault_plan=dc_replace(plan, link_faults=())
            ))
        if plan.stragglers:
            yield s.with_(options=dc_replace(
                s.options, fault_plan=dc_replace(plan, stragglers=())
            ))
        if plan.losses:
            yield s.with_(options=dc_replace(
                s.options, fault_plan=dc_replace(plan, losses=())
            ))
        yield s.with_(options=dc_replace(
            s.options, fault_plan=None, fallback=None
        ))


def _replace_spec(t: TopologySpec, **changes) -> TopologySpec:
    from dataclasses import replace

    return replace(t, **changes)


def _resize_topology(t: TopologySpec, n: int) -> TopologySpec:
    if t.n == n:
        return t
    return _replace_spec(t, n=n)


def _resize_msg(msg, n: int):
    """Allgatherv block lists must track the (shrunk) communicator size."""
    if isinstance(msg, tuple):
        return msg[:n] if len(msg) >= n else msg + (msg[-1] if msg else 0,) * (
            n - len(msg)
        )
    return msg
