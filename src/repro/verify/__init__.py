"""Differential fuzzing and metamorphic verification of the reproduction.

The three allgather algorithms are semantically identical — they must
deliver the same blocks with the same payloads, differing only in cost.
This package turns that redundancy into a test oracle:

* :mod:`~repro.verify.generators` — seeded random scenarios (topology,
  machine, message size, fault plan) replayable from ``(seed, iteration)``.
* :mod:`~repro.verify.invariants` — the invariant battery: the MPI
  post-condition, cross-algorithm agreement, trace conservation laws,
  metamorphic relations (size monotonicity, within-socket relabeling,
  payload independence), and Distance Halving structural checks.
* :mod:`~repro.verify.differential` — the fuzz driver: run all algorithms
  per scenario, check invariants, write replayable repro files.
* :mod:`~repro.verify.shrink` — greedy minimization of failing scenarios.

Entry points: ``repro fuzz`` on the CLI, :func:`fuzz` from code, and
:func:`replay_file` from promoted regression tests.
"""

from repro.verify.differential import (
    ALGORITHMS,
    BUG_INJECTORS,
    FuzzReport,
    TrialResult,
    fuzz,
    make_bug,
    replay,
    replay_file,
    run_trial,
    write_repro,
)
from repro.verify.generators import (
    PROFILES,
    Scenario,
    ScenarioConfig,
    generate_scenario,
)
from repro.verify.invariants import (
    INVARIANTS,
    InvariantViolation,
    Violation,
    assert_invariants,
    run_invariants,
)
from repro.verify.shrink import ShrinkOutcome, shrink_scenario

__all__ = [
    "ALGORITHMS",
    "BUG_INJECTORS",
    "INVARIANTS",
    "PROFILES",
    "FuzzReport",
    "InvariantViolation",
    "Scenario",
    "ScenarioConfig",
    "ShrinkOutcome",
    "TrialResult",
    "Violation",
    "assert_invariants",
    "fuzz",
    "generate_scenario",
    "make_bug",
    "replay",
    "replay_file",
    "run_invariants",
    "run_trial",
    "shrink_scenario",
    "write_repro",
]
