"""Seeded scenario generators for the differential conformance fuzzer.

A :class:`Scenario` is everything one differential trial needs *except* the
algorithm choice: a topology spec, a machine spec, a message size (scalar
or allgatherv block list), and the :class:`~repro.collectives.runner.
RunOptions` (fault plan, watchdog, tracing).  The fuzzer materializes one
:class:`~repro.exec.RunSpec` per algorithm from it, so every fuzz trial
exercises exactly the production execution path (spec -> build -> run).

Determinism contract: ``generate_scenario(seed, iteration)`` is a pure
function of its arguments — the RNG is ``default_rng([seed, iteration])``
and every draw happens in a fixed order — so a failing iteration can be
regenerated from ``(seed, iteration)`` alone, and a serialized scenario
(:meth:`Scenario.to_dict`) replays bit-identically on any machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.collectives.base import SETUP_FREE_FALLBACK
from repro.collectives.runner import RunOptions
from repro.exec.spec import MachineSpec, RunSpec, TopologySpec
from repro.sim.faults import (
    FaultPlan,
    LinkFault,
    MessageLoss,
    RankCrash,
    RetryPolicy,
    Straggler,
)

#: Scenario serialization format (repro files embed it).
SCENARIO_FORMAT = 1

#: Fuzz profiles: ``clean`` draws no fault plans (and enables the full
#: metamorphic battery); ``faulty`` perturbs every scenario; ``crash``
#: draws fail-stop rank crashes with a random shrink/degrade recovery
#: mode (and enables the crash-recovery oracles).
PROFILES = ("clean", "faulty", "crash")

#: Scalar message sizes the generator draws from (bytes).  Includes the
#: degenerate 0- and 1-byte blocks and spans the latency- and
#: bandwidth-dominated regimes.
MSG_SIZES = (0, 1, 7, 64, 512, 4096, 65536)

#: Drop probabilities for lossy plans.  With the generator's retry budget
#: (``max_retries=8``) the permanent-loss probability per message is at
#: most 0.1**9 = 1e-9, so fuzz runs complete and loss cost shows up as
#: retransmissions — never as a spurious deadlock.
LOSS_PROBABILITIES = (0.01, 0.03, 0.1)


@dataclass(frozen=True)
class ScenarioConfig:
    """Bounds for the generator (kept small: a trial runs ~10 simulations).

    ``max_nodes * max_sockets_per_node * max_ranks_per_socket`` caps the
    communicator size (default 4*2*4 = 32 ranks — large enough for three
    halving levels, small enough for ~200 trials in a CI smoke budget).
    """

    profile: str = "clean"
    max_nodes: int = 4
    max_sockets_per_node: int = 2
    max_ranks_per_socket: int = 4
    allgatherv_probability: float = 0.15
    self_loop_probability: float = 0.25
    max_events: int = 5_000_000

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r}; available: {PROFILES}"
            )


@dataclass(frozen=True)
class Scenario:
    """One fuzz trial's inputs (algorithm-agnostic; frozen, hashable).

    ``seed``/``iteration`` record provenance — which generator draw
    produced this scenario — and ride along into repro files; they do not
    affect execution (the topology/machine/fault seeds are already fixed
    inside the specs).
    """

    topology: TopologySpec
    machine: MachineSpec
    msg_size: int | tuple[int, ...]
    options: RunOptions = field(default_factory=RunOptions)
    profile: str = "clean"
    seed: int = 0
    iteration: int = 0

    @property
    def n_ranks(self) -> int:
        return self.topology.n

    def spec_for(self, algorithm: str) -> RunSpec:
        """The production :class:`RunSpec` running ``algorithm`` on me."""
        return RunSpec(
            algorithm=algorithm,
            topology=self.topology,
            machine=self.machine,
            msg_size=self.msg_size,
            options=self.options,
        )

    def label(self) -> str:
        size = (
            f"v[{len(self.msg_size)}]" if isinstance(self.msg_size, tuple)
            else str(self.msg_size)
        )
        plan = self.options.fault_plan
        faults = f" faults({plan.describe()})" if plan is not None else ""
        return (
            f"seed={self.seed} it={self.iteration} {self.topology.kind} "
            f"n={self.topology.n} m={size}{faults}"
        )

    # ------------------------------------------------------------- (de)serde
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form; :meth:`from_dict` replays it bit-identically."""
        return {
            "format": SCENARIO_FORMAT,
            "topology": self.topology.canonical(),
            "machine": self.machine.canonical(),
            "msg_size": (
                list(self.msg_size) if isinstance(self.msg_size, tuple)
                else self.msg_size
            ),
            "options": self.options.canonical(),
            "profile": self.profile,
            "seed": self.seed,
            "iteration": self.iteration,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        if data.get("format") != SCENARIO_FORMAT:
            raise ValueError(
                f"unsupported scenario format {data.get('format')!r} "
                f"(expected {SCENARIO_FORMAT})"
            )
        msg = data["msg_size"]
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            machine=MachineSpec.from_dict(data["machine"]),
            msg_size=tuple(msg) if isinstance(msg, list) else msg,
            options=RunOptions.from_dict(data["options"]),
            profile=data.get("profile", "clean"),
            seed=data.get("seed", 0),
            iteration=data.get("iteration", 0),
        )

    def with_(self, **changes) -> "Scenario":
        """Shrinker sugar: a copy with some fields replaced."""
        return replace(self, **changes)


def generate_scenario(
    seed: int,
    iteration: int,
    config: ScenarioConfig | None = None,
) -> Scenario:
    """Draw one scenario — a pure function of ``(seed, iteration, config)``."""
    config = config or ScenarioConfig()
    rng = np.random.default_rng([seed, iteration])

    machine = _draw_machine(rng, config)
    topology = _draw_topology(rng, config, machine.n_ranks)
    msg_size = _draw_msg_size(rng, config, machine.n_ranks)

    fault_plan = None
    fallback = None
    on_failure = "abort"
    if config.profile == "faulty":
        fault_plan = _draw_fault_plan(rng, machine.n_ranks)
        fallback = SETUP_FREE_FALLBACK
    elif config.profile == "crash":
        fault_plan = _draw_crash_plan(rng, machine.n_ranks)
        fallback = SETUP_FREE_FALLBACK
        if fault_plan is not None:
            on_failure = str(rng.choice(["shrink", "degrade"]))
    options = RunOptions(
        trace=True,
        fault_plan=fault_plan,
        fallback=fallback,
        max_events=config.max_events,
        on_failure=on_failure,
    )
    return Scenario(
        topology=topology,
        machine=machine,
        msg_size=msg_size,
        options=options,
        profile=config.profile,
        seed=seed,
        iteration=iteration,
    )


def _draw_machine(rng: np.random.Generator, config: ScenarioConfig) -> MachineSpec:
    return MachineSpec(
        nodes=int(rng.integers(1, config.max_nodes + 1)),
        sockets_per_node=int(rng.integers(1, config.max_sockets_per_node + 1)),
        ranks_per_socket=int(rng.integers(1, config.max_ranks_per_socket + 1)),
    )


def _draw_topology(
    rng: np.random.Generator, config: ScenarioConfig, n: int
) -> TopologySpec:
    # Random graphs get most of the weight: they cover the degenerate cases
    # (empty neighborhoods at density 0, self-loops, hubs at high density)
    # that structured grids cannot produce.
    kind = str(rng.choice(
        ["random", "random", "random", "moore", "cartesian", "scale_free"]
    ))
    if kind == "random":
        density = float(rng.choice([0.0, 0.05, 0.1, 0.3, 0.6, 0.9]))
        return TopologySpec(
            "random", n, density=density,
            seed=int(rng.integers(0, 2**31 - 1)),
            self_loops=bool(rng.random() < config.self_loop_probability),
        )
    if kind == "moore":
        return TopologySpec(
            "moore", n,
            radius=int(rng.integers(1, 3)),
            dims=int(rng.integers(1, 4)),
        )
    if kind == "cartesian":
        return TopologySpec("cartesian", n, dims=int(rng.integers(1, 4)))
    return TopologySpec(
        "scale_free", n,
        edges_per_rank=int(rng.integers(1, 5)),
        seed=int(rng.integers(0, 2**31 - 1)),
    )


def _draw_msg_size(
    rng: np.random.Generator, config: ScenarioConfig, n: int
) -> int | tuple[int, ...]:
    if rng.random() < config.allgatherv_probability:
        # Variable block sizes, including some zero-length blocks.
        return tuple(
            int(rng.choice([0, 1, 64, 512, 4096])) for _ in range(n)
        )
    return int(rng.choice(MSG_SIZES))


def _draw_crash_plan(rng: np.random.Generator, n: int) -> FaultPlan | None:
    """Fail-stop plan: 1-2 victims, times spanning the typical makespan.

    Always leaves at least one survivor, so every drawn plan is
    recoverable; crash times past the makespan are legal (a late crash is
    a no-op and the run must look exactly like a clean one).  The default
    :class:`~repro.sim.faults.FailureDetector` rides along, so a starving
    round surfaces as structured detection, never a watchdog trip.
    """
    if n < 2:
        return None  # a lone rank has no survivable crash
    n_crashes = int(rng.integers(1, min(2, n - 1) + 1))
    ranks = rng.choice(n, size=n_crashes, replace=False)
    # Crash times are drawn at mixed scales: generated makespans range
    # from sub-microsecond (tiny messages, few ranks) to tens of
    # microseconds, and only a crash *inside* the makespan exercises
    # recovery — a uniform draw over the widest scale would make nearly
    # every crash a no-op.
    crashes = tuple(
        RankCrash(
            rank=int(r),
            time=float(rng.uniform(0.0, float(rng.choice(
                [5e-7, 2e-6, 8e-6, 40e-6]
            )))),
        )
        for r in sorted(int(r) for r in ranks)
    )
    return FaultPlan(crashes=crashes, seed=int(rng.integers(0, 2**31 - 1)))


def _draw_fault_plan(rng: np.random.Generator, n: int) -> FaultPlan:
    """Compose a random-but-survivable fault plan.

    Every component is drawn independently; the retry budget is sized so
    the peak drawn loss probability cannot realistically exhaust it (see
    :data:`LOSS_PROBABILITIES`), keeping faulty fuzz runs deterministic in
    outcome (they complete; the cost moves).
    """
    link_faults: tuple[LinkFault, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    losses: tuple[MessageLoss, ...] = ()

    if rng.random() < 0.5:
        end = float(rng.choice([500e-6, np.inf]))
        link_faults = (
            LinkFault(
                alpha_factor=float(rng.uniform(1.0, 4.0)),
                beta_factor=float(rng.uniform(0.3, 1.0)),
                end=end,
            ),
        )
    if rng.random() < 0.5 and n > 1:
        ranks = rng.choice(n, size=min(2, n), replace=False)
        stragglers = tuple(
            Straggler(
                rank=int(r),
                compute_factor=float(rng.uniform(1.0, 8.0)),
                startup_delay=float(rng.uniform(0.0, 200e-6)),
            )
            for r in sorted(int(r) for r in ranks)
        )
    roll = rng.random()
    if roll < 0.4:
        losses = (MessageLoss(probability=float(rng.choice(LOSS_PROBABILITIES))),)
    elif roll < 0.55:
        # Control-plane blackout: empty runtime window, but the peak
        # probability makes negotiation-heavy setups infeasible — this is
        # what drives the graceful-degradation fallback path.
        losses = (MessageLoss(probability=0.9, start=0.0, end=0.0),)
    return FaultPlan(
        link_faults=link_faults,
        stragglers=stragglers,
        losses=losses,
        retry=RetryPolicy(timeout=50e-6, backoff=2.0, max_retries=8),
        seed=int(rng.integers(0, 2**31 - 1)),
    )
