"""The differential fuzzer: run every algorithm on random scenarios.

One *trial* takes a :class:`~repro.verify.generators.Scenario`, runs every
oracle-capable allgather algorithm on it through the production
:class:`~repro.exec.RunSpec` path, and checks the full invariant battery
(:mod:`repro.verify.invariants`).  :func:`fuzz` is the driver loop:
generate, run, and on the first failing trial shrink the scenario
(:mod:`repro.verify.shrink`) and write a replayable repro file plus a
ready-to-paste pytest snippet.

Mutation testing hook
---------------------
``inject_bug`` wires a deliberate defect into every trial so the pipeline
can prove it *would* catch a real one — the acceptance test for the whole
subsystem.  ``"payload-corruption"`` overwrites one delivered block of the
distance_halving run after execution, modeling a buffer-packing bug; the
fuzzer must flag it (payload_equivalence + cross_algorithm) and shrink it
to a handful of ranks.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.collectives.base import list_algorithms
from repro.verify.generators import Scenario, ScenarioConfig, generate_scenario
from repro.verify.invariants import Violation, run_invariants

#: Algorithms every trial runs (the differential set): every registered
#: backend declaring the ``oracle`` capability.  Registering a new oracle
#: enrolls it in the fuzzer automatically.
ALGORITHMS = tuple(info.name for info in list_algorithms(requires={"oracle"}))

#: Registered bug injectors for mutation testing (name -> corruptor).
BUG_INJECTORS: dict[str, Callable[[dict], None]] = {}


def _register_bug(name: str):
    def deco(fn: Callable[[dict], None]):
        BUG_INJECTORS[name] = fn
        return fn
    return deco


@_register_bug("payload-corruption")
def _corrupt_payload(runs: dict) -> None:
    """Overwrite one delivered block of the DH run (a packing-offset bug)."""
    run = runs.get("distance_halving")
    if run is None:
        return
    for results in reversed(run.results):
        if results:
            src = max(results)
            results[src] = "corrupted"
            return


def make_bug(name: str | None) -> Callable[[dict], None] | None:
    """Resolve an ``inject_bug`` name (``None`` passes through)."""
    if name is None:
        return None
    try:
        return BUG_INJECTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown bug {name!r}; available: {sorted(BUG_INJECTORS)}"
        ) from None


@dataclass
class TrialResult:
    """Outcome of one differential trial."""

    scenario: Scenario
    violations: list[Violation] = field(default_factory=list)
    runs: dict[str, Any] = field(default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    def signature(self) -> frozenset[str]:
        """The set of violated invariant names — the shrinker's predicate."""
        return frozenset(v.invariant for v in self.violations)


def run_trial(
    scenario: Scenario,
    *,
    corrupt: Callable[[dict], None] | None = None,
    metamorphic: bool = True,
) -> TrialResult:
    """Run all algorithms on one scenario and check invariants.

    Execution failures (deadlock, watchdog, setup errors) become
    ``"execution"`` violations rather than propagating — a crash on a
    random scenario is a finding, not a fuzzer bug.
    """
    topology = scenario.topology.build()
    result = TrialResult(scenario=scenario)
    for name in ALGORITHMS:
        try:
            result.runs[name] = scenario.spec_for(name).run()
        except Exception as exc:
            result.violations.append(Violation(
                "execution", name, f"{type(exc).__name__}: {exc}",
            ))
    if corrupt is not None:
        corrupt(result.runs)
    result.violations += run_invariants(
        scenario, topology, result.runs, metamorphic=metamorphic,
    )
    return result


@dataclass
class FuzzReport:
    """What one :func:`fuzz` campaign did and found."""

    seed: int
    profile: str
    iterations_run: int = 0
    elapsed: float = 0.0
    stopped_by: str = "iterations"  #: "iterations" | "time_budget" | "failure"
    failure: TrialResult | None = None
    shrunk: Scenario | None = None
    shrink_trials: int = 0
    repro_path: Path | None = None
    snippet_path: Path | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def summary(self) -> str:
        if self.ok:
            return (
                f"fuzz: {self.iterations_run} iteration(s) clean "
                f"(profile={self.profile}, seed={self.seed}, "
                f"{self.elapsed:.1f}s, stopped by {self.stopped_by})"
            )
        lines = [
            f"fuzz: FAILURE at iteration {self.failure.scenario.iteration} "
            f"(profile={self.profile}, seed={self.seed})",
            f"  scenario: {self.failure.scenario.label()}",
        ]
        lines += [f"  - {v}" for v in self.failure.violations[:8]]
        if len(self.failure.violations) > 8:
            lines.append(f"  ... {len(self.failure.violations) - 8} more")
        if self.shrunk is not None:
            lines.append(
                f"  shrunk to: {self.shrunk.label()} "
                f"({self.shrink_trials} shrink trial(s))"
            )
        if self.repro_path is not None:
            lines.append(f"  repro:  {self.repro_path}")
        if self.snippet_path is not None:
            lines.append(f"  pytest: {self.snippet_path}")
        return "\n".join(lines)


def fuzz(
    seed: int = 0,
    iterations: int = 200,
    *,
    time_budget: float | None = None,
    profile: str = "clean",
    config: ScenarioConfig | None = None,
    inject_bug: str | None = None,
    shrink: bool = True,
    out_dir: str | Path = "fuzz-failures",
    on_progress: Callable[[int, int], None] | None = None,
) -> FuzzReport:
    """Run the differential fuzz campaign; stop at the first failure.

    Deterministic given ``(seed, profile, config)``: iteration ``i`` always
    draws the same scenario, so a failing campaign reproduces exactly.
    ``time_budget`` (seconds) bounds wall-clock for CI smoke jobs; the
    budget is checked between iterations, never mid-trial.
    """
    config = config or ScenarioConfig(profile=profile)
    corrupt = make_bug(inject_bug)
    report = FuzzReport(seed=seed, profile=config.profile)
    start = time.perf_counter()
    for i in range(iterations):
        if time_budget is not None and time.perf_counter() - start > time_budget:
            report.stopped_by = "time_budget"
            break
        scenario = generate_scenario(seed, i, config)
        trial = run_trial(scenario, corrupt=corrupt)
        report.iterations_run = i + 1
        if on_progress is not None:
            on_progress(i + 1, iterations)
        if not trial.ok:
            report.stopped_by = "failure"
            report.failure = trial
            if shrink:
                from repro.verify.shrink import shrink_scenario

                outcome = shrink_scenario(trial, corrupt=corrupt)
                report.shrunk = outcome.scenario
                report.shrink_trials = outcome.trials
                final = outcome.result
            else:
                report.shrunk = trial.scenario
                final = trial
            report.repro_path, report.snippet_path = write_repro(
                final, Path(out_dir), original=trial.scenario,
                inject_bug=inject_bug,
            )
            break
    report.elapsed = time.perf_counter() - start
    return report


# --------------------------------------------------------------------------
# repro files
# --------------------------------------------------------------------------

#: Repro file format version.
REPRO_FORMAT = 1

_SNIPPET = '''\
"""Auto-generated by `repro fuzz` — promote into tests/ to pin this repro."""

from pathlib import Path

from repro.verify import replay_file


def test_fuzz_repro_{stem}():
    violations = replay_file(Path(__file__).with_name("{name}"))
    assert not violations, "\\n".join(str(v) for v in violations)
'''


def write_repro(
    trial: TrialResult,
    out_dir: Path,
    *,
    original: Scenario | None = None,
    inject_bug: str | None = None,
) -> tuple[Path, Path]:
    """Write the (shrunk) failing scenario as JSON + a pytest snippet.

    Returns ``(repro_path, snippet_path)``.  The JSON file alone replays
    the failure (:func:`replay_file`); the snippet wraps that in a test.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    scenario = trial.scenario
    stem = f"s{scenario.seed}_i{scenario.iteration}_{scenario.profile}"
    payload = {
        "format": REPRO_FORMAT,
        "scenario": scenario.to_dict(),
        "violations": [v.as_dict() for v in trial.violations],
        "original_scenario": (
            original.to_dict() if original is not None
            and original != scenario else None
        ),
        "inject_bug": inject_bug,
    }
    repro_path = out_dir / f"repro_{stem}.json"
    repro_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    snippet_path = out_dir / f"test_repro_{stem}.py"
    snippet_path.write_text(
        _SNIPPET.format(stem=stem, name=repro_path.name)
    )
    return repro_path, snippet_path


def replay(data: dict, *, metamorphic: bool = True) -> list[Violation]:
    """Re-run a repro payload's scenario; return current violations.

    ``inject_bug`` recorded in the file is honored, so mutation-test repros
    reproduce out of the box (and report clean once the injector is gone).
    """
    scenario = Scenario.from_dict(data["scenario"])
    corrupt = make_bug(data.get("inject_bug"))
    return run_trial(scenario, corrupt=corrupt,
                     metamorphic=metamorphic).violations


def replay_file(path: str | Path) -> list[Violation]:
    """:func:`replay` on a repro JSON file written by :func:`write_repro`."""
    return replay(json.loads(Path(path).read_text()))
