"""Metamorphic invariants and conservation laws checked on fuzz trials.

Each ``check_*`` function inspects one differential trial (a
:class:`~repro.verify.generators.Scenario` plus the per-algorithm
:class:`~repro.collectives.runner.AllgatherRun` results) and returns a list
of :class:`Violation` records — empty when the invariant holds.
:func:`run_invariants` dispatches the whole battery, gating each check on
what the scenario makes observable (fault plans disable the clean-only
metamorphic relations but enable the loss-accounting laws).

The catalog (see ``docs/ARCHITECTURE.md`` §6 for the full rationale):

``payload_equivalence``
    The MPI post-condition per algorithm: every rank holds exactly its
    in-neighbors' blocks with the payloads they sent
    (:func:`~repro.collectives.runner.verify_allgather`).
``cross_algorithm``
    All algorithms that completed deliver *identical* result buffers —
    the differential core: the three designs differ only in cost.
``trace_conservation``
    Bookkeeping laws between engine counters, per-link-class trace
    aggregates, and fault-injector statistics: bytes sent == bytes
    delivered per class under no loss, attempts == messages + observed
    retransmissions, lost messages appear only under a lossy *or crash*
    plan (an in-flight send to or from a dead rank is dropped and counted
    lost), and trace-level losses == injector losses + crash drops.
``survivor_completeness``
    Crash plans: a run's ``missing_ranks`` may only name planned crash
    victims, and every survivor holds every survivor's block — checked by
    ``payload_equivalence`` verifying with
    ``allow_missing=run.missing_ranks`` (crashed blocks are optional,
    everything else is mandatory).
``crash_agreement``
    Crash plans: re-running with the *other* recovery mode (shrink vs
    degrade) must reach the same steady state — same planned-victim
    bound on ``missing_ranks``, and identical survivor buffers once
    crashed sources are masked out.  The two recovery state machines are
    mutual oracles, exactly like the DES/hybrid pair.
``size_monotonicity``
    Clean scenarios only: halving the message size must not increase
    ``simulated_time`` (the α–β cost model is monotone in bytes).
``relabel_conservation``
    Applying a machine-automorphic (within-socket) rank permutation to
    the topology preserves correctness for every algorithm and preserves
    the naive algorithm's message/byte totals and per-class composition.
    Note the deliberate refinement versus the obvious stronger claim:
    ``simulated_time`` is *not* invariant under relabeling, because port
    contention breaks ties in rank order — empirically the stronger form
    fails on ~60% of random scenarios, for all three algorithms.
``payload_independence``
    Payloads are opaque cargo: permuting the payload *values* (not the
    ranks) changes nothing observable except the delivered objects —
    simulated time, counters, and per-class aggregates are bit-identical.
``hybrid_equivalence``
    Clean scenarios only: re-running with ``sim_mode="auto"`` must be
    bit-identical to the DES on contended schedules (exact replay) and
    within the analytic tolerance contract, never exceeding the DES time,
    on contention-free ones (closed form) — the hybrid path and the DES
    are mutual differential oracles.
``dh_structure``
    Structural checks on the Distance Halving pattern itself: the
    exactly-once delivery invariant (:func:`check_pattern`), at most one
    agent/origin per rank per level, agents always in the opposite half
    of the searcher's interval, and ``recv_for_me`` consistent with the
    incoming buffer and the topology.
``auto_selection``
    Re-runs the trial under ``algorithm="auto"`` (:mod:`repro.select`):
    the resolved pick must come from the fault class's registry candidate
    set, must never trip the graceful-degradation fallback (the selector's
    survivability walk is supposed to reject such candidates up front),
    must satisfy the MPI post-condition, and — when the selection's
    constructor kwargs match the differential run's defaults — must cost
    exactly what the directly-named run of the same algorithm cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.collectives.runner import VerificationError, verify_allgather

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.collectives.runner import AllgatherRun
    from repro.topology.graph import DistGraphTopology
    from repro.verify.generators import Scenario

#: Invariant names, in the order the battery runs them.
INVARIANTS = (
    "execution",
    "payload_equivalence",
    "cross_algorithm",
    "trace_conservation",
    "survivor_completeness",
    "crash_agreement",
    "size_monotonicity",
    "relabel_conservation",
    "payload_independence",
    "hybrid_equivalence",
    "dh_structure",
    "auto_selection",
)


@dataclass(frozen=True)
class Violation:
    """One invariant failure on one trial (plain data, JSON-safe)."""

    invariant: str
    algorithm: str | None
    detail: str
    data: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "algorithm": self.algorithm,
            "detail": self.detail,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(
            invariant=data["invariant"],
            algorithm=data.get("algorithm"),
            detail=data.get("detail", ""),
            data=dict(data.get("data", {})),
        )

    def __str__(self) -> str:
        alg = f" [{self.algorithm}]" if self.algorithm else ""
        return f"{self.invariant}{alg}: {self.detail}"


class InvariantViolation(AssertionError):
    """Raised by :func:`assert_invariants` — carries the violation list."""

    def __init__(self, scenario: "Scenario", violations: list[Violation]):
        lines = [f"{len(violations)} invariant violation(s) on {scenario.label()}:"]
        lines += [f"  - {v}" for v in violations]
        super().__init__("\n".join(lines))
        self.scenario = scenario
        self.violations = list(violations)


# --------------------------------------------------------------------------
# individual checks
# --------------------------------------------------------------------------

def check_payload_equivalence(
    topology: "DistGraphTopology", runs: dict[str, "AllgatherRun"]
) -> list[Violation]:
    """The MPI post-condition, per algorithm, via :func:`verify_allgather`."""
    violations = []
    for name, run in runs.items():
        try:
            verify_allgather(topology, run, allow_missing=run.missing_ranks)
        except VerificationError as exc:
            violations.append(
                Violation("payload_equivalence", name, str(exc), exc.as_dict())
            )
    return violations


def check_cross_algorithm(runs: dict[str, "AllgatherRun"]) -> list[Violation]:
    """All completed algorithms deliver identical per-rank result buffers."""
    if len(runs) < 2:
        return []
    names = sorted(runs)
    ref_name = names[0]
    ref = runs[ref_name].results
    # Crashed sources deliver best-effort (in-flight drops differ per
    # schedule), so mask the union of every run's missing ranks: what is
    # left is the part of the post-condition all algorithms must agree on.
    ignore: set[int] = set()
    for run in runs.values():
        ignore.update(run.missing_ranks)
    violations = []
    for name in names[1:]:
        other = runs[name].results
        if len(other) != len(ref):
            violations.append(Violation(
                "cross_algorithm", name,
                f"{name} produced {len(other)} rank buffers, "
                f"{ref_name} produced {len(ref)}",
            ))
            continue
        for rank, (a, b) in enumerate(zip(ref, other)):
            if rank in ignore:
                continue  # a crashed rank's own buffer is partial by design
            a = {src: p for src, p in a.items() if src not in ignore}
            b = {src: p for src, p in b.items() if src not in ignore}
            if a != b:
                only_a = sorted(set(a) - set(b))
                only_b = sorted(set(b) - set(a))
                diff_payload = sorted(
                    src for src in set(a) & set(b) if a[src] != b[src]
                )
                violations.append(Violation(
                    "cross_algorithm", name,
                    f"rank {rank} buffers differ between {ref_name} and {name}: "
                    f"only-{ref_name}={only_a} only-{name}={only_b} "
                    f"payload-mismatch={diff_payload}",
                    {"rank": rank, "reference": ref_name},
                ))
                break  # first differing rank per algorithm is enough
    return violations


def check_trace_conservation(
    scenario: "Scenario", runs: dict[str, "AllgatherRun"]
) -> list[Violation]:
    """Bookkeeping laws tying engine counters, trace aggregates, and faults.

    Works off ``run.trace_summary`` (plain JSON), so the same check runs on
    live, slimmed, worker-returned, and cache-loaded runs.
    """
    plan = scenario.options.fault_plan
    lossy = plan is not None and any(not l.is_noop for l in plan.losses)
    crashy = plan is not None and bool(plan.crashes)
    violations: list[Violation] = []

    def bad(name: str, detail: str, **data: Any) -> None:
        violations.append(Violation("trace_conservation", name, detail, data))

    for name, run in runs.items():
        summary = run.trace_summary
        if summary is None:
            if scenario.options.trace:
                bad(name, "trace=True run carries no trace_summary")
            continue
        messages = sum(c["messages"] for c in summary.values())
        nbytes = sum(c["bytes"] for c in summary.values())
        delivered = sum(c["delivered_messages"] for c in summary.values())
        lost = sum(c["lost_messages"] for c in summary.values())
        attempts = sum(c["attempts"] for c in summary.values())

        if messages != run.messages_sent:
            bad(name, f"trace counted {messages} messages, engine counted "
                      f"{run.messages_sent}")
        if nbytes != run.bytes_sent:
            bad(name, f"trace counted {nbytes} bytes, engine counted "
                      f"{run.bytes_sent}")
        if delivered + lost != messages:
            bad(name, f"delivered ({delivered}) + lost ({lost}) != "
                      f"sent ({messages})")
        if attempts < messages:
            bad(name, f"attempts ({attempts}) < messages ({messages})")
        for cls, c in summary.items():
            if c["delivered_messages"] + c["lost_messages"] != c["messages"]:
                bad(name, f"{cls}: delivered + lost != messages ({c})")
            if c["lost_messages"] == 0 and c["delivered_bytes"] != c["bytes"]:
                bad(name, f"{cls}: no losses but delivered_bytes "
                          f"{c['delivered_bytes']} != bytes {c['bytes']}")
            if not lossy:
                if c["lost_messages"] and not crashy:
                    bad(name, f"{cls}: {c['lost_messages']} lost messages "
                              "under a plan with no loss spec")
                # Crash drops are *not* retried (the peer is dead), so
                # attempts == messages survives pure-crash plans.
                if c["attempts"] != c["messages"]:
                    bad(name, f"{cls}: {c['attempts']} attempts for "
                              f"{c['messages']} messages under no loss spec")

        stats = run.fault_stats
        if stats is not None:
            if attempts - messages != stats["retransmissions"]:
                bad(name, f"trace attempts - messages = {attempts - messages} "
                          f"but injector counted {stats['retransmissions']} "
                          "retransmissions")
            expected_lost = stats["messages_lost"] + stats.get("crash_dropped", 0)
            if lost != expected_lost:
                bad(name, f"trace counted {lost} lost messages, injector "
                          f"counted {stats['messages_lost']} lost + "
                          f"{stats.get('crash_dropped', 0)} crash-dropped")
            if stats["drops"] != stats["retransmissions"] + stats["messages_lost"]:
                bad(name, "injector drops != retransmissions + messages_lost "
                          f"({stats})")
        elif lossy:
            bad(name, "lossy plan but run carries no fault_stats")

        # Lost messages never deliver: a permanently lost message must not
        # also appear in any rank's result buffer — checked indirectly by
        # payload_equivalence (a loss would surface as a missing block).
        if run.trace is not None:
            for rec in run.trace.records:
                if rec.arrival == math.inf and not (lossy or crashy):
                    bad(name, f"message {rec.src}->{rec.dst} arrived at inf "
                              "under a plan with no loss or crash spec")
                    break
    return violations


def check_survivor_completeness(
    scenario: "Scenario", runs: dict[str, "AllgatherRun"]
) -> list[Violation]:
    """Crash plans: only planned victims may go missing, recovery is sane.

    The positive half — every survivor holds every survivor's block — is
    enforced by ``payload_equivalence`` verifying with
    ``allow_missing=run.missing_ranks``; here we pin the *bound* on that
    relaxation: ``missing_ranks`` must be a subset of the planned crash
    victims, and a recovery record, when present, must match the options
    that produced it.
    """
    plan = scenario.options.fault_plan
    planned = {c.rank for c in plan.crashes} if plan is not None else set()
    violations = []
    for name, run in runs.items():
        extra = set(run.missing_ranks) - planned
        if extra:
            violations.append(Violation(
                "survivor_completeness", name,
                f"missing_ranks {sorted(run.missing_ranks)} includes ranks "
                f"never planned to crash: {sorted(extra)}",
                {"missing": sorted(run.missing_ranks),
                 "planned": sorted(planned)},
            ))
        recovery = run.recovery
        if recovery is not None:
            if recovery.get("mode") != scenario.options.on_failure:
                violations.append(Violation(
                    "survivor_completeness", name,
                    f"recovery mode {recovery.get('mode')!r} != requested "
                    f"on_failure {scenario.options.on_failure!r}",
                ))
            if not run.missing_ranks:
                violations.append(Violation(
                    "survivor_completeness", name,
                    "recovery record present but missing_ranks is empty",
                ))
    return violations


def check_crash_agreement(
    scenario: "Scenario", runs: dict[str, "AllgatherRun"]
) -> list[Violation]:
    """Shrink and degrade recoveries are mutual oracles (crash plans).

    Re-runs every algorithm with the *other* ``on_failure`` mode.  Round 0
    is identical by determinism, so both modes see the same first
    detection; after that the recovery paths diverge, but both must end
    with survivor buffers that agree once crashed sources (whose in-flight
    blocks are best-effort) are masked out.
    """
    import dataclasses

    mode = scenario.options.on_failure
    if mode not in ("shrink", "degrade"):
        return []
    flipped = "degrade" if mode == "shrink" else "shrink"
    options = dataclasses.replace(
        scenario.options, on_failure=flipped, trace=False
    )
    plan = scenario.options.fault_plan
    planned = {c.rank for c in plan.crashes} if plan is not None else set()
    violations: list[Violation] = []
    for name, run in runs.items():
        try:
            other = scenario.with_(options=options).spec_for(name).run()
        except Exception as exc:  # noqa: BLE001 - a crash here is a finding
            violations.append(Violation(
                "crash_agreement", name,
                f"{flipped} recovery failed where {mode} succeeded: "
                f"{type(exc).__name__}: {exc}",
            ))
            continue
        if set(other.missing_ranks) - planned:
            violations.append(Violation(
                "crash_agreement", name,
                f"{flipped} recovery lost unplanned ranks "
                f"{sorted(set(other.missing_ranks) - planned)}",
            ))
            continue
        ignore = set(run.missing_ranks) | set(other.missing_ranks)
        for rank in range(len(run.results)):
            if rank in ignore:
                continue
            a = {s: p for s, p in run.results[rank].items() if s not in ignore}
            b = {s: p for s, p in other.results[rank].items() if s not in ignore}
            if a != b:
                violations.append(Violation(
                    "crash_agreement", name,
                    f"rank {rank} survivor buffer differs between {mode} "
                    f"and {flipped}: only-{mode}={sorted(set(a) - set(b))} "
                    f"only-{flipped}={sorted(set(b) - set(a))}",
                    {"rank": rank, "mode": mode, "flipped": flipped},
                ))
                break
    return violations


def check_size_monotonicity(
    scenario: "Scenario", runs: dict[str, "AllgatherRun"]
) -> list[Violation]:
    """Clean scenarios: a strictly smaller message must not take longer.

    Re-runs each algorithm at a quarter of the scalar message size through
    the same spec path.  Skipped for allgatherv block lists (no single
    "smaller size" exists) and for sizes already at 0.
    """
    if not isinstance(scenario.msg_size, int) or scenario.msg_size < 4:
        return []
    smaller = scenario.msg_size // 4
    violations = []
    for name, run in runs.items():
        spec = scenario.with_(msg_size=smaller).spec_for(name)
        try:
            small_run = spec.run()
        except Exception as exc:  # surfaced as its own violation
            violations.append(Violation(
                "size_monotonicity", name,
                f"run at msg_size={smaller} raised {type(exc).__name__}: {exc}",
            ))
            continue
        if small_run.simulated_time > run.simulated_time:
            violations.append(Violation(
                "size_monotonicity", name,
                f"simulated_time({smaller}B) = {small_run.simulated_time:.9g} "
                f"> simulated_time({scenario.msg_size}B) = "
                f"{run.simulated_time:.9g}",
                {"small": small_run.simulated_time, "large": run.simulated_time},
            ))
    return violations


def socket_permutation(n: int, ranks_per_socket: int, seed: int) -> list[int]:
    """A machine-automorphic rank permutation (shuffles within each socket).

    Block placement maps rank ``r`` to socket ``r // ranks_per_socket``, so
    permuting ranks within each block keeps every rank on its socket: link
    classes, and therefore the cost model, are unchanged edge-for-edge.
    """
    import numpy as np

    rng = np.random.default_rng([seed, n, ranks_per_socket])
    perm = list(range(n))
    for lo in range(0, n, ranks_per_socket):
        hi = min(lo + ranks_per_socket, n)
        block = perm[lo:hi]
        rng.shuffle(block)
        perm[lo:hi] = block
    return perm


def relabel_topology(
    topology: "DistGraphTopology", perm: list[int]
) -> "DistGraphTopology":
    """The isomorphic topology with rank ``r`` renamed to ``perm[r]``."""
    from repro.topology.graph import DistGraphTopology

    out: list[list[int]] = [[] for _ in range(topology.n)]
    for u, v in topology.edges():
        out[perm[u]].append(perm[v])
    return DistGraphTopology(topology.n, out)


def check_relabel_conservation(
    scenario: "Scenario",
    topology: "DistGraphTopology",
    runs: dict[str, "AllgatherRun"],
) -> list[Violation]:
    """Within-socket relabeling preserves correctness and naive's traffic.

    Runs naive and distance_halving on the relabeled topology (naive for
    the counter-conservation half, DH because its negotiation is the most
    label-sensitive code path).  See the module docstring for why
    ``simulated_time`` itself is deliberately *not* asserted invariant.
    """
    from repro.collectives.runner import run_allgather

    rps = scenario.machine.ranks_per_socket
    perm = socket_permutation(topology.n, rps, scenario.seed + scenario.iteration)
    if perm == list(range(topology.n)):
        return []
    relabeled = relabel_topology(topology, perm)
    machine = scenario.machine.build()
    msg = (
        list(scenario.msg_size) if isinstance(scenario.msg_size, tuple)
        else scenario.msg_size
    )
    violations: list[Violation] = []
    for name in ("naive", "distance_halving"):
        base = runs.get(name)
        if base is None:
            continue
        if isinstance(msg, list):
            # allgatherv: block_sizes[r] travels with the *rank*, so the
            # relabeled run needs the permuted size list to stay isomorphic.
            msg_for = [0] * len(msg)
            for r, size in enumerate(msg):
                msg_for[perm[r]] = size
        else:
            msg_for = msg
        try:
            run = run_allgather(name, relabeled, machine, msg_for,
                                options=scenario.options)
            verify_allgather(relabeled, run)
        except VerificationError as exc:
            violations.append(Violation(
                "relabel_conservation", name,
                f"relabeled topology fails verification: {exc}", exc.as_dict(),
            ))
            continue
        except Exception as exc:
            violations.append(Violation(
                "relabel_conservation", name,
                f"relabeled run raised {type(exc).__name__}: {exc}",
            ))
            continue
        if name != "naive":
            continue
        # Naive sends exactly one message per topology edge, so its totals
        # and per-class composition are functions of the (class-preserving)
        # edge multiset — exactly conserved under the permutation.
        if (run.messages_sent, run.bytes_sent) != (base.messages_sent,
                                                   base.bytes_sent):
            violations.append(Violation(
                "relabel_conservation", name,
                f"naive totals changed under relabeling: "
                f"({base.messages_sent} msgs, {base.bytes_sent} B) -> "
                f"({run.messages_sent} msgs, {run.bytes_sent} B)",
            ))
        if base.trace_summary is not None and run.trace_summary is not None:
            for cls in base.trace_summary:
                a = base.trace_summary[cls]
                b = run.trace_summary[cls]
                if (a["messages"], a["bytes"]) != (b["messages"], b["bytes"]):
                    violations.append(Violation(
                        "relabel_conservation", name,
                        f"naive {cls} aggregate changed under relabeling: "
                        f"{a['messages']} msgs/{a['bytes']} B -> "
                        f"{b['messages']} msgs/{b['bytes']} B",
                    ))
    return violations


def check_hybrid_equivalence(
    scenario: "Scenario",
    runs: dict[str, "AllgatherRun"],
) -> list[Violation]:
    """The hybrid fast path is a mutual oracle for the DES (and vice versa).

    Every clean trial is re-run with ``sim_mode="auto"``.  When the hybrid
    path replays the schedule (``sim_path="fastpath"`` — any contended
    schedule), the run must be *bit-identical* to the DES in simulated
    time, message/byte counters, and delivered buffers.  When the per-stage
    analyzer routes it to the closed form (``sim_path="analytic"`` — fully
    contention-free schedules), delivered buffers and counters must still
    be identical and the simulated time must agree within
    :data:`~repro.sim.fastpath.ANALYTIC_RTOL` without ever *exceeding* the
    DES time (the closed form is a lower bound).
    """
    import dataclasses

    from repro.exec.spec import RunSpec
    from repro.sim.fastpath import ANALYTIC_RTOL

    options = dataclasses.replace(
        scenario.options, trace=False, sim_mode="auto",
    )
    violations: list[Violation] = []
    for name, run in runs.items():
        if getattr(run, "fallback_used", False):
            continue
        try:
            auto = RunSpec(
                algorithm=name,
                topology=scenario.topology,
                machine=scenario.machine,
                msg_size=scenario.msg_size,
                options=options,
            ).run()
        except Exception as exc:  # noqa: BLE001 - a crash here is a finding
            violations.append(Violation(
                "hybrid_equivalence", name,
                f"sim_mode='auto' execution failed where the DES succeeded: "
                f"{type(exc).__name__}: {exc}",
            ))
            continue
        if (
            auto.messages_sent != run.messages_sent
            or auto.bytes_sent != run.bytes_sent
            or auto.results != run.results
        ):
            violations.append(Violation(
                "hybrid_equivalence", name,
                f"auto path changed observable outputs (sim_path="
                f"{auto.sim_path}): messages {auto.messages_sent} vs "
                f"{run.messages_sent}, bytes {auto.bytes_sent} vs "
                f"{run.bytes_sent}, results equal: "
                f"{auto.results == run.results}",
            ))
            continue
        if auto.sim_path == "analytic":
            base = run.simulated_time
            gap = base - auto.simulated_time
            if gap < 0 or (base > 0 and gap / base > ANALYTIC_RTOL):
                violations.append(Violation(
                    "hybrid_equivalence", name,
                    f"analytic time {auto.simulated_time!r} outside the "
                    f"tolerance contract vs DES {base!r} "
                    f"(rtol={ANALYTIC_RTOL}, lower-bound required)",
                    data={"analytic": auto.simulated_time, "des": base},
                ))
        elif auto.simulated_time != run.simulated_time:
            violations.append(Violation(
                "hybrid_equivalence", name,
                f"contended schedule must replay bit-identically: "
                f"auto {auto.simulated_time!r} != des {run.simulated_time!r}",
                data={"auto": auto.simulated_time, "des": run.simulated_time},
            ))
    return violations


def check_payload_independence(
    scenario: "Scenario",
    topology: "DistGraphTopology",
    runs: dict[str, "AllgatherRun"],
) -> list[Violation]:
    """Payloads are opaque: permuting payload *values* changes no timing.

    Reruns distance_halving (the algorithm whose buffer packing is most
    involved) with reversed payload objects and demands bit-identical
    simulated time and counters, plus correct delivery of the new objects.
    """
    from repro.collectives.runner import run_allgather

    base = runs.get("distance_halving")
    if base is None:
        return []
    payloads = [f"blk{topology.n - 1 - r}" for r in range(topology.n)]
    machine = scenario.machine.build()
    msg = (
        list(scenario.msg_size) if isinstance(scenario.msg_size, tuple)
        else scenario.msg_size
    )
    try:
        run = run_allgather("distance_halving", topology, machine, msg,
                            options=scenario.options, payloads=payloads)
        verify_allgather(topology, run, expected_payloads=payloads)
    except VerificationError as exc:
        return [Violation(
            "payload_independence", "distance_halving",
            f"permuted payloads misdelivered: {exc}", exc.as_dict(),
        )]
    except Exception as exc:
        return [Violation(
            "payload_independence", "distance_halving",
            f"permuted-payload run raised {type(exc).__name__}: {exc}",
        )]
    violations = []
    if run.simulated_time != base.simulated_time:
        violations.append(Violation(
            "payload_independence", "distance_halving",
            f"simulated_time depends on payload values: "
            f"{base.simulated_time:.9g} -> {run.simulated_time:.9g}",
        ))
    if (run.messages_sent, run.bytes_sent) != (base.messages_sent,
                                               base.bytes_sent):
        violations.append(Violation(
            "payload_independence", "distance_halving",
            f"traffic depends on payload values: "
            f"({base.messages_sent}, {base.bytes_sent}) -> "
            f"({run.messages_sent}, {run.bytes_sent})",
        ))
    if run.trace_summary != base.trace_summary:
        violations.append(Violation(
            "payload_independence", "distance_halving",
            "per-class trace aggregates depend on payload values",
        ))
    return violations


def _halving_intervals(n: int, stop: int) -> list[list[tuple[int, int]]]:
    """Interval layout per level, mirroring the builder's lockstep halving."""
    levels = []
    intervals = [(0, n)]
    while any(hi - lo > stop for lo, hi in intervals):
        levels.append(list(intervals))
        nxt: list[tuple[int, int]] = []
        for lo, hi in intervals:
            if hi - lo <= stop:
                continue
            mid = (lo + hi - 1) // 2
            nxt.extend(((lo, mid + 1), (mid + 1, hi)))
        intervals = nxt
    return levels


def check_dh_structure(
    scenario: "Scenario", topology: "DistGraphTopology"
) -> list[Violation]:
    """Structural invariants of the Distance Halving pattern itself.

    Pattern construction is deterministic (greedy selection), so the
    pattern checked here is the one the differential run executed.
    """
    from repro.collectives.distance_halving.builder import (
        build_patterns,
        check_pattern,
    )

    machine = scenario.machine.build()
    violations: list[Violation] = []

    def bad(detail: str, **data: Any) -> None:
        violations.append(Violation("dh_structure", "distance_halving",
                                    detail, data))

    try:
        pattern = build_patterns(topology, machine)
    except Exception as exc:
        bad(f"build_patterns raised {type(exc).__name__}: {exc}")
        return violations
    try:
        check_pattern(topology, pattern)
    except AssertionError as exc:
        bad(f"exactly-once delivery violated: {exc}")

    levels = _halving_intervals(topology.n, pattern.ranks_per_socket)
    interval_at: list[dict[int, tuple[int, int]]] = []
    for intervals in levels:
        level_map: dict[int, tuple[int, int]] = {}
        for lo, hi in intervals:
            for r in range(lo, hi):
                level_map[r] = (lo, hi)
        interval_at.append(level_map)

    for rp in pattern.ranks:
        seen_levels: set[int] = set()
        for step in rp.steps:
            if step.index in seen_levels:
                bad(f"rank {rp.rank} has two steps at level {step.index}")
                continue
            seen_levels.add(step.index)
            if step.index >= len(levels):
                bad(f"rank {rp.rank} has a step at level {step.index} but "
                    f"halving stops after {len(levels)} level(s)")
                continue
            lo, hi = interval_at[step.index][rp.rank]
            if hi - lo <= pattern.ranks_per_socket:
                bad(f"rank {rp.rank} stepped at level {step.index} inside an "
                    f"already-stopped interval [{lo},{hi})")
                continue
            mid = (lo + hi - 1) // 2
            in_lower = rp.rank <= mid
            for role, peer in (("agent", step.agent), ("origin", step.origin)):
                if peer is None:
                    continue
                if not lo <= peer < hi:
                    bad(f"rank {rp.rank} level {step.index}: {role} {peer} "
                        f"outside interval [{lo},{hi})")
                elif (peer <= mid) == in_lower:
                    bad(f"rank {rp.rank} level {step.index}: {role} {peer} "
                        f"is in the same half (mid={mid}) — agents must "
                        "live in the opposite half")
            if step.origin is not None:
                # recv_for_me must name blocks actually present in the
                # incoming buffer and correspond to real topology edges.
                blocks = set(step.recv_blocks)
                for src in step.recv_for_me:
                    if src not in blocks:
                        bad(f"rank {rp.rank} level {step.index}: recv_for_me "
                            f"source {src} not in recv_blocks")
                    elif not topology.has_edge(src, rp.rank):
                        bad(f"rank {rp.rank} level {step.index}: recv_for_me "
                            f"delivers non-edge ({src}, {rp.rank})")
            if step.agent is not None and step.send_block_count < 1:
                bad(f"rank {rp.rank} level {step.index}: sends to agent "
                    f"{step.agent} with empty main_buf")
        if rp.self_copy != topology.has_edge(rp.rank, rp.rank):
            bad(f"rank {rp.rank}: self_copy={rp.self_copy} but topology "
                f"self-loop={topology.has_edge(rp.rank, rp.rank)}")

    # Agent/origin links must be symmetric across rank patterns.
    for rp in pattern.ranks:
        for step in rp.steps:
            if step.agent is not None:
                peer_steps = {
                    s.index: s for s in pattern[step.agent].steps
                }
                peer = peer_steps.get(step.index)
                if peer is None or peer.origin != rp.rank:
                    bad(f"rank {rp.rank} level {step.index}: agent "
                        f"{step.agent} does not record {rp.rank} as origin")
                elif len(peer.recv_blocks) != step.send_block_count:
                    bad(f"rank {rp.rank} level {step.index}: sent "
                        f"{step.send_block_count} blocks but agent "
                        f"{step.agent} records {len(peer.recv_blocks)}")
    return violations


def check_auto_selection(
    scenario: "Scenario",
    topology: "DistGraphTopology",
    runs: dict[str, "AllgatherRun"],
) -> list[Violation]:
    """``algorithm="auto"`` picks a legal, survivable, correct candidate.

    The time-equality half fires only when the selection's constructor
    kwargs are the candidate's defaults (what the differential runs used)
    and the directly-named run did not itself degrade — then the auto run
    must be bit-identical in cost to that run.
    """
    import inspect

    from repro.collectives.base import algorithm_info
    from repro.select import candidates_for, extract_features, select

    violations: list[Violation] = []
    try:
        run = scenario.spec_for("auto").run()
    except Exception as exc:  # noqa: BLE001 - a dead auto run is a finding
        return [Violation(
            "auto_selection", None,
            f"auto run raised {type(exc).__name__}: {exc}",
        )]
    features = extract_features(
        topology, scenario.machine, scenario.msg_size, scenario.options
    )
    allowed = candidates_for(features.fault)
    if run.selected_algorithm not in allowed:
        violations.append(Violation(
            "auto_selection", run.selected_algorithm,
            f"selected {run.selected_algorithm!r} outside the fault class "
            f"{features.fault!r} candidate set {allowed}",
        ))
    if run.fallback_used:
        violations.append(Violation(
            "auto_selection", run.selected_algorithm,
            f"auto pick {run.requested_algorithm!r} was not survivable: the "
            f"run degraded to {run.algorithm!r} — the survivability walk "
            "should have rejected it",
        ))
    try:
        verify_allgather(topology, run, allow_missing=run.missing_ranks)
    except VerificationError as exc:
        violations.append(Violation(
            "auto_selection", run.selected_algorithm,
            f"auto run fails the MPI post-condition: {exc}", exc.as_dict(),
        ))
    base = runs.get(run.selected_algorithm or "")
    if base is not None and not base.fallback_used and not run.fallback_used:
        selection = select(
            topology, scenario.machine.build(), scenario.msg_size,
            scenario.options,
        )
        sig = inspect.signature(algorithm_info(selection.algorithm).cls.__init__)
        defaults = all(
            k in sig.parameters and sig.parameters[k].default == v
            for k, v in selection.kwargs
        )
        if defaults and run.simulated_time != base.simulated_time:
            violations.append(Violation(
                "auto_selection", run.selected_algorithm,
                f"auto run of {run.selected_algorithm!r} cost "
                f"{run.simulated_time!r} but the directly-named run cost "
                f"{base.simulated_time!r} (must be bit-identical)",
                {"auto": run.simulated_time, "named": base.simulated_time},
            ))
    return violations


# --------------------------------------------------------------------------
# dispatcher
# --------------------------------------------------------------------------

def run_invariants(
    scenario: "Scenario",
    topology: "DistGraphTopology",
    runs: dict[str, "AllgatherRun"],
    *,
    metamorphic: bool = True,
) -> list[Violation]:
    """Run the applicable battery on one trial's runs.

    ``metamorphic=False`` restricts to the checks that need no extra
    simulations (used by the shrinker, where each candidate is re-executed
    many times and the failure signature is already known).
    """
    plan = scenario.options.fault_plan
    clean = plan is None
    crashy = plan is not None and bool(plan.crashes)
    violations: list[Violation] = []
    violations += check_payload_equivalence(topology, runs)
    violations += check_cross_algorithm(runs)
    violations += check_trace_conservation(scenario, runs)
    if crashy:
        violations += check_survivor_completeness(scenario, runs)
    if "distance_halving" in runs and not runs["distance_halving"].fallback_used:
        violations += check_dh_structure(scenario, topology)
    if metamorphic and crashy:
        violations += check_crash_agreement(scenario, runs)
    if metamorphic:
        # every profile: the adaptive selector must behave under clean,
        # perturbed, and crash plans alike
        violations += check_auto_selection(scenario, topology, runs)
    if metamorphic and clean:
        violations += check_size_monotonicity(scenario, runs)
        violations += check_relabel_conservation(scenario, topology, runs)
        violations += check_payload_independence(scenario, topology, runs)
        violations += check_hybrid_equivalence(scenario, runs)
    return violations


def assert_invariants(
    scenario: "Scenario",
    topology: "DistGraphTopology",
    runs: dict[str, "AllgatherRun"],
) -> None:
    """Raise :class:`InvariantViolation` if any check fails (pytest sugar)."""
    violations = run_invariants(scenario, topology, runs)
    if violations:
        raise InvariantViolation(scenario, violations)
