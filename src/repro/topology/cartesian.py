"""Cartesian (von Neumann stencil) topologies.

Not used by the paper's headline figures, but the natural "hello world" of
neighborhood collectives (2D/3D halo exchange) and exercised by the examples
and tests.  Each rank talks to its ``2 * d`` axis-aligned neighbors.
"""

from __future__ import annotations

import math

from repro.topology.graph import DistGraphTopology
from repro.topology.moore import dims_create
from repro.utils.validation import check_positive


def cartesian_topology(
    n: int,
    d: int = 2,
    dims: tuple[int, ...] | None = None,
    periodic: bool = True,
) -> DistGraphTopology:
    """Von Neumann stencil: +-1 along each of ``d`` grid dimensions.

    With ``periodic=False``, border ranks simply have fewer neighbors.
    """
    n = check_positive("n", n)
    if dims is None:
        d = check_positive("d", d)
        dims = dims_create(n, d)
    else:
        dims = tuple(check_positive("dims[i]", x) for x in dims)
        d = len(dims)
    if math.prod(dims) != n:
        raise ValueError(f"dims {dims} do not multiply to n={n}")

    strides = [math.prod(dims[i + 1 :]) for i in range(d)]

    def coord_of(rank: int) -> list[int]:
        return [(rank // strides[i]) % dims[i] for i in range(d)]

    def rank_of(coord: list[int]) -> int:
        return sum(c * s for c, s in zip(coord, strides))

    out_lists: list[list[int]] = []
    for u in range(n):
        coord = coord_of(u)
        nbrs: set[int] = set()
        for axis in range(d):
            for step in (-1, 1):
                c = list(coord)
                c[axis] += step
                if periodic:
                    c[axis] %= dims[axis]
                elif not 0 <= c[axis] < dims[axis]:
                    continue
                v = rank_of(c)
                if v != u:
                    nbrs.add(v)
        out_lists.append(sorted(nbrs))
    return DistGraphTopology(n, out_lists)
